// The lock-service tier: Serve runs one arbiter — a full participant in the
// quorum protocol that additionally leases lock sessions to clients — and
// Dial attaches a client to a coterie of arbiters.
//
// The tier splits the paper's "site" role in two. Arbiters form a small
// fixed coterie and run the §3.1 protocol among themselves; clients are
// session holders that never join the coterie, so the quorum size — and with
// it the paper's 3(K−1)..6(K−1) message cost per critical section — stays
// constant no matter how many clients attach. A crashed client is handled by
// its lease: when the lease runs out the arbiter releases every lock the
// session held through the ordinary protocol release path, so the next
// waiter is granted via the delay-optimal transfer handoff, and a crashed
// *arbiter* is handled by the §6 recovery machinery exactly as before.
package dqmx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"dqmx/internal/obs"
	"dqmx/internal/resource"
	"dqmx/internal/session"
	"dqmx/internal/transport"
)

// Session-tier error conditions, re-exported for errors.Is checks at the
// public surface.
var (
	// ErrLockLost means a held lock did not survive a session failover: the
	// session could not be preserved (arbiter restart, lease expiry, or a
	// different arbiter answered) and the lock was reclaimed. The handle
	// stays usable for re-acquisition.
	ErrLockLost = resource.ErrLockLost
	// ErrSessionLost means the client could not reach any arbiter within
	// its failover window; every operation on the session fails with it
	// from then on.
	ErrSessionLost = session.ErrSessionLost
	// ErrSessionClosed is returned by operations on a session after Close
	// or Abandon.
	ErrSessionClosed = session.ErrClientClosed
	// ErrOverloaded means an arbiter refused work for backpressure: its
	// session cap (ServeConfig.MaxSessions) or per-session in-flight
	// acquire cap (ServeConfig.MaxPending) is full. Session acquires retry
	// with exponential backoff on their own; the error surfaces when the
	// caller's context runs out first, or from Dial when every arbiter in
	// the chain is saturated.
	ErrOverloaded = session.ErrOverloaded
)

// Session-tier event types delivered to an Observer. Session events are
// service-level: they never count toward the protocol's per-CS message
// accounting.
const (
	EventSessionOpen   = obs.EventSessionOpen
	EventSessionExpire = obs.EventSessionExpire
	EventSessionClose  = obs.EventSessionClose
	EventLockReclaim   = obs.EventLockReclaim
	EventOverload      = obs.EventOverload
)

// SessionServerStats is a point-in-time copy of an arbiter's session
// counters: live sessions, lifecycle transitions, and locks reclaimed from
// expired sessions.
type SessionServerStats = session.Stats

// ServeConfig configures one arbiter of a lock-service coterie.
type ServeConfig struct {
	// N is the coterie size; ID is this arbiter's site (0..N-1).
	N  int
	ID SiteID
	// PeerListen is the address for inbound protocol traffic from the other
	// arbiters; Peers maps every other site to its peer-facing address.
	PeerListen string
	Peers      map[SiteID]string
	// ClientListen is the address for inbound client sessions. The two
	// listeners speak different stream grammars (peer vs session preamble),
	// so cross-dialing fails loudly rather than desynchronizing.
	ClientListen string
	// Lease is the default session lease TTL (session tier default 2s when
	// zero); MaxLease caps client-requested TTLs (default 30s). The lease
	// is the bounded reclaim window: a crashed client's locks re-enter the
	// protocol within Lease plus one release handoff.
	Lease    time.Duration
	MaxLease time.Duration
	// MaxSessions caps concurrent client sessions at this arbiter (default
	// 1024); MaxPending caps in-flight acquires per session (default 128).
	// Work past either cap is refused with ErrOverloaded — clients back off
	// and retry — and counted in MetricsSnapshot.Sessions.Overloaded.
	// Reattaches to live sessions are always admitted.
	MaxSessions int
	MaxPending  int
	// Detect is the arbiter-to-arbiter failure-detection probe period.
	// Arbiters heartbeat each other and a peer silent past DetectTimeout
	// (default 4 × Detect) is announced to the §6 recovery protocol, which
	// rebuilds quorums around the crash and re-grants any lock the dead
	// arbiter held — the arbiter-side counterpart of the client-side lease.
	// Zero means the default (500ms); negative disables detection. Detection
	// is also disabled by Options.Faults.DisableRecovery, since announcing
	// failures nobody will recover from only strands requesters earlier.
	Detect        time.Duration
	DetectTimeout time.Duration
	// Options configures the arbiter's protocol, quorum, wire, and
	// observability exactly as for NewTCPNode.
	Options Options
}

// DefaultDetect is the default arbiter failure-detection probe period.
const DefaultDetect = 500 * time.Millisecond

// Server is one arbiter of a lock-service coterie: a TCPPeer running the
// quorum protocol against its peers, plus a session server leasing locks to
// clients. With Options.Observe.Metrics, protocol and session events land in
// the same aggregate, so Snapshot reports both.
type Server struct {
	peer *TCPPeer
	sess *session.Server
	det  *transport.Detector
}

// Serve starts one arbiter: the quorum peer on cfg.PeerListen and the
// client-facing session listener on cfg.ClientListen.
func Serve(cfg ServeConfig) (*Server, error) {
	if cfg.ClientListen == "" {
		return nil, errors.New("dqmx: ServeConfig.ClientListen is required")
	}
	peer, col, err := newTCPPeer(cfg.N, cfg.ID, cfg.PeerListen, cfg.Peers, cfg.Options)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.ClientListen)
	if err != nil {
		peer.Close()
		return nil, fmt.Errorf("dqmx: client listen %s: %w", cfg.ClientListen, err)
	}
	sess, err := session.NewServer(session.ServerConfig{
		Site:        cfg.ID,
		Locks:       peer,
		Listener:    ln,
		Codec:       string(cfg.Options.Wire.Codec),
		Lease:       cfg.Lease,
		MaxLease:    cfg.MaxLease,
		MaxSessions: cfg.MaxSessions,
		MaxPending:  cfg.MaxPending,
		Sink:        sessionSink(col, cfg.Options.observer()),
	})
	if err != nil {
		ln.Close()
		peer.Close()
		return nil, err
	}
	srv := &Server{peer: peer, sess: sess}
	if cfg.Detect >= 0 && !cfg.Options.disableRecovery() {
		interval := cfg.Detect
		if interval == 0 {
			interval = DefaultDetect
		}
		timeout := cfg.DetectTimeout
		if timeout <= 0 {
			timeout = 4 * interval
		}
		srv.det = peer.StartDetector(interval, timeout)
	}
	return srv, nil
}

// sessionSink fans session-tier events into the metrics aggregate and the
// user's observer, whichever are present.
func sessionSink(col *obs.Metrics, obsv TraceSink) obs.Sink {
	switch {
	case col != nil && obsv != nil:
		return func(e TraceEvent) {
			col.Observe(e)
			obsv(e)
		}
	case col != nil:
		return col.Observe
	default:
		return obsv
	}
}

// Peer returns the arbiter's protocol peer — the same handle NewTCPNode
// returns — for direct (non-session) lock access and inspection.
func (s *Server) Peer() *TCPPeer { return s.peer }

// Addr returns the peer-facing listen address; ClientAddr the address
// clients dial.
func (s *Server) Addr() string       { return s.peer.Addr() }
func (s *Server) ClientAddr() string { return s.sess.Addr().String() }

// Lock returns the arbiter's own handle for the named lock: the arbiter is
// a full protocol participant and may compete for locks like any site.
func (s *Server) Lock(name string) (*Lock, error) { return s.peer.Lock(name) }

// SessionStats returns the arbiter's session counters.
func (s *Server) SessionStats() SessionServerStats { return s.sess.Stats() }

// Snapshot returns the arbiter's aggregated live metrics — protocol and
// session tiers combined. ok is false unless the server was built with
// Options.Observe.Metrics.
func (s *Server) Snapshot() (snap MetricsSnapshot, ok bool) { return s.peer.Snapshot() }

// SnapshotResource returns the live metrics of one named lock.
func (s *Server) SnapshotResource(name string) (snap MetricsSnapshot, ok bool) {
	return s.peer.SnapshotResource(name)
}

// Close stops the session server first — ending every session releases its
// locks through the still-running protocol, so waiters on other arbiters are
// not stranded — then the failure detector, then the protocol peer.
func (s *Server) Close() {
	s.sess.Close()
	if s.det != nil {
		s.det.Stop()
	}
	s.peer.Close()
}

// Session is a leased lock-service session. Lock returns the same canonical
// *Lock handles a Cluster or TCPPeer yields; their operations are forwarded
// to the attached arbiter, which competes on the client's behalf through the
// quorum protocol. The session renews its lease in the background and fails
// over along its arbiter list when the connection dies; see Dial.
type Session = session.Client

// DialConfig tunes a client session; the zero value is ready to use.
type DialConfig struct {
	// Codec names the wire codec to propose (default BinaryCodec); arbiters
	// negotiate down per connection.
	Codec Codec
	// Lease is the requested lease TTL (session tier default 2s when
	// zero). The arbiter may cap it; the granted TTL governs and bounds the
	// reclaim window should this client crash.
	Lease time.Duration
	// Keepalive is the lease renewal period (granted TTL / 3 when zero).
	Keepalive time.Duration
	// DialTimeout bounds one dial + handshake attempt (default 2s).
	DialTimeout time.Duration
	// FailoverWindow is how long the client keeps retrying arbiters after
	// losing its connection before declaring the session lost with
	// ErrSessionLost (3 × granted TTL when zero).
	FailoverWindow time.Duration
	// Resources bounds lock names client-side, mirroring the arbiters'.
	Resources ResourcePolicy
	// SafetyMargin arms the lease-safety watchdog: while the session holds
	// any lock and its conservative lease deadline (Session.LeaseDeadline)
	// is closer than this margin, OnLeaseWarning fires — the signal that
	// in-flight work risks outliving the lease and having its lock
	// reclaimed mid-flight. Zero disables the watchdog.
	SafetyMargin time.Duration
	// OnLeaseWarning receives lease-safety warnings with the conservative
	// lease deadline and the time remaining until it (non-positive when
	// already past). Called from the session's keepalive goroutine at most
	// once per keepalive interval; it must not block.
	OnLeaseWarning func(deadline time.Time, remaining time.Duration)
}

// Dial attaches a leased session to the first reachable arbiter and fails
// over along addrs when connections die. Reattaching to the same session
// within its lease preserves held locks; when the session could not be
// preserved, held handles return ErrLockLost on Release and stay usable for
// re-acquisition. The context bounds only the initial attach.
func Dial(ctx context.Context, addrs []string, cfg DialConfig) (*Session, error) {
	return session.Dial(ctx, session.ClientConfig{
		Addrs:          addrs,
		Codec:          string(cfg.Codec),
		Lease:          cfg.Lease,
		Keepalive:      cfg.Keepalive,
		DialTimeout:    cfg.DialTimeout,
		FailoverWindow: cfg.FailoverWindow,
		Policy:         cfg.Resources,
		SafetyMargin:   cfg.SafetyMargin,
		OnLeaseWarning: cfg.OnLeaseWarning,
	})
}
