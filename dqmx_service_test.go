package dqmx_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx"
)

// startService boots an n-arbiter lock-service coterie on loopback TCP:
// peer ports are reserved with throwaway peers first (the address book must
// be complete at construction), then each arbiter is started with Serve.
func startService(t *testing.T, n int, lease time.Duration, opts dqmx.Options) []*dqmx.Server {
	t.Helper()
	tmp := make([]*dqmx.TCPPeer, n)
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), "127.0.0.1:0", nil, dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = p
		addrs[dqmx.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	srvs := make([]*dqmx.Server, n)
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		srv, err := dqmx.Serve(dqmx.ServeConfig{
			N:            n,
			ID:           dqmx.SiteID(i),
			PeerListen:   addrs[dqmx.SiteID(i)],
			Peers:        book,
			ClientListen: "127.0.0.1:0",
			Lease:        lease,
			Options:      opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	return srvs
}

// TestServiceLiveScale is the tentpole acceptance test: a 3-site arbiter
// coterie serves 64 concurrent leased clients over real TCP. Clients
// contend over a handful of named locks; mutual exclusion is asserted in
// shared memory, keepalives run in the background, and the coterie size —
// hence the per-CS quorum traffic — never grows with the client count.
func TestServiceLiveScale(t *testing.T) {
	const (
		nArbiters = 3
		nClients  = 64
		nLocks    = 8
		rounds    = 3
	)
	srvs := startService(t, nArbiters, 0, dqmx.Options{
		Quorum:  dqmx.MajorityQuorums,
		Observe: dqmx.ObserveConfig{Metrics: true},
	})
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	addrs := make([]string, nArbiters)
	for i, s := range srvs {
		addrs[i] = s.ClientAddr()
	}

	var inCS [nLocks]int32
	var entries atomic.Int64
	var wg sync.WaitGroup
	errC := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spread clients over the arbiters; each keeps the full list as
			// its failover chain.
			rot := append(append([]string{}, addrs[i%nArbiters:]...), addrs[:i%nArbiters]...)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			sess, err := dqmx.Dial(ctx, rot, dqmx.DialConfig{})
			cancel()
			if err != nil {
				errC <- fmt.Errorf("client %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			slot := i % nLocks
			lock, err := sess.Lock(fmt.Sprintf("svc-%d", slot))
			if err != nil {
				errC <- fmt.Errorf("client %d: %w", i, err)
				return
			}
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err := lock.Acquire(ctx)
				cancel()
				if err != nil {
					errC <- fmt.Errorf("client %d round %d: acquire: %w", i, r, err)
					return
				}
				if !atomic.CompareAndSwapInt32(&inCS[slot], 0, 1) {
					errC <- fmt.Errorf("client %d round %d: mutual exclusion violated", i, r)
					return
				}
				entries.Add(1)
				atomic.StoreInt32(&inCS[slot], 0)
				if err := lock.Release(); err != nil {
					errC <- fmt.Errorf("client %d round %d: release: %w", i, r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Error(err)
	}
	if got, want := entries.Load(), int64(nClients*rounds); got != want {
		t.Errorf("critical-section entries = %d, want %d", got, want)
	}
	var opened uint64
	for _, s := range srvs {
		opened += s.SessionStats().Opened
	}
	if opened < nClients {
		t.Errorf("sessions opened across coterie = %d, want >= %d", opened, nClients)
	}
	if snap, ok := srvs[0].Snapshot(); !ok {
		t.Error("metrics snapshot unavailable despite Observe.Metrics")
	} else if snap.Sessions.Opened == 0 {
		t.Error("arbiter 0 aggregated no session events")
	}
}

// TestServiceArbiterFailover kills a whole arbiter — session tier and
// protocol peer — while a client holds a lock through it. The client fails
// over to the next arbiter in its list, learns its old session (and lock)
// did not survive, and re-acquires through the surviving majority.
func TestServiceArbiterFailover(t *testing.T) {
	srvs := startService(t, 3, 500*time.Millisecond, dqmx.Options{Quorum: dqmx.MajorityQuorums})
	closed := false
	defer func() {
		for i, s := range srvs {
			if i == 0 && closed {
				continue
			}
			s.Close()
		}
	}()

	// Fail over onto arbiter 1: its majority quorum {1,2} survives the
	// death of arbiter 0.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	sess, err := dqmx.Dial(ctx, []string{srvs[0].ClientAddr(), srvs[1].ClientAddr()}, dqmx.DialConfig{
		Lease: 500 * time.Millisecond,
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	lock, err := sess.Lock("failover-lock")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	err = lock.Acquire(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	oldID := sess.ID()

	srvs[0].Close()
	closed = true

	// The session moves to arbiter 1 under a fresh identity.
	deadline := time.Now().Add(15 * time.Second)
	for sess.ID() == oldID || sess.ID() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client did not fail over (id still %d, err %v)", sess.ID(), sess.Err())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := lock.Release(); !errors.Is(err, dqmx.ErrLockLost) {
		t.Fatalf("release after arbiter loss = %v, want ErrLockLost", err)
	}
	// The handle stays usable: re-acquire through the surviving quorum.
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	err = lock.Acquire(ctx)
	cancel()
	if err != nil {
		t.Fatalf("re-acquire after failover: %v", err)
	}
	if err := lock.Release(); err != nil {
		t.Fatalf("release after failover: %v", err)
	}
}

// TestServiceCrashReclaim pins the tentpole guarantee end to end at the
// public surface: a client that vanishes without releasing (Abandon — no
// bye, no keepalives) has its lock reclaimed when the lease runs out, and a
// waiter on a different arbiter is granted within lease + handoff bound.
func TestServiceCrashReclaim(t *testing.T) {
	const lease = 500 * time.Millisecond
	srvs := startService(t, 3, lease, dqmx.Options{Quorum: dqmx.MajorityQuorums})
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	holder, err := dqmx.Dial(ctx, []string{srvs[0].ClientAddr()}, dqmx.DialConfig{Lease: lease})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	hLock, err := holder.Lock("reclaim-me")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	err = hLock.Acquire(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	waiter, err := dqmx.Dial(ctx, []string{srvs[1].ClientAddr()}, dqmx.DialConfig{})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	wLock, err := waiter.Lock("reclaim-me")
	if err != nil {
		t.Fatal(err)
	}

	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), lease+15*time.Second)
		defer cancel()
		granted <- wLock.Acquire(ctx)
	}()
	// Let the waiter queue up behind the holder, then crash the holder.
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	holder.Abandon()

	if err := <-granted; err != nil {
		t.Fatalf("waiter not granted after holder crash: %v", err)
	}
	elapsed := time.Since(start)
	// The bound is lease + handoff; anything near the test timeout means
	// reclaim did not drive the grant.
	if elapsed > lease+10*time.Second {
		t.Errorf("reclaim handoff took %v, want < lease+10s", elapsed)
	}
	t.Logf("crashed holder's lock re-granted after %v (lease %v)", elapsed, lease)
	wLock.Release()

	st := srvs[0].SessionStats()
	if st.Expired == 0 {
		t.Error("arbiter 0 expired no sessions")
	}
	if st.Reclaimed == 0 {
		t.Error("arbiter 0 reclaimed no locks")
	}
}
