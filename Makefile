GO ?= go

.PHONY: check vet build test race bench tables fmt

# The standard gate: what CI and pre-commit should run.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the paper's evaluation (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtab

fmt:
	gofmt -l -w .
