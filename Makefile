GO ?= go

.PHONY: check vet build test race chaos soak fuzz bench tables fmt

# The standard gate: what CI and pre-commit should run. race already runs
# the full seeded conformance sweep (internal/chaos/sweep) under -race;
# chaos adds the short fuzz smoke on top.
check: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded adversarial gate: the short conformance sweep, the lossy-liveness
# sweep (drop-only schedules must complete every round — the reliable
# delivery sublayer heals the loss), and a fuzz smoke of the TCP frame
# decoders. Replay a failing schedule with
#   DQMX_CHAOS_SEED=<seed> $(GO) test -race -run TestChaosConformance ./internal/chaos/sweep
chaos:
	$(GO) test -race -short -run 'TestChaosConformance|TestLossyLiveness' ./internal/chaos/sweep
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 10s ./internal/transport

# Long adversarial soak: 10x the sweep plus model-boundary probes.
soak:
	$(GO) test -race -tags soak -timeout 60m ./internal/chaos/sweep

# Extended fuzzing of the wire decoders.
fuzz:
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 5m ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 5m ./internal/transport

# Regenerate the paper's evaluation (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtab

fmt:
	gofmt -l -w .
