GO ?= go

.PHONY: check vet build test race chaos soak fuzz modelcheck modelcheck-soak bench bench-smoke bench-codec bench-sim tables fmt apicheck apibase

# The standard gate: what CI and pre-commit should run. race already runs
# the full seeded conformance sweep (internal/chaos/sweep) under -race;
# chaos adds the short fuzz smoke on top, modelcheck the exhaustive small-N
# schedule enumeration, bench-smoke the seconds-long live benchmark
# conformance check (T-vs-2T A/B on both fabrics); apicheck fails on any
# drift of the root package's exported surface from api/dqmx.api.
check: vet build apicheck race chaos modelcheck bench-smoke

# Exported-API gate: cmd/apisnap re-derives the root package's surface and
# diffs it against the checked-in baseline. An intentional API change is a
# two-step: make the change, then `make apibase` and commit the baseline
# diff alongside it.
apicheck:
	$(GO) run ./cmd/apisnap -check api/dqmx.api

apibase:
	$(GO) run ./cmd/apisnap -write api/dqmx.api

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector. The explicit timeout is a
# hang detector, not a perf budget: the exhaustive modelcheck spaces run
# several minutes under -race and sit too close to go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# Seeded adversarial gate: the short conformance sweep, the lossy-liveness
# sweep (drop-only schedules must complete every round — the reliable
# delivery sublayer heals the loss), and fuzz smokes of the TCP frame
# decoders plus the gob-vs-binary differential. Replay a failing schedule with
#   DQMX_CHAOS_SEED=<seed> $(GO) test -race -run TestChaosConformance ./internal/chaos/sweep
chaos:
	$(GO) test -race -short -run 'TestChaosConformance|TestLossyLiveness|TestSessionConformance' ./internal/chaos/sweep
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 10s ./internal/transport
	$(GO) test -run FuzzCodecDifferential -fuzz FuzzCodecDifferential -fuzztime 10s ./internal/core
	$(GO) test -run FuzzSessionFrame -fuzz FuzzSessionFrame -fuzztime 10s ./internal/session

# Exhaustive small-N model checking: every schedule of delivery, request,
# exit, crash, and crash-loss over the protocol state machine, with the
# conformance invariants asserted on every transition (internal/modelcheck).
# The short run is the CI budget; modelcheck-soak widens to the crash spaces
# and two-round runs, and cmd/dqmcheck explores single configurations with
# custom budgets.
modelcheck:
	$(GO) test -short -run TestExhaustive -count=1 -timeout 10m ./internal/modelcheck

modelcheck-soak:
	$(GO) test -run TestExhaustive -count=1 -timeout 60m ./internal/modelcheck
	$(GO) run ./cmd/dqmcheck -n 4 -quorum majority -requesters 0,1,2 -bound=false -max-states 5e6
	$(GO) run ./cmd/dqmcheck -n 5 -quorum tree -requesters 0,4 -crashes 1 -bound=false -max-states 5e6

# Long adversarial soak: 10x the sweep plus model-boundary probes.
soak:
	$(GO) test -race -tags soak -timeout 60m ./internal/chaos/sweep

# Extended fuzzing of the wire decoders and the gob-vs-binary differential.
fuzz:
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 5m ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 5m ./internal/transport
	$(GO) test -run FuzzCodecDifferential -fuzz FuzzCodecDifferential -fuzztime 5m ./internal/core
	$(GO) test -run FuzzSessionFrame -fuzz FuzzSessionFrame -fuzztime 5m ./internal/session

# Live-cluster benchmark sweep: real deployments (in-process and loopback
# TCP) under the loadgen lab, including the transfer-vs-2T-fallback A/B.
# Writes BENCH_live_*.json artifacts (schema dqmx/bench-live/v1) into the
# repo root; see EXPERIMENTS.md "Live benchmarks".
bench:
	$(GO) run ./cmd/dqmbench -n 9,25 -quorum grid,tree -driver inproc,tcp -measure 2s -name sweep
	$(GO) run ./cmd/dqmbench -ab -n 9 -quorum grid -driver inproc,tcp -measure 2s -name handoff-ab

# Seconds-long deterministic live-benchmark smoke: the handoff A/B ratio
# test on both fabrics, the artifact schema round-trip, the TCP
# protocol/codec matrix, and the codec speedup assertion (binary must beat
# gob by >= 3x in round-trip ns/op with a zero-allocation encode path).
# Part of check.
bench-smoke:
	$(GO) test -run 'TestLiveHandoffAB|TestBenchSmoke|TestTCPProtocolsAndCodecs|TestReconfigureMidLoad' -count=1 -timeout 120s ./internal/loadgen
	$(GO) test -run TestCodecAB -count=1 -timeout 120s ./internal/core

# Gob-vs-binary codec A/B: codec-level encode/decode microbenchmarks, the
# TCP writer path under both codecs, and a dqmbench TCP cell per codec
# (artifacts land in /tmp).
bench-codec:
	$(GO) test -bench 'BenchmarkEncode' -benchmem -run - -count=1 ./internal/wire
	$(GO) test -bench 'BenchmarkCodec' -benchmem -run - -count=1 ./internal/core
	$(GO) test -bench 'BenchmarkTCPWriter' -benchmem -run - -count=1 ./internal/transport
	$(GO) run ./cmd/dqmbench -driver tcp -n 9 -quorum grid -hop 0 -measure 2s -name codec-binary -out /tmp
	$(GO) run ./cmd/dqmbench -driver tcp -codec gob -n 9 -quorum grid -hop 0 -measure 2s -name codec-gob -out /tmp

# Regenerate the paper's simulated evaluation (slow).
bench-sim:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtab

fmt:
	gofmt -l -w .
