GO ?= go

.PHONY: check vet build test race chaos soak fuzz bench bench-smoke bench-sim tables fmt

# The standard gate: what CI and pre-commit should run. race already runs
# the full seeded conformance sweep (internal/chaos/sweep) under -race;
# chaos adds the short fuzz smoke on top, bench-smoke the seconds-long live
# benchmark conformance check (T-vs-2T A/B on both fabrics).
check: vet build race chaos bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded adversarial gate: the short conformance sweep, the lossy-liveness
# sweep (drop-only schedules must complete every round — the reliable
# delivery sublayer heals the loss), and a fuzz smoke of the TCP frame
# decoders. Replay a failing schedule with
#   DQMX_CHAOS_SEED=<seed> $(GO) test -race -run TestChaosConformance ./internal/chaos/sweep
chaos:
	$(GO) test -race -short -run 'TestChaosConformance|TestLossyLiveness' ./internal/chaos/sweep
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 10s ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 10s ./internal/transport

# Long adversarial soak: 10x the sweep plus model-boundary probes.
soak:
	$(GO) test -race -tags soak -timeout 60m ./internal/chaos/sweep

# Extended fuzzing of the wire decoders.
fuzz:
	$(GO) test -run FuzzEnvelopeDecode -fuzz FuzzEnvelopeDecode -fuzztime 5m ./internal/transport
	$(GO) test -run FuzzAckFrameDecode -fuzz FuzzAckFrameDecode -fuzztime 5m ./internal/transport

# Live-cluster benchmark sweep: real deployments (in-process and loopback
# TCP) under the loadgen lab, including the transfer-vs-2T-fallback A/B.
# Writes BENCH_live_*.json artifacts (schema dqmx/bench-live/v1) into the
# repo root; see EXPERIMENTS.md "Live benchmarks".
bench:
	$(GO) run ./cmd/dqmbench -n 9,25 -quorum grid,tree -driver inproc,tcp -measure 2s -name sweep
	$(GO) run ./cmd/dqmbench -ab -n 9 -quorum grid -driver inproc,tcp -measure 2s -name handoff-ab

# Seconds-long deterministic live-benchmark smoke: the handoff A/B ratio
# test on both fabrics plus the artifact schema round-trip. Part of check.
bench-smoke:
	$(GO) test -run 'TestLiveHandoffAB|TestBenchSmoke' -count=1 -timeout 120s ./internal/loadgen

# Regenerate the paper's simulated evaluation (slow).
bench-sim:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtab

fmt:
	gofmt -l -w .
