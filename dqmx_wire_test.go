package dqmx_test

// Public-surface tests for the WireConfig knobs: codec validation, the
// in-process rejection of TCP-only options, the deprecated LinkDelay shim,
// and a TCP cluster explicitly pinned to each codec.

import (
	"context"
	"testing"
	"time"

	"dqmx"
)

func TestCodecsEnumeration(t *testing.T) {
	codecs := dqmx.Codecs()
	if len(codecs) != 2 || codecs[0] != dqmx.BinaryCodec || codecs[1] != dqmx.GobCodec {
		t.Fatalf("Codecs() = %v", codecs)
	}
}

func TestValidateWireCodec(t *testing.T) {
	for _, c := range dqmx.Codecs() {
		if err := (dqmx.Options{Wire: dqmx.WireConfig{Codec: c}}).Validate(); err != nil {
			t.Errorf("codec %q rejected: %v", c, err)
		}
	}
	if err := (dqmx.Options{}).Validate(); err != nil {
		t.Errorf("empty codec rejected: %v", err)
	}
	if err := (dqmx.Options{Wire: dqmx.WireConfig{Codec: "msgpack"}}).Validate(); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestInprocRejectsWireOptions(t *testing.T) {
	cases := map[string]dqmx.Options{
		"deprecated LinkDelay": {LinkDelay: time.Millisecond},
		"Wire.LinkDelay":       {Wire: dqmx.WireConfig{LinkDelay: time.Millisecond}},
		"Wire.Codec":           {Wire: dqmx.WireConfig{Codec: dqmx.GobCodec}},
	}
	for name, opts := range cases {
		if _, err := dqmx.NewClusterWith(3, opts); err == nil {
			t.Errorf("%s accepted on in-process cluster", name)
		}
	}
}

func TestTCPNodeRejectsUnknownCodec(t *testing.T) {
	opts := dqmx.Options{Wire: dqmx.WireConfig{Codec: "msgpack"}}
	if _, err := dqmx.NewTCPNode(3, 0, "127.0.0.1:0", nil, opts); err == nil {
		t.Error("unknown codec accepted")
	}
}

// newTCPCluster starts an n-site TCP cluster where site i runs with opts[i],
// using the reserve-then-rebuild address wiring from TestTCPNodes.
func newTCPCluster(t *testing.T, opts []dqmx.Options) []*dqmx.TCPPeer {
	t.Helper()
	n := len(opts)
	tmp := make([]*dqmx.TCPPeer, n)
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), "127.0.0.1:0", nil, dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = p
		addrs[dqmx.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	peers := make([]*dqmx.TCPPeer, n)
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book, opts[i])
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.Close()
		}
	})
	return peers
}

func runTCPRounds(t *testing.T, peers []*dqmx.TCPPeer, rounds int) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		for i, p := range peers {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := p.Node().Acquire(ctx)
			cancel()
			if err != nil {
				t.Fatalf("round %d: site %d: %v", round, i, err)
			}
			p.Node().Release()
		}
	}
}

func TestTCPNodesPinnedCodec(t *testing.T) {
	for _, c := range dqmx.Codecs() {
		c := c
		t.Run(string(c), func(t *testing.T) {
			opts := dqmx.Options{Wire: dqmx.WireConfig{Codec: c}}
			peers := newTCPCluster(t, []dqmx.Options{opts, opts, opts})
			runTCPRounds(t, peers, 2)
		})
	}
}

// TestTCPNodesDeprecatedLinkDelay pins the migration shim: the old
// Options.LinkDelay still reaches the transport, and Wire.LinkDelay wins
// when both are set. A 20ms hop delay on a 3-site majority cluster puts a
// hard floor under the acquire latency that loopback cannot dodge.
func TestTCPNodesDeprecatedLinkDelay(t *testing.T) {
	const hop = 20 * time.Millisecond
	opts := dqmx.Options{
		LinkDelay: hop,
		// Wire.LinkDelay wins over the deprecated field; setting it to the
		// same value here would make the test pass trivially, so leave it
		// zero and let the shim forward.
	}
	peers := newTCPCluster(t, []dqmx.Options{opts, opts, opts})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := peers[0].Node().Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	peers[0].Node().Release()
	// One request/reply exchange with a quorum costs at least two delayed
	// hops; anything faster means the shim dropped the delay.
	if elapsed < 2*hop {
		t.Errorf("acquire took %v, want >= %v (LinkDelay shim not applied)", elapsed, 2*hop)
	}
}
