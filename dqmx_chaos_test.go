package dqmx_test

// Public-surface adversarial tests: lock contention under the race
// detector, double-release semantics, and context cancellation while the
// chaos layer partitions a site away from its quorum.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx"
)

// TestLockContentionTwoResources hammers TryAcquire on two named locks from
// every site of one cluster concurrently, verifying local mutual exclusion
// per resource and that the two resources never serialize against each
// other's counters. Run under -race this also probes the lock manager's
// internal synchronization.
func TestLockContentionTwoResources(t *testing.T) {
	cluster, err := dqmx.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	resources := []string{"contend-a", "contend-b"}
	inCS := make([]atomic.Int32, len(resources))
	entries := make([]atomic.Int32, len(resources))
	var wg sync.WaitGroup
	for ri, name := range resources {
		for id := 0; id < cluster.N(); id++ {
			lock, err := cluster.LockOn(dqmx.SiteID(id), name)
			if err != nil {
				t.Fatal(err)
			}
			ri := ri
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < 4; round++ {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					ok, err := lock.TryAcquire(ctx)
					cancel()
					if err != nil {
						// The shared per-name handle serializes local callers;
						// LockOn handles are distinct per site, so ErrBusy
						// here would be a protocol admission bug.
						t.Errorf("site TryAcquire: %v", err)
						return
					}
					if !ok {
						continue
					}
					if got := inCS[ri].Add(1); got != 1 {
						t.Errorf("resource %q: %d concurrent holders", resources[ri], got)
					}
					entries[ri].Add(1)
					time.Sleep(50 * time.Microsecond)
					inCS[ri].Add(-1)
					if err := lock.Release(); err != nil {
						t.Errorf("release: %v", err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	for ri, name := range resources {
		if got := entries[ri].Load(); got != int32(4*cluster.N()) {
			t.Errorf("resource %q: %d entries, want %d", name, got, 4*cluster.N())
		}
	}
}

// TestLockDoubleRelease pins Release's contract on both resources of one
// site set: releasing a held lock succeeds once, and releasing again —
// or without ever acquiring — reports ErrNotHeld.
func TestLockDoubleRelease(t *testing.T) {
	cluster, err := dqmx.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for _, name := range []string{"dr-a", "dr-b"} {
		lock, err := cluster.Lock(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := lock.Release(); !errors.Is(err, dqmx.ErrNotHeld) {
			t.Fatalf("%q: release before acquire: got %v, want ErrNotHeld", name, err)
		}
		if err := lock.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := lock.Release(); err != nil {
			t.Fatalf("%q: first release: %v", name, err)
		}
		if err := lock.Release(); !errors.Is(err, dqmx.ErrNotHeld) {
			t.Fatalf("%q: double release: got %v, want ErrNotHeld", name, err)
		}
	}
}

// TestAcquireCtxUnderPartition: when the chaos layer cuts a site off from
// its quorum, Acquire must return promptly with the context's error instead
// of hanging — while the rest of the cluster keeps working.
func TestAcquireCtxUnderPartition(t *testing.T) {
	// On the 3x3 grid, site 4's quorum is {1,3,4,5,7} and site 0's is
	// {0,1,2,3,6}: cutting 4 strands its own acquires without touching any
	// arbiter site 0 needs.
	const cut = dqmx.SiteID(4)
	cluster, err := dqmx.NewClusterWith(9, dqmx.Options{
		Chaos: &dqmx.ChaosPlan{
			Seed: 1,
			// A little latency keeps the request wave genuinely in flight
			// when the cut swallows it.
			MinDelay:   2 * time.Millisecond,
			MaxDelay:   5 * time.Millisecond,
			Partitions: []dqmx.ChaosPartition{{Start: 0, End: time.Hour, Group: []dqmx.SiteID{cut}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// The majority side is unaffected by the minority cut.
	side := cluster.Node(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := side.Acquire(ctx); err != nil {
		cancel()
		t.Fatalf("majority-side acquire failed under minority partition: %v", err)
	}
	cancel()
	if err := side.Release(); err != nil {
		t.Fatal(err)
	}

	// The cut site's acquire cannot complete; it must surface ctx.Err()
	// promptly once the deadline passes.
	ctx, cancel = context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = cluster.Node(cut).Acquire(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned acquire: got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("partitioned acquire took %v to honor a 200ms deadline", elapsed)
	}
}
