package dqmx_test

import (
	"context"
	"strings"
	"testing"

	"dqmx"
)

// TestOptionsGroupedFields drives the grouped Observe/Faults sub-configs
// through a live cluster: metrics land in Snapshot and the §6 toggles reach
// the algorithm factory.
func TestOptionsGroupedFields(t *testing.T) {
	cluster, err := dqmx.NewClusterWith(4, dqmx.Options{
		Observe: dqmx.ObserveConfig{Metrics: true},
		Faults:  dqmx.FaultConfig{DisableRecovery: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	node := cluster.Node(0)
	if err := node.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	node.Release()
	if _, ok := cluster.Snapshot(); !ok {
		t.Error("Observe.Metrics did not enable the aggregator")
	}
}

// TestOptionsDeprecatedShims exercises the flat pre-grouping fields: they
// must keep working for one more release, with booleans ORing into their
// grouped counterparts.
func TestOptionsDeprecatedShims(t *testing.T) {
	cluster, err := dqmx.NewClusterWith(4, dqmx.Options{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, ok := cluster.Snapshot(); !ok {
		t.Error("deprecated Metrics field did not enable the aggregator")
	}

	// DisableTransfer is rejected by non-delay-optimal protocols, so a
	// Validate error proves the flat shim reached the algorithm factory —
	// and the same through the grouped field.
	flat := dqmx.Options{Protocol: dqmx.Maekawa, DisableTransfer: true}
	if err := flat.Validate(); err == nil {
		t.Error("deprecated DisableTransfer not folded into the algorithm options")
	}
	grouped := dqmx.Options{Protocol: dqmx.Maekawa, Faults: dqmx.FaultConfig{DisableTransfer: true}}
	if err := grouped.Validate(); err == nil {
		t.Error("Faults.DisableTransfer not folded into the algorithm options")
	}
}

// TestOptionsChaosConflict: naming two different chaos plans across the
// grouped and deprecated fields is a configuration contradiction, caught by
// Validate and by every constructor.
func TestOptionsChaosConflict(t *testing.T) {
	a, b := &dqmx.ChaosPlan{Seed: 1}, &dqmx.ChaosPlan{Seed: 2}
	opts := dqmx.Options{Chaos: a, Faults: dqmx.FaultConfig{Chaos: b}}
	if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), "Chaos") {
		t.Errorf("Validate on contradictory chaos plans = %v, want error naming Chaos", err)
	}
	if _, err := dqmx.NewClusterWith(4, opts); err == nil {
		t.Error("NewClusterWith accepted contradictory chaos plans")
	}
	// The same plan through both fields is fine (a caller migrating
	// mechanically may set both).
	same := dqmx.Options{Chaos: a, Faults: dqmx.FaultConfig{Chaos: a}}
	if err := same.Validate(); err != nil {
		t.Errorf("Validate with matching plans in both fields: %v", err)
	}
	cluster, err := dqmx.NewClusterWith(4, same)
	if err != nil {
		t.Fatalf("NewClusterWith with matching plans in both fields: %v", err)
	}
	cluster.Close()
}
