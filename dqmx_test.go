package dqmx_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx"
)

func TestClusterAcquireRelease(t *testing.T) {
	cluster, err := dqmx.NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.N() != 4 {
		t.Fatalf("N = %d", cluster.N())
	}
	node := cluster.Node(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	node.Release()
}

func TestClusterWithEveryProtocol(t *testing.T) {
	protocols := []dqmx.Protocol{
		dqmx.DelayOptimal, dqmx.Maekawa, dqmx.Lamport, dqmx.RicartAgrawala,
		dqmx.SinghalDynamic, dqmx.SuzukiKasami, dqmx.Raymond,
	}
	for _, p := range protocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cluster, err := dqmx.NewClusterWith(5, dqmx.Options{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			var inCS atomic.Int32
			var wg sync.WaitGroup
			bad := make(chan int32, 32)
			for i := 0; i < 5; i++ {
				id := dqmx.SiteID(i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					node := cluster.Node(id)
					for k := 0; k < 5; k++ {
						ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
						err := node.Acquire(ctx)
						cancel()
						if err != nil {
							bad <- -1
							return
						}
						if got := inCS.Add(1); got != 1 {
							bad <- got
						}
						inCS.Add(-1)
						node.Release()
					}
				}()
			}
			wg.Wait()
			close(bad)
			for b := range bad {
				if b == -1 {
					t.Error("acquire failed")
				} else {
					t.Errorf("%d sites in the CS simultaneously", b)
				}
			}
		})
	}
}

func TestClusterWithEveryQuorum(t *testing.T) {
	quorums := []dqmx.Quorum{
		dqmx.GridQuorums, dqmx.TreeQuorums, dqmx.HQCQuorums,
		dqmx.GridSetQuorums, dqmx.RSTQuorums, dqmx.WallQuorums, dqmx.MajorityQuorums,
	}
	for _, q := range quorums {
		q := q
		t.Run(string(q), func(t *testing.T) {
			cluster, err := dqmx.NewClusterWith(8, dqmx.Options{Quorum: q})
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			for i := 0; i < 8; i++ {
				node := cluster.Node(dqmx.SiteID(i))
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					t.Fatalf("site %d: %v", i, err)
				}
				node.Release()
			}
		})
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := dqmx.NewClusterWith(3, dqmx.Options{Protocol: "nope"}); err == nil {
		t.Error("accepted unknown protocol")
	}
	if _, err := dqmx.NewClusterWith(3, dqmx.Options{Quorum: "nope"}); err == nil {
		t.Error("accepted unknown quorum")
	}
	if _, err := dqmx.NewCluster(0); err == nil {
		t.Error("accepted zero sites")
	}
}

func TestSimulateShapes(t *testing.T) {
	light, err := dqmx.Simulate(25, dqmx.Options{}, dqmx.LightLoad, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if light.MessagesPerCS != 24 { // 3(K−1), K=9 on the 5×5 grid
		t.Errorf("light messages/CS = %v, want 24", light.MessagesPerCS)
	}
	heavy, err := dqmx.Simulate(25, dqmx.Options{}, dqmx.HeavyLoad, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := dqmx.Simulate(25, dqmx.Options{Protocol: dqmx.Maekawa}, dqmx.HeavyLoad, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(heavy.SyncDelayT < 1.5 && mk.SyncDelayT > 1.8) {
		t.Errorf("sync delays: proposed %v, maekawa %v", heavy.SyncDelayT, mk.SyncDelayT)
	}
}

func TestQuorumOf(t *testing.T) {
	q, err := dqmx.QuorumOf(dqmx.GridQuorums, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Site 4 is the center of the 3×3 grid: row {3,4,5} ∪ column {1,4,7}.
	want := []dqmx.SiteID{1, 3, 4, 5, 7}
	if len(q) != len(want) {
		t.Fatalf("quorum = %v, want %v", q, want)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("quorum = %v, want %v", q, want)
		}
	}
	if _, err := dqmx.QuorumOf("nope", 9, 0); err == nil {
		t.Error("accepted unknown construction")
	}
}

func TestSimulateWithCrashes(t *testing.T) {
	res, err := dqmx.SimulateWithCrashes(15, dqmx.Options{Quorum: dqmx.TreeQuorums}, 3,
		[]dqmx.CrashEvent{{AtT: 2, Site: 14}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 14*3 {
		t.Errorf("completed %d, want ≥ 42 (survivors' full quota)", res.Completed)
	}
	if res.ByKind["failure"] == 0 {
		t.Error("no failure notifications recorded")
	}
	// Recovery disabled: the run must report starvation.
	if _, err := dqmx.SimulateWithCrashes(7, dqmx.Options{
		Quorum: dqmx.TreeQuorums, DisableRecovery: true,
	}, 2, []dqmx.CrashEvent{{AtT: 0, Site: 0}}, 1); err == nil {
		t.Error("expected the non-fault-tolerant run to stall")
	}
	// Bad options propagate.
	if _, err := dqmx.SimulateWithCrashes(5, dqmx.Options{Quorum: "nope"}, 1, nil, 1); err == nil {
		t.Error("accepted unknown quorum")
	}
}

func TestTCPNodes(t *testing.T) {
	const n = 3
	// Reserve addresses with throwaway peers, then rebuild with the full
	// address book.
	tmp := make([]*dqmx.TCPPeer, n)
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), "127.0.0.1:0", nil, dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = p
		addrs[dqmx.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	peers := make([]*dqmx.TCPPeer, n)
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book, dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := peers[i].Node().Acquire(ctx)
			cancel()
			if err != nil {
				t.Fatalf("site %d: %v", i, err)
			}
			peers[i].Node().Release()
		}
	}
}
