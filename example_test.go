package dqmx_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"dqmx"
)

// ExampleNewCluster shows the minimal acquire/release loop.
func ExampleNewCluster() {
	cluster, err := dqmx.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	node := cluster.Node(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Acquire(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("site 2 is in the critical section")
	if err := node.Release(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// site 2 is in the critical section
}

// ExampleCluster_Snapshot enables the live metrics aggregator and reads the
// per-execution message cost of an uncontended round: exactly 3(K−1) = 12
// messages on the 3×3 grid.
func ExampleCluster_Snapshot() {
	cluster, err := dqmx.NewClusterWith(9, dqmx.Options{Metrics: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 9; i++ {
		node := cluster.Node(dqmx.SiteID(i))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := node.Acquire(ctx); err != nil {
			log.Fatal(err)
		}
		cancel()
		if err := node.Release(); err != nil {
			log.Fatal(err)
		}
	}
	snap, _ := cluster.Snapshot()
	fmt.Printf("%d executions, %.0f messages per CS\n", snap.Entries, snap.MessagesPerCS)
	// Output:
	// 9 executions, 12 messages per CS
}

// ExampleLock_Do shows the recommended way to use a named lock: Do acquires,
// runs the function, and always releases — on success, on error, and on
// panic. Every name is its own distributed lock, multiplexed over the same
// sites and connections; independent names never wait on each other.
func ExampleLock_Do() {
	cluster, err := dqmx.NewClusterWith(9, dqmx.Options{Metrics: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	orders, err := cluster.Lock("orders")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = orders.Do(ctx, func(ctx context.Context) error {
		fmt.Println("holding the orders lock")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each named lock keeps the paper's per-resource cost guarantee.
	snap, _ := cluster.SnapshotResource("orders")
	fmt.Printf("%.0f messages for this execution\n", snap.MessagesPerCS)
	// Output:
	// holding the orders lock
	// 12 messages for this execution
}

// ExampleSimulate reproduces the paper's light-load message count: exactly
// 3(K−1) messages per uncontended critical section.
func ExampleSimulate() {
	res, err := dqmx.Simulate(25, dqmx.Options{}, dqmx.LightLoad, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f messages per CS at light load\n", res.Algorithm, res.MessagesPerCS)
	// Output:
	// delay-optimal(maekawa-grid): 24 messages per CS at light load
}

// ExampleQuorumOf inspects the grid quorum of the center site of a 3×3
// grid.
func ExampleQuorumOf() {
	q, err := dqmx.QuorumOf(dqmx.GridQuorums, 9, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	// Output:
	// [1 3 4 5 7]
}
