package dqmx_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"dqmx"
)

// ExampleNewCluster shows the minimal acquire/release loop.
func ExampleNewCluster() {
	cluster, err := dqmx.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	node := cluster.Node(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Acquire(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("site 2 is in the critical section")
	if err := node.Release(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// site 2 is in the critical section
}

// ExampleCluster_Snapshot enables the live metrics aggregator and reads the
// per-execution message cost of an uncontended round: exactly 3(K−1) = 12
// messages on the 3×3 grid.
func ExampleCluster_Snapshot() {
	cluster, err := dqmx.NewClusterWith(9, dqmx.Options{Metrics: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 9; i++ {
		node := cluster.Node(dqmx.SiteID(i))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := node.Acquire(ctx); err != nil {
			log.Fatal(err)
		}
		cancel()
		if err := node.Release(); err != nil {
			log.Fatal(err)
		}
	}
	snap, _ := cluster.Snapshot()
	fmt.Printf("%d executions, %.0f messages per CS\n", snap.Entries, snap.MessagesPerCS)
	// Output:
	// 9 executions, 12 messages per CS
}

// ExampleLock_Do shows the recommended way to use a named lock: Do acquires,
// runs the function, and always releases — on success, on error, and on
// panic. Every name is its own distributed lock, multiplexed over the same
// sites and connections; independent names never wait on each other.
func ExampleLock_Do() {
	cluster, err := dqmx.NewClusterWith(9, dqmx.Options{Metrics: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	orders, err := cluster.Lock("orders")
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = orders.Do(ctx, func(ctx context.Context) error {
		fmt.Println("holding the orders lock")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each named lock keeps the paper's per-resource cost guarantee.
	snap, _ := cluster.SnapshotResource("orders")
	fmt.Printf("%.0f messages for this execution\n", snap.MessagesPerCS)
	// Output:
	// holding the orders lock
	// 12 messages for this execution
}

// ExampleSimulate reproduces the paper's light-load message count: exactly
// 3(K−1) messages per uncontended critical section.
func ExampleSimulate() {
	res, err := dqmx.Simulate(25, dqmx.Options{}, dqmx.LightLoad, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f messages per CS at light load\n", res.Algorithm, res.MessagesPerCS)
	// Output:
	// delay-optimal(maekawa-grid): 24 messages per CS at light load
}

// ExampleServe wires up the lock-service tier: a small fixed coterie of
// arbiter sites serves leased lock sessions to clients that never join the
// quorum protocol, so message cost per critical section stays a function
// of the coterie while the client population scales freely. This example
// has no Output line because it binds real network listeners; the
// root-package service tests (TestServiceLiveScale and friends) run the
// identical path live under -race.
func ExampleServe() {
	// One Serve call per arbiter process. PeerListen carries quorum
	// traffic, ClientListen leases sessions; Lease bounds how long a
	// crashed client can keep a lock.
	srv, err := dqmx.Serve(dqmx.ServeConfig{
		N:            3,
		ID:           0,
		PeerListen:   ":7100",
		Peers:        map[dqmx.SiteID]string{1: "host2:7100", 2: "host3:7100"},
		ClientListen: ":7200",
		Lease:        5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Any number of client processes attach with Dial; the address list is
	// the fail-over chain. Session handles hand out the same *dqmx.Lock as
	// clusters and TCP peers do.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sess, err := dqmx.Dial(ctx, []string{"host1:7200", "host2:7200"}, dqmx.DialConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	orders, err := sess.Lock("orders")
	if err != nil {
		log.Fatal(err)
	}
	err = orders.Do(ctx, func(ctx context.Context) error {
		// ... at most one holder of "orders" across every client ...
		return nil
	})
	if err != nil {
		log.Fatal(err) // ErrLockLost here means the session was rebuilt
	}
}

// ExampleQuorumOf inspects the grid quorum of the center site of a 3×3
// grid.
func ExampleQuorumOf() {
	q, err := dqmx.QuorumOf(dqmx.GridQuorums, 9, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	// Output:
	// [1 3 4 5 7]
}
