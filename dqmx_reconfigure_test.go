package dqmx_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx"
)

// TestReconfigureIdle grows and shrinks a quiet cluster and checks the
// epoch advances and the roster tracks the target.
func TestReconfigureIdle(t *testing.T) {
	c, err := dqmx.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Epoch(); got != 0 {
		t.Fatalf("fresh cluster at epoch %d, want 0", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 7}); err != nil {
		t.Fatalf("grow 5->7: %v", err)
	}
	if c.N() != 7 || c.Epoch() != 1 {
		t.Fatalf("after grow: n=%d epoch=%d, want n=7 epoch=1", c.N(), c.Epoch())
	}
	// The joined sites must be usable.
	node := c.Node(6)
	if err := node.Acquire(ctx); err != nil {
		t.Fatalf("acquire at joined site: %v", err)
	}
	if err := node.Release(); err != nil {
		t.Fatalf("release at joined site: %v", err)
	}
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 4}); err != nil {
		t.Fatalf("shrink 7->4: %v", err)
	}
	if c.N() != 4 || c.Epoch() != 2 {
		t.Fatalf("after shrink: n=%d epoch=%d, want n=4 epoch=2", c.N(), c.Epoch())
	}
	if err := c.Node(2).Acquire(ctx); err != nil {
		t.Fatalf("acquire after shrink: %v", err)
	}
	if err := c.Node(2).Release(); err != nil {
		t.Fatalf("release after shrink: %v", err)
	}
}

// TestReconfigureUnderLoad is the live grow/shrink acceptance test: a
// 5-site cluster serves a continuous acquire/release load while it grows to
// 7 and then shrinks to 4. Mutual exclusion is asserted across every epoch
// boundary with an atomic holder counter, and no acquire may fail.
func TestReconfigureUnderLoad(t *testing.T) {
	c, err := dqmx.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		holders  atomic.Int32
		entries  atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		violated atomic.Bool
	)
	// Workers run at the 4 sites that exist in every configuration the test
	// visits (5, 7, and 4 sites).
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node := c.Node(dqmx.SiteID(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := node.Acquire(ctx); err != nil {
					if ctx.Err() == nil {
						t.Errorf("site %d acquire: %v", id, err)
					}
					return
				}
				if holders.Add(1) != 1 {
					violated.Store(true)
				}
				entries.Add(1)
				time.Sleep(200 * time.Microsecond) // the critical section
				if holders.Add(-1) != 0 {
					violated.Store(true)
				}
				if err := node.Release(); err != nil {
					t.Errorf("site %d release: %v", id, err)
					return
				}
			}
		}(id)
	}

	waitEntries := func(min int64) {
		deadline := time.Now().Add(20 * time.Second)
		for entries.Load() < min && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitEntries(20) // load is flowing before the first switch
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 7}); err != nil {
		t.Fatalf("grow 5->7 under load: %v", err)
	}
	mark := entries.Load()
	waitEntries(mark + 20) // the switched cluster is making progress
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 4}); err != nil {
		t.Fatalf("shrink 7->4 under load: %v", err)
	}
	mark = entries.Load()
	waitEntries(mark + 20)

	close(stop)
	wg.Wait()
	if violated.Load() {
		t.Fatal("mutual exclusion violated across a reconfiguration")
	}
	if c.N() != 4 || c.Epoch() != 2 {
		t.Fatalf("final n=%d epoch=%d, want n=4 epoch=2", c.N(), c.Epoch())
	}
	t.Logf("served %d CS entries across two live reconfigurations", entries.Load())
}

// TestReconfigureWhileHeld starts a switch while a site sits inside the
// critical section: the switch must wait for (or safely overlap) the
// holder, and the lock must keep working afterwards.
func TestReconfigureWhileHeld(t *testing.T) {
	c, err := dqmx.NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	holder := c.Node(1)
	if err := holder.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Reconfigure(ctx, dqmx.Membership{N: 7}) }()
	// Hold the CS across the start of the handover, then let go.
	time.Sleep(50 * time.Millisecond)
	if err := holder.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("reconfigure with a live holder: %v", err)
	}
	for id := 0; id < 7; id++ {
		n := c.Node(dqmx.SiteID(id))
		if err := n.Acquire(ctx); err != nil {
			t.Fatalf("site %d acquire after switch: %v", id, err)
		}
		if err := n.Release(); err != nil {
			t.Fatalf("site %d release after switch: %v", id, err)
		}
	}
}

// TestReconfigureValidation covers the error surface.
func TestReconfigureValidation(t *testing.T) {
	c, err := dqmx.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 0}); err == nil {
		t.Fatal("reconfigure to 0 sites succeeded")
	}
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 4, Quorum: "no-such"}); err == nil {
		t.Fatal("reconfigure with unknown quorum succeeded")
	}
	if c.Epoch() != 0 {
		t.Fatalf("failed reconfigures advanced the epoch to %d", c.Epoch())
	}
}

// TestReconfigureQuorumChange switches the coterie construction along with
// the size: grid at 5 sites to majority at 6.
func TestReconfigureQuorumChange(t *testing.T) {
	c, err := dqmx.NewClusterWith(5, dqmx.Options{Quorum: dqmx.GridQuorums})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Reconfigure(ctx, dqmx.Membership{N: 6, Quorum: dqmx.MajorityQuorums}); err != nil {
		t.Fatalf("grid->majority: %v", err)
	}
	for id := 0; id < 6; id++ {
		n := c.Node(dqmx.SiteID(id))
		if err := n.Acquire(ctx); err != nil {
			t.Fatalf("site %d acquire: %v", id, err)
		}
		if err := n.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// ExampleCluster_Reconfigure grows a live cluster from five to seven sites.
func ExampleCluster_Reconfigure() {
	cluster, err := dqmx.NewCluster(5)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	if err := cluster.Reconfigure(context.Background(), dqmx.Membership{N: 7}); err != nil {
		panic(err)
	}
	fmt.Println(cluster.N(), "sites at epoch", cluster.Epoch())
	// Output: 7 sites at epoch 1
}
