package dqmx_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dqmx"
)

// TestLiveMetricsMatchSimulation drives a real in-process 9-site cluster and
// checks that its live metrics agree with the discrete-event simulator for
// the delay-optimal protocol.
//
// Phase 1 (uncontended): a sequential round-robin issues the same request
// sequence as the simulator's light load (site k%n for k = 0..total-1), so
// the per-kind message counts must agree EXACTLY — 3(K−1) = 12 messages per
// execution on the 3×3 grid, split request/reply/release.
//
// Phase 2 (contended): all nine sites acquire concurrently. Message order is
// no longer deterministic, but the paper's cost bound still applies: between
// 3(K−1) and 6(K−1) messages per execution, i.e. within [12, 24] at N=9.
func TestLiveMetricsMatchSimulation(t *testing.T) {
	const (
		n     = 9
		total = 18 // phase-1 executions: two per site
		kMin  = 12 // 3(K−1), K=5 on the 3×3 grid
		kMax  = 24 // 6(K−1)
	)

	cluster, err := dqmx.NewClusterWith(n, dqmx.Options{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Phase 1: uncontended round-robin, mirroring the simulator's light load.
	for k := 0; k < total; k++ {
		node := cluster.Node(dqmx.SiteID(k % n))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := node.Acquire(ctx)
		cancel()
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		if err := node.Release(); err != nil {
			t.Fatalf("release %d: %v", k, err)
		}
	}
	live, ok := cluster.Snapshot()
	if !ok {
		t.Fatal("Options.Metrics did not enable Snapshot")
	}

	sim, err := dqmx.Simulate(n, dqmx.Options{}, dqmx.LightLoad, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	if live.Entries != uint64(total) || sim.Completed != total {
		t.Fatalf("executions: live %d, sim %d, want %d", live.Entries, sim.Completed, total)
	}
	if !reflect.DeepEqual(live.ByKind, sim.ByKind) {
		t.Errorf("per-kind counts diverge:\n  live %v\n  sim  %v", live.ByKind, sim.ByKind)
	}
	if live.MessagesPerCS != float64(kMin) || sim.MessagesPerCS != float64(kMin) {
		t.Errorf("uncontended messages/CS: live %v, sim %v, want %d",
			live.MessagesPerCS, sim.MessagesPerCS, kMin)
	}

	// Phase 2: full contention. Assert the paper's 3(K−1)..6(K−1) band on
	// the messages added by this phase alone.
	const perSite = 3
	var wg sync.WaitGroup
	errC := make(chan error, n)
	for i := 0; i < n; i++ {
		id := dqmx.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(id)
			for k := 0; k < perSite; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					errC <- err
					return
				}
				if err := node.Release(); err != nil {
					errC <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}

	after, _ := cluster.Snapshot()
	execs := after.Exits - live.Exits
	if execs != n*perSite {
		t.Fatalf("contended executions = %d, want %d", execs, n*perSite)
	}
	perCS := float64(after.Messages-live.Messages) / float64(execs)
	if perCS < kMin || perCS > kMax {
		t.Errorf("contended messages/CS = %.2f, want within [%d, %d]", perCS, kMin, kMax)
	}
	// Under contention permissions are handed over directly, so the
	// synchronization-delay estimator must have collected samples.
	if after.SyncDelay.Count == 0 {
		t.Error("no synchronization-delay samples under contention")
	}
}

func TestProtocolAndQuorumEnumerators(t *testing.T) {
	ps := dqmx.Protocols()
	if len(ps) != 7 || ps[0] != dqmx.DelayOptimal {
		t.Errorf("Protocols() = %v", ps)
	}
	qs := dqmx.Quorums()
	if len(qs) != 9 || qs[0] != dqmx.GridQuorums {
		t.Errorf("Quorums() = %v", qs)
	}
	// Every enumerated name must validate.
	for _, p := range ps {
		if err := (dqmx.Options{Protocol: p}).Validate(); err != nil {
			t.Errorf("protocol %q: %v", p, err)
		}
	}
	for _, q := range qs {
		if err := (dqmx.Options{Quorum: q}).Validate(); err != nil {
			t.Errorf("quorum %q: %v", q, err)
		}
	}
}

func TestValidateListsChoices(t *testing.T) {
	err := dqmx.Options{Protocol: "nope"}.Validate()
	if err == nil {
		t.Fatal("accepted unknown protocol")
	}
	for _, p := range dqmx.Protocols() {
		if !strings.Contains(err.Error(), string(p)) {
			t.Errorf("error %q does not list %q", err, p)
		}
	}
	err = dqmx.Options{Quorum: "nope"}.Validate()
	if err == nil {
		t.Fatal("accepted unknown quorum")
	}
	for _, q := range dqmx.Quorums() {
		if !strings.Contains(err.Error(), string(q)) {
			t.Errorf("error %q does not list %q", err, q)
		}
	}
}

// TestObserverStream checks that the public Observer option delivers typed
// trace events from a live cluster.
func TestObserverStream(t *testing.T) {
	var mu sync.Mutex
	byType := map[dqmx.EventType]int{}
	cluster, err := dqmx.NewClusterWith(4, dqmx.Options{
		Observer: func(e dqmx.TraceEvent) {
			mu.Lock()
			byType[e.Type]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	node := cluster.Node(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := node.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := node.Release(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if byType[dqmx.EventRequest] != 1 || byType[dqmx.EventEnter] != 1 || byType[dqmx.EventExit] != 1 {
		t.Errorf("lifecycle events = %v", byType)
	}
	if byType[dqmx.EventSend] == 0 {
		t.Errorf("no send events observed: %v", byType)
	}
}
