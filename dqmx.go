// Package dqmx is a delay-optimal quorum-based distributed mutual exclusion
// library, reproducing Cao, Singhal, Deng, Rishe & Sun, "A Delay-Optimal
// Quorum-Based Mutual Exclusion Scheme with Fault-Tolerance Capability"
// (ICDCS 1998).
//
// The core protocol locks a quorum of arbiter sites to enter the critical
// section, like Maekawa's algorithm, but a site exiting the critical section
// forwards each arbiter's permission directly to the next requester instead
// of routing it back through the arbiter. That cuts the synchronization
// delay — the time between one site's exit and the next site's entry — from
// 2T to the provable minimum of one message delay T, while the message cost
// stays between 3(K−1) and 6(K−1) per execution (K = quorum size: √N for
// grid quorums, as low as log N for tree quorums).
//
// # Quick start
//
//	cluster, err := dqmx.NewCluster(9)         // nine sites in one process
//	if err != nil { ... }
//	defer cluster.Close()
//
//	node := cluster.Node(3)                    // act as site 3
//	if err := node.Acquire(ctx); err != nil { ... }
//	// ... critical section ...
//	node.Release()
//
// Use Options to pick a quorum construction (grid, tree, HQC, grid-set,
// RST, majority) or one of the six baseline algorithms, and NewTCPNode to
// spread sites across processes or machines. The Simulate function runs the
// deterministic discrete-event simulator used to reproduce the paper's
// evaluation; the cmd/benchtab tool regenerates every table.
package dqmx

import (
	"errors"
	"fmt"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/coterie"
	"dqmx/internal/harness"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
	"dqmx/internal/sim"
	"dqmx/internal/transport"
	"dqmx/internal/wire"
	"dqmx/internal/workload"
)

// SiteID identifies a site (0..N-1).
type SiteID = mutex.SiteID

// Node hosts one site and exposes blocking Acquire/Release. It is the
// legacy single-mutex interface: a thin shim over the default resource of
// the named-lock manager (Lock with the reserved empty name).
type Node = transport.Node

// TCPPeer hosts one site communicating over TCP.
type TCPPeer = transport.TCPPeer

// Lock is the handle for one named distributed lock: every resource name
// runs its own independent instance of the protocol over the same sites and
// the same transport. Obtain handles from Cluster.Lock or TCPPeer.Lock;
// prefer Do for acquire/run/release.
type Lock = resource.Lock

// ResourcePolicy bounds and validates named-lock resource names. Validation
// runs once per name (handles are cached), never per acquire.
type ResourcePolicy = resource.Policy

// Acquire/Release error conditions, re-exported for errors.Is checks at the
// public surface.
var (
	// ErrBusy means the site already holds or awaits the critical section
	// (sites execute their requests one by one).
	ErrBusy = transport.ErrBusy
	// ErrClosed means the node or cluster has shut down.
	ErrClosed = transport.ErrClosed
	// ErrNotHeld means Release was called without a held critical section.
	ErrNotHeld = transport.ErrNotHeld
)

// ChaosPlan is a seeded fault-injection schedule for in-process clusters:
// message drop, duplication, reordering, bounded delay, partitions, and
// site crashes, all derived deterministically from the plan's single seed.
// See Options.Chaos and the "Adversarial testing" section of the README.
type ChaosPlan = chaos.Plan

// ChaosPartition isolates a group of sites during a time window.
type ChaosPartition = chaos.Partition

// ChaosCrash schedules a site crash executed through the §6 failure path.
type ChaosCrash = chaos.Crash

// Quorum names a quorum construction.
type Quorum string

// Quorum constructions (§6 of the paper).
const (
	// GridQuorums are Maekawa grids: K ≈ 2√N−1, the default.
	GridQuorums Quorum = "grid"
	// TreeQuorums are Agrawal–El Abbadi tree paths: K as low as log N, with
	// graceful degradation under failures.
	TreeQuorums Quorum = "tree"
	// HQCQuorums use Hierarchical Quorum Consensus: K ≈ N^0.63.
	HQCQuorums Quorum = "hqc"
	// GridSetQuorums take a majority of groups with a grid inside each.
	GridSetQuorums Quorum = "grid-set"
	// RSTQuorums (Rangarajan–Setia–Tripathi) take grid-of-subgroups with a
	// majority inside each — failures inside a subgroup are masked without
	// reconstruction.
	RSTQuorums Quorum = "rst"
	// WallQuorums are crumbling walls (Peleg–Wool): one full row plus a
	// representative per lower row, K = O(√N), graceful degradation.
	WallQuorums Quorum = "wall"
	// MajorityQuorums need ⌊N/2⌋+1 sites: maximal resiliency, O(N) cost.
	MajorityQuorums Quorum = "majority"
	// FPPQuorums come from finite projective planes: the optimal
	// K ≈ √N quorum size, defined only for plane-order system sizes.
	FPPQuorums Quorum = "fpp"
	// SingletonQuorums route everything through site 0: a degenerate
	// central-coordinator coterie, useful as a baseline and in tests.
	SingletonQuorums Quorum = "singleton"
)

// Quorums enumerates every valid quorum construction name, in canonical
// order. Flag parsing and validation should use this instead of keeping a
// private copy of the list.
func Quorums() []Quorum {
	names := harness.QuorumNames()
	out := make([]Quorum, len(names))
	for i, n := range names {
		out[i] = Quorum(n)
	}
	return out
}

// Protocol names a mutual exclusion algorithm.
type Protocol string

// Available protocols: the paper's contribution plus the six baselines it
// compares against.
const (
	// DelayOptimal is the paper's contribution (delay T).
	DelayOptimal Protocol = "delay-optimal"
	// Maekawa is the classic quorum algorithm (delay 2T).
	Maekawa Protocol = "maekawa"
	// Lamport is the timestamp-broadcast algorithm: 3(N−1) messages.
	Lamport Protocol = "lamport"
	// RicartAgrawala merges releases into deferred replies: 2(N−1) messages.
	RicartAgrawala Protocol = "ricart-agrawala"
	// SinghalDynamic uses dynamic request/inform sets: N−1..2(N−1) messages.
	SinghalDynamic Protocol = "singhal-dynamic"
	// SuzukiKasami is the broadcast-token algorithm: 0..N messages.
	SuzukiKasami Protocol = "suzuki-kasami"
	// Raymond is the tree-token algorithm: O(log N) messages, long delay.
	Raymond Protocol = "raymond"
)

// Protocols enumerates every valid protocol name, the paper's contribution
// first. Flag parsing and validation should use this instead of keeping a
// private copy of the list.
func Protocols() []Protocol {
	names := harness.ProtocolNames()
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// TraceEvent is one structured protocol event: a request issued, a message
// sent (with its kind), a critical-section entry or exit, or failure
// handling. Timestamps are simulated ticks under Simulate and monotonic
// nanoseconds on live clusters.
type TraceEvent = obs.Event

// EventType enumerates the protocol lifecycle events.
type EventType = obs.EventType

// Protocol event types delivered to an Observer.
const (
	EventRequest  = obs.EventRequest
	EventSend     = obs.EventSend
	EventEnter    = obs.EventEnter
	EventExit     = obs.EventExit
	EventFailure  = obs.EventFailure
	EventRecovery = obs.EventRecovery
)

// TraceSink receives the protocol event stream. Sinks run inline on the
// protocol hot path: they must be fast and must not block.
type TraceSink = obs.Sink

// MetricsSnapshot is a point-in-time copy of a cluster's aggregated
// metrics: per-kind message counters, messages per CS execution, and delay
// distributions (synchronization delay, response time, waiting time) in the
// driver's time unit.
type MetricsSnapshot = obs.Snapshot

// DelayStats summarizes one delay distribution (count, mean, min/max, and
// log-bucket p50/p99).
type DelayStats = obs.DelayStats

// Codec names a wire codec for TCP deployments.
type Codec string

// Wire codecs for WireConfig.Codec.
const (
	// BinaryCodec is wire format v1: a hand-rolled zero-allocation binary
	// framing with varint fields and per-connection resource-name interning.
	// The default. See PROTOCOL.md, "Wire format v1".
	BinaryCodec Codec = wire.NameBinary
	// GobCodec is wire format v0: the legacy encoding/gob stream. Pin it to
	// interoperate with peers that predate the wire-version handshake; new
	// builds negotiate down to it automatically when such a peer dials in.
	GobCodec Codec = wire.NameGob
)

// Codecs enumerates every valid wire codec name, the default first. Flag
// parsing and validation should use this instead of keeping a private copy
// of the list.
func Codecs() []Codec {
	return []Codec{BinaryCodec, GobCodec}
}

// WireConfig consolidates the byte-layer knobs of a TCP deployment: codec
// selection, synthetic link delay, and the reconnect policy. It applies to
// NewTCPNode only — in-process clusters have no wire, and simulations model
// delay through their own delay distribution. The zero value means "binary
// codec, no link delay, default reconnect policy".
type WireConfig struct {
	// Codec selects the wire format framing envelopes on TCP connections:
	// BinaryCodec (the default) or GobCodec. Peers negotiate per connection
	// at handshake, so mixed-codec clusters interoperate; the codec here is
	// the newest format this peer offers and accepts.
	Codec Codec
	// LinkDelay, when positive, holds every outbound batch for that long
	// before it reaches the wire — a deterministic per-hop latency for
	// benchmarking on loopback, where real network delay is too small to
	// separate a T handover from a 2T one.
	LinkDelay time.Duration
	// DialTimeout bounds one connection attempt, handshake included
	// (default 5s).
	DialTimeout time.Duration
	// ReconnectAttempts is the dial budget per batch delivery (default 6).
	ReconnectAttempts int
	// ReconnectBase and ReconnectMax bound the exponential backoff between
	// dial attempts (defaults 25ms and 500ms).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

// validate checks the codec name; the duration and count knobs have no
// invalid values (zero and below mean "use the default").
func (w WireConfig) validate() error {
	if _, err := wire.ForName(string(w.Codec)); err != nil {
		return fmt.Errorf("dqmx: %w", err)
	}
	return nil
}

// transportConfig lowers the public knobs onto the transport layer,
// folding in the deprecated Options.LinkDelay shim.
func (o Options) transportConfig() (transport.WireConfig, error) {
	codec, err := wire.ForName(string(o.Wire.Codec))
	if err != nil {
		return transport.WireConfig{}, fmt.Errorf("dqmx: %w", err)
	}
	w := transport.WireConfig{
		Codec:             codec,
		LinkDelay:         o.Wire.LinkDelay,
		DialTimeout:       o.Wire.DialTimeout,
		ReconnectAttempts: o.Wire.ReconnectAttempts,
		ReconnectBase:     o.Wire.ReconnectBase,
		ReconnectMax:      o.Wire.ReconnectMax,
	}
	if w.LinkDelay == 0 {
		w.LinkDelay = o.LinkDelay
	}
	return w, nil
}

// ObserveConfig groups the observability knobs, following the WireConfig
// pattern: one composable sub-config per concern. The zero value observes
// nothing — the event path then costs a single nil check.
type ObserveConfig struct {
	// Observer, when non-nil, receives every protocol event. It applies to
	// clusters (NewClusterWith, NewTCPNode, Serve) and simulations
	// (Simulate, SimulateWithCrashes).
	Observer TraceSink
	// Metrics enables the built-in metrics aggregator on live clusters,
	// exposed through Cluster.Snapshot and TCPPeer.Snapshot (aggregate) and
	// SnapshotResource (per named lock). Simulations report metrics through
	// SimulationResult instead.
	Metrics bool
}

// FaultConfig groups the fault-machinery knobs: injected faults and the
// protocol's fault-handling toggles. The zero value means no injection and
// full §6 recovery.
type FaultConfig struct {
	// Chaos, when non-nil, interposes the seeded fault-injection layer on
	// an in-process cluster (NewClusterWith only — TCP deployments and
	// simulations reject it; the simulator has its own fault machinery).
	Chaos *ChaosPlan
	// DisableRecovery turns off the §6 failure recovery of the
	// delay-optimal protocol.
	DisableRecovery bool
	// DisableTransfer forces the delay-optimal protocol onto the release
	// fallback handover path (synchronization delay 2T instead of T) by
	// suppressing the transfer mechanism. It exists for the live
	// benchmarking lab's A/B of the paper's delay-optimality claim; other
	// protocols reject it.
	DisableTransfer bool
}

// Options configures a cluster or simulation.
//
// The observability and fault knobs live in the Observe and Faults
// sub-configs; the flat fields of the same names predate the grouping and
// remain as forwarding shims for one more release (see the deprecation
// policy in the README). Boolean shims OR with their grouped counterparts;
// for the pointer-valued Observer and Chaos the grouped field wins when both
// are set (Validate rejects a contradictory Chaos pair).
type Options struct {
	// Protocol defaults to DelayOptimal.
	Protocol Protocol
	// Quorum selects the coterie for quorum-based protocols (default
	// GridQuorums). Ignored by the non-quorum baselines.
	Quorum Quorum
	// Observe groups the observability knobs: event stream and metrics
	// aggregation.
	Observe ObserveConfig
	// Faults groups the fault-machinery knobs: chaos injection and the §6
	// recovery/transfer toggles.
	Faults FaultConfig
	// Resources bounds and validates named-lock resource names on live
	// clusters. The zero value applies the defaults (non-empty names up to
	// 128 bytes).
	Resources ResourcePolicy
	// Wire consolidates the byte-layer knobs of a TCP deployment: codec
	// selection, synthetic link delay, and the reconnect policy (NewTCPNode
	// and Serve only; in-process clusters model delay through Chaos,
	// simulations through their delay distribution).
	Wire WireConfig

	// DisableRecovery is the pre-FaultConfig name for
	// Faults.DisableRecovery; either field (or both) enables the toggle.
	//
	// Deprecated: set Faults.DisableRecovery instead.
	DisableRecovery bool
	// DisableTransfer is the pre-FaultConfig name for
	// Faults.DisableTransfer; either field (or both) enables the toggle.
	//
	// Deprecated: set Faults.DisableTransfer instead.
	DisableTransfer bool
	// Observer is the pre-ObserveConfig name for Observe.Observer. When
	// both are set, Observe.Observer wins.
	//
	// Deprecated: set Observe.Observer instead.
	Observer TraceSink
	// Metrics is the pre-ObserveConfig name for Observe.Metrics; either
	// field (or both) enables the aggregator.
	//
	// Deprecated: set Observe.Metrics instead.
	Metrics bool
	// Chaos is the pre-FaultConfig name for Faults.Chaos. When both are
	// set they must point at the same plan (Validate and every constructor
	// reject a contradictory pair).
	//
	// Deprecated: set Faults.Chaos instead.
	Chaos *ChaosPlan
	// LinkDelay is the pre-WireConfig name for Wire.LinkDelay, kept as a
	// forwarding shim. When both are set, Wire.LinkDelay wins.
	//
	// Deprecated: set Wire.LinkDelay instead.
	LinkDelay time.Duration
}

// observer resolves the effective event sink across the deprecated shim.
func (o Options) observer() TraceSink {
	if o.Observe.Observer != nil {
		return o.Observe.Observer
	}
	return o.Observer
}

// metricsEnabled resolves the effective metrics toggle across the
// deprecated shim.
func (o Options) metricsEnabled() bool { return o.Observe.Metrics || o.Metrics }

// chaosPlan resolves the effective chaos plan across the deprecated shim;
// a contradictory pair (both set, different plans) is an error.
func (o Options) chaosPlan() (*ChaosPlan, error) {
	if o.Faults.Chaos != nil && o.Chaos != nil && o.Faults.Chaos != o.Chaos {
		return nil, errors.New("dqmx: Faults.Chaos and the deprecated Chaos field name different plans; set only Faults.Chaos")
	}
	if o.Faults.Chaos != nil {
		return o.Faults.Chaos, nil
	}
	return o.Chaos, nil
}

// disableRecovery and disableTransfer resolve the §6 toggles across the
// deprecated shims.
func (o Options) disableRecovery() bool { return o.Faults.DisableRecovery || o.DisableRecovery }
func (o Options) disableTransfer() bool { return o.Faults.DisableTransfer || o.DisableTransfer }

// Validate checks that the options name a known protocol, quorum
// construction, and wire codec, and that the deprecated flat fields do not
// contradict their grouped counterparts; its errors list the valid choices.
func (o Options) Validate() error {
	if _, err := o.algorithm(); err != nil {
		return err
	}
	if _, err := o.chaosPlan(); err != nil {
		return err
	}
	return o.Wire.validate()
}

// Construction returns the coterie construction named by q.
func (q Quorum) construction() (coterie.Construction, error) {
	cons, err := harness.NewConstruction(string(q))
	if err != nil {
		return nil, fmt.Errorf("dqmx: %w", err)
	}
	return cons, nil
}

// algorithm materializes the options into a protocol implementation.
func (o Options) algorithm() (mutex.Algorithm, error) {
	alg, _, err := o.algorithmAndConstruction()
	return alg, err
}

// algorithmAndConstruction materializes the options and also returns the
// resolved coterie construction, which live clusters keep for membership
// tracking (epoch-stamped reconfiguration plans over the same coterie
// family).
func (o Options) algorithmAndConstruction() (mutex.Algorithm, coterie.Construction, error) {
	cons, err := o.Quorum.construction()
	if err != nil {
		return nil, nil, err
	}
	alg, err := harness.NewAlgorithmOpts(string(o.Protocol), cons, harness.AlgorithmOptions{
		DisableRecovery: o.disableRecovery(),
		DisableTransfer: o.disableTransfer(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("dqmx: %w", err)
	}
	return alg, cons, nil
}

// Cluster hosts all N sites in one process.
type Cluster struct {
	inner  *transport.Cluster
	quorum Quorum // the construction Reconfigure keeps when the target names none
}

// NewCluster starts an in-process cluster of n sites running the
// delay-optimal protocol over grid quorums. Use NewClusterWith for other
// protocols or coteries.
func NewCluster(n int) (*Cluster, error) {
	return NewClusterWith(n, Options{})
}

// NewClusterWith starts an in-process cluster with explicit options.
func NewClusterWith(n int, opts Options) (*Cluster, error) {
	if opts.LinkDelay != 0 || opts.Wire.LinkDelay != 0 {
		return nil, errors.New("dqmx: Wire.LinkDelay applies to TCP peers only; use Chaos delay on in-process clusters")
	}
	if opts.Wire != (WireConfig{}) {
		return nil, errors.New("dqmx: Wire applies to TCP peers only; in-process clusters have no wire")
	}
	plan, err := opts.chaosPlan()
	if err != nil {
		return nil, err
	}
	alg, cons, err := opts.algorithmAndConstruction()
	if err != nil {
		return nil, err
	}
	inner, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm:    alg,
		N:            n,
		Metrics:      opts.collector(),
		Observer:     opts.observer(),
		Policy:       opts.Resources,
		Chaos:        plan,
		Construction: cons,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, quorum: opts.Quorum}, nil
}

// collector builds the metrics aggregator when the options ask for one.
func (o Options) collector() *obs.Metrics {
	if !o.metricsEnabled() {
		return nil
	}
	return obs.NewMetrics()
}

// Node returns the handle for one site's default resource — the legacy
// single-mutex interface. Named locks live alongside it and never contend
// with it; see Lock.
func (c *Cluster) Node(id SiteID) *Node { return c.inner.Node(id) }

// N returns the number of sites.
func (c *Cluster) N() int { return c.inner.N() }

// Lock returns the canonical handle for the named lock, hosted at the site
// the name hashes to (so every Lock call for one name in this process
// shares a handle and queues locally instead of fighting the protocol).
// The resource's protocol instance — one full run of the algorithm over the
// cluster's coterie — is created lazily on first use. Use LockOn to pin a
// lock to a specific site instead.
func (c *Cluster) Lock(name string) (*Lock, error) {
	return c.inner.Lock(SiteID(fnv32a(name)%uint32(c.inner.N())), name)
}

// LockOn returns site id's handle for the named lock: requests issued
// through it enter the protocol at that site. Handles for the same name at
// different sites contend through the quorum protocol, exactly as two
// machines would.
func (c *Cluster) LockOn(id SiteID, name string) (*Lock, error) {
	return c.inner.Lock(id, name)
}

// Snapshot returns the cluster's aggregated live metrics — per-kind message
// counters and delay distributions over all sites and all named locks, with
// nanosecond timestamps. ok is false unless the cluster was built with
// Options.Metrics.
func (c *Cluster) Snapshot() (snap MetricsSnapshot, ok bool) { return c.inner.Snapshot() }

// SnapshotResource returns the live metrics of one named lock, so the
// paper's 3(K−1)..6(K−1) message bound stays checkable per resource. ok is
// false without Options.Metrics or when the resource has seen no events.
// The default resource (the Node API) is the empty name.
func (c *Cluster) SnapshotResource(name string) (snap MetricsSnapshot, ok bool) {
	return c.inner.SnapshotResource(name)
}

// Resources lists every lock name instantiated in the cluster, sorted; the
// empty name is the default resource backing the Node API.
func (c *Cluster) Resources() []string { return c.inner.Resources() }

// Close shuts every site down.
func (c *Cluster) Close() { c.inner.Close() }

// fnv32a is the 32-bit FNV-1a hash used to spread lock names over sites.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// NewTCPNode starts site id of an n-site delay-optimal cluster whose sites
// communicate over TCP. peers maps every other site to its listen address.
// With Options.Metrics the peer's own protocol activity is aggregated and
// exposed through TCPPeer.Snapshot and TCPPeer.SnapshotResource. Named
// locks are reached through TCPPeer.Lock; the id range is validated before
// any algorithm or site construction so misconfigured deployments fail
// fast with a clear error.
func NewTCPNode(n int, id SiteID, listenAddr string, peers map[SiteID]string, opts Options) (*TCPPeer, error) {
	peer, _, err := newTCPPeer(n, id, listenAddr, peers, opts)
	return peer, err
}

// newTCPPeer builds the TCP peer and also returns its metrics collector so
// Serve can feed session-tier events into the same aggregate.
func newTCPPeer(n int, id SiteID, listenAddr string, peers map[SiteID]string, opts Options) (*TCPPeer, *obs.Metrics, error) {
	if int(id) < 0 || int(id) >= n {
		return nil, nil, fmt.Errorf("dqmx: site %d out of range 0..%d", id, n-1)
	}
	if plan, err := opts.chaosPlan(); err != nil {
		return nil, nil, err
	} else if plan != nil {
		return nil, nil, errors.New("dqmx: chaos injection is supported on in-process clusters only")
	}
	alg, err := opts.algorithm()
	if err != nil {
		return nil, nil, err
	}
	wcfg, err := opts.transportConfig()
	if err != nil {
		return nil, nil, err
	}
	col := opts.collector()
	peer, err := transport.NewTCPPeerConfig(transport.TCPConfig{
		Self: id,
		Factory: func(string) (mutex.Site, error) {
			// Every resource gets a fresh, independent run of the protocol:
			// same coterie, new state machines.
			sites, err := alg.NewSites(n)
			if err != nil {
				return nil, err
			}
			return sites[id], nil
		},
		ListenAddr: listenAddr,
		Peers:      peers,
		N:          n,
		Metrics:    col,
		Observer:   opts.observer(),
		Policy:     opts.Resources,
		Wire:       wcfg,
	})
	if err != nil {
		return nil, nil, err
	}
	return peer, col, nil
}

// SimulationResult reports the metrics of one simulated run in the paper's
// units (message counts per CS execution, delays in multiples of the mean
// message delay T).
type SimulationResult struct {
	Algorithm      string
	N              int
	Completed      int
	MessagesPerCS  float64
	ByKind         map[string]uint64
	SyncDelayT     float64
	ResponseT      float64
	WaitingT       float64
	ThroughputPerT float64
}

// LoadShape selects the workload of a simulation.
type LoadShape int

// Workload shapes for Simulate.
const (
	// LightLoad issues uncontended sequential requests (§5.1).
	LightLoad LoadShape = iota + 1
	// HeavyLoad saturates every site (§5.2).
	HeavyLoad
)

// Simulate runs the deterministic discrete-event simulator for perSite CS
// executions per site and returns the measured metrics. It is the
// programmatic face of the paper's evaluation harness.
func Simulate(n int, opts Options, load LoadShape, perSite int, seed int64) (SimulationResult, error) {
	if plan, err := opts.chaosPlan(); err != nil {
		return SimulationResult{}, err
	} else if plan != nil {
		return SimulationResult{}, errors.New("dqmx: chaos injection applies to live clusters; use SimulateWithCrashes for simulated faults")
	}
	alg, err := opts.algorithm()
	if err != nil {
		return SimulationResult{}, err
	}
	kind := harness.Heavy
	if load == LightLoad {
		kind = harness.Light
	}
	res, err := harness.Run(harness.Spec{
		N: n, Algorithm: alg, Load: kind, PerSite: perSite, Seed: seed,
		Observer: opts.observer(),
	})
	if err != nil {
		return SimulationResult{}, err
	}
	return SimulationResult{
		Algorithm:      res.Algorithm,
		N:              res.N,
		Completed:      res.Completed,
		MessagesPerCS:  res.MessagesPerCS,
		ByKind:         res.ByKind,
		SyncDelayT:     res.SyncDelay,
		ResponseT:      res.ResponseTime,
		WaitingT:       res.WaitingTime,
		ThroughputPerT: res.Throughput,
	}, nil
}

// CrashEvent schedules a site crash during a simulation, in units of the
// mean message delay T after the start.
type CrashEvent struct {
	AtT  float64
	Site SiteID
}

// SimulateWithCrashes runs a saturated simulation and crashes the given
// sites at the given times. Crashed sites are announced to the survivors
// after a failure-detection delay and the §6 recovery protocol rebuilds the
// affected quorums. It returns the metrics of the surviving executions.
func SimulateWithCrashes(n int, opts Options, perSite int, crashes []CrashEvent, seed int64) (SimulationResult, error) {
	if plan, err := opts.chaosPlan(); err != nil {
		return SimulationResult{}, err
	} else if plan != nil {
		return SimulationResult{}, errors.New("dqmx: chaos injection applies to live clusters; use the crashes argument for simulated faults")
	}
	alg, err := opts.algorithm()
	if err != nil {
		return SimulationResult{}, err
	}
	const meanDelay = sim.Time(1000)
	cluster, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: alg, Delay: sim.ConstantDelay{D: meanDelay}, Seed: seed, CSTime: 10,
		Observer: opts.observer(),
	})
	if err != nil {
		return SimulationResult{}, err
	}
	workloadSaturated(cluster, perSite)
	for _, ce := range crashes {
		cluster.CrashAt(sim.Time(ce.AtT*float64(meanDelay)), ce.Site)
	}
	cluster.Run(0)
	if err := cluster.Err(); err != nil {
		return SimulationResult{}, err
	}
	res := cluster.Summarize()
	return SimulationResult{
		Algorithm:      res.Algorithm,
		N:              res.N,
		Completed:      res.Completed,
		MessagesPerCS:  res.MessagesPerCS,
		ByKind:         res.ByKind,
		SyncDelayT:     res.SyncDelay,
		ResponseT:      res.ResponseTime,
		WaitingT:       res.WaitingTime,
		ThroughputPerT: res.Throughput,
	}, nil
}

// QuorumOf returns the quorum (req_set) the construction assigns to site id
// in an n-site system — useful for inspecting deployments.
func QuorumOf(q Quorum, n int, id SiteID) ([]SiteID, error) {
	cons, err := q.construction()
	if err != nil {
		return nil, err
	}
	assign, err := cons.Assign(n)
	if err != nil {
		return nil, err
	}
	quorum := assign.Quorum(id)
	out := make([]SiteID, len(quorum))
	copy(out, quorum)
	return out, nil
}

// workloadSaturated applies the heavy-load closed loop (kept here to avoid
// exporting the sim hook types through the facade).
func workloadSaturated(c *sim.Cluster, perSite int) {
	workload.Saturated(c, perSite)
}
