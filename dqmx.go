// Package dqmx is a delay-optimal quorum-based distributed mutual exclusion
// library, reproducing Cao, Singhal, Deng, Rishe & Sun, "A Delay-Optimal
// Quorum-Based Mutual Exclusion Scheme with Fault-Tolerance Capability"
// (ICDCS 1998).
//
// The core protocol locks a quorum of arbiter sites to enter the critical
// section, like Maekawa's algorithm, but a site exiting the critical section
// forwards each arbiter's permission directly to the next requester instead
// of routing it back through the arbiter. That cuts the synchronization
// delay — the time between one site's exit and the next site's entry — from
// 2T to the provable minimum of one message delay T, while the message cost
// stays between 3(K−1) and 6(K−1) per execution (K = quorum size: √N for
// grid quorums, as low as log N for tree quorums).
//
// # Quick start
//
//	cluster, err := dqmx.NewCluster(9)         // nine sites in one process
//	if err != nil { ... }
//	defer cluster.Close()
//
//	node := cluster.Node(3)                    // act as site 3
//	if err := node.Acquire(ctx); err != nil { ... }
//	// ... critical section ...
//	node.Release()
//
// Use Options to pick a quorum construction (grid, tree, HQC, grid-set,
// RST, majority) or one of the six baseline algorithms, and NewTCPNode to
// spread sites across processes or machines. The Simulate function runs the
// deterministic discrete-event simulator used to reproduce the paper's
// evaluation; the cmd/benchtab tool regenerates every table.
package dqmx

import (
	"fmt"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/harness"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/sim"
	"dqmx/internal/transport"
	"dqmx/internal/workload"
)

// SiteID identifies a site (0..N-1).
type SiteID = mutex.SiteID

// Node hosts one site and exposes blocking Acquire/Release.
type Node = transport.Node

// TCPPeer hosts one site communicating over TCP.
type TCPPeer = transport.TCPPeer

// Quorum names a quorum construction.
type Quorum string

// Quorum constructions (§6 of the paper).
const (
	// GridQuorums are Maekawa grids: K ≈ 2√N−1, the default.
	GridQuorums Quorum = "grid"
	// TreeQuorums are Agrawal–El Abbadi tree paths: K as low as log N, with
	// graceful degradation under failures.
	TreeQuorums Quorum = "tree"
	// HQCQuorums use Hierarchical Quorum Consensus: K ≈ N^0.63.
	HQCQuorums Quorum = "hqc"
	// GridSetQuorums take a majority of groups with a grid inside each.
	GridSetQuorums Quorum = "grid-set"
	// RSTQuorums (Rangarajan–Setia–Tripathi) take grid-of-subgroups with a
	// majority inside each — failures inside a subgroup are masked without
	// reconstruction.
	RSTQuorums Quorum = "rst"
	// WallQuorums are crumbling walls (Peleg–Wool): one full row plus a
	// representative per lower row, K = O(√N), graceful degradation.
	WallQuorums Quorum = "wall"
	// MajorityQuorums need ⌊N/2⌋+1 sites: maximal resiliency, O(N) cost.
	MajorityQuorums Quorum = "majority"
	// FPPQuorums come from finite projective planes: the optimal
	// K ≈ √N quorum size, defined only for plane-order system sizes.
	FPPQuorums Quorum = "fpp"
	// SingletonQuorums route everything through site 0: a degenerate
	// central-coordinator coterie, useful as a baseline and in tests.
	SingletonQuorums Quorum = "singleton"
)

// Quorums enumerates every valid quorum construction name, in canonical
// order. Flag parsing and validation should use this instead of keeping a
// private copy of the list.
func Quorums() []Quorum {
	names := harness.QuorumNames()
	out := make([]Quorum, len(names))
	for i, n := range names {
		out[i] = Quorum(n)
	}
	return out
}

// Protocol names a mutual exclusion algorithm.
type Protocol string

// Available protocols: the paper's contribution plus the six baselines it
// compares against.
const (
	// DelayOptimal is the paper's contribution (delay T).
	DelayOptimal Protocol = "delay-optimal"
	// Maekawa is the classic quorum algorithm (delay 2T).
	Maekawa Protocol = "maekawa"
	// Lamport is the timestamp-broadcast algorithm: 3(N−1) messages.
	Lamport Protocol = "lamport"
	// RicartAgrawala merges releases into deferred replies: 2(N−1) messages.
	RicartAgrawala Protocol = "ricart-agrawala"
	// SinghalDynamic uses dynamic request/inform sets: N−1..2(N−1) messages.
	SinghalDynamic Protocol = "singhal-dynamic"
	// SuzukiKasami is the broadcast-token algorithm: 0..N messages.
	SuzukiKasami Protocol = "suzuki-kasami"
	// Raymond is the tree-token algorithm: O(log N) messages, long delay.
	Raymond Protocol = "raymond"
)

// Protocols enumerates every valid protocol name, the paper's contribution
// first. Flag parsing and validation should use this instead of keeping a
// private copy of the list.
func Protocols() []Protocol {
	names := harness.ProtocolNames()
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// TraceEvent is one structured protocol event: a request issued, a message
// sent (with its kind), a critical-section entry or exit, or failure
// handling. Timestamps are simulated ticks under Simulate and monotonic
// nanoseconds on live clusters.
type TraceEvent = obs.Event

// EventType enumerates the protocol lifecycle events.
type EventType = obs.EventType

// Protocol event types delivered to an Observer.
const (
	EventRequest  = obs.EventRequest
	EventSend     = obs.EventSend
	EventEnter    = obs.EventEnter
	EventExit     = obs.EventExit
	EventFailure  = obs.EventFailure
	EventRecovery = obs.EventRecovery
)

// TraceSink receives the protocol event stream. Sinks run inline on the
// protocol hot path: they must be fast and must not block.
type TraceSink = obs.Sink

// MetricsSnapshot is a point-in-time copy of a cluster's aggregated
// metrics: per-kind message counters, messages per CS execution, and delay
// distributions (synchronization delay, response time, waiting time) in the
// driver's time unit.
type MetricsSnapshot = obs.Snapshot

// DelayStats summarizes one delay distribution (count, mean, min/max, and
// log-bucket p50/p99).
type DelayStats = obs.DelayStats

// Options configures a cluster or simulation.
type Options struct {
	// Protocol defaults to DelayOptimal.
	Protocol Protocol
	// Quorum selects the coterie for quorum-based protocols (default
	// GridQuorums). Ignored by the non-quorum baselines.
	Quorum Quorum
	// DisableRecovery turns off the §6 failure recovery of the
	// delay-optimal protocol.
	DisableRecovery bool
	// Observer, when non-nil, receives every protocol event. It applies to
	// clusters (NewClusterWith, NewTCPNode) and simulations (Simulate,
	// SimulateWithCrashes).
	Observer TraceSink
	// Metrics enables the built-in metrics aggregator on live clusters,
	// exposed through Cluster.Snapshot and TCPPeer.Snapshot. When false
	// (and Observer is nil) the event path costs a single nil check.
	// Simulations report metrics through SimulationResult instead.
	Metrics bool
}

// Validate checks that the options name a known protocol and quorum
// construction; its error lists the valid choices.
func (o Options) Validate() error {
	_, err := o.algorithm()
	return err
}

// Construction returns the coterie construction named by q.
func (q Quorum) construction() (coterie.Construction, error) {
	cons, err := harness.NewConstruction(string(q))
	if err != nil {
		return nil, fmt.Errorf("dqmx: %w", err)
	}
	return cons, nil
}

// algorithm materializes the options into a protocol implementation.
func (o Options) algorithm() (mutex.Algorithm, error) {
	cons, err := o.Quorum.construction()
	if err != nil {
		return nil, err
	}
	alg, err := harness.NewAlgorithm(string(o.Protocol), cons, o.DisableRecovery)
	if err != nil {
		return nil, fmt.Errorf("dqmx: %w", err)
	}
	return alg, nil
}

// Cluster hosts all N sites in one process.
type Cluster struct {
	inner *transport.Cluster
}

// NewCluster starts an in-process cluster of n sites running the
// delay-optimal protocol over grid quorums. Use NewClusterWith for other
// protocols or coteries.
func NewCluster(n int) (*Cluster, error) {
	return NewClusterWith(n, Options{})
}

// NewClusterWith starts an in-process cluster with explicit options.
func NewClusterWith(n int, opts Options) (*Cluster, error) {
	alg, err := opts.algorithm()
	if err != nil {
		return nil, err
	}
	inner, err := transport.NewClusterObserved(alg, n, opts.collector(), opts.Observer)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// collector builds the metrics aggregator when Options.Metrics asks for one.
func (o Options) collector() *obs.Metrics {
	if !o.Metrics {
		return nil
	}
	return obs.NewMetrics()
}

// Node returns the handle for one site.
func (c *Cluster) Node(id SiteID) *Node { return c.inner.Node(id) }

// N returns the number of sites.
func (c *Cluster) N() int { return c.inner.N() }

// Snapshot returns the cluster's aggregated live metrics — per-kind message
// counters and delay distributions over all sites, with nanosecond
// timestamps. ok is false unless the cluster was built with
// Options.Metrics.
func (c *Cluster) Snapshot() (snap MetricsSnapshot, ok bool) { return c.inner.Snapshot() }

// Close shuts every site down.
func (c *Cluster) Close() { c.inner.Close() }

// NewTCPNode starts site id of an n-site delay-optimal cluster whose sites
// communicate over TCP. peers maps every other site to its listen address.
// With Options.Metrics the peer's own protocol activity is aggregated and
// exposed through TCPPeer.Snapshot.
func NewTCPNode(n int, id SiteID, listenAddr string, peers map[SiteID]string, opts Options) (*TCPPeer, error) {
	alg, err := opts.algorithm()
	if err != nil {
		return nil, err
	}
	sites, err := alg.NewSites(n)
	if err != nil {
		return nil, err
	}
	if int(id) < 0 || int(id) >= n {
		return nil, fmt.Errorf("dqmx: site %d out of range 0..%d", id, n-1)
	}
	core.RegisterGobMessages()
	return transport.NewTCPPeerObserved(sites[id], listenAddr, peers, opts.collector(), opts.Observer)
}

// SimulationResult reports the metrics of one simulated run in the paper's
// units (message counts per CS execution, delays in multiples of the mean
// message delay T).
type SimulationResult struct {
	Algorithm      string
	N              int
	Completed      int
	MessagesPerCS  float64
	ByKind         map[string]uint64
	SyncDelayT     float64
	ResponseT      float64
	WaitingT       float64
	ThroughputPerT float64
}

// LoadShape selects the workload of a simulation.
type LoadShape int

// Workload shapes for Simulate.
const (
	// LightLoad issues uncontended sequential requests (§5.1).
	LightLoad LoadShape = iota + 1
	// HeavyLoad saturates every site (§5.2).
	HeavyLoad
)

// Simulate runs the deterministic discrete-event simulator for perSite CS
// executions per site and returns the measured metrics. It is the
// programmatic face of the paper's evaluation harness.
func Simulate(n int, opts Options, load LoadShape, perSite int, seed int64) (SimulationResult, error) {
	alg, err := opts.algorithm()
	if err != nil {
		return SimulationResult{}, err
	}
	kind := harness.Heavy
	if load == LightLoad {
		kind = harness.Light
	}
	res, err := harness.Run(harness.Spec{
		N: n, Algorithm: alg, Load: kind, PerSite: perSite, Seed: seed,
		Observer: opts.Observer,
	})
	if err != nil {
		return SimulationResult{}, err
	}
	return SimulationResult{
		Algorithm:      res.Algorithm,
		N:              res.N,
		Completed:      res.Completed,
		MessagesPerCS:  res.MessagesPerCS,
		ByKind:         res.ByKind,
		SyncDelayT:     res.SyncDelay,
		ResponseT:      res.ResponseTime,
		WaitingT:       res.WaitingTime,
		ThroughputPerT: res.Throughput,
	}, nil
}

// CrashEvent schedules a site crash during a simulation, in units of the
// mean message delay T after the start.
type CrashEvent struct {
	AtT  float64
	Site SiteID
}

// SimulateWithCrashes runs a saturated simulation and crashes the given
// sites at the given times. Crashed sites are announced to the survivors
// after a failure-detection delay and the §6 recovery protocol rebuilds the
// affected quorums. It returns the metrics of the surviving executions.
func SimulateWithCrashes(n int, opts Options, perSite int, crashes []CrashEvent, seed int64) (SimulationResult, error) {
	alg, err := opts.algorithm()
	if err != nil {
		return SimulationResult{}, err
	}
	const meanDelay = sim.Time(1000)
	cluster, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: alg, Delay: sim.ConstantDelay{D: meanDelay}, Seed: seed, CSTime: 10,
		Observer: opts.Observer,
	})
	if err != nil {
		return SimulationResult{}, err
	}
	workloadSaturated(cluster, perSite)
	for _, ce := range crashes {
		cluster.CrashAt(sim.Time(ce.AtT*float64(meanDelay)), ce.Site)
	}
	cluster.Run(0)
	if err := cluster.Err(); err != nil {
		return SimulationResult{}, err
	}
	res := cluster.Summarize()
	return SimulationResult{
		Algorithm:      res.Algorithm,
		N:              res.N,
		Completed:      res.Completed,
		MessagesPerCS:  res.MessagesPerCS,
		ByKind:         res.ByKind,
		SyncDelayT:     res.SyncDelay,
		ResponseT:      res.ResponseTime,
		WaitingT:       res.WaitingTime,
		ThroughputPerT: res.Throughput,
	}, nil
}

// QuorumOf returns the quorum (req_set) the construction assigns to site id
// in an n-site system — useful for inspecting deployments.
func QuorumOf(q Quorum, n int, id SiteID) ([]SiteID, error) {
	cons, err := q.construction()
	if err != nil {
		return nil, err
	}
	assign, err := cons.Assign(n)
	if err != nil {
		return nil, err
	}
	quorum := assign.Quorum(id)
	out := make([]SiteID, len(quorum))
	copy(out, quorum)
	return out, nil
}

// workloadSaturated applies the heavy-load closed loop (kept here to avoid
// exporting the sim hook types through the facade).
func workloadSaturated(c *sim.Cluster, perSite int) {
	workload.Saturated(c, perSite)
}
