// Online membership: the public surface of the epoch-stamped coterie
// reconfiguration protocol (internal/membership). An in-process cluster
// reconfigures itself end to end with Cluster.Reconfigure; a TCP deployment
// is driven by an operator who plans the handover once (PlanHandover) and
// applies its two phases to every process (Handover.ApplyJoint, then — after
// all sites run joint — Handover.ApplyFinal), typically through dqmd's
// /reconfigure endpoint.
package dqmx

import (
	"context"
	"fmt"

	"dqmx/internal/membership"
	"dqmx/internal/mutex"
)

// Membership describes the target of a live reconfiguration: the cluster
// moves from its current configuration at epoch E to this one at epoch E+1
// through a joint-quorum handover, without stopping the lock service.
type Membership struct {
	// N is the target number of sites. Growing beyond the current roster
	// starts the joining sites; shrinking drains and retires the departing
	// ones (the highest IDs) after the switch.
	N int
	// Quorum is the target coterie construction. Empty keeps the cluster's
	// current construction, so a pure resize needs only N.
	Quorum Quorum
}

// Reconfigure moves the live cluster onto the target membership, advancing
// the configuration epoch by one. Mutual exclusion holds throughout: during
// the handover every new critical-section entry locks a quorum of the old
// coterie AND one of the new, so entries granted on either side of the
// switch still intersect. Acquires issued at any time — before, during,
// after — are served; shrinking waits for the departing sites to release
// what they hold.
//
// Reconfigure blocks until the switch completes or ctx is done. A
// ctx-aborted switch leaves the cluster in a safe intermediate phase and can
// be resumed by calling Reconfigure again with the same target.
func (c *Cluster) Reconfigure(ctx context.Context, target Membership) error {
	q := target.Quorum
	if q == "" {
		q = c.quorum
	}
	cons, err := q.construction()
	if err != nil {
		return err
	}
	if err := c.inner.Reconfigure(ctx, cons, target.N); err != nil {
		return fmt.Errorf("dqmx: reconfigure: %w", err)
	}
	c.quorum = q
	return nil
}

// Epoch returns the cluster's current configuration epoch: 0 at birth,
// incremented by every completed Reconfigure.
func (c *Cluster) Epoch() uint64 { return uint64(c.inner.Epoch()) }

// Reconfiguring reports whether the cluster is inside a joint-quorum
// handover phase (a Reconfigure is in flight).
func (c *Cluster) Reconfiguring() bool { return c.inner.Stage().Joint() }

// Handover is a planned reconfiguration for a TCP deployment: the per-site
// req_sets of the joint phase and the final configuration, computed once
// and applied to every process. The operator sequence is
//
//  1. start the joining sites' processes (they begin at the joint stage),
//  2. ApplyJoint on every site of the old configuration,
//  3. once every site runs the joint stage, ApplyFinal on every surviving
//     site,
//  4. stop the departing sites' processes.
//
// Safety does not depend on the operator's timing within a phase — joint
// req_sets intersect both coteries, so the cluster is safe in every
// interleaving of steps 1–2 and again in every interleaving of step 3 —
// but ApplyFinal must not start anywhere until ApplyJoint finished
// everywhere.
type Handover struct {
	inner *membership.Handover
}

// PlanHandover plans the switch from the configuration (oldN sites, oldQ
// coterie) at the given epoch to (newN, newQ) at epoch+1. The same plan must
// be distributed to all sites: quorum assignments are deterministic, so
// independently planned handovers with identical parameters agree.
func PlanHandover(epoch uint64, oldN int, oldQ Quorum, newN int, newQ Quorum) (*Handover, error) {
	oldCons, err := oldQ.construction()
	if err != nil {
		return nil, err
	}
	newCons, err := newQ.construction()
	if err != nil {
		return nil, err
	}
	oldCfg, err := membership.NewConfig(membership.Epoch(epoch), oldCons, oldN)
	if err != nil {
		return nil, fmt.Errorf("dqmx: plan handover: %w", err)
	}
	newCfg, err := membership.NewConfig(membership.Epoch(epoch)+1, newCons, newN)
	if err != nil {
		return nil, fmt.Errorf("dqmx: plan handover: %w", err)
	}
	h, err := membership.PlanHandover(oldCfg, newCfg)
	if err != nil {
		return nil, fmt.Errorf("dqmx: plan handover: %w", err)
	}
	h.OldCons, h.NewCons = oldCons, newCons
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("dqmx: plan handover: %w", err)
	}
	return &Handover{inner: h}, nil
}

// Epoch returns the epoch the handover departs from; the final
// configuration runs at Epoch()+1.
func (h *Handover) Epoch() uint64 { return uint64(h.inner.Old.Epoch) }

// JointN returns the roster size of the joint phase — the larger of the two
// configurations (every site of either configuration is up during the
// switch).
func (h *Handover) JointN() int { return h.inner.JointN() }

// FinalN returns the roster size of the final configuration.
func (h *Handover) FinalN() int { return h.inner.New.N() }

// JointStage and FinalStage return the membership stages of the two phases,
// as stamped on the wire and reported by TCPPeer.Stage.
func (h *Handover) JointStage() uint64 { return uint64(membership.JointStage(h.inner.Old.Epoch)) }

// FinalStage returns the stable stage of the final configuration.
func (h *Handover) FinalStage() uint64 { return uint64(membership.StableStage(h.inner.New.Epoch)) }

// ApplyJoint installs the handover's joint phase on the peer hosting site
// id: every protocol instance's req_set becomes the union of its old- and
// new-coterie quorums, and outbound frames carry the joint stage.
func (h *Handover) ApplyJoint(p *TCPPeer, id SiteID) error {
	if int(id) >= h.JointN() {
		return fmt.Errorf("dqmx: apply joint: site %d is not in the joint roster (n=%d)", id, h.JointN())
	}
	q := h.inner.JointQuorum(id)
	hh := h.inner
	avoid := func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		alt, err := hh.JointAvoiding(id, down)
		if err != nil {
			return nil, false
		}
		return alt, true
	}
	return p.ApplyMembership(h.JointN(), q, avoid, h.JointStage())
}

// ApplyFinal installs the final configuration on the peer hosting site id.
// Call it only after every site of the joint roster runs the joint stage;
// sites not in the final configuration are simply stopped instead.
func (h *Handover) ApplyFinal(p *TCPPeer, id SiteID) error {
	if int(id) >= h.FinalN() {
		return fmt.Errorf("dqmx: apply final: site %d is not in the final configuration (n=%d)", id, h.FinalN())
	}
	q := h.inner.New.Coterie.Quorum(id)
	n := h.FinalN()
	cons := h.inner.NewCons
	avoid := func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		alt, err := cons.QuorumAvoiding(n, id, down)
		if err != nil {
			return nil, false
		}
		return []mutex.SiteID(alt), true
	}
	return p.ApplyMembership(n, q, avoid, h.FinalStage())
}
