// Command dqmd runs one site of a delay-optimal mutual exclusion cluster
// over TCP. Start one process per site, give each the full address book,
// and drive it interactively (acquire / release / quit on stdin) or with
// -demo for an automated acquire/release loop.
//
// Example three-site cluster on one machine:
//
//	dqmd -id 0 -n 3 -listen :7100 -peers 1=localhost:7101,2=localhost:7102 -demo 5
//	dqmd -id 1 -n 3 -listen :7101 -peers 0=localhost:7100,2=localhost:7102 -demo 5
//	dqmd -id 2 -n 3 -listen :7102 -peers 0=localhost:7100,1=localhost:7101 -demo 5
//
// A site is a lock manager, not a single mutex: the interactive commands
// take an optional lock name (acquire orders / release orders), -lock picks
// the named lock the demo loop drives, and every name runs its own instance
// of the protocol over the same peers. No name means the default resource —
// the single mutex of earlier versions.
//
// # Lock-service mode
//
// With -serve the site becomes an arbiter of the lock-service tier: besides
// the protocol traffic on -listen it leases lock sessions to clients on the
// -serve address (-lease tunes the lease TTL). A separate process attaches
// with -dial and drives named locks through its session — it never joins
// the coterie:
//
//	dqmd -id 0 -n 3 -listen :7100 -peers ... -serve :7200
//	dqmd -id 1 -n 3 -listen :7101 -peers ... -serve :7201
//	dqmd -id 2 -n 3 -listen :7102 -peers ... -serve :7202
//	dqmd -dial localhost:7200,localhost:7201 -lock orders -demo 5
//
// The -dial address list is the client's failover chain; a crashed client's
// locks are reclaimed when its lease runs out. Client mode takes -lock,
// -demo, -settle and the interactive commands; the site/coterie flags (-id,
// -n, -listen, -peers, -quorum, -serve, -http) are arbiter-side only.
//
// With -http each site also serves live observability for its own protocol
// activity:
//
//	/metrics     the metrics snapshot as JSON (per-kind message counters,
//	             messages per CS, sync/response/waiting delay stats in ns,
//	             the membership epoch/stage, and — on arbiters — session
//	             lifecycle counters); ?resource=name isolates one named lock
//	/debug       a human-readable status page with the snapshot, the
//	             membership epoch, the instantiated lock names,
//	             session/lease counters when serving, and the most recent
//	             events
//	/debug/vars  the aggregate snapshot under the "dqmx" expvar
//	/reconfigure apply one phase of a joint-quorum membership handover to
//	             this site (POST; operator-driven — see below)
//
// # Reconfiguration
//
// A TCP cluster changes size or coterie without stopping: the operator
// plans one handover and applies it phase by phase, to every site, via
// /reconfigure. Growing a 3-site grid cluster to 5:
//
//	# 1. start sites 3 and 4 with the full 5-site address book
//	# 2. joint phase on EVERY site (old and new):
//	curl -X POST 'host0:8100/reconfigure?phase=joint&to=5'
//	...
//	# 3. once all report the joint stage, final phase on every site:
//	curl -X POST 'host0:8100/reconfigure?phase=final&to=5'
//	...
//
// Query parameters: to (target size, required), quorum (target
// construction, default: this site's -quorum), from (current size, default:
// this site's view) and from-quorum (current construction). The final phase
// must not start anywhere until the joint phase finished everywhere —
// mutual exclusion is safe in any interleaving within a phase, not across
// phases. Shrinking works the same; departing sites are simply stopped
// after the final phase.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id        = flag.Int("id", 0, "this site's id (0..n-1)")
		n         = flag.Int("n", 3, "total number of sites")
		listen    = flag.String("listen", ":7100", "listen address for protocol traffic")
		peersIn   = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		quorum    = flag.String("quorum", "grid", "quorum construction: "+quorumNames())
		demo      = flag.Int("demo", 0, "acquire/release this many times and exit (0 = interactive)")
		lockName  = flag.String("lock", "", "named lock to drive (default: the default resource; client mode: \"default\")")
		settle    = flag.Duration("settle", 2*time.Second, "wait before the demo starts so peers can come up")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug and /debug/vars on this address")
		serveAddr = flag.String("serve", "", "lease client sessions on this address (arbiter mode)")
		lease     = flag.Duration("lease", 0, "session lease TTL (arbiter and client mode; 0 = service default)")
		dialIn    = flag.String("dial", "", "attach as a lock-service client to these arbiter addresses (host:port,...)")
	)
	flag.Parse()
	begin := time.Now()

	if *dialIn != "" {
		if *serveAddr != "" {
			return fmt.Errorf("-dial (client mode) and -serve (arbiter mode) are mutually exclusive")
		}
		return runClient(*dialIn, *lease, *demo, *lockName, *settle, begin)
	}

	peers := map[dqmx.SiteID]string{}
	if *peersIn != "" {
		for _, part := range strings.Split(*peersIn, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -peers entry %q", part)
			}
			pid, err := strconv.Atoi(kv[0])
			if err != nil {
				return fmt.Errorf("bad peer id %q: %w", kv[0], err)
			}
			peers[dqmx.SiteID(pid)] = kv[1]
		}
	}

	opts := dqmx.Options{Quorum: dqmx.Quorum(*quorum)}
	var ring *ringLog
	if *httpAddr != "" {
		// The HTTP endpoints need the aggregator and a recent-event log.
		opts.Observe.Metrics = true
		ring = newRingLog(256)
		opts.Observe.Observer = ring.observe
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	var (
		peer *dqmx.TCPPeer
		srv  *dqmx.Server
	)
	if *serveAddr != "" {
		s, err := dqmx.Serve(dqmx.ServeConfig{
			N:            *n,
			ID:           dqmx.SiteID(*id),
			PeerListen:   *listen,
			Peers:        peers,
			ClientListen: *serveAddr,
			Lease:        *lease,
			Options:      opts,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		srv, peer = s, s.Peer()
		fmt.Printf("site %d/%d listening on %s (quorum: %s), serving sessions on %s\n",
			*id, *n, peer.Addr(), *quorum, srv.ClientAddr())
	} else {
		p, err := dqmx.NewTCPNode(*n, dqmx.SiteID(*id), *listen, peers, opts)
		if err != nil {
			return err
		}
		defer p.Close()
		peer = p
		fmt.Printf("site %d/%d listening on %s (quorum: %s)\n", *id, *n, peer.Addr(), *quorum)
	}

	if *httpAddr != "" {
		if err := serveHTTP(*httpAddr, *id, *n, *quorum, peer, ring, srv); err != nil {
			return err
		}
	}

	resolve := func(name string) (locker, error) { return lockerFor(peer, name) }
	who := fmt.Sprintf("site %d", *id)
	if *demo > 0 {
		// Measure the settle window from process start so slower startup
		// paths (e.g. bringing up the HTTP server) don't skew this site's
		// demo behind its peers'.
		if d := *settle - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		return runDemo(resolve, who, *demo, *lockName)
	}
	return runInteractive(resolve, who, *lockName, peer.Resources)
}

// runClient is -dial: attach a leased session to the arbiter coterie and
// drive named locks through it. The empty lock name maps to "default" —
// sessions have no default resource; every lock is named.
func runClient(dialIn string, lease time.Duration, demo int, lockName string, settle time.Duration, begin time.Time) error {
	addrs := []string{}
	for _, a := range strings.Split(dialIn, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	sess, err := dqmx.Dial(ctx, addrs, dqmx.DialConfig{Lease: lease})
	cancel()
	if err != nil {
		return err
	}
	defer sess.Close()
	fmt.Printf("client: session %d attached (failover chain: %s)\n", sess.ID(), strings.Join(addrs, ", "))
	resolve := func(name string) (locker, error) {
		if name == "" {
			name = "default"
		}
		return sess.Lock(name)
	}
	if demo > 0 {
		if d := settle - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		return runDemo(resolve, "client", demo, lockName)
	}
	return runInteractive(resolve, "client", lockName, nil)
}

// locker is the common surface of the default-resource Node and a named
// Lock, so the demo and interactive loops drive either.
type locker interface {
	Acquire(ctx context.Context) error
	TryAcquire(ctx context.Context) (bool, error)
	Release() error
}

// lockerFor resolves a lock name to its handle; the empty name is the
// default resource.
func lockerFor(peer *dqmx.TCPPeer, name string) (locker, error) {
	if name == "" {
		return peer.Node(), nil
	}
	return peer.Lock(name)
}

func quorumNames() string {
	qs := dqmx.Quorums()
	names := make([]string, len(qs))
	for i, q := range qs {
		names[i] = string(q)
	}
	return strings.Join(names, ", ")
}

// ringLog retains the most recent protocol events for /debug.
type ringLog struct {
	mu   sync.Mutex
	buf  []dqmx.TraceEvent
	next int
	full bool
}

func newRingLog(n int) *ringLog {
	return &ringLog{buf: make([]dqmx.TraceEvent, n)}
}

func (r *ringLog) observe(e dqmx.TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

func (r *ringLog) events() []dqmx.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]dqmx.TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]dqmx.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// stageInfo decodes a membership stage into its epoch and phase (stable
// stages are even, joint stages odd — see internal/membership).
func stageInfo(stage uint64) (epoch uint64, joint bool) { return stage / 2, stage%2 == 1 }

func serveHTTP(addr string, id, n int, quorum string, peer *dqmx.TCPPeer, ring *ringLog, srv *dqmx.Server) error {
	snapshot := func() dqmx.MetricsSnapshot {
		s, _ := peer.Snapshot()
		return s
	}
	expvar.Publish("dqmx", expvar.Func(func() any { return snapshot() }))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := snapshot()
		if name := r.URL.Query().Get("resource"); name != "" {
			var ok bool
			if s, ok = peer.SnapshotResource(name); !ok {
				http.Error(w, fmt.Sprintf("no metrics for resource %q", name), http.StatusNotFound)
				return
			}
		}
		epoch, joint := stageInfo(peer.Stage())
		out := struct {
			Epoch uint64 `json:"epoch"`
			Stage uint64 `json:"stage"`
			Joint bool   `json:"joint"`
			dqmx.MetricsSnapshot
		}{epoch, peer.Stage(), joint, s}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	http.HandleFunc("/reconfigure", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := handleReconfigure(r, id, quorum, peer); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		epoch, joint := stageInfo(peer.Stage())
		fmt.Fprintf(w, "site %d now at epoch %d (stage %d, joint=%v), n=%d\n",
			id, epoch, peer.Stage(), joint, peer.N())
	})
	http.HandleFunc("/debug", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := snapshot()
		fmt.Fprintf(w, "site %d of %d\n", id, n)
		epoch, joint := stageInfo(peer.Stage())
		fmt.Fprintf(w, "membership  epoch %d  stage %d  joint %v  n %d\n", epoch, peer.Stage(), joint, peer.N())
		if hint, behind := peer.MembershipHint(); behind {
			fmt.Fprintf(w, "WARNING: peers run membership stage %d; this site slept through a reconfiguration\n", hint)
		}
		fmt.Fprintf(w, "\n")
		fmt.Fprintf(w, "locks:")
		for _, name := range peer.Resources() {
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(w, " %s", name)
		}
		fmt.Fprintf(w, "\n")
		fmt.Fprintf(w, "requests %d  entries %d  exits %d  failures %d  recoveries %d\n",
			s.Requests, s.Entries, s.Exits, s.Failures, s.Recoveries)
		fmt.Fprintf(w, "messages %d (%.2f per CS)\n", s.Messages, s.MessagesPerCS)
		for _, kind := range s.Kinds() {
			fmt.Fprintf(w, "  %-10s %d\n", kind, s.ByKind[kind])
		}
		fmt.Fprintf(w, "sync delay  %s\nresponse    %s\nwaiting     %s\n",
			fmtDelay(s.SyncDelay), fmtDelay(s.Response), fmtDelay(s.Waiting))
		fmt.Fprintf(w, "transport   retransmits %d  dups suppressed %d  acks %d\n",
			s.Transport.Retransmits, s.Transport.DupSuppressed, s.Transport.AcksSent)
		if srv != nil {
			st := srv.SessionStats()
			fmt.Fprintf(w, "sessions    active %d  opened %d  attaches %d  expired %d  closed %d  reclaimed %d\n",
				st.Active, st.Opened, st.Attaches, st.Expired, st.Closed, st.Reclaimed)
		}
		fmt.Fprintf(w, "\nrecent events (oldest first):\n")
		for _, e := range ring.events() {
			fmt.Fprintln(w, e)
		}
	})
	errC := make(chan error, 1)
	go func() { errC <- http.ListenAndServe(addr, nil) }()
	// Give a bad address a moment to fail loudly instead of dying silently
	// in the background.
	select {
	case err := <-errC:
		return fmt.Errorf("http %s: %w", addr, err)
	case <-time.After(100 * time.Millisecond):
		fmt.Printf("site %d serving /metrics and /debug on %s\n", id, addr)
		return nil
	}
}

// handleReconfigure applies one handover phase to the local peer. The plan
// is recomputed from the query parameters on every call — quorum
// assignments are deterministic, so sites planning independently from the
// same parameters agree on every req_set.
func handleReconfigure(r *http.Request, id int, defQuorum string, peer *dqmx.TCPPeer) error {
	q := r.URL.Query()
	to, err := strconv.Atoi(q.Get("to"))
	if err != nil || to < 1 {
		return fmt.Errorf("bad or missing target size %q (want ?to=N)", q.Get("to"))
	}
	from := peer.N()
	if v := q.Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil {
			return fmt.Errorf("bad current size %q: %w", v, err)
		}
	}
	newQ := q.Get("quorum")
	if newQ == "" {
		newQ = defQuorum
	}
	oldQ := q.Get("from-quorum")
	if oldQ == "" {
		oldQ = defQuorum
	}
	epoch, joint := stageInfo(peer.Stage())
	if v := q.Get("epoch"); v != "" {
		// A joining site starts at epoch 0 and must be told the cluster's
		// real epoch for its joint stage to match everyone else's.
		if epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			return fmt.Errorf("bad epoch %q: %w", v, err)
		}
		joint = false
	}
	phase := q.Get("phase")
	switch phase {
	case "joint":
		if joint {
			return fmt.Errorf("site already runs a joint stage (epoch %d); finish that handover first", epoch)
		}
	case "final":
		if !joint && q.Get("epoch") == "" {
			return fmt.Errorf("site runs a stable stage (epoch %d); apply phase=joint everywhere first", epoch)
		}
	default:
		return fmt.Errorf("bad phase %q (want ?phase=joint or ?phase=final)", phase)
	}
	plan, err := dqmx.PlanHandover(epoch, from, dqmx.Quorum(oldQ), to, dqmx.Quorum(newQ))
	if err != nil {
		return err
	}
	if phase == "joint" {
		return plan.ApplyJoint(peer, dqmx.SiteID(id))
	}
	return plan.ApplyFinal(peer, dqmx.SiteID(id))
}

func fmtDelay(d dqmx.DelayStats) string {
	if d.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		d.Count, time.Duration(d.Mean), time.Duration(d.P50),
		time.Duration(d.P95), time.Duration(d.P99))
}

func runDemo(resolve func(string) (locker, error), who string, rounds int, lockName string) error {
	lock, err := resolve(lockName)
	if err != nil {
		return err
	}
	what := "CS"
	if lockName != "" {
		what = fmt.Sprintf("CS of %q", lockName)
	}
	for k := 0; k < rounds; k++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := lock.Acquire(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("round %d acquire: %w", k, err)
		}
		fmt.Printf("%s: entered %s (round %d, waited %v)\n", who, what, k, time.Since(start).Round(time.Millisecond))
		time.Sleep(50 * time.Millisecond) // the critical section
		if err := lock.Release(); err != nil {
			return fmt.Errorf("round %d release: %w", k, err)
		}
		fmt.Printf("%s: exited %s (round %d)\n", who, what, k)
	}
	return nil
}

// runInteractive drives the stdin command loop. listLocks reports the
// instantiated lock names for the "locks" command; nil when the process has
// no local view of them (client mode — locks live on the arbiters).
func runInteractive(resolveName func(string) (locker, error), who, defaultLock string, listLocks func() []string) error {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("commands: acquire [lock] | try [lock] [timeout] | release [lock] | locks | quit")
	// resolve turns a command's optional lock-name argument into a handle,
	// falling back to the -lock flag (or the default resource).
	resolve := func(arg string) (locker, error) {
		name := defaultLock
		if arg != "" {
			name = arg
		}
		return resolveName(name)
	}
	for {
		fmt.Printf("%s> ", who)
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		cmd, arg, _ := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		switch cmd {
		case "acquire":
			lock, err := resolve(arg)
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err = lock.Acquire(ctx)
			cancel()
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			fmt.Println("in critical section")
		case "try":
			// "try", "try 200ms", "try orders", "try orders 200ms": an
			// argument that parses as a duration is the timeout.
			name, rest, _ := strings.Cut(arg, " ")
			timeout := 100 * time.Millisecond
			if d, err := time.ParseDuration(name); err == nil && rest == "" {
				name, timeout = "", d
			} else if rest != "" {
				d, err := time.ParseDuration(strings.TrimSpace(rest))
				if err != nil {
					fmt.Println("bad timeout:", err)
					continue
				}
				timeout = d
			}
			lock, err := resolve(name)
			if err != nil {
				fmt.Println("try failed:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			ok, err := lock.TryAcquire(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Println("try failed:", err)
			case ok:
				fmt.Println("in critical section")
			default:
				fmt.Println("not acquired within", timeout)
			}
		case "release":
			lock, err := resolve(arg)
			if err != nil {
				fmt.Println("release failed:", err)
				continue
			}
			if err := lock.Release(); err != nil {
				fmt.Println("release failed:", err)
				continue
			}
			fmt.Println("released")
		case "locks":
			if listLocks == nil {
				fmt.Println("  (not tracked client-side; locks live on the arbiters)")
				continue
			}
			for _, name := range listLocks() {
				if name == "" {
					name = "(default)"
				}
				fmt.Println(" ", name)
			}
		case "quit", "exit":
			return nil
		case "":
		default:
			fmt.Println("unknown command")
		}
	}
}
