// Command dqmd runs one site of a delay-optimal mutual exclusion cluster
// over TCP. Start one process per site, give each the full address book,
// and drive it interactively (acquire / release / quit on stdin) or with
// -demo for an automated acquire/release loop.
//
// Example three-site cluster on one machine:
//
//	dqmd -id 0 -n 3 -listen :7100 -peers 1=localhost:7101,2=localhost:7102 -demo 5
//	dqmd -id 1 -n 3 -listen :7101 -peers 0=localhost:7100,2=localhost:7102 -demo 5
//	dqmd -id 2 -n 3 -listen :7102 -peers 0=localhost:7100,1=localhost:7101 -demo 5
//
// A site is a lock manager, not a single mutex: the interactive commands
// take an optional lock name (acquire orders / release orders), -lock picks
// the named lock the demo loop drives, and every name runs its own instance
// of the protocol over the same peers. No name means the default resource —
// the single mutex of earlier versions.
//
// With -http each site also serves live observability for its own protocol
// activity:
//
//	/metrics     the metrics snapshot as JSON (per-kind message counters,
//	             messages per CS, sync/response/waiting delay stats in ns);
//	             ?resource=name isolates one named lock
//	/debug       a human-readable status page with the snapshot, the
//	             instantiated lock names, and the most recent events
//	/debug/vars  the aggregate snapshot under the "dqmx" expvar
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this site's id (0..n-1)")
		n        = flag.Int("n", 3, "total number of sites")
		listen   = flag.String("listen", ":7100", "listen address for protocol traffic")
		peersIn  = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		quorum   = flag.String("quorum", "grid", "quorum construction: "+quorumNames())
		demo     = flag.Int("demo", 0, "acquire/release this many times and exit (0 = interactive)")
		lockName = flag.String("lock", "", "named lock to drive (default: the default resource)")
		settle   = flag.Duration("settle", 2*time.Second, "wait before the demo starts so peers can come up")
		httpAddr = flag.String("http", "", "serve /metrics, /debug and /debug/vars on this address")
	)
	flag.Parse()
	begin := time.Now()

	peers := map[dqmx.SiteID]string{}
	if *peersIn != "" {
		for _, part := range strings.Split(*peersIn, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -peers entry %q", part)
			}
			pid, err := strconv.Atoi(kv[0])
			if err != nil {
				return fmt.Errorf("bad peer id %q: %w", kv[0], err)
			}
			peers[dqmx.SiteID(pid)] = kv[1]
		}
	}

	opts := dqmx.Options{Quorum: dqmx.Quorum(*quorum)}
	var ring *ringLog
	if *httpAddr != "" {
		// The HTTP endpoints need the aggregator and a recent-event log.
		opts.Metrics = true
		ring = newRingLog(256)
		opts.Observer = ring.observe
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	peer, err := dqmx.NewTCPNode(*n, dqmx.SiteID(*id), *listen, peers, opts)
	if err != nil {
		return err
	}
	defer peer.Close()
	fmt.Printf("site %d/%d listening on %s (quorum: %s)\n", *id, *n, peer.Addr(), *quorum)

	if *httpAddr != "" {
		if err := serveHTTP(*httpAddr, *id, *n, peer, ring); err != nil {
			return err
		}
	}

	if *demo > 0 {
		// Measure the settle window from process start so slower startup
		// paths (e.g. bringing up the HTTP server) don't skew this site's
		// demo behind its peers'.
		if d := *settle - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		return runDemo(peer, *id, *demo, *lockName)
	}
	return runInteractive(peer, *id, *lockName)
}

// locker is the common surface of the default-resource Node and a named
// Lock, so the demo and interactive loops drive either.
type locker interface {
	Acquire(ctx context.Context) error
	TryAcquire(ctx context.Context) (bool, error)
	Release() error
}

// lockerFor resolves a lock name to its handle; the empty name is the
// default resource.
func lockerFor(peer *dqmx.TCPPeer, name string) (locker, error) {
	if name == "" {
		return peer.Node(), nil
	}
	return peer.Lock(name)
}

func quorumNames() string {
	qs := dqmx.Quorums()
	names := make([]string, len(qs))
	for i, q := range qs {
		names[i] = string(q)
	}
	return strings.Join(names, ", ")
}

// ringLog retains the most recent protocol events for /debug.
type ringLog struct {
	mu   sync.Mutex
	buf  []dqmx.TraceEvent
	next int
	full bool
}

func newRingLog(n int) *ringLog {
	return &ringLog{buf: make([]dqmx.TraceEvent, n)}
}

func (r *ringLog) observe(e dqmx.TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

func (r *ringLog) events() []dqmx.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]dqmx.TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]dqmx.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func serveHTTP(addr string, id, n int, peer *dqmx.TCPPeer, ring *ringLog) error {
	snapshot := func() dqmx.MetricsSnapshot {
		s, _ := peer.Snapshot()
		return s
	}
	expvar.Publish("dqmx", expvar.Func(func() any { return snapshot() }))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := snapshot()
		if name := r.URL.Query().Get("resource"); name != "" {
			var ok bool
			if s, ok = peer.SnapshotResource(name); !ok {
				http.Error(w, fmt.Sprintf("no metrics for resource %q", name), http.StatusNotFound)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	http.HandleFunc("/debug", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := snapshot()
		fmt.Fprintf(w, "site %d of %d\n\n", id, n)
		fmt.Fprintf(w, "locks:")
		for _, name := range peer.Resources() {
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(w, " %s", name)
		}
		fmt.Fprintf(w, "\n")
		fmt.Fprintf(w, "requests %d  entries %d  exits %d  failures %d  recoveries %d\n",
			s.Requests, s.Entries, s.Exits, s.Failures, s.Recoveries)
		fmt.Fprintf(w, "messages %d (%.2f per CS)\n", s.Messages, s.MessagesPerCS)
		for _, kind := range s.Kinds() {
			fmt.Fprintf(w, "  %-10s %d\n", kind, s.ByKind[kind])
		}
		fmt.Fprintf(w, "sync delay  %s\nresponse    %s\nwaiting     %s\n",
			fmtDelay(s.SyncDelay), fmtDelay(s.Response), fmtDelay(s.Waiting))
		fmt.Fprintf(w, "transport   retransmits %d  dups suppressed %d  acks %d\n",
			s.Transport.Retransmits, s.Transport.DupSuppressed, s.Transport.AcksSent)
		fmt.Fprintf(w, "\nrecent events (oldest first):\n")
		for _, e := range ring.events() {
			fmt.Fprintln(w, e)
		}
	})
	errC := make(chan error, 1)
	go func() { errC <- http.ListenAndServe(addr, nil) }()
	// Give a bad address a moment to fail loudly instead of dying silently
	// in the background.
	select {
	case err := <-errC:
		return fmt.Errorf("http %s: %w", addr, err)
	case <-time.After(100 * time.Millisecond):
		fmt.Printf("site %d serving /metrics and /debug on %s\n", id, addr)
		return nil
	}
}

func fmtDelay(d dqmx.DelayStats) string {
	if d.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		d.Count, time.Duration(d.Mean), time.Duration(d.P50),
		time.Duration(d.P95), time.Duration(d.P99))
}

func runDemo(peer *dqmx.TCPPeer, id, rounds int, lockName string) error {
	lock, err := lockerFor(peer, lockName)
	if err != nil {
		return err
	}
	what := "CS"
	if lockName != "" {
		what = fmt.Sprintf("CS of %q", lockName)
	}
	for k := 0; k < rounds; k++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := lock.Acquire(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("round %d acquire: %w", k, err)
		}
		fmt.Printf("site %d: entered %s (round %d, waited %v)\n", id, what, k, time.Since(start).Round(time.Millisecond))
		time.Sleep(50 * time.Millisecond) // the critical section
		if err := lock.Release(); err != nil {
			return fmt.Errorf("round %d release: %w", k, err)
		}
		fmt.Printf("site %d: exited %s (round %d)\n", id, what, k)
	}
	return nil
}

func runInteractive(peer *dqmx.TCPPeer, id int, defaultLock string) error {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("commands: acquire [lock] | try [lock] [timeout] | release [lock] | locks | quit")
	// resolve turns a command's optional lock-name argument into a handle,
	// falling back to the -lock flag (or the default resource).
	resolve := func(arg string) (locker, error) {
		name := defaultLock
		if arg != "" {
			name = arg
		}
		return lockerFor(peer, name)
	}
	for {
		fmt.Printf("site%d> ", id)
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		cmd, arg, _ := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		switch cmd {
		case "acquire":
			lock, err := resolve(arg)
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err = lock.Acquire(ctx)
			cancel()
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			fmt.Println("in critical section")
		case "try":
			// "try", "try 200ms", "try orders", "try orders 200ms": an
			// argument that parses as a duration is the timeout.
			name, rest, _ := strings.Cut(arg, " ")
			timeout := 100 * time.Millisecond
			if d, err := time.ParseDuration(name); err == nil && rest == "" {
				name, timeout = "", d
			} else if rest != "" {
				d, err := time.ParseDuration(strings.TrimSpace(rest))
				if err != nil {
					fmt.Println("bad timeout:", err)
					continue
				}
				timeout = d
			}
			lock, err := resolve(name)
			if err != nil {
				fmt.Println("try failed:", err)
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			ok, err := lock.TryAcquire(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Println("try failed:", err)
			case ok:
				fmt.Println("in critical section")
			default:
				fmt.Println("not acquired within", timeout)
			}
		case "release":
			lock, err := resolve(arg)
			if err != nil {
				fmt.Println("release failed:", err)
				continue
			}
			if err := lock.Release(); err != nil {
				fmt.Println("release failed:", err)
				continue
			}
			fmt.Println("released")
		case "locks":
			for _, name := range peer.Resources() {
				if name == "" {
					name = "(default)"
				}
				fmt.Println(" ", name)
			}
		case "quit", "exit":
			return nil
		case "":
		default:
			fmt.Println("unknown command")
		}
	}
}
