// Command dqmd runs one site of a delay-optimal mutual exclusion cluster
// over TCP. Start one process per site, give each the full address book,
// and drive it interactively (acquire / release / quit on stdin) or with
// -demo for an automated acquire/release loop.
//
// Example three-site cluster on one machine:
//
//	dqmd -id 0 -n 3 -listen :7100 -peers 1=localhost:7101,2=localhost:7102 -demo 5
//	dqmd -id 1 -n 3 -listen :7101 -peers 0=localhost:7100,2=localhost:7102 -demo 5
//	dqmd -id 2 -n 3 -listen :7102 -peers 0=localhost:7100,1=localhost:7101 -demo 5
//
// With -http each site also serves live observability for its own protocol
// activity:
//
//	/metrics     the metrics snapshot as JSON (per-kind message counters,
//	             messages per CS, sync/response/waiting delay stats in ns)
//	/debug       a human-readable status page with the snapshot and the
//	             most recent protocol events
//	/debug/vars  the same snapshot under the "dqmx" expvar
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id       = flag.Int("id", 0, "this site's id (0..n-1)")
		n        = flag.Int("n", 3, "total number of sites")
		listen   = flag.String("listen", ":7100", "listen address for protocol traffic")
		peersIn  = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		quorum   = flag.String("quorum", "grid", "quorum construction: "+quorumNames())
		demo     = flag.Int("demo", 0, "acquire/release this many times and exit (0 = interactive)")
		settle   = flag.Duration("settle", 2*time.Second, "wait before the demo starts so peers can come up")
		httpAddr = flag.String("http", "", "serve /metrics, /debug and /debug/vars on this address")
	)
	flag.Parse()
	begin := time.Now()

	peers := map[dqmx.SiteID]string{}
	if *peersIn != "" {
		for _, part := range strings.Split(*peersIn, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -peers entry %q", part)
			}
			pid, err := strconv.Atoi(kv[0])
			if err != nil {
				return fmt.Errorf("bad peer id %q: %w", kv[0], err)
			}
			peers[dqmx.SiteID(pid)] = kv[1]
		}
	}

	opts := dqmx.Options{Quorum: dqmx.Quorum(*quorum)}
	var ring *ringLog
	if *httpAddr != "" {
		// The HTTP endpoints need the aggregator and a recent-event log.
		opts.Metrics = true
		ring = newRingLog(256)
		opts.Observer = ring.observe
	}
	if err := opts.Validate(); err != nil {
		return err
	}

	peer, err := dqmx.NewTCPNode(*n, dqmx.SiteID(*id), *listen, peers, opts)
	if err != nil {
		return err
	}
	defer peer.Close()
	fmt.Printf("site %d/%d listening on %s (quorum: %s)\n", *id, *n, peer.Addr(), *quorum)

	if *httpAddr != "" {
		if err := serveHTTP(*httpAddr, *id, *n, peer, ring); err != nil {
			return err
		}
	}

	if *demo > 0 {
		// Measure the settle window from process start so slower startup
		// paths (e.g. bringing up the HTTP server) don't skew this site's
		// demo behind its peers'.
		if d := *settle - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		return runDemo(peer, *id, *demo)
	}
	return runInteractive(peer, *id)
}

func quorumNames() string {
	qs := dqmx.Quorums()
	names := make([]string, len(qs))
	for i, q := range qs {
		names[i] = string(q)
	}
	return strings.Join(names, ", ")
}

// ringLog retains the most recent protocol events for /debug.
type ringLog struct {
	mu   sync.Mutex
	buf  []dqmx.TraceEvent
	next int
	full bool
}

func newRingLog(n int) *ringLog {
	return &ringLog{buf: make([]dqmx.TraceEvent, n)}
}

func (r *ringLog) observe(e dqmx.TraceEvent) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

func (r *ringLog) events() []dqmx.TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]dqmx.TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]dqmx.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func serveHTTP(addr string, id, n int, peer *dqmx.TCPPeer, ring *ringLog) error {
	snapshot := func() dqmx.MetricsSnapshot {
		s, _ := peer.Snapshot()
		return s
	}
	expvar.Publish("dqmx", expvar.Func(func() any { return snapshot() }))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
	http.HandleFunc("/debug", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := snapshot()
		fmt.Fprintf(w, "site %d of %d\n\n", id, n)
		fmt.Fprintf(w, "requests %d  entries %d  exits %d  failures %d  recoveries %d\n",
			s.Requests, s.Entries, s.Exits, s.Failures, s.Recoveries)
		fmt.Fprintf(w, "messages %d (%.2f per CS)\n", s.Messages, s.MessagesPerCS)
		for _, kind := range s.Kinds() {
			fmt.Fprintf(w, "  %-10s %d\n", kind, s.ByKind[kind])
		}
		fmt.Fprintf(w, "sync delay  %s\nresponse    %s\nwaiting     %s\n",
			fmtDelay(s.SyncDelay), fmtDelay(s.Response), fmtDelay(s.Waiting))
		fmt.Fprintf(w, "\nrecent events (oldest first):\n")
		for _, e := range ring.events() {
			fmt.Fprintln(w, e)
		}
	})
	errC := make(chan error, 1)
	go func() { errC <- http.ListenAndServe(addr, nil) }()
	// Give a bad address a moment to fail loudly instead of dying silently
	// in the background.
	select {
	case err := <-errC:
		return fmt.Errorf("http %s: %w", addr, err)
	case <-time.After(100 * time.Millisecond):
		fmt.Printf("site %d serving /metrics and /debug on %s\n", id, addr)
		return nil
	}
}

func fmtDelay(d dqmx.DelayStats) string {
	if d.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p99=%v",
		d.Count, time.Duration(d.Mean), time.Duration(d.P99))
}

func runDemo(peer *dqmx.TCPPeer, id, rounds int) error {
	node := peer.Node()
	for k := 0; k < rounds; k++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := node.Acquire(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("round %d acquire: %w", k, err)
		}
		fmt.Printf("site %d: entered CS (round %d, waited %v)\n", id, k, time.Since(start).Round(time.Millisecond))
		time.Sleep(50 * time.Millisecond) // the critical section
		if err := node.Release(); err != nil {
			return fmt.Errorf("round %d release: %w", k, err)
		}
		fmt.Printf("site %d: exited CS (round %d)\n", id, k)
	}
	return nil
}

func runInteractive(peer *dqmx.TCPPeer, id int) error {
	node := peer.Node()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("commands: acquire | try <timeout> | release | quit")
	for {
		fmt.Printf("site%d> ", id)
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		cmd, arg, _ := strings.Cut(line, " ")
		switch cmd {
		case "acquire":
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err := node.Acquire(ctx)
			cancel()
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			fmt.Println("in critical section")
		case "try":
			timeout := 100 * time.Millisecond
			if arg != "" {
				d, err := time.ParseDuration(strings.TrimSpace(arg))
				if err != nil {
					fmt.Println("bad timeout:", err)
					continue
				}
				timeout = d
			}
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			ok, err := node.TryAcquire(ctx)
			cancel()
			switch {
			case err != nil:
				fmt.Println("try failed:", err)
			case ok:
				fmt.Println("in critical section")
			default:
				fmt.Println("not acquired within", timeout)
			}
		case "release":
			if err := node.Release(); err != nil {
				fmt.Println("release failed:", err)
				continue
			}
			fmt.Println("released")
		case "quit", "exit":
			return nil
		case "":
		default:
			fmt.Println("unknown command")
		}
	}
}
