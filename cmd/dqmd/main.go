// Command dqmd runs one site of a delay-optimal mutual exclusion cluster
// over TCP. Start one process per site, give each the full address book,
// and drive it interactively (acquire / release / quit on stdin) or with
// -demo for an automated acquire/release loop.
//
// Example three-site cluster on one machine:
//
//	dqmd -id 0 -n 3 -listen :7100 -peers 1=localhost:7101,2=localhost:7102 -demo 5
//	dqmd -id 1 -n 3 -listen :7101 -peers 0=localhost:7100,2=localhost:7102 -demo 5
//	dqmd -id 2 -n 3 -listen :7102 -peers 0=localhost:7100,1=localhost:7101 -demo 5
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.Int("id", 0, "this site's id (0..n-1)")
		n       = flag.Int("n", 3, "total number of sites")
		listen  = flag.String("listen", ":7100", "listen address for protocol traffic")
		peersIn = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		quorum  = flag.String("quorum", "grid", "quorum construction: grid, tree, hqc, grid-set, rst, majority")
		demo    = flag.Int("demo", 0, "acquire/release this many times and exit (0 = interactive)")
		settle  = flag.Duration("settle", 2*time.Second, "wait before the demo starts so peers can come up")
	)
	flag.Parse()

	peers := map[dqmx.SiteID]string{}
	if *peersIn != "" {
		for _, part := range strings.Split(*peersIn, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -peers entry %q", part)
			}
			pid, err := strconv.Atoi(kv[0])
			if err != nil {
				return fmt.Errorf("bad peer id %q: %w", kv[0], err)
			}
			peers[dqmx.SiteID(pid)] = kv[1]
		}
	}

	peer, err := dqmx.NewTCPNode(*n, dqmx.SiteID(*id), *listen, peers, dqmx.Options{Quorum: dqmx.Quorum(*quorum)})
	if err != nil {
		return err
	}
	defer peer.Close()
	fmt.Printf("site %d/%d listening on %s (quorum: %s)\n", *id, *n, peer.Addr(), *quorum)

	if *demo > 0 {
		time.Sleep(*settle)
		return runDemo(peer, *id, *demo)
	}
	return runInteractive(peer, *id)
}

func runDemo(peer *dqmx.TCPPeer, id, rounds int) error {
	node := peer.Node()
	for k := 0; k < rounds; k++ {
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := node.Acquire(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("round %d acquire: %w", k, err)
		}
		fmt.Printf("site %d: entered CS (round %d, waited %v)\n", id, k, time.Since(start).Round(time.Millisecond))
		time.Sleep(50 * time.Millisecond) // the critical section
		node.Release()
		fmt.Printf("site %d: exited CS (round %d)\n", id, k)
	}
	return nil
}

func runInteractive(peer *dqmx.TCPPeer, id int) error {
	node := peer.Node()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("commands: acquire | release | quit")
	for {
		fmt.Printf("site%d> ", id)
		if !sc.Scan() {
			return sc.Err()
		}
		switch strings.TrimSpace(sc.Text()) {
		case "acquire":
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			err := node.Acquire(ctx)
			cancel()
			if err != nil {
				fmt.Println("acquire failed:", err)
				continue
			}
			fmt.Println("in critical section")
		case "release":
			node.Release()
			fmt.Println("released")
		case "quit", "exit":
			return nil
		case "":
		default:
			fmt.Println("unknown command")
		}
	}
}
