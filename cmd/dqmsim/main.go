// Command dqmsim runs one mutual exclusion simulation and prints its
// metrics in the paper's units.
//
// Usage:
//
//	dqmsim -alg delay-optimal -quorum tree -n 25 -load heavy -persite 10 \
//	       -delay exp -seed 7
//
// With -trace the full protocol event log (requests, every message send
// with its kind, CS entries/exits, failure handling) is dumped one line per
// event, '-' for stdout or a file path.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dqmx/internal/harness"
	"dqmx/internal/metrics"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName    = flag.String("alg", "delay-optimal", "algorithm: "+strings.Join(harness.ProtocolNames(), ", "))
		quorumName = flag.String("quorum", "grid", "coterie for quorum algorithms: "+strings.Join(harness.QuorumNames(), ", "))
		n          = flag.Int("n", 25, "number of sites")
		loadName   = flag.String("load", "heavy", "workload: light, heavy, think")
		think      = flag.Int64("think", 10000, "mean think time for -load think")
		perSite    = flag.Int("persite", 10, "CS executions per site (or total for light load)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		delayName  = flag.String("delay", "const", "delay distribution: const, uniform, exp")
		meanDelay  = flag.Int64("T", 1000, "mean message delay T")
		csTime     = flag.Int64("E", 10, "critical section execution time E")
		tracePath  = flag.String("trace", "", "dump the protocol event log: '-' for stdout, else a file path")
	)
	flag.Parse()

	cons, err := harness.NewConstruction(*quorumName)
	if err != nil {
		return err
	}
	alg, err := harness.NewAlgorithm(*algName, cons, false)
	if err != nil {
		return err
	}
	var delay sim.Delay
	switch *delayName {
	case "const":
		delay = sim.ConstantDelay{D: sim.Time(*meanDelay)}
	case "uniform":
		delay = sim.UniformDelay{Lo: sim.Time(*meanDelay / 2), Hi: sim.Time(3 * *meanDelay / 2)}
	case "exp":
		delay = sim.ExponentialDelay{MeanD: sim.Time(*meanDelay)}
	default:
		return fmt.Errorf("unknown delay distribution %q (valid: const, uniform, exp)", *delayName)
	}
	var load harness.LoadKind
	switch *loadName {
	case "light":
		load = harness.Light
	case "heavy":
		load = harness.Heavy
	case "think":
		load = harness.Think
	default:
		return fmt.Errorf("unknown load %q (valid: light, heavy, think)", *loadName)
	}

	var (
		observer obs.Sink
		flush    = func() error { return nil }
	)
	if *tracePath != "" {
		var w io.Writer = os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriter(w)
		flush = bw.Flush
		observer = func(e obs.Event) { fmt.Fprintln(bw, e) }
	}

	res, err := harness.Run(harness.Spec{
		N: *n, Algorithm: alg, Load: load, ThinkTime: sim.Time(*think),
		PerSite: *perSite, Seed: *seed, Delay: delay, CSTime: sim.Time(*csTime),
		Observer: observer,
	})
	if ferr := flush(); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s\n", res.Algorithm)
	fmt.Printf("sites            %d\n", res.N)
	fmt.Printf("CS executions    %d\n", res.Completed)
	fmt.Printf("messages total   %d\n", res.TotalMessages)
	fmt.Printf("messages per CS  %.2f\n", res.MessagesPerCS)
	fmt.Printf("sync delay       %.3f T (%d handovers)\n", res.SyncDelay, res.SyncDelaySamples)
	fmt.Printf("response time    %.2f T\n", res.ResponseTime)
	fmt.Printf("waiting time     %.2f T\n", res.WaitingTime)
	fmt.Printf("throughput       %.3f CS per T\n\n", res.Throughput)

	tab := metrics.NewTable("message kind", "count")
	for _, kind := range mutex.Kinds() {
		if c := res.ByKind[kind]; c > 0 {
			tab.AddRow(kind, c)
		}
	}
	return tab.Render(os.Stdout)
}
