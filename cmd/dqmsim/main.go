// Command dqmsim runs one mutual exclusion simulation and prints its
// metrics in the paper's units.
//
// Usage:
//
//	dqmsim -alg delay-optimal -quorum tree -n 25 -load heavy -persite 10 \
//	       -delay exp -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/harness"
	"dqmx/internal/lamport"
	"dqmx/internal/maekawa"
	"dqmx/internal/metrics"
	"dqmx/internal/mutex"
	"dqmx/internal/raymond"
	"dqmx/internal/ricartagrawala"
	"dqmx/internal/sim"
	"dqmx/internal/singhal"
	"dqmx/internal/suzukikasami"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dqmsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName    = flag.String("alg", "delay-optimal", "algorithm: delay-optimal, maekawa, lamport, ricart-agrawala, singhal-dynamic, suzuki-kasami, raymond")
		quorumName = flag.String("quorum", "grid", "coterie for quorum algorithms: grid, tree, hqc, grid-set, rst, majority, singleton")
		n          = flag.Int("n", 25, "number of sites")
		loadName   = flag.String("load", "heavy", "workload: light, heavy, think")
		think      = flag.Int64("think", 10000, "mean think time for -load think")
		perSite    = flag.Int("persite", 10, "CS executions per site (or total for light load)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		delayName  = flag.String("delay", "const", "delay distribution: const, uniform, exp")
		meanDelay  = flag.Int64("T", 1000, "mean message delay T")
		csTime     = flag.Int64("E", 10, "critical section execution time E")
	)
	flag.Parse()

	cons, err := constructionByName(*quorumName)
	if err != nil {
		return err
	}
	alg, err := algorithmByName(*algName, cons)
	if err != nil {
		return err
	}
	var delay sim.Delay
	switch *delayName {
	case "const":
		delay = sim.ConstantDelay{D: sim.Time(*meanDelay)}
	case "uniform":
		delay = sim.UniformDelay{Lo: sim.Time(*meanDelay / 2), Hi: sim.Time(3 * *meanDelay / 2)}
	case "exp":
		delay = sim.ExponentialDelay{MeanD: sim.Time(*meanDelay)}
	default:
		return fmt.Errorf("unknown delay distribution %q", *delayName)
	}
	var load harness.LoadKind
	switch *loadName {
	case "light":
		load = harness.Light
	case "heavy":
		load = harness.Heavy
	case "think":
		load = harness.Think
	default:
		return fmt.Errorf("unknown load %q", *loadName)
	}

	res, err := harness.Run(harness.Spec{
		N: *n, Algorithm: alg, Load: load, ThinkTime: sim.Time(*think),
		PerSite: *perSite, Seed: *seed, Delay: delay, CSTime: sim.Time(*csTime),
	})
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s\n", res.Algorithm)
	fmt.Printf("sites            %d\n", res.N)
	fmt.Printf("CS executions    %d\n", res.Completed)
	fmt.Printf("messages total   %d\n", res.TotalMessages)
	fmt.Printf("messages per CS  %.2f\n", res.MessagesPerCS)
	fmt.Printf("sync delay       %.3f T (%d handovers)\n", res.SyncDelay, res.SyncDelaySamples)
	fmt.Printf("response time    %.2f T\n", res.ResponseTime)
	fmt.Printf("waiting time     %.2f T\n", res.WaitingTime)
	fmt.Printf("throughput       %.3f CS per T\n\n", res.Throughput)

	tab := metrics.NewTable("message kind", "count")
	for _, kind := range []string{
		mutex.KindRequest, mutex.KindReply, mutex.KindRelease, mutex.KindInquire,
		mutex.KindFail, mutex.KindYield, mutex.KindTransfer, mutex.KindToken,
	} {
		if c := res.ByKind[kind]; c > 0 {
			tab.AddRow(kind, c)
		}
	}
	return tab.Render(os.Stdout)
}

func constructionByName(name string) (coterie.Construction, error) {
	for _, c := range coterie.Constructions() {
		if c.Name() == name {
			return c, nil
		}
	}
	switch name {
	case "grid":
		return coterie.Grid{}, nil
	case "tree":
		return coterie.Tree{}, nil
	case "grid-set":
		return coterie.GridSet{}, nil
	case "rst":
		return coterie.RST{}, nil
	case "fpp":
		return coterie.FPP{}, nil
	case "wall", "crumbling-wall":
		return coterie.Wall{}, nil
	}
	return nil, fmt.Errorf("unknown quorum construction %q", name)
}

func algorithmByName(name string, cons coterie.Construction) (mutex.Algorithm, error) {
	switch name {
	case "delay-optimal":
		return core.Algorithm{Construction: cons}, nil
	case "maekawa":
		return maekawa.Algorithm{Construction: cons}, nil
	case "lamport":
		return lamport.Algorithm{}, nil
	case "ricart-agrawala":
		return ricartagrawala.Algorithm{}, nil
	case "singhal-dynamic":
		return singhal.Algorithm{}, nil
	case "suzuki-kasami":
		return suzukikasami.Algorithm{}, nil
	case "raymond":
		return raymond.Algorithm{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
