// Command dqmbench is the live-cluster benchmark front end: it sweeps
// cluster size × quorum construction × load × driver over real protocol
// deployments (in-process fabric or loopback TCP), prints a human-readable
// table, and writes the full results as a machine-readable
// BENCH_live_<name>.json artifact (schema dqmx/bench-live/v1; see
// internal/loadgen).
//
// Usage:
//
//	dqmbench                                   # default sweep, table + JSON
//	dqmbench -n 9,25 -quorum grid,tree -driver inproc,tcp
//	dqmbench -arrival open -rate 500 -resources 8 -dist zipf
//	dqmbench -ab                               # transfer vs 2T-fallback A/B
//	dqmbench -ab -driver tcp -n 7 -quorum tree # the paper's claim, on TCP
//	dqmbench -driver tcp -codec gob            # pin the v0 gob wire codec
//	dqmbench -n 5 -quorum majority -reconfigure 7  # acquire p99 across a live epoch switch
//
// Every run is seeded (-seed): rerunning with the same flags replays the
// same key and arrival sequences. The -hop flag imposes a deterministic
// per-hop message delay (chaos delay on inproc, the transport's
// Wire.LinkDelay on TCP), which is what makes the T-versus-2T structure
// visible above loopback noise. The -codec flag pins the TCP wire format
// (binary wire-v1 by default, gob for v0 interop A/Bs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dqmx/internal/loadgen"
)

func main() {
	var (
		ns        = flag.String("n", "9", "comma-separated cluster sizes")
		quorums   = flag.String("quorum", "grid", "comma-separated quorum constructions")
		drivers   = flag.String("driver", "inproc", "comma-separated drivers (inproc, tcp, service)")
		clients   = flag.String("clients", "16", "comma-separated leased-client counts (service driver)")
		lease     = flag.Duration("lease", 0, "session lease TTL (service driver; 0 = default)")
		protocol  = flag.String("protocol", "delay-optimal", "protocol under test")
		codec     = flag.String("codec", "", "TCP wire codec (binary, gob; default binary)")
		resources = flag.Int("resources", 1, "number of named locks")
		dist      = flag.String("dist", "uniform", "key distribution (uniform, zipf)")
		zipfS     = flag.Float64("zipf-s", 1.2, "zipf exponent (>1)")
		arrival   = flag.String("arrival", "closed", "population model (closed, open)")
		workers   = flag.Int("workers", 0, "population size (default: cluster size)")
		rate      = flag.Float64("rate", 300, "open-loop arrivals per second")
		think     = flag.Duration("think", 0, "closed-loop mean think time (0 = saturated)")
		hold      = flag.Duration("hold", 500*time.Microsecond, "critical-section hold time")
		hop       = flag.Duration("hop", 2*time.Millisecond, "deterministic per-hop message delay")
		warmup    = flag.Duration("warmup", 500*time.Millisecond, "warmup before the measure window")
		measure   = flag.Duration("measure", 2*time.Second, "measure window")
		seed      = flag.Int64("seed", 42, "generator seed (same seed, same sequences)")
		ab        = flag.Bool("ab", false, "run each cell twice: transfer path vs forced 2T release fallback")
		reconf    = flag.Int("reconfigure", 0, "grow the cluster to this size mid-measure (inproc driver; joint-quorum handover)")
		outDir    = flag.String("out", ".", "directory for the BENCH_live_<name>.json artifact")
		name      = flag.String("name", "", "artifact name (default: sweep or handoff-ab)")
	)
	flag.Parse()

	sizes, err := parseInts(*ns)
	if err != nil {
		fatal(fmt.Errorf("-n: %w", err))
	}
	clientCounts, err := parseInts(*clients)
	if err != nil {
		fatal(fmt.Errorf("-clients: %w", err))
	}
	artifactName := *name
	if artifactName == "" {
		if *ab {
			artifactName = "handoff-ab"
		} else {
			artifactName = "sweep"
		}
	}

	var runs []*loadgen.Report
	w := newTable()
	for _, driver := range splitList(*drivers) {
		// The service driver sweeps the leased-client count against a fixed
		// coterie; the site drivers have exactly one population per size.
		counts := []int{0}
		if driver == loadgen.DriverService {
			counts = clientCounts
		}
		for _, quorum := range splitList(*quorums) {
			for _, n := range sizes {
				for _, nClients := range counts {
					cfg := loadgen.Config{
						Driver:    driver,
						Protocol:  *protocol,
						Quorum:    quorum,
						N:         n,
						Clients:   nClients,
						Resources: *resources,
						Dist:      *dist,
						ZipfS:     *zipfS,
						Arrival:   *arrival,
						Workers:   *workers,
						Rate:      *rate,
						Think:     *think,
						Hold:      *hold,
						HopDelay:  *hop,
						Warmup:      *warmup,
						Measure:     *measure,
						Seed:        *seed,
						Reconfigure: *reconf,
					}
					switch driver {
					case loadgen.DriverTCP:
						cfg.Codec = *codec
					case loadgen.DriverService:
						cfg.Codec = *codec
						cfg.Lease = *lease
					}
					if *ab {
						res, err := loadgen.RunAB(cfg)
						if err != nil {
							fatal(err)
						}
						runs = append(runs, res.Transfer, res.Fallback)
						w.row(res.Transfer)
						w.row(res.Fallback)
						fmt.Printf("    -> handoff p50 fallback/transfer = %.2fx (transfer %v, fallback %v)\n",
							res.HandoffRatio(),
							time.Duration(res.Transfer.Handoff.P50),
							time.Duration(res.Fallback.Handoff.P50))
					} else {
						rep, err := loadgen.Run(cfg)
						if err != nil {
							fatal(err)
						}
						runs = append(runs, rep)
						w.row(rep)
						if rep.ReconfigureN > 0 {
							fmt.Printf("    -> epoch switch %d→%d sites in %.1fms (epoch %d); acq-p99 before/during/after = %v/%v/%v\n",
								rep.N, rep.ReconfigureN, rep.SwitchMS, rep.EpochAfter,
								time.Duration(rep.AcquireBefore.P99),
								time.Duration(rep.AcquireDuring.P99),
								time.Duration(rep.AcquireAfter.P99))
						}
					}
				}
			}
		}
	}

	path, err := loadgen.NewArtifact(artifactName, runs).Write(*outDir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s (%d runs, schema %s)\n", path, len(runs), loadgen.SchemaVersion)
}

// table prints one aligned row per run, with the header emitted lazily.
type table struct {
	headerDone bool
}

func newTable() *table { return &table{} }

func (t *table) row(r *loadgen.Report) {
	if !t.headerDone {
		fmt.Printf("%-7s %-6s %-6s %3s %4s %-8s %-6s %9s %8s %11s %11s %11s %9s %7s\n",
			"driver", "codec", "quorum", "n", "cli", "arrival", "xfer",
			"ops", "thr/s", "acq-p50", "acq-p99", "handoff-p50", "msgs/cs", "retx")
		t.headerDone = true
	}
	xfer := "on"
	if !r.Transfer {
		xfer = "off"
	}
	codec := r.Codec
	if codec == "" {
		codec = "-" // in-process runs have no wire
	}
	cli := "-" // site drivers have no client tier
	if r.Clients > 0 {
		cli = strconv.Itoa(r.Clients)
	}
	fmt.Printf("%-7s %-6s %-6s %3d %4s %-8s %-6s %9d %8.1f %11v %11v %11v %9.2f %7d\n",
		r.Driver, codec, r.Quorum, r.N, cli, r.Arrival, xfer,
		r.Ops, r.Throughput,
		time.Duration(r.Acquire.P50), time.Duration(r.Acquire.P99),
		time.Duration(r.Handoff.P50), r.MessagesPerCS, r.Retransmits)
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqmbench:", err)
	os.Exit(1)
}
