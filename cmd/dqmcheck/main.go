// Command dqmcheck runs the exhaustive small-N model checker from the
// command line: it enumerates every schedule of message delivery, request
// issue, CS exit, crash, and crash-loss for one protocol configuration and
// asserts the conformance invariants on every transition and terminal state
// (mutual exclusion, settled-wave timestamp order, terminal deadlock
// freedom, and — fault-free — the paper's 3(K−1)..6(K−1) message envelope).
//
// Usage:
//
//	dqmcheck                                  # majority-3, fault-free
//	dqmcheck -n 4 -quorum majority            # bigger fault-free space
//	dqmcheck -crashes 1                       # every §6 recovery schedule
//	dqmcheck -per-site 2 -max-states 50e6     # soak: two CS rounds each
//	dqmcheck -requesters 0,3 -n 5             # restrict who requests
//	dqmcheck -dfs -max-depth 40               # bounded depth-first probe
//
// A violation prints the invariant, the minimal replayable choice sequence
// that reaches it, and a per-site state dump, then exits nonzero. The -bound
// flag folds the message counters into the canonical state, which grows the
// space; it is on by default only for the fault-free run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/modelcheck"
	"dqmx/internal/mutex"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of sites")
		quorum    = flag.String("quorum", "majority", "quorum construction (see -list)")
		list      = flag.Bool("list", false, "list quorum constructions and exit")
		perSite   = flag.Int("per-site", 1, "CS executions per requester")
		reqsFlag  = flag.String("requesters", "", "comma-separated requester sites (default: all)")
		crashes   = flag.Int("crashes", 0, "crash-choice budget per run")
		crashSite = flag.String("crash-sites", "", "comma-separated crash victims (default: any)")
		maxStates = flag.Float64("max-states", 10e6, "state budget (0 = unlimited)")
		maxDepth  = flag.Int("max-depth", 0, "choice-sequence depth cap (0 = unbounded)")
		dfs       = flag.Bool("dfs", false, "depth-first search order (default breadth-first)")
		bound     = flag.Bool("bound", true, "assert the per-CS message envelope on fault-free runs")
	)
	flag.Parse()

	if *list {
		for _, c := range coterie.Constructions() {
			fmt.Println(c.Name())
		}
		return
	}
	cons := construction(*quorum)
	if cons == nil {
		fmt.Fprintf(os.Stderr, "dqmcheck: unknown quorum construction %q (try -list)\n", *quorum)
		os.Exit(2)
	}

	cfg := modelcheck.Config{
		Algorithm:  core.Algorithm{Construction: cons},
		N:          *n,
		PerSite:    *perSite,
		Requesters: sites(*reqsFlag),
		Crashes:    *crashes,
		CrashSites: sites(*crashSite),
		MaxStates:  int(*maxStates),
		MaxDepth:   *maxDepth,
		DFS:        *dfs,
	}
	if *bound {
		assign, err := cons.Assign(*n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqmcheck: %v\n", err)
			os.Exit(2)
		}
		b := modelcheck.BoundsFor(assign)
		cfg.Bound = &b
	}

	requesters := "all"
	if cfg.Requesters != nil {
		requesters = *reqsFlag
	}
	fmt.Printf("dqmcheck: %s n=%d per-site=%d requesters=%s crashes=%d bound=%v\n",
		cons.Name(), *n, *perSite, requesters, *crashes, *bound)

	start := time.Now()
	res, err := modelcheck.Run(cfg)
	elapsed := time.Since(start).Round(time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dqmcheck: %v after %d states in %v\n", err, res.States, elapsed)
		os.Exit(1)
	}
	if res.Violation != nil {
		fmt.Fprintf(os.Stderr, "dqmcheck: VIOLATION after %d states in %v\n%s", res.States, elapsed, res.Violation)
		os.Exit(1)
	}
	status := "complete"
	if !res.Complete {
		status = "truncated by -max-depth"
	}
	fmt.Printf("dqmcheck: %d distinct states, %d terminals, depth %d, %s — all invariants hold (%v)\n",
		res.States, res.Terminals, res.Depth, status, elapsed)
}

// construction resolves a construction by its registered name, with the
// bare aliases used across the repo's CLIs.
func construction(name string) coterie.Construction {
	switch name {
	case "grid":
		return coterie.Grid{}
	case "tree":
		return coterie.Tree{}
	}
	for _, c := range coterie.Constructions() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// sites parses a comma-separated site list, nil when empty.
func sites(s string) []mutex.SiteID {
	if s == "" {
		return nil
	}
	var out []mutex.SiteID
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqmcheck: bad site list %q: %v\n", s, err)
			os.Exit(2)
		}
		out = append(out, mutex.SiteID(id))
	}
	return out
}
