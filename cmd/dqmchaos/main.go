// Command dqmchaos soak-tests a live in-process cluster under seeded fault
// injection: it runs a sweep of chaos schedules (drop, duplication,
// reordering, delay, partitions, crash/recovery) against a real
// multi-resource deployment of the protocol and reports every conformance
// violation with the seed that reproduces it.
//
// Usage:
//
//	dqmchaos -n 9 -quorum grid -schedules 500
//	dqmchaos -n 7 -quorum tree -seed 5042 -schedules 1    # replay one seed
//	DQMX_CHAOS_SEED=5042 dqmchaos -n 7 -quorum tree       # same, via env
//
// The process exits non-zero when any schedule violates a checked
// invariant (double CS holder, timestamp-order breach, message-bound
// excess, spurious retransmission) or stalls a liveness-expected schedule.
// The transport's reliable-delivery sublayer heals drops, duplicates, and
// reordering, so every schedule without crashes or partitions must complete
// all rounds; the summary reports the sublayer's retransmission work.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/chaos/sweep"
	"dqmx/internal/harness"
)

func main() {
	var (
		n         = flag.Int("n", 9, "number of sites")
		quorum    = flag.String("quorum", "grid", "quorum construction (grid, tree, hqc, grid-set, rst, wall, majority, singleton)")
		protocol  = flag.String("protocol", "delay-optimal", "protocol under test")
		schedules = flag.Int("schedules", 200, "number of seeded schedules to run")
		seed      = flag.Int64("seed", 1000, "base seed; schedule i runs seed+i")
		locks     = flag.Int("locks", 2, "number of named locks contended per schedule")
		perSite   = flag.Int("persite", 2, "acquire/release rounds per site per lock")
		timeout   = flag.Duration("timeout", 400*time.Millisecond, "per-acquire timeout on lossy schedules")
		verbose   = flag.Bool("v", false, "print every schedule, not only failures")
	)
	flag.Parse()

	cons, err := harness.NewConstruction(*quorum)
	if err != nil {
		fatal(err)
	}
	alg, err := harness.NewAlgorithm(*protocol, cons, false)
	if err != nil {
		fatal(err)
	}
	assign, err := cons.Assign(*n)
	if err != nil {
		fatal(err)
	}

	seeds := make([]int64, 0, *schedules)
	if replay, ok := chaos.SeedOverride(); ok {
		seeds = append(seeds, replay)
		fmt.Printf("replaying %s=%d\n", chaos.SeedEnv, replay)
	} else {
		for i := 0; i < *schedules; i++ {
			seeds = append(seeds, *seed+int64(i))
		}
	}

	resources := make([]string, *locks)
	for i := range resources {
		resources[i] = fmt.Sprintf("lock-%d", i)
	}

	failures := 0
	var acquired, missed int
	var retransmits, dups, acks uint64
	start := time.Now()
	for _, s := range seeds {
		plan := sweep.RandomPlan(s, *n)
		enforceLiveness := plan.LivenessExpected()
		cfg := sweep.Config{
			Algorithm:      alg,
			N:              *n,
			Plan:           plan,
			Resources:      resources,
			PerSite:        *perSite,
			AcquireTimeout: *timeout,
			Hold:           200 * time.Microsecond,
			Assignment:     assign,
		}
		if enforceLiveness {
			cfg.AcquireTimeout = 5 * time.Second
			cfg.Patience = 3 * time.Second
		}
		res, err := sweep.Run(cfg)
		if err != nil {
			failures++
			fmt.Printf("FAIL seed=%d: %v\n  plan: %s\n", s, err, plan)
			continue
		}
		acquired += res.Acquired
		missed += res.Missed
		retransmits += res.Retransmits
		dups += res.DupSuppressed
		acks += res.AcksSent
		bad := res.Failed() || (enforceLiveness && (len(res.Stalls) > 0 || res.Missed > 0))
		if bad {
			failures++
			fmt.Printf("FAIL seed=%d (replay: %s=%d)\n  plan: %s\n", s, chaos.SeedEnv, s, plan)
			for _, v := range res.Violations {
				fmt.Printf("  %s\n", v)
			}
			for _, stall := range res.Stalls {
				fmt.Printf("  stall: %s\n", stall)
			}
			if enforceLiveness && res.Missed > 0 {
				fmt.Printf("  %d rounds missed on a liveness-expected schedule\n", res.Missed)
			}
		} else if *verbose {
			fmt.Printf("ok   seed=%d acquired=%d missed=%d rtx=%d  %s\n",
				s, res.Acquired, res.Missed, res.Retransmits, plan)
		}
	}
	fmt.Printf("%d schedules in %v: %d failed, %d CS entries, %d rounds missed, %d retransmits, %d dups suppressed, %d acks\n",
		len(seeds), time.Since(start).Round(time.Millisecond), failures, acquired, missed, retransmits, dups, acks)
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqmchaos:", err)
	os.Exit(1)
}
