// Command benchtab regenerates every table and series of the paper's
// evaluation (experiments E1–E10 in DESIGN.md) and prints them as text
// tables.
//
// Usage:
//
//	benchtab [-seed N] [-n N] [-trials N] [-only e1,e4,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dqmx/internal/harness"
	"dqmx/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed   = flag.Int64("seed", 1, "simulation seed")
		n      = flag.Int("n", 25, "system size for the per-size tables")
		trials = flag.Int("trials", 20000, "Monte Carlo trials for availability")
		only   = flag.String("only", "", "comma-separated experiment ids (e1..e10); empty = all")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }
	out := os.Stdout

	if sel("e1") {
		rows, err := harness.Table1(*n, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderTable1(rows, *n, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e2") {
		rows, err := harness.LightLoad([]int{9, 16, 25, 49, 81}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderLightLoad(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e3") {
		rows, err := harness.HeavyLoad([]int{9, 16, 25, 49}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderHeavyLoad(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e3b") || sel("e3") {
		hist, err := harness.HeavyLoadCases(*n, 10, *seed, nil)
		if err != nil {
			return err
		}
		if err := harness.RenderCaseHistogram(hist, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e4") {
		rows, err := harness.SyncDelay([]int{9, 16, 25, 49}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderSyncDelay(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e5") {
		rows, err := harness.Throughput(*n, []sim.Time{10, 100, 500, 1000}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderThroughput(rows, *n, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e6") {
		rows, err := harness.QuorumSizes([]int{9, 25, 81, 255, 729})
		if err != nil {
			return err
		}
		if err := harness.RenderQuorumSizes(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e7") {
		rows := harness.Availability(31, []float64{0.50, 0.70, 0.80, 0.90, 0.95, 0.99}, *trials, *seed)
		if err := harness.RenderAvailability(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e8") {
		var rows []harness.CrashRecoveryRow
		for _, crashes := range []int{0, 1, 2, 3} {
			row, err := harness.CrashRecovery(15, 4, crashes, *seed)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if err := harness.RenderCrashRecovery(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e9") {
		rows, err := harness.LoadSweep(16, []sim.Time{100, 500, 1000, 5000, 10000, 50000, 100000}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderLoadSweep(rows, 16, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e10") {
		rows, err := harness.QuorumIndependence(13, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderQuorumIndependence(rows, 13, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e11") {
		var rows []harness.LinkFailureRow
		for _, cuts := range []int{0, 1, 2, 3} {
			row, err := harness.LinkFailures(15, 4, cuts, *seed)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if err := harness.RenderLinkFailures(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e12") {
		rows, err := harness.DelaySensitivity(*n, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderDelaySensitivity(rows, *n, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("e13") {
		rows, err := harness.Scalability([]int{9, 25, 49, 81, 121, 169}, *seed)
		if err != nil {
			return err
		}
		if err := harness.RenderScalability(rows, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if sel("multiseed") {
		rows, err := harness.RunMany(*n, 8, 10)
		if err != nil {
			return err
		}
		if err := harness.RenderMultiSeed(rows, *n, 10, out); err != nil {
			return err
		}
	}
	return nil
}
