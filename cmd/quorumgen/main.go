// Command quorumgen prints the quorum assignment of a coterie construction,
// optionally after excluding failed sites, together with size and validity
// diagnostics. With a reconfiguration target (-to-n, optionally -to-q) it
// instead plans the joint-quorum handover between the two configurations
// (internal/membership) and prints the paired old/new/joint req_sets —
// what every site runs during the switch.
//
// Usage:
//
//	quorumgen -q tree -n 15
//	quorumgen -q tree -n 15 -down 0,3 -site 7
//	quorumgen -q majority -n 5 -to-n 7            # handover plan, same construction
//	quorumgen -q grid -n 9 -to-n 7 -to-q majority # handover plan across constructions
//	quorumgen -q majority -n 5 -to-n 7 -down 2    # joint req_sets avoiding a crash
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dqmx/internal/coterie"
	"dqmx/internal/harness"
	"dqmx/internal/membership"
	"dqmx/internal/metrics"
	"dqmx/internal/timestamp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quorumgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("q", "grid", "construction: "+strings.Join(harness.QuorumNames(), ", "))
		n      = flag.Int("n", 9, "number of sites")
		downs  = flag.String("down", "", "comma-separated failed sites")
		site   = flag.Int("site", -1, "only print the quorum of this site")
		checks = flag.Bool("check", true, "validate coterie properties")
		toN    = flag.Int("to-n", 0, "plan a handover to a configuration of this size")
		toQ    = flag.String("to-q", "", "target construction of the handover (default: same as -q)")
		epoch  = flag.Uint64("epoch", 0, "current epoch of the handover plan")
	)
	flag.Parse()

	cons, err := harness.NewConstruction(*name)
	if err != nil {
		return err
	}
	down := map[timestamp.SiteID]bool{}
	if *downs != "" {
		for _, part := range strings.Split(*downs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -down entry %q: %w", part, err)
			}
			down[timestamp.SiteID(id)] = true
		}
	}

	if *toN > 0 {
		return planPair(cons, *n, *toQ, *toN, *epoch, down)
	}

	if *site >= 0 {
		q, err := cons.QuorumAvoiding(*n, timestamp.SiteID(*site), down)
		if err != nil {
			return fmt.Errorf("site %d: %w", *site, err)
		}
		fmt.Printf("%s n=%d site=%d quorum=%v (size %d)\n", cons.Name(), *n, *site, q, len(q))
		return nil
	}

	if len(down) > 0 {
		tab := metrics.NewTable("site", "quorum (avoiding failures)", "size")
		for i := 0; i < *n; i++ {
			if down[timestamp.SiteID(i)] {
				tab.AddRow(i, "(failed)", "-")
				continue
			}
			q, err := cons.QuorumAvoiding(*n, timestamp.SiteID(i), down)
			if err != nil {
				tab.AddRow(i, "UNAVAILABLE", "-")
				continue
			}
			tab.AddRow(i, q.String(), len(q))
		}
		return tab.Render(os.Stdout)
	}

	assign, err := cons.Assign(*n)
	if err != nil {
		return err
	}
	if *checks {
		if err := assign.Validate(); err != nil {
			return fmt.Errorf("coterie invalid: %w", err)
		}
		fmt.Printf("# intersection property: OK; avg K = %.2f, max K = %d\n",
			assign.AvgQuorumSize(), assign.MaxQuorumSize())
	}
	tab := metrics.NewTable("site", "quorum", "size")
	for i := 0; i < *n; i++ {
		q := assign.Quorum(timestamp.SiteID(i))
		tab.AddRow(i, q.String(), len(q))
	}
	return tab.Render(os.Stdout)
}

// planPair plans the joint-quorum handover from (cons, n) at the given epoch
// to (toQ, toN) at epoch+1 and prints the paired configurations: each site's
// old, new, and joint req_set over the joint roster. With failed sites it
// prints the §6-rebuilt joint req_sets instead (JointAvoiding), which still
// embed a live quorum of each coterie.
func planPair(cons coterie.Construction, n int, toQ string, toN int, epoch uint64, down map[timestamp.SiteID]bool) error {
	newCons := cons
	if toQ != "" {
		var err error
		newCons, err = harness.NewConstruction(toQ)
		if err != nil {
			return err
		}
	}
	old, err := membership.NewConfig(membership.Epoch(epoch), cons, n)
	if err != nil {
		return err
	}
	next, err := membership.NewConfig(membership.Epoch(epoch)+1, newCons, toN)
	if err != nil {
		return err
	}
	h, err := membership.PlanHandover(old, next)
	if err != nil {
		return err
	}
	h.OldCons, h.NewCons = cons, newCons
	if err := h.Validate(); err != nil {
		return fmt.Errorf("handover invalid: %w", err)
	}
	fmt.Printf("# handover %s(%d)@%d -> %s(%d)@%d over %d joint sites: intersection properties OK\n",
		cons.Name(), n, epoch, newCons.Name(), toN, epoch+1, h.JointN())

	if len(down) > 0 {
		tab := metrics.NewTable("site", "joint req_set (avoiding failures)", "size")
		for i := 0; i < h.JointN(); i++ {
			if down[timestamp.SiteID(i)] {
				tab.AddRow(i, "(failed)", "-")
				continue
			}
			q, err := h.JointAvoiding(timestamp.SiteID(i), down)
			if err != nil {
				tab.AddRow(i, "UNAVAILABLE", "-")
				continue
			}
			tab.AddRow(i, q.String(), len(q))
		}
		return tab.Render(os.Stdout)
	}

	tab := metrics.NewTable("site", "old quorum", "new quorum", "joint req_set", "joint size")
	for i := 0; i < h.JointN(); i++ {
		id := timestamp.SiteID(i)
		oldQ, newQ := "-", "-"
		if i < n {
			oldQ = old.Coterie.Quorum(id).String()
		}
		if i < toN {
			newQ = next.Coterie.Quorum(id).String()
		}
		jq := h.JointQuorum(id)
		tab.AddRow(i, oldQ, newQ, jq.String(), len(jq))
	}
	return tab.Render(os.Stdout)
}
