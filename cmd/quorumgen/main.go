// Command quorumgen prints the quorum assignment of a coterie construction,
// optionally after excluding failed sites, together with size and validity
// diagnostics.
//
// Usage:
//
//	quorumgen -q tree -n 15
//	quorumgen -q tree -n 15 -down 0,3 -site 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dqmx/internal/harness"
	"dqmx/internal/metrics"
	"dqmx/internal/timestamp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quorumgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("q", "grid", "construction: "+strings.Join(harness.QuorumNames(), ", "))
		n      = flag.Int("n", 9, "number of sites")
		downs  = flag.String("down", "", "comma-separated failed sites")
		site   = flag.Int("site", -1, "only print the quorum of this site")
		checks = flag.Bool("check", true, "validate coterie properties")
	)
	flag.Parse()

	cons, err := harness.NewConstruction(*name)
	if err != nil {
		return err
	}
	down := map[timestamp.SiteID]bool{}
	if *downs != "" {
		for _, part := range strings.Split(*downs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -down entry %q: %w", part, err)
			}
			down[timestamp.SiteID(id)] = true
		}
	}

	if *site >= 0 {
		q, err := cons.QuorumAvoiding(*n, timestamp.SiteID(*site), down)
		if err != nil {
			return fmt.Errorf("site %d: %w", *site, err)
		}
		fmt.Printf("%s n=%d site=%d quorum=%v (size %d)\n", cons.Name(), *n, *site, q, len(q))
		return nil
	}

	if len(down) > 0 {
		tab := metrics.NewTable("site", "quorum (avoiding failures)", "size")
		for i := 0; i < *n; i++ {
			if down[timestamp.SiteID(i)] {
				tab.AddRow(i, "(failed)", "-")
				continue
			}
			q, err := cons.QuorumAvoiding(*n, timestamp.SiteID(i), down)
			if err != nil {
				tab.AddRow(i, "UNAVAILABLE", "-")
				continue
			}
			tab.AddRow(i, q.String(), len(q))
		}
		return tab.Render(os.Stdout)
	}

	assign, err := cons.Assign(*n)
	if err != nil {
		return err
	}
	if *checks {
		if err := assign.Validate(); err != nil {
			return fmt.Errorf("coterie invalid: %w", err)
		}
		fmt.Printf("# intersection property: OK; avg K = %.2f, max K = %d\n",
			assign.AvgQuorumSize(), assign.MaxQuorumSize())
	}
	tab := metrics.NewTable("site", "quorum", "size")
	for i := 0; i < *n; i++ {
		q := assign.Quorum(timestamp.SiteID(i))
		tab.AddRow(i, q.String(), len(q))
	}
	return tab.Render(os.Stdout)
}
