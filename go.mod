module dqmx

go 1.23
