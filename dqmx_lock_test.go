package dqmx_test

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx"
)

// TestNamedLocksLightLoadCost multiplexes 64 named locks over a 9-site
// in-process cluster and checks that each lock, used without contention,
// still costs exactly 3(K−1) messages per critical section — the paper's
// light-load bound holds per resource, not just in aggregate.
func TestNamedLocksLightLoadCost(t *testing.T) {
	const (
		n       = 9
		locks   = 64
		perLock = 3
		kMin    = 12 // 3(K−1), K=5 on the 3×3 grid
	)
	cluster, err := dqmx.NewClusterWith(n, dqmx.Options{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	names := make([]string, locks)
	for i := range names {
		names[i] = fmt.Sprintf("resource-%02d", i)
	}

	// All 64 locks churn concurrently; within each resource the load is
	// light (one sequential user), so each CS must hit the 3(K−1) floor.
	var wg sync.WaitGroup
	errC := make(chan error, locks)
	for _, name := range names {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			lock, err := cluster.Lock(name)
			if err != nil {
				errC <- err
				return
			}
			for k := 0; k < perLock; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err := lock.Acquire(ctx)
				cancel()
				if err != nil {
					errC <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if err := lock.Release(); err != nil {
					errC <- fmt.Errorf("%s release: %w", name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}

	for _, name := range names {
		snap, ok := cluster.SnapshotResource(name)
		if !ok {
			t.Fatalf("%s: no metrics", name)
		}
		if snap.Exits != perLock {
			t.Errorf("%s: exits = %d, want %d", name, snap.Exits, perLock)
		}
		if snap.MessagesPerCS != kMin {
			t.Errorf("%s: messages/CS = %v, want %d (3(K−1))", name, snap.MessagesPerCS, kMin)
		}
	}

	// The aggregate snapshot covers every resource.
	total, ok := cluster.Snapshot()
	if !ok {
		t.Fatal("no aggregate metrics")
	}
	if total.Exits != locks*perLock {
		t.Errorf("aggregate exits = %d, want %d", total.Exits, locks*perLock)
	}
	if got := len(cluster.Resources()); got != locks+1 { // 64 names + default
		t.Errorf("Resources() lists %d names, want %d", got, locks+1)
	}
}

// TestNamedLocksAreIndependent holds every named lock — and the legacy
// default-resource Node — at the same time: resources must never block each
// other.
func TestNamedLocksAreIndependent(t *testing.T) {
	const (
		n     = 9
		locks = 64
	)
	cluster, err := dqmx.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	node := cluster.Node(0)
	if err := node.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	held := make([]*dqmx.Lock, 0, locks)
	for i := 0; i < locks; i++ {
		lock, err := cluster.Lock(fmt.Sprintf("independent-%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := lock.Acquire(ctx); err != nil {
			t.Fatalf("lock %d blocked while %d others were held: %v", i, i, err)
		}
		held = append(held, lock)
	}
	// All 64 named locks and the default mutex are held simultaneously.
	for _, lock := range held {
		if err := lock.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestNamedLockMutualExclusion contends one name from every site (via
// LockOn) and checks the protocol serializes them.
func TestNamedLockMutualExclusion(t *testing.T) {
	const (
		n       = 4
		perSite = 5
	)
	cluster, err := dqmx.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var inCS atomic.Int32
	var wg sync.WaitGroup
	bad := make(chan error, n*perSite)
	for i := 0; i < n; i++ {
		id := dqmx.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			lock, err := cluster.LockOn(id, "shared")
			if err != nil {
				bad <- err
				return
			}
			for k := 0; k < perSite; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err := lock.Do(ctx, func(context.Context) error {
					if got := inCS.Add(1); got != 1 {
						return fmt.Errorf("%d sites in the CS simultaneously", got)
					}
					inCS.Add(-1)
					return nil
				})
				cancel()
				if err != nil {
					bad <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(bad)
	for err := range bad {
		t.Error(err)
	}
}

// startTCPTrio boots a 3-site TCP cluster on loopback and returns the peers.
func startTCPTrio(t *testing.T, opts dqmx.Options) []*dqmx.TCPPeer {
	t.Helper()
	const n = 3
	tmp := make([]*dqmx.TCPPeer, n)
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), "127.0.0.1:0", nil, dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = p
		addrs[dqmx.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	peers := make([]*dqmx.TCPPeer, n)
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book, opts)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.Close()
		}
	})
	return peers
}

// TestTCPNamedLocks runs two named locks over one 3-site TCP cluster:
// both resources share the sockets, stay mutually independent, and each
// keeps the light-load message cost of 3 messages per remote quorum member.
func TestTCPNamedLocks(t *testing.T) {
	const rounds = 3
	peers := startTCPTrio(t, dqmx.Options{Metrics: true})

	resources := []struct {
		name string
		host int
	}{
		{"alpha", 0},
		{"beta", 1},
	}
	var wg sync.WaitGroup
	errC := make(chan error, len(resources))
	for _, r := range resources {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			lock, err := peers[r.host].Lock(r.name)
			if err != nil {
				errC <- err
				return
			}
			for k := 0; k < rounds; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				err := lock.Do(ctx, func(context.Context) error { return nil })
				cancel()
				if err != nil {
					errC <- fmt.Errorf("%s: %w", r.name, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Fatal(err)
	}

	for _, r := range resources {
		quorum, err := dqmx.QuorumOf(dqmx.GridQuorums, 3, dqmx.SiteID(r.host))
		if err != nil {
			t.Fatal(err)
		}
		remote := 0
		for _, id := range quorum {
			if int(id) != r.host {
				remote++
			}
		}
		// Each peer's metrics count its own sends; summing across peers
		// gives the resource's total traffic.
		var messages, exits uint64
		for _, p := range peers {
			if snap, ok := p.SnapshotResource(r.name); ok {
				messages += snap.Messages
				exits += snap.Exits
			}
		}
		if exits != rounds {
			t.Errorf("%s: exits = %d, want %d", r.name, exits, rounds)
		}
		if want := uint64(rounds * 3 * remote); messages != want {
			t.Errorf("%s: messages = %d, want %d (3 per remote quorum member)",
				r.name, messages, want)
		}
		if _, ok := peers[r.host].SnapshotResource("never-used"); ok {
			t.Error("metrics invented an unused resource")
		}
	}
}

// TestTCPReconnectBackoff starts a required quorum member ~200ms after the
// requester has already issued its lock requests: the sender's bounded
// reconnect-with-backoff must deliver the queued messages once the peer
// comes up, instead of failing on the first dial.
func TestTCPReconnectBackoff(t *testing.T) {
	const n = 3
	// Reserve three loopback addresses.
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[dqmx.SiteID(i)] = l.Addr().String()
		l.Close()
	}
	book := func(self int) map[dqmx.SiteID]string {
		m := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != self {
				m[j] = a
			}
		}
		return m
	}

	// The grid coterie for N=3 puts every site in site 0's quorum, so the
	// late site is load-bearing: without it the acquire cannot complete.
	peers := make([]*dqmx.TCPPeer, n)
	for i := 0; i < n-1; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book(i), dqmx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	defer func() {
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()

	late := make(chan error, 1)
	go func() {
		time.Sleep(200 * time.Millisecond)
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(n-1), addrs[dqmx.SiteID(n-1)], book(n-1), dqmx.Options{})
		if err != nil {
			late <- err
			return
		}
		peers[n-1] = p
		late <- nil
	}()

	// Acquire immediately: the requests aimed at the absent site must
	// survive the dial failures and arrive once it listens.
	lock, err := peers[0].Lock("delayed")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := lock.Acquire(ctx); err != nil {
		t.Fatalf("acquire across a late-starting peer: %v", err)
	}
	if err := lock.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-late; err != nil {
		t.Fatal(err)
	}
}
