package dqmx_test

import (
	"context"
	"testing"
	"time"

	"dqmx"
)

// TestTCPHandover drives the operator-facing reconfiguration surface end to
// end over real TCP: a 3-site cluster whose address book already lists two
// future joiners grows to 5 via PlanHandover + ApplyJoint/ApplyFinal — the
// same sequence dqmd's /reconfigure endpoint performs, one phase per site.
func TestTCPHandover(t *testing.T) {
	const oldN, newN = 3, 5
	opts := dqmx.Options{Quorum: dqmx.MajorityQuorums}

	// Reserve addresses for the full future roster with throwaway peers.
	addrs := make(map[dqmx.SiteID]string, newN)
	for i := 0; i < newN; i++ {
		p, err := dqmx.NewTCPNode(newN, dqmx.SiteID(i), "127.0.0.1:0", nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		addrs[dqmx.SiteID(i)] = p.Addr()
		p.Close()
	}
	book := func(self int) map[dqmx.SiteID]string {
		m := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != self {
				m[j] = a
			}
		}
		return m
	}

	// The old sites run a 3-site cluster but are deployed with the 5-site
	// address book, as the dqmd docs prescribe for a planned grow.
	peers := make([]*dqmx.TCPPeer, newN)
	defer func() {
		for _, p := range peers {
			if p != nil {
				p.Close()
			}
		}
	}()
	for i := 0; i < oldN; i++ {
		p, err := dqmx.NewTCPNode(oldN, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book(i), opts)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		// The protocol size must come from n, not from the oversized book —
		// /reconfigure derives its default "from" size from N().
		if got := p.N(); got != oldN {
			t.Fatalf("site %d: N() = %d with a %d-entry address book, want %d", i, got, newN-1, oldN)
		}
	}

	cycle := func(site int, when string) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := peers[site].Node().Acquire(ctx); err != nil {
			t.Fatalf("site %d acquire %s: %v", site, when, err)
		}
		if err := peers[site].Node().Release(); err != nil {
			t.Fatalf("site %d release %s: %v", site, when, err)
		}
	}
	cycle(0, "before the handover")

	// Step 1: start the joining sites' processes.
	for i := oldN; i < newN; i++ {
		p, err := dqmx.NewTCPNode(newN, dqmx.SiteID(i), addrs[dqmx.SiteID(i)], book(i), opts)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}

	plan, err := dqmx.PlanHandover(0, oldN, dqmx.MajorityQuorums, newN, dqmx.MajorityQuorums)
	if err != nil {
		t.Fatal(err)
	}
	if plan.JointN() != newN || plan.FinalN() != newN {
		t.Fatalf("plan joint n=%d final n=%d, want %d/%d", plan.JointN(), plan.FinalN(), newN, newN)
	}

	// Step 2: joint phase on every site, in any order.
	for i := 0; i < newN; i++ {
		if err := plan.ApplyJoint(peers[i], dqmx.SiteID(i)); err != nil {
			t.Fatalf("apply joint at site %d: %v", i, err)
		}
	}
	for i := 0; i < newN; i++ {
		if got := peers[i].Stage(); got != plan.JointStage() {
			t.Fatalf("site %d at stage %d after joint, want %d", i, got, plan.JointStage())
		}
		if got := peers[i].N(); got != newN {
			t.Fatalf("site %d N() = %d in the joint phase, want %d", i, got, newN)
		}
	}
	// The lock keeps working while every entry takes a quorum of both
	// coteries.
	cycle(1, "during the joint phase")

	// Step 3: final phase on every surviving site.
	for i := 0; i < newN; i++ {
		if err := plan.ApplyFinal(peers[i], dqmx.SiteID(i)); err != nil {
			t.Fatalf("apply final at site %d: %v", i, err)
		}
	}
	for i := 0; i < newN; i++ {
		if got := peers[i].Stage(); got != plan.FinalStage() {
			t.Fatalf("site %d at stage %d after final, want %d", i, got, plan.FinalStage())
		}
	}
	// A joined site is a full participant of the new coterie.
	cycle(newN-1, "after the handover")
	cycle(0, "after the handover")

	// Misapplied phases fail loudly instead of corrupting the roster.
	if err := plan.ApplyJoint(peers[0], dqmx.SiteID(newN)); err == nil {
		t.Fatal("ApplyJoint accepted a site outside the joint roster")
	}
	if err := plan.ApplyFinal(peers[0], dqmx.SiteID(newN)); err == nil {
		t.Fatal("ApplyFinal accepted a site outside the final configuration")
	}
}
