// Fault tolerance: the §6 scenario. A 15-site cluster on Agrawal–El Abbadi
// tree quorums runs a saturated workload while two sites crash mid-run. The
// failure notifications trigger quorum reconstruction: survivors substitute
// paths around the failed nodes and keep making progress. The same crashes
// with recovery disabled stall the cluster — the honest behaviour of a
// non-fault-tolerant deployment.
package main

import (
	"fmt"
	"log"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sites   = 15
		perSite = 4
	)
	crashes := []dqmx.CrashEvent{
		{AtT: 2, Site: 14}, // a leaf
		{AtT: 20, Site: 1}, // an inner node: every path through it reroutes
	}

	fmt.Println("running 15 sites on tree quorums; crashing sites 14 and 1 mid-run…")
	res, err := dqmx.SimulateWithCrashes(sites, dqmx.Options{Quorum: dqmx.TreeQuorums}, perSite, crashes, 42)
	if err != nil {
		return fmt.Errorf("recovery run: %w", err)
	}
	fmt.Printf("  survivors completed %d critical sections\n", res.Completed)
	fmt.Printf("  messages per CS: %.1f (includes recovery traffic)\n", res.MessagesPerCS)
	fmt.Printf("  failure notifications: %d\n", res.ByKind["failure"])
	fmt.Printf("  sync delay stayed at %.2f T\n", res.SyncDelayT)

	fmt.Println("\nsame crashes with §6 recovery disabled:")
	_, err = dqmx.SimulateWithCrashes(sites, dqmx.Options{
		Quorum:          dqmx.TreeQuorums,
		DisableRecovery: true,
	}, perSite, crashes, 42)
	if err == nil {
		return fmt.Errorf("expected the non-fault-tolerant run to stall")
	}
	fmt.Printf("  cluster stalled as expected: %v\n", err)
	fmt.Println("\nfault-tolerant quorum reconstruction kept the mutex live through both crashes")
	return nil
}
