// Comparison: an algorithm shootout on the deterministic simulator. It runs
// all six mutual exclusion algorithms under identical saturated load and
// prints the paper's two axes — messages per critical section and
// synchronization delay — showing the delay-optimal algorithm pairing
// quorum-sized message cost with token-algorithm delay.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 25
		perSite = 10
		seed    = 7
	)
	protocols := []dqmx.Protocol{
		dqmx.Lamport,
		dqmx.RicartAgrawala,
		dqmx.SinghalDynamic,
		dqmx.Maekawa,
		dqmx.SuzukiKasami,
		dqmx.Raymond,
		dqmx.DelayOptimal,
	}

	fmt.Printf("saturated load, N=%d sites, %d CS executions per site\n\n", n, perSite)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tmsgs/CS\tsync delay (T)\tthroughput (CS/T)")
	fmt.Fprintln(w, "---------\t-------\t--------------\t-----------------")
	var ours, maekawa dqmx.SimulationResult
	for _, p := range protocols {
		res, err := dqmx.Simulate(n, dqmx.Options{Protocol: p}, dqmx.HeavyLoad, perSite, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.3f\n", res.Algorithm, res.MessagesPerCS, res.SyncDelayT, res.ThroughputPerT)
		switch p {
		case dqmx.DelayOptimal:
			ours = res
		case dqmx.Maekawa:
			maekawa = res
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Printf("\ndelay-optimal vs maekawa: %.1f%% of the synchronization delay, %.2fx the throughput\n",
		100*ours.SyncDelayT/maekawa.SyncDelayT, ours.ThroughputPerT/maekawa.ThroughputPerT)
	return nil
}
