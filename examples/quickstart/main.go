// Quickstart: nine sites in one process protect a shared counter with the
// delay-optimal distributed mutex. Without the mutex the concurrent
// increments would race; with it every update lands.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dqmx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sites   = 9
		perSite = 10
	)
	cluster, err := dqmx.NewClusterWith(sites, dqmx.Options{Metrics: true})
	if err != nil {
		return err
	}
	defer cluster.Close()

	counter := 0 // protected by the distributed mutex, not by a local lock
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sites; i++ {
		id := dqmx.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(id)
			for k := 0; k < perSite; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					log.Printf("site %d: acquire: %v", id, err)
					return
				}
				counter++ // the critical section
				if err := node.Release(); err != nil {
					log.Printf("site %d: release: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("sites:       %d\n", sites)
	fmt.Printf("increments:  %d (want %d — none lost)\n", counter, sites*perSite)
	fmt.Printf("elapsed:     %v\n", time.Since(start).Round(time.Millisecond))
	if snap, ok := cluster.Snapshot(); ok {
		fmt.Printf("messages:    %d (%.1f per CS; paper bound 3(K−1)..6(K−1) = 12..24)\n",
			snap.Messages, snap.MessagesPerCS)
	}
	if counter != sites*perSite {
		return fmt.Errorf("mutual exclusion violated: %d != %d", counter, sites*perSite)
	}
	fmt.Println("mutual exclusion held across all sites")
	return nil
}
