// Replicated log: the use case the paper motivates — replica control for
// replicated data. Each of seven sites keeps a full copy of an append-only
// log; a writer acquires the distributed mutex (tree quorums, K ≈ log N),
// appends its entry to every replica, and releases. The mutex serializes
// writers, so all replicas stay identical without any further coordination.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dqmx"
)

const sites = 7

// replica is one site's copy of the log. Appends happen only inside the
// distributed critical section.
type replica struct {
	mu      sync.Mutex // local-only guard for the slice header
	entries []string
}

func (r *replica) append(e string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

func (r *replica) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.entries...)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := dqmx.NewClusterWith(sites, dqmx.Options{Quorum: dqmx.TreeQuorums})
	if err != nil {
		return err
	}
	defer cluster.Close()

	replicas := make([]*replica, sites)
	for i := range replicas {
		replicas[i] = &replica{}
	}

	const writesPerSite = 5
	var wg sync.WaitGroup
	for i := 0; i < sites; i++ {
		id := dqmx.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(id)
			for k := 0; k < writesPerSite; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					log.Printf("site %d: %v", id, err)
					return
				}
				// Critical section: apply the write to every replica. The
				// sequence number is derived from the (serialized) log
				// length, so concurrent writers never collide.
				seq := len(replicas[0].snapshot())
				entry := fmt.Sprintf("seq=%03d writer=site%d op=%d", seq, id, k)
				for _, r := range replicas {
					r.append(entry)
				}
				if err := node.Release(); err != nil {
					log.Printf("site %d: release: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every replica must hold the identical sequence.
	reference := replicas[0].snapshot()
	fmt.Printf("log length: %d entries (want %d)\n", len(reference), sites*writesPerSite)
	for i, r := range replicas {
		snap := r.snapshot()
		if len(snap) != len(reference) {
			return fmt.Errorf("replica %d diverged: %d entries vs %d", i, len(snap), len(reference))
		}
		for j := range snap {
			if snap[j] != reference[j] {
				return fmt.Errorf("replica %d diverged at %d: %q vs %q", i, j, snap[j], reference[j])
			}
		}
	}
	fmt.Println("all replicas identical; first and last entries:")
	fmt.Println(" ", reference[0])
	fmt.Println(" ", reference[len(reference)-1])
	return nil
}
