// Lock service: a real arbiter coterie on loopback TCP serving leased lock
// sessions — the production deployment shape. Three arbiters run the quorum
// protocol among themselves (Serve); clients attach over the session
// protocol (Dial), acquire a named lock, and do fenced writes against a
// shared store using the session-epoch fencing token surfaced in the grant
// (Session.Fence).
//
// The demo has two acts:
//
//  1. Mutual exclusion: concurrent clients spread across the arbiters bump
//     an unsynchronized counter inside the critical section; the final
//     count proves no two holders ever overlapped.
//  2. Fencing: a holder "stalls" (its keepalives stop, as if paused or
//     partitioned), its lease expires and the arbiter reclaims the lock.
//     The next holder's grant carries a strictly larger fencing token, so
//     the store — which refuses tokens older than the newest it has seen —
//     rejects the stale holder's late write.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"dqmx"
)

// fencedStore is the resource the lock protects: it remembers the largest
// fencing token that ever wrote and refuses anything older, so a client
// that lost its lease — but has not yet noticed — cannot clobber the
// current holder's writes.
type fencedStore struct {
	mu        sync.Mutex
	lastFence uint64
	value     string
}

func (s *fencedStore) Write(fence uint64, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fence < s.lastFence {
		return fmt.Errorf("stale fencing token %d (newest seen %d)", fence, s.lastFence)
	}
	s.lastFence = fence
	s.value = value
	return nil
}

// startCoterie boots n arbiters on loopback TCP. Peer ports are reserved
// with throwaway peers first — the address book must be complete at
// construction — then each arbiter starts with Serve.
func startCoterie(n int, lease time.Duration) ([]*dqmx.Server, []string, error) {
	tmp := make([]*dqmx.TCPPeer, n)
	addrs := make(map[dqmx.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), "127.0.0.1:0", nil, dqmx.Options{})
		if err != nil {
			return nil, nil, err
		}
		tmp[i] = p
		addrs[dqmx.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	srvs := make([]*dqmx.Server, n)
	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		srv, err := dqmx.Serve(dqmx.ServeConfig{
			N:            n,
			ID:           dqmx.SiteID(i),
			PeerListen:   addrs[dqmx.SiteID(i)],
			Peers:        book,
			ClientListen: "127.0.0.1:0",
			Lease:        lease,
		})
		if err != nil {
			return nil, nil, err
		}
		srvs[i] = srv
		clientAddrs[i] = srv.ClientAddr()
	}
	return srvs, clientAddrs, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		arbiters = 3
		lease    = 500 * time.Millisecond
	)
	srvs, addrs, err := startCoterie(arbiters, lease)
	if err != nil {
		return err
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()

	// Act 1: concurrent clients across all arbiters; the lock must serialize
	// every increment of the deliberately unsynchronized counter.
	const (
		clients   = 6
		perClient = 5
	)
	var counter int
	var wg sync.WaitGroup
	errC := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			// Each client dials one arbiter and fails over along the list.
			sess, err := dqmx.Dial(ctx, append(addrs[i%arbiters:], addrs[:i%arbiters]...), dqmx.DialConfig{Lease: lease})
			if err != nil {
				errC <- err
				return
			}
			defer sess.Close()
			l, err := sess.Lock("leader")
			if err != nil {
				errC <- err
				return
			}
			for k := 0; k < perClient; k++ {
				if err := l.Do(ctx, func(context.Context) error {
					counter++
					return nil
				}); err != nil {
					errC <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		return err
	}
	if counter != clients*perClient {
		return fmt.Errorf("mutual exclusion violated: counter = %d, want %d", counter, clients*perClient)
	}
	fmt.Printf("act 1: %d clients x %d rounds across %d arbiters: counter = %d, no overlap\n",
		clients, perClient, arbiters, counter)

	// Act 2: fencing. A holder stalls past its lease; the arbiter reclaims
	// the lock; the next holder's larger token fences the stale one out.
	store := &fencedStore{}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	stale, err := dqmx.Dial(ctx, addrs, dqmx.DialConfig{Lease: lease})
	if err != nil {
		return err
	}
	defer stale.Close()
	sl, err := stale.Lock("leader")
	if err != nil {
		return err
	}
	if err := sl.Acquire(ctx); err != nil {
		return err
	}
	staleFence := stale.Fence()
	if err := store.Write(staleFence, "from the first holder"); err != nil {
		return err
	}
	fmt.Printf("act 2: first holder wrote with fencing token %d; lease deadline %s away\n",
		staleFence, time.Until(stale.LeaseDeadline()).Round(time.Millisecond))

	// The holder stalls: keepalives stop mid-hold (as if the process paused
	// or partitioned), the lease runs out, the arbiter reclaims the lock.
	stale.Abandon()

	next, err := dqmx.Dial(ctx, addrs, dqmx.DialConfig{Lease: lease})
	if err != nil {
		return err
	}
	defer next.Close()
	nl, err := next.Lock("leader")
	if err != nil {
		return err
	}
	if err := nl.Acquire(ctx); err != nil {
		return fmt.Errorf("lock never reclaimed after lease expiry: %w", err)
	}
	defer nl.Release()
	if next.Fence() <= staleFence {
		return fmt.Errorf("fencing token did not advance: %d -> %d", staleFence, next.Fence())
	}
	if err := store.Write(next.Fence(), "from the new holder"); err != nil {
		return err
	}
	// The stale holder wakes up and tries its late write. The lock is long
	// gone — and even without asking the arbiter, the store's fence check
	// stops it.
	if err := store.Write(staleFence, "late write from the stale holder"); err == nil {
		return fmt.Errorf("store accepted a stale fencing token")
	} else {
		fmt.Printf("act 2: reclaim granted token %d to the next holder; stale write rejected: %v\n",
			next.Fence(), err)
	}
	fmt.Println("the session lease bounded the crash window; the fencing token protected the store")
	return nil
}
