// Lock service: embeds the distributed mutex behind a tiny HTTP API — the
// shape of a production lock manager. Each HTTP worker acts as one site of
// the cluster; POST /lock blocks until the caller holds the global lock and
// returns a fencing token, POST /unlock releases it. The demo drives the API
// with concurrent clients and verifies the fencing tokens are strictly
// monotonic (no two holders ever overlapped).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"time"

	"dqmx"
)

// lockServer exposes one site of the cluster over HTTP.
type lockServer struct {
	node  *dqmx.Node
	mu    sync.Mutex // local guard for the fencing counter
	fence *int64     // shared across servers: only touched while holding the distributed lock
}

func (s *lockServer) handleLock(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	if err := s.node.Acquire(ctx); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// Critical section: mint the next fencing token. The distributed mutex,
	// not the local one, is what makes this safe across servers.
	*s.fence++
	fmt.Fprintf(w, "%d", *s.fence)
}

func (s *lockServer) handleUnlock(w http.ResponseWriter, r *http.Request) {
	if err := s.node.Release(); err != nil {
		// ErrNotHeld: the caller never locked (or already unlocked).
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const sites = 5
	cluster, err := dqmx.NewClusterWith(sites, dqmx.Options{Quorum: dqmx.TreeQuorums})
	if err != nil {
		return err
	}
	defer cluster.Close()

	var fence int64
	servers := make([]*httptest.Server, sites)
	for i := 0; i < sites; i++ {
		ls := &lockServer{node: cluster.Node(dqmx.SiteID(i)), fence: &fence}
		mux := http.NewServeMux()
		mux.HandleFunc("POST /lock", ls.handleLock)
		mux.HandleFunc("POST /unlock", ls.handleUnlock)
		servers[i] = httptest.NewServer(mux)
		defer servers[i].Close()
	}

	// Concurrent clients hammer different servers; each collects the fencing
	// tokens it was issued.
	const perClient = 8
	tokens := make(chan int64, sites*perClient)
	var wg sync.WaitGroup
	for i := 0; i < sites; i++ {
		base := servers[i].URL
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				resp, err := http.Post(base+"/lock", "", nil)
				if err != nil {
					log.Printf("lock: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				tok, err := strconv.ParseInt(string(body), 10, 64)
				if err != nil {
					log.Printf("bad token %q", body)
					return
				}
				tokens <- tok
				if _, err := http.Post(base+"/unlock", "", nil); err != nil {
					log.Printf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(tokens)

	var got []int64
	for tok := range tokens {
		got = append(got, tok)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range got {
		if got[i] != int64(i+1) {
			return fmt.Errorf("fencing tokens corrupted at %d: %v", i, got[:i+1])
		}
	}
	fmt.Printf("issued %d fencing tokens across %d HTTP servers: strictly monotonic, none lost\n",
		len(got), sites)
	fmt.Println("the distributed mutex serialized every /lock across the cluster")
	return nil
}
