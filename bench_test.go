// Benchmarks regenerating the paper's evaluation: one benchmark per
// experiment in DESIGN.md's index (E1–E10). Each reports the paper's
// quantities as custom benchmark metrics — msgs/CS, sync delay in units of
// T, throughput per T — so `go test -bench=. -benchmem` reproduces every
// table and series. cmd/benchtab prints the same data as formatted tables.
package dqmx_test

import (
	"fmt"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/harness"
	"dqmx/internal/maekawa"
	"dqmx/internal/sim"
)

// BenchmarkTable1PerAlgorithm is E1: Table 1 — message complexity and
// synchronization delay for all six algorithms at N=25.
func BenchmarkTable1PerAlgorithm(b *testing.B) {
	for _, e := range harness.Algorithms() {
		e := e
		b.Run(e.Algorithm.Name(), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					N: 25, Algorithm: e.Algorithm, Load: harness.Heavy, PerSite: 10, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MessagesPerCS, "msgs/CS")
			b.ReportMetric(last.SyncDelay, "syncT")
		})
	}
}

// BenchmarkLightLoadMessages is E2 (§5.1): exactly 3(K−1) messages per
// uncontended CS execution.
func BenchmarkLightLoadMessages(b *testing.B) {
	for _, n := range []int{9, 25, 49} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					N: n, Algorithm: core.Algorithm{}, Load: harness.Light, PerSite: 20, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MessagesPerCS, "msgs/CS")
			b.ReportMetric(last.ResponseTime, "responseT")
		})
	}
}

// BenchmarkHeavyLoadMessages is E3 (§5.2): messages per CS under saturation
// against the 5(K−1)..6(K−1) band.
func BenchmarkHeavyLoadMessages(b *testing.B) {
	for _, n := range []int{9, 25, 49} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					N: n, Algorithm: core.Algorithm{}, Load: harness.Heavy, PerSite: 10, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MessagesPerCS, "msgs/CS")
		})
	}
}

// BenchmarkSyncDelay is E4: the headline T vs 2T comparison at N=25.
func BenchmarkSyncDelay(b *testing.B) {
	algs := map[string]harness.Spec{
		"delay-optimal": {N: 25, Algorithm: core.Algorithm{}, Load: harness.Heavy, PerSite: 10},
		"maekawa":       {N: 25, Algorithm: maekawa.Algorithm{}, Load: harness.Heavy, PerSite: 10},
	}
	for name, spec := range algs {
		spec := spec
		b.Run(name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i + 1)
				res, err := harness.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.SyncDelay, "syncT")
		})
	}
}

// BenchmarkThroughputHeavyLoad is E5 (§5.2): throughput doubling and waiting
// halving at heavy load.
func BenchmarkThroughputHeavyLoad(b *testing.B) {
	rows := func(seed int64) []harness.ThroughputRow {
		r, err := harness.Throughput(25, []sim.Time{10, 200, 1000}, seed)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var last []harness.ThroughputRow
	for i := 0; i < b.N; i++ {
		last = rows(int64(i + 1))
	}
	for _, r := range last {
		b.ReportMetric(r.TputRatio, fmt.Sprintf("tputRatio@E=%d", int64(r.CSTime)))
	}
}

// BenchmarkQuorumSizes is E6 (§6/§5.3): K by construction and system size.
func BenchmarkQuorumSizes(b *testing.B) {
	var rows []harness.QuorumSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.QuorumSizes([]int{25, 81, 255, 729})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.N == 729 {
			b.ReportMetric(r.Avg, r.Construction+"@729")
		}
	}
}

// BenchmarkAvailability is E7 (§6): quorum availability under independent
// site failures.
func BenchmarkAvailability(b *testing.B) {
	var rows []harness.AvailabilityRow
	for i := 0; i < b.N; i++ {
		rows = harness.Availability(31, []float64{0.90}, 2000, int64(i+1))
	}
	for _, r := range rows {
		b.ReportMetric(r.Availability, r.Construction+"@p=0.9")
	}
}

// BenchmarkCrashRecovery is E8 (§6): progress and overhead across injected
// crashes with tree quorums.
func BenchmarkCrashRecovery(b *testing.B) {
	var row harness.CrashRecoveryRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = harness.CrashRecovery(15, 4, 2, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Completed), "completedCS")
	b.ReportMetric(row.MsgsPerCS, "msgs/CS")
}

// BenchmarkLoadSweep is E9: message cost and delays from light to heavy
// load.
func BenchmarkLoadSweep(b *testing.B) {
	var rows []harness.LoadSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.LoadSweep(16, []sim.Time{100, 1000, 10000, 100000}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MsgsPerCS, fmt.Sprintf("msgs@think=%d", int64(r.ThinkTime)))
	}
}

// BenchmarkQuorumIndependence is E10 (§3): the protocol unchanged over every
// coterie construction.
func BenchmarkQuorumIndependence(b *testing.B) {
	var rows []harness.IndependenceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.QuorumIndependence(13, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SyncDelay, r.Construction+"-syncT")
	}
}

// BenchmarkScalability is E13: messages track the quorum size (√N for grid,
// log N for tree) as the system grows, while the sync delay stays ≈ T.
func BenchmarkScalability(b *testing.B) {
	var rows []harness.ScalabilityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Scalability([]int{25, 81, 169}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MsgsPerCS, fmt.Sprintf("%s-msgs@N=%d", r.Construction, r.N))
	}
}

// BenchmarkDelaySensitivity is E12: the T-vs-2T shape under constant,
// uniform and exponential delays.
func BenchmarkDelaySensitivity(b *testing.B) {
	var rows []harness.DelaySensitivityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.DelaySensitivity(25, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio, r.Distribution+"-ratio")
	}
}

// BenchmarkLinkFailures is E11: progress across severed communication links.
func BenchmarkLinkFailures(b *testing.B) {
	var row harness.LinkFailureRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = harness.LinkFailures(15, 4, 2, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Completed), "completedCS")
	b.ReportMetric(row.MsgsPerCS, "msgs/CS")
}

// BenchmarkAblationTransferParking quantifies the design choice DESIGN.md
// calls out: parking transfers that outrun their proxied reply (default)
// versus the paper-literal drop. The parked variant converts those races
// from 2T fallback handovers into T handovers.
func BenchmarkAblationTransferParking(b *testing.B) {
	variants := map[string]core.Algorithm{
		"parked":  {},
		"literal": {LiteralTransferHandling: true},
	}
	for name, alg := range variants {
		alg := alg
		b.Run(name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					N: 25, Algorithm: alg, Load: harness.Heavy, PerSite: 10,
					Seed: int64(i + 1), Delay: sim.ExponentialDelay{MeanD: 1000},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.SyncDelay, "syncT")
			b.ReportMetric(last.MessagesPerCS, "msgs/CS")
		})
	}
}

// BenchmarkAblationPiggyback quantifies §5's piggybacking accounting: with
// inquire/transfer riding on other messages the per-CS count stays near
// 5(K−1); sent standalone it rises.
func BenchmarkAblationPiggyback(b *testing.B) {
	variants := map[string]core.Algorithm{
		"piggybacked": {},
		"standalone":  {DisablePiggyback: true},
	}
	for name, alg := range variants {
		alg := alg
		b.Run(name, func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					N: 25, Algorithm: alg, Load: harness.Heavy, PerSite: 10,
					Seed: int64(i + 1), Delay: sim.ExponentialDelay{MeanD: 1000},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MessagesPerCS, "msgs/CS")
		})
	}
}

// BenchmarkCaseHistogram regenerates the §5.2 case frequency analysis.
func BenchmarkCaseHistogram(b *testing.B) {
	var hist harness.CaseHistogram
	for i := 0; i < b.N; i++ {
		var err error
		hist, err = harness.HeavyLoadCases(25, 10, int64(i+1), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		b.ReportMetric(float64(hist.Cases.Case[i]), fmt.Sprintf("case%d", i))
	}
}

// BenchmarkSimulatorEventThroughput measures the raw event kernel (not a
// paper experiment; it sizes the substrate itself).
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var k sim.Kernel
		var count int
		var tick func()
		tick = func() {
			count++
			if count < 1000 {
				k.After(1, tick)
			}
		}
		k.After(0, tick)
		k.Run(0)
	}
}
