package sim

import (
	"math"
	"math/rand"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

// Delay samples the network delay for one message. Implementations must be
// deterministic given the rng state.
type Delay interface {
	// Sample returns the transit time of one message.
	Sample(rng *rand.Rand) Time
	// Mean returns the expected transit time (the paper's T).
	Mean() Time
}

// ConstantDelay delivers every message after exactly D units. This is the
// configuration used for the paper's delay measurements, where the
// synchronization delay is expressed in multiples of T.
type ConstantDelay struct{ D Time }

// Sample implements Delay.
func (c ConstantDelay) Sample(*rand.Rand) Time { return c.D }

// Mean implements Delay.
func (c ConstantDelay) Mean() Time { return c.D }

// UniformDelay delivers messages after a delay drawn uniformly from
// [Lo, Hi].
type UniformDelay struct{ Lo, Hi Time }

// Sample implements Delay.
func (u UniformDelay) Sample(rng *rand.Rand) Time {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + Time(rng.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Delay.
func (u UniformDelay) Mean() Time { return (u.Lo + u.Hi) / 2 }

// ExponentialDelay delivers messages after an exponentially distributed
// delay with the given mean, capped at 20× the mean so the system model's
// "unpredictable but bounded" assumption holds.
type ExponentialDelay struct{ MeanD Time }

// Sample implements Delay.
func (e ExponentialDelay) Sample(rng *rand.Rand) Time {
	d := Time(math.Round(rng.ExpFloat64() * float64(e.MeanD)))
	if cap := 20 * e.MeanD; d > cap {
		d = cap
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Mean implements Delay.
func (e ExponentialDelay) Mean() Time { return e.MeanD }

type channelKey struct{ from, to mutex.SiteID }

// Network models the communication medium: reliable, FIFO per ordered pair
// of sites, with per-message delays drawn from a Delay distribution.
// Self-addressed envelopes are delivered at the current time and are not
// counted. Messages to or from crashed sites are dropped.
type Network struct {
	kernel  *Kernel
	rng     *rand.Rand
	delay   Delay
	deliver func(mutex.Envelope)

	lastArrival map[channelKey]Time
	down        map[mutex.SiteID]bool
	cutLinks    map[channelKey]bool

	counts map[string]uint64
	total  uint64

	// Trace, when set, observes every delivered envelope (diagnostics).
	Trace func(at Time, env mutex.Envelope)

	// Obs, when set, receives an EventSend for every counted network
	// message at send time (the same instant the per-kind counters
	// increment, so the two stay consistent by construction).
	Obs obs.Sink
}

// NewNetwork creates a network bound to the kernel. deliver is invoked (as a
// kernel event) for every message that reaches its destination.
func NewNetwork(k *Kernel, delay Delay, seed int64, deliver func(mutex.Envelope)) *Network {
	return &Network{
		kernel:      k,
		rng:         rand.New(rand.NewSource(seed)),
		delay:       delay,
		deliver:     deliver,
		lastArrival: make(map[channelKey]Time),
		down:        make(map[mutex.SiteID]bool),
		cutLinks:    make(map[channelKey]bool),
		counts:      make(map[string]uint64),
	}
}

// Send transmits one envelope. FIFO ordering per (from, to) channel is
// enforced by never scheduling an arrival before the previous arrival on the
// same channel.
func (n *Network) Send(env mutex.Envelope) {
	if n.down[env.From] || n.down[env.To] || n.cutLinks[channelKey{env.From, env.To}] {
		return
	}
	if env.From == env.To {
		// Local delivery: immediate, not a network message.
		n.kernel.After(0, func() { n.dispatch(env) })
		return
	}
	n.counts[env.Msg.Kind()]++
	n.total++
	if n.Obs != nil {
		n.Obs(obs.Event{
			Type: obs.EventSend, Site: env.From, Peer: env.To,
			Kind: env.Msg.Kind(), Time: int64(n.kernel.Now()),
		})
	}
	at := n.kernel.Now() + n.delay.Sample(n.rng)
	key := channelKey{env.From, env.To}
	if last := n.lastArrival[key]; at < last {
		at = last
	}
	n.lastArrival[key] = at
	n.kernel.At(at, func() { n.dispatch(env) })
}

func (n *Network) dispatch(env mutex.Envelope) {
	if n.down[env.To] || n.down[env.From] {
		return // crashed while the message was in flight
	}
	if n.Trace != nil {
		n.Trace(n.kernel.Now(), env)
	}
	n.deliver(env)
}

// SendAll transmits every envelope in the slice.
func (n *Network) SendAll(envs []mutex.Envelope) {
	for _, e := range envs {
		n.Send(e)
	}
}

// Crash marks a site as failed: all of its queued and future messages are
// silently dropped.
func (n *Network) Crash(s mutex.SiteID) { n.down[s] = true }

// CutLink severs the bidirectional channel between a and b: messages already
// in flight still arrive (they left before the cut), future sends are
// dropped silently.
func (n *Network) CutLink(a, b mutex.SiteID) {
	n.cutLinks[channelKey{a, b}] = true
	n.cutLinks[channelKey{b, a}] = true
}

// LinkCut reports whether the a→b channel is severed.
func (n *Network) LinkCut(a, b mutex.SiteID) bool { return n.cutLinks[channelKey{a, b}] }

// Down reports whether a site has crashed.
func (n *Network) Down(s mutex.SiteID) bool { return n.down[s] }

// Total returns the total number of counted network messages.
func (n *Network) Total() uint64 { return n.total }

// CountByKind returns a copy of the per-kind message counters.
func (n *Network) CountByKind() map[string]uint64 {
	out := make(map[string]uint64, len(n.counts))
	for k, v := range n.counts {
		out[k] = v
	}
	return out
}

// MeanDelay exposes the configured mean message delay T.
func (n *Network) MeanDelay() Time { return n.delay.Mean() }
