package sim

import (
	"errors"
	"fmt"
	"sort"

	"dqmx/internal/metrics"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/timestamp"
)

// Config describes one simulation run.
type Config struct {
	// N is the number of sites.
	N int
	// Algorithm supplies the per-site state machines.
	Algorithm mutex.Algorithm
	// Delay is the message delay distribution (defaults to ConstantDelay{1000}).
	Delay Delay
	// Seed drives all randomness in the run.
	Seed int64
	// CSTime is the critical-section execution time E (defaults to 10).
	CSTime Time
	// DetectDelay is the failure-detection latency before a crash is
	// announced to the surviving sites (defaults to 5× the mean delay).
	DetectDelay Time
	// Observer, when non-nil, receives every protocol event (requests,
	// sends, entries, exits, failure handling) with simulated-tick
	// timestamps. Nil disables event emission entirely.
	Observer obs.Sink
}

// CSRecord captures the lifecycle of one completed critical-section
// execution.
type CSRecord struct {
	Site      mutex.SiteID
	Requested Time
	Entered   Time
	Exited    Time
}

// ErrSafetyViolation is wrapped by Cluster.Err when two sites ever held the
// critical section simultaneously.
var ErrSafetyViolation = errors.New("sim: mutual exclusion violated")

// ErrStarvation is wrapped by Cluster.Err when requests remain pending after
// the event queue drained.
var ErrStarvation = errors.New("sim: request never completed")

// Cluster drives one mutex.Algorithm instance over the simulated network,
// monitors the mutual exclusion invariant at every entry, and records the
// per-CS timing used to compute the paper's metrics.
type Cluster struct {
	cfg     Config
	Kernel  *Kernel
	Net     *Network
	Sites   []mutex.Site
	crashed map[mutex.SiteID]bool

	inCS       mutex.SiteID
	violations []string
	requested  map[mutex.SiteID]Time
	records    []CSRecord
	issued     int
	completed  int

	// OnExit, when non-nil, runs after a site releases the CS; workloads use
	// it to schedule the site's next request (closed-loop load).
	OnExit func(c *Cluster, site mutex.SiteID)
}

// NewCluster builds a cluster from the configuration.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: config needs N > 0, got %d", cfg.N)
	}
	if cfg.Algorithm == nil {
		return nil, errors.New("sim: config needs an algorithm")
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay{D: 1000}
	}
	if cfg.CSTime <= 0 {
		cfg.CSTime = 10
	}
	if cfg.DetectDelay <= 0 {
		cfg.DetectDelay = 5 * cfg.Delay.Mean()
	}
	sites, err := cfg.Algorithm.NewSites(cfg.N)
	if err != nil {
		return nil, fmt.Errorf("sim: build sites: %w", err)
	}
	c := &Cluster{
		cfg:       cfg,
		Kernel:    &Kernel{},
		Sites:     sites,
		crashed:   make(map[mutex.SiteID]bool),
		inCS:      timestamp.None,
		requested: make(map[mutex.SiteID]Time, cfg.N),
	}
	c.Net = NewNetwork(c.Kernel, cfg.Delay, cfg.Seed, c.deliver)
	c.Net.Obs = cfg.Observer
	return c, nil
}

// observe emits one lifecycle event; callers must have checked that the
// observer is installed.
func (c *Cluster) observe(t obs.EventType, site, peer mutex.SiteID) {
	c.cfg.Observer(obs.Event{Type: t, Site: site, Peer: peer, Time: int64(c.Kernel.Now())})
}

// N returns the number of sites.
func (c *Cluster) N() int { return c.cfg.N }

// CSTime returns the configured critical-section execution time E.
func (c *Cluster) CSTime() Time { return c.cfg.CSTime }

// RequestAt schedules site s to issue a CS request at absolute time t.
func (c *Cluster) RequestAt(t Time, s mutex.SiteID) {
	c.Kernel.At(t, func() { c.issue(s) })
}

// RequestNow issues a CS request for site s at the current simulated time.
func (c *Cluster) RequestNow(s mutex.SiteID) { c.issue(s) }

func (c *Cluster) issue(s mutex.SiteID) {
	if c.crashed[s] {
		return
	}
	site := c.Sites[s]
	if site.Pending() || site.InCS() {
		return // workload raced with an unfinished request; drop
	}
	c.issued++
	c.requested[s] = c.Kernel.Now()
	if c.cfg.Observer != nil {
		c.observe(obs.EventRequest, s, s)
	}
	c.handle(s, site.Request())
}

// handle applies one Output: transmits messages and reacts to a CS entry.
func (c *Cluster) handle(s mutex.SiteID, out mutex.Output) {
	if out.Entered {
		c.enter(s)
	}
	c.Net.SendAll(out.Send)
}

func (c *Cluster) enter(s mutex.SiteID) {
	if c.inCS != timestamp.None && c.inCS != s {
		c.violations = append(c.violations,
			fmt.Sprintf("t=%d: site %d entered while site %d was in the CS", c.Kernel.Now(), s, c.inCS))
	}
	c.inCS = s
	if c.cfg.Observer != nil {
		c.observe(obs.EventEnter, s, s)
	}
	rec := CSRecord{Site: s, Requested: c.requested[s], Entered: c.Kernel.Now()}
	c.records = append(c.records, rec)
	idx := len(c.records) - 1
	c.Kernel.After(c.cfg.CSTime, func() { c.exit(s, idx) })
}

func (c *Cluster) exit(s mutex.SiteID, idx int) {
	if c.crashed[s] {
		return // crashed inside the CS; the failure protocol recovers
	}
	if c.inCS == s {
		c.inCS = timestamp.None
	}
	c.records[idx].Exited = c.Kernel.Now()
	c.completed++
	if c.cfg.Observer != nil {
		c.observe(obs.EventExit, s, s)
	}
	c.handle(s, c.Sites[s].Exit())
	if c.OnExit != nil {
		c.OnExit(c, s)
	}
}

func (c *Cluster) deliver(env mutex.Envelope) {
	if c.crashed[env.To] {
		return
	}
	site := c.Sites[env.To]
	if f, ok := env.Msg.(mutex.FailureMsg); ok {
		if fo, ok := site.(mutex.FailureObserver); ok {
			if c.cfg.Observer != nil {
				c.observe(obs.EventFailure, env.To, f.Failed)
			}
			c.handle(env.To, fo.SiteFailed(f.Failed))
			if c.cfg.Observer != nil {
				c.observe(obs.EventRecovery, env.To, f.Failed)
			}
		}
		return
	}
	c.handle(env.To, site.Deliver(env))
}

// CrashAt schedules site f to crash at time t. After the configured
// detection delay the lowest-numbered surviving site announces failure(f) to
// every surviving site (counted as network messages, as in §6's multicast).
func (c *Cluster) CrashAt(t Time, f mutex.SiteID) {
	c.Kernel.At(t, func() {
		if c.crashed[f] {
			return
		}
		c.crashed[f] = true
		c.Net.Crash(f)
		if c.inCS == f {
			c.inCS = timestamp.None
		}
		c.Kernel.After(c.cfg.DetectDelay, func() { c.announceFailure(f) })
	})
}

// CutLinkAt schedules the communication link between a and b to fail at
// time t. After the detection delay each endpoint locally suspects the other
// (receives a failure notification for it) and — with a fault-tolerant
// construction — reroutes its quorum around the unreachable site. Mutual
// exclusion is preserved because quorums computed under different failure
// views still pairwise intersect.
func (c *Cluster) CutLinkAt(t Time, a, b mutex.SiteID) {
	c.Kernel.At(t, func() {
		c.Net.CutLink(a, b)
		c.Kernel.After(c.cfg.DetectDelay, func() {
			if !c.crashed[a] {
				c.deliver(mutex.Envelope{From: a, To: a, Msg: mutex.FailureMsg{Failed: b}})
			}
			if !c.crashed[b] {
				c.deliver(mutex.Envelope{From: b, To: b, Msg: mutex.FailureMsg{Failed: a}})
			}
		})
	})
}

func (c *Cluster) announceFailure(f mutex.SiteID) {
	detector := timestamp.None
	for i := 0; i < c.cfg.N; i++ {
		if !c.crashed[mutex.SiteID(i)] {
			detector = mutex.SiteID(i)
			break
		}
	}
	if detector == timestamp.None {
		return
	}
	for i := 0; i < c.cfg.N; i++ {
		s := mutex.SiteID(i)
		if !c.crashed[s] {
			c.Net.Send(mutex.Envelope{From: detector, To: s, Msg: mutex.FailureMsg{Failed: f}})
		}
	}
}

// Run executes the simulation until the event queue drains or maxSteps
// events have run (maxSteps <= 0 means unlimited).
func (c *Cluster) Run(maxSteps uint64) { c.Kernel.Run(maxSteps) }

// Err reports safety violations and starvation detected during the run. It
// should be called after Run has drained the event queue.
func (c *Cluster) Err() error {
	if len(c.violations) > 0 {
		return fmt.Errorf("%w: %s (+%d more)", ErrSafetyViolation, c.violations[0], len(c.violations)-1)
	}
	for i, site := range c.Sites {
		if c.crashed[mutex.SiteID(i)] {
			continue
		}
		if site.Pending() {
			return fmt.Errorf("%w: site %d still pending after quiescence", ErrStarvation, i)
		}
	}
	return nil
}

// Completed returns the number of finished CS executions.
func (c *Cluster) Completed() int { return c.completed }

// Issued returns the number of CS requests issued.
func (c *Cluster) Issued() int { return c.issued }

// Records returns the completed CS records in entry order.
func (c *Cluster) Records() []CSRecord {
	out := make([]CSRecord, 0, len(c.records))
	for _, r := range c.records {
		// CSTime > 0 guarantees completed executions have Exited > 0;
		// records with Exited == 0 were cut short by a crash.
		if r.Exited != 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entered < out[j].Entered })
	return out
}

// Result summarizes one run with the paper's metrics.
type Result struct {
	Algorithm     string
	N             int
	Completed     int
	TotalMessages uint64
	ByKind        map[string]uint64
	// MessagesPerCS is TotalMessages / Completed.
	MessagesPerCS float64
	// SyncDelay is the mean time between one site exiting the CS and the
	// next site entering it, measured only over handovers where the next
	// site was already waiting (the paper's heavy-load definition), in units
	// of the mean message delay T.
	SyncDelay float64
	// SyncDelaySamples is the number of handovers measured.
	SyncDelaySamples int
	// ResponseTime is the mean request→exit time in units of T.
	ResponseTime float64
	// ResponseP99 is the 99th-percentile request→exit time in units of T.
	ResponseP99 float64
	// WaitingTime is the mean request→enter time in units of T.
	WaitingTime float64
	// WaitingP99 is the 99th-percentile request→enter time in units of T.
	WaitingP99 float64
	// Throughput is completed CS executions per T time units.
	Throughput float64
}

// Summarize computes the run metrics.
func (c *Cluster) Summarize() Result {
	res := Result{
		Algorithm:     c.cfg.Algorithm.Name(),
		N:             c.cfg.N,
		Completed:     c.completed,
		TotalMessages: c.Net.Total(),
		ByKind:        c.Net.CountByKind(),
	}
	if c.completed > 0 {
		res.MessagesPerCS = float64(res.TotalMessages) / float64(c.completed)
	}
	t := float64(c.Net.MeanDelay())
	recs := c.Records()
	var (
		syncSum, respSum, waitSum float64
		syncN                     int
		resps, waits              []float64
	)
	for i, r := range recs {
		if r.Exited == 0 {
			continue
		}
		respSum += float64(r.Exited - r.Requested)
		waitSum += float64(r.Entered - r.Requested)
		resps = append(resps, float64(r.Exited-r.Requested))
		waits = append(waits, float64(r.Entered-r.Requested))
		if i > 0 {
			prev := recs[i-1]
			if prev.Exited != 0 && r.Requested <= prev.Exited && r.Entered >= prev.Exited {
				syncSum += float64(r.Entered - prev.Exited)
				syncN++
			}
		}
	}
	if n := len(recs); n > 0 && t > 0 {
		res.ResponseTime = respSum / float64(n) / t
		res.WaitingTime = waitSum / float64(n) / t
		res.ResponseP99 = metrics.Percentile(resps, 99) / t
		res.WaitingP99 = metrics.Percentile(waits, 99) / t
		span := float64(recs[n-1].Exited - recs[0].Requested)
		if span > 0 {
			res.Throughput = float64(c.completed) / span * t
		}
	}
	if syncN > 0 && t > 0 {
		res.SyncDelay = syncSum / float64(syncN) / t
		res.SyncDelaySamples = syncN
	}
	return res
}
