package sim

import (
	"strings"
	"testing"

	"dqmx/internal/mutex"
)

func runTraced(t *testing.T, rec *Recorder) {
	t.Helper()
	var k Kernel
	net := NewNetwork(&k, ConstantDelay{D: 10}, 1, func(mutex.Envelope) {})
	rec.Attach(net)
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 1}})
	net.Send(mutex.Envelope{From: 1, To: 0, Msg: fakeMsg{"reply", 2}})
	net.Send(mutex.Envelope{From: 0, To: 2, Msg: fakeMsg{"request", 3}})
	k.Run(0)
}

func TestRecorderCapturesDeliveries(t *testing.T) {
	var rec Recorder
	runTraced(t, &rec)
	if rec.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rec.Len())
	}
	events := rec.Events()
	if events[0].Kind != "request" || events[0].From != 0 || events[0].To != 1 {
		t.Errorf("first event = %+v", events[0])
	}
	if events[0].At != 10 {
		t.Errorf("delivery time = %d, want 10", events[0].At)
	}
	counts := rec.KindCounts()
	if counts["request"] != 2 || counts["reply"] != 1 {
		t.Errorf("KindCounts = %v", counts)
	}
}

func TestRecorderFilterAndLimit(t *testing.T) {
	rec := Recorder{
		Filter: func(env mutex.Envelope) bool { return env.Msg.Kind() == "request" },
		Limit:  1,
	}
	runTraced(t, &rec)
	if rec.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (filter + limit)", rec.Len())
	}
	if rec.Events()[0].Kind != "request" {
		t.Errorf("filtered event kind = %s", rec.Events()[0].Kind)
	}
}

func TestRecorderInvolvingSite(t *testing.T) {
	var rec Recorder
	runTraced(t, &rec)
	got := rec.InvolvingSite(2)
	if len(got) != 1 || got[0].To != 2 {
		t.Fatalf("InvolvingSite(2) = %v", got)
	}
}

func TestRecorderRenderAndSummary(t *testing.T) {
	var rec Recorder
	runTraced(t, &rec)
	var b strings.Builder
	if err := rec.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0 -> 1") || !strings.Contains(out, "t=10") {
		t.Errorf("render output:\n%s", out)
	}
	sum := rec.Summary()
	if !strings.Contains(sum, "3 events") || !strings.Contains(sum, "request=2") {
		t.Errorf("summary = %q", sum)
	}
}

func TestRecorderChainsExistingTraceHook(t *testing.T) {
	var k Kernel
	prevCalls := 0
	net := NewNetwork(&k, ConstantDelay{D: 1}, 1, func(mutex.Envelope) {})
	net.Trace = func(Time, mutex.Envelope) { prevCalls++ }
	var rec Recorder
	rec.Attach(net)
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 1}})
	k.Run(0)
	if prevCalls != 1 || rec.Len() != 1 {
		t.Fatalf("prev hook calls = %d, recorded = %d; want 1/1", prevCalls, rec.Len())
	}
}
