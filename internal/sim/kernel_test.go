package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsInTimeOrder(t *testing.T) {
	var k Kernel
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run(0)
	want := []Time{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now = %d, want 30", k.Now())
	}
	if k.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", k.Steps())
	}
}

func TestKernelFIFOAmongSimultaneous(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events out of insertion order: %v", got)
		}
	}
}

func TestKernelPastEventsRunNow(t *testing.T) {
	var k Kernel
	k.At(100, func() {
		k.At(50, func() {}) // scheduled "in the past"
	})
	k.Run(0)
	if k.Now() != 100 {
		t.Errorf("time went backwards: Now = %d", k.Now())
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	var k Kernel
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 5 {
			depth++
			k.After(10, recurse)
		}
	}
	k.After(0, recurse)
	k.Run(0)
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if k.Now() != 50 {
		t.Errorf("Now = %d, want 50", k.Now())
	}
}

func TestKernelMaxSteps(t *testing.T) {
	var k Kernel
	count := 0
	for i := 0; i < 10; i++ {
		k.At(Time(i), func() { count++ })
	}
	if n := k.Run(3); n != 3 {
		t.Fatalf("Run returned %d, want 3", n)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", k.Pending())
	}
}

func TestKernelRunUntil(t *testing.T) {
	var k Kernel
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("Now = %d, want 25", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v, want 4 events", fired)
	}
}

// TestKernelEventOrderProperty: however events are inserted, execution is in
// non-decreasing time order.
func TestKernelEventOrderProperty(t *testing.T) {
	check := func(times []uint16) bool {
		var k Kernel
		var seen []Time
		for _, at := range times {
			at := Time(at)
			k.At(at, func() { seen = append(seen, at) })
		}
		k.Run(0)
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
