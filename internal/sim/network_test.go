package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dqmx/internal/mutex"
)

type fakeMsg struct {
	kind string
	n    int
}

func (m fakeMsg) Kind() string { return m.kind }

func TestNetworkFIFOPerChannel(t *testing.T) {
	check := func(seed int64) bool {
		var k Kernel
		var got []int
		net := NewNetwork(&k, ExponentialDelay{MeanD: 100}, seed, func(e mutex.Envelope) {
			got = append(got, e.Msg.(fakeMsg).n)
		})
		for i := 0; i < 20; i++ {
			net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", i}})
		}
		k.Run(0)
		if len(got) != 20 {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSelfDeliveryUncounted(t *testing.T) {
	var k Kernel
	delivered := 0
	net := NewNetwork(&k, ConstantDelay{D: 500}, 1, func(e mutex.Envelope) { delivered++ })
	net.Send(mutex.Envelope{From: 3, To: 3, Msg: fakeMsg{"request", 0}})
	k.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if net.Total() != 0 {
		t.Fatalf("self message counted: Total = %d", net.Total())
	}
	if k.Now() != 0 {
		t.Fatalf("self delivery should be immediate, Now = %d", k.Now())
	}
}

func TestNetworkCountsByKind(t *testing.T) {
	var k Kernel
	net := NewNetwork(&k, ConstantDelay{D: 10}, 1, func(mutex.Envelope) {})
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 0}})
	net.Send(mutex.Envelope{From: 1, To: 0, Msg: fakeMsg{"reply", 0}})
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"reply", 1}})
	k.Run(0)
	counts := net.CountByKind()
	if counts["request"] != 1 || counts["reply"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if net.Total() != 3 {
		t.Fatalf("Total = %d, want 3", net.Total())
	}
}

func TestNetworkCrashDropsMessages(t *testing.T) {
	var k Kernel
	delivered := 0
	net := NewNetwork(&k, ConstantDelay{D: 10}, 1, func(mutex.Envelope) { delivered++ })
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 0}}) // in flight
	net.Crash(1)
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 1}}) // dropped at send
	net.Send(mutex.Envelope{From: 1, To: 0, Msg: fakeMsg{"reply", 2}})   // from crashed site
	k.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered = %d, want 0 (crash must drop in-flight too)", delivered)
	}
	if !net.Down(1) || net.Down(0) {
		t.Fatal("Down() reporting wrong state")
	}
}

func TestNetworkConstantDelayTiming(t *testing.T) {
	var k Kernel
	var at Time
	net := NewNetwork(&k, ConstantDelay{D: 777}, 1, func(mutex.Envelope) { at = k.Now() })
	net.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"request", 0}})
	k.Run(0)
	if at != 777 {
		t.Fatalf("delivery at %d, want 777", at)
	}
	if net.MeanDelay() != 777 {
		t.Fatalf("MeanDelay = %d", net.MeanDelay())
	}
}

func TestDelayDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := UniformDelay{Lo: 10, Hi: 20}
	for i := 0; i < 1000; i++ {
		d := u.Sample(rng)
		if d < 10 || d > 20 {
			t.Fatalf("uniform sample %d out of range", d)
		}
	}
	if u.Mean() != 15 {
		t.Fatalf("uniform mean = %d", u.Mean())
	}
	degenerate := UniformDelay{Lo: 5, Hi: 5}
	if d := degenerate.Sample(rng); d != 5 {
		t.Fatalf("degenerate uniform sample = %d", d)
	}

	e := ExponentialDelay{MeanD: 100}
	sum := 0.0
	for i := 0; i < 20000; i++ {
		d := e.Sample(rng)
		if d < 1 || d > 2000 {
			t.Fatalf("exponential sample %d out of [1, 20·mean]", d)
		}
		sum += float64(d)
	}
	mean := sum / 20000
	if mean < 80 || mean > 120 {
		t.Fatalf("exponential empirical mean = %v, want ≈100", mean)
	}
}
