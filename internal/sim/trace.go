package sim

import (
	"fmt"
	"io"
	"strings"

	"dqmx/internal/mutex"
)

// TraceEvent is one recorded message delivery.
type TraceEvent struct {
	At   Time
	From mutex.SiteID
	To   mutex.SiteID
	Kind string
	Msg  string
}

// Recorder captures delivered envelopes for post-mortem inspection and
// message-sequence rendering. Attach it with Recorder.Attach before running;
// recording every event of a large run is memory-hungry, so a Filter can
// restrict capture.
type Recorder struct {
	// Filter, when non-nil, decides which deliveries are recorded.
	Filter func(env mutex.Envelope) bool
	// Limit caps the number of recorded events (0 = unlimited).
	Limit int

	events []TraceEvent
}

// Attach hooks the recorder into the network, chaining any previous trace
// hook.
func (r *Recorder) Attach(n *Network) {
	prev := n.Trace
	n.Trace = func(at Time, env mutex.Envelope) {
		if prev != nil {
			prev(at, env)
		}
		r.record(at, env)
	}
}

func (r *Recorder) record(at Time, env mutex.Envelope) {
	if r.Filter != nil && !r.Filter(env) {
		return
	}
	if r.Limit > 0 && len(r.events) >= r.Limit {
		return
	}
	r.events = append(r.events, TraceEvent{
		At:   at,
		From: env.From,
		To:   env.To,
		Kind: env.Msg.Kind(),
		Msg:  fmt.Sprintf("%v", env.Msg),
	})
}

// Events returns the recorded deliveries in order.
func (r *Recorder) Events() []TraceEvent {
	out := make([]TraceEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// InvolvingSite filters the recording down to events touching one site.
func (r *Recorder) InvolvingSite(s mutex.SiteID) []TraceEvent {
	var out []TraceEvent
	for _, e := range r.events {
		if e.From == s || e.To == s {
			out = append(out, e)
		}
	}
	return out
}

// Render writes the trace as one line per delivery:
//
//	t=1000     0 -> 4  request(1,0)
func (r *Recorder) Render(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintf(w, "t=%-10d %3d -> %-3d %s\n", e.At, e.From, e.To, e.Msg); err != nil {
			return err
		}
	}
	return nil
}

// KindCounts tallies recorded events by message kind.
func (r *Recorder) KindCounts() map[string]int {
	out := make(map[string]int)
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// Summary renders a one-line digest ("120 events: request=40 reply=40 …").
func (r *Recorder) Summary() string {
	counts := r.KindCounts()
	parts := make([]string, 0, len(counts))
	for _, kind := range mutex.Kinds() {
		if c := counts[kind]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", kind, c))
		}
	}
	return fmt.Sprintf("%d events: %s", len(r.events), strings.Join(parts, " "))
}
