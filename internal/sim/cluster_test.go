package sim

import (
	"errors"
	"testing"

	"dqmx/internal/mutex"
)

// greedySite enters the CS the moment it is asked — with more than one site
// this violates mutual exclusion, which the cluster monitor must detect.
type greedySite struct {
	id   mutex.SiteID
	in   bool
	pend bool
}

func (g *greedySite) ID() mutex.SiteID { return g.id }
func (g *greedySite) InCS() bool       { return g.in }
func (g *greedySite) Pending() bool    { return g.pend }
func (g *greedySite) Request() mutex.Output {
	g.in = true
	return mutex.Output{Entered: true}
}
func (g *greedySite) Exit() mutex.Output {
	g.in = false
	return mutex.Output{}
}
func (g *greedySite) Deliver(mutex.Envelope) mutex.Output { return mutex.Output{} }

type greedyAlg struct{}

func (greedyAlg) Name() string { return "greedy" }
func (greedyAlg) NewSites(n int) ([]mutex.Site, error) {
	out := make([]mutex.Site, n)
	for i := range out {
		out[i] = &greedySite{id: mutex.SiteID(i)}
	}
	return out, nil
}

// stuckSite never makes progress: requests stay pending forever.
type stuckSite struct{ greedySite }

func (s *stuckSite) Request() mutex.Output {
	s.pend = true
	return mutex.Output{}
}

type stuckAlg struct{}

func (stuckAlg) Name() string { return "stuck" }
func (stuckAlg) NewSites(n int) ([]mutex.Site, error) {
	out := make([]mutex.Site, n)
	for i := range out {
		out[i] = &stuckSite{greedySite{id: mutex.SiteID(i)}}
	}
	return out, nil
}

func TestClusterDetectsSafetyViolation(t *testing.T) {
	c, err := NewCluster(Config{N: 3, Algorithm: greedyAlg{}, Seed: 1, CSTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.RequestAt(10, 1) // enters while site 0 still holds the CS
	c.Run(0)
	if err := c.Err(); !errors.Is(err, ErrSafetyViolation) {
		t.Fatalf("Err = %v, want safety violation", err)
	}
}

func TestClusterSingleGreedySiteIsFine(t *testing.T) {
	c, err := NewCluster(Config{N: 1, Algorithm: greedyAlg{}, Seed: 1, CSTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.RequestAt(100, 0)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if c.Completed() != 2 {
		t.Fatalf("Completed = %d, want 2", c.Completed())
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Exited-recs[0].Entered != 5 {
		t.Fatalf("CS time = %d, want 5", recs[0].Exited-recs[0].Entered)
	}
}

func TestClusterDetectsStarvation(t *testing.T) {
	c, err := NewCluster(Config{N: 2, Algorithm: stuckAlg{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.Run(0)
	if err := c.Err(); !errors.Is(err, ErrStarvation) {
		t.Fatalf("Err = %v, want starvation", err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{N: 0, Algorithm: greedyAlg{}}); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := NewCluster(Config{N: 3}); err == nil {
		t.Error("accepted nil algorithm")
	}
}

func TestClusterIssueIgnoredWhileBusy(t *testing.T) {
	c, err := NewCluster(Config{N: 1, Algorithm: greedyAlg{}, CSTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.RequestAt(10, 0) // site still in CS: dropped
	c.Run(0)
	if c.Completed() != 1 {
		t.Fatalf("Completed = %d, want 1", c.Completed())
	}
}

func TestClusterCrashedSiteCannotRequest(t *testing.T) {
	c, err := NewCluster(Config{N: 2, Algorithm: greedyAlg{}, CSTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.CrashAt(0, 1)
	c.RequestAt(50, 1)
	c.Run(0)
	if c.Issued() != 0 {
		t.Fatalf("Issued = %d, want 0", c.Issued())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}
