// Package sim is a deterministic discrete-event simulator for asynchronous
// message-passing systems. It provides the event kernel, a network model
// with configurable per-message delays, FIFO channels, message accounting,
// and crash injection, plus a Cluster driver that runs any
// mutex.Algorithm under a workload while checking safety and liveness
// invariants and collecting the metrics reported in the paper
// (messages per CS execution by type, synchronization delay, response time,
// throughput).
//
// Simulations are fully deterministic for a given seed: events at equal
// times are ordered by insertion sequence, and all randomness flows from a
// single seeded source.
package sim

import "container/heap"

// Time is simulated time in abstract units. Experiments conventionally use
// 1000 units for the mean message delay T.
type Time int64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event engine. The zero value is ready to use.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of scheduled events not yet executed.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past runs at
// the current time (events never travel backwards).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d time units from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Step executes the next event. It reports false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.steps++
	e.fn()
	return true
}

// Run executes events until the queue drains or maxSteps events have run
// (maxSteps <= 0 means no limit). It returns the number of events executed
// by this call.
func (k *Kernel) Run(maxSteps uint64) uint64 {
	var n uint64
	for maxSteps <= 0 || n < maxSteps {
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}
