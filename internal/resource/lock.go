package resource

import (
	"context"
	"errors"
)

// ErrLockLost reports that a previously granted lock was invalidated out
// from under its holder — the defining hazard of leased sessions: the
// session expired or failed over to a different arbiter, so the arbiter has
// (or will have) reclaimed the lock for the next waiter. Peer-to-peer
// instances never return it. Release treats it as a completed release: the
// handle's admission token is freed so the name stays usable.
var ErrLockLost = errors.New("resource: lock lost (session expired or failed over)")

// Lock is the handle for one named distributed lock. Handles are canonical —
// Manager.Lock returns the same *Lock for the same name — so every local
// user of a name shares one handle, and local contention queues on the
// handle instead of surfacing the protocol's one-request-per-site busy
// error. Remote contention is arbitrated by the resource's own instance of
// the quorum protocol.
//
// Like sync.Mutex, a Lock is not owner-checked: Release releases the lock
// whichever goroutine acquired it. Prefer Do, which pairs the two correctly
// even when the guarded function panics.
type Lock struct {
	name string
	inst Instance
	// sem is the local admission token: one in-flight protocol request per
	// name per site. Holding the token does not mean holding the lock — it
	// means this goroutine is the one talking to the protocol for this name.
	sem chan struct{}
}

func newLock(name string, inst Instance) *Lock {
	return &Lock{name: name, inst: inst, sem: make(chan struct{}, 1)}
}

// Name returns the lock's resource name.
func (l *Lock) Name() string { return l.name }

// Acquire blocks until this site holds the named lock, the context is
// cancelled, or the cluster shuts down. Concurrent Acquires on the same name
// at the same site queue locally; sites compete through the quorum protocol.
// As with Node.Acquire, cancelling after the request was issued hands the
// eventually granted lock straight back.
func (l *Lock) Acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := l.inst.Acquire(ctx); err != nil {
		<-l.sem
		return err
	}
	return nil
}

// TryAcquire attempts to take the lock within the context's lifetime and
// reports whether it succeeded. Running out of time — locally queued or
// waiting on the quorum — is (false, nil), not an error; errors are reserved
// for real failures such as a closed cluster.
func (l *Lock) TryAcquire(ctx context.Context) (bool, error) {
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return false, nil
	}
	ok, err := l.inst.TryAcquire(ctx)
	if !ok {
		<-l.sem
	}
	return ok, err
}

// Release exits the named lock's critical section. It returns the protocol's
// error when the lock is not held or the cluster has shut down. ErrLockLost
// still frees the handle (the arbiter reclaimed the lock; there is nothing
// left to hold), so callers can retry Acquire on the same handle after
// inspecting the error.
func (l *Lock) Release() error {
	err := l.inst.Release()
	if err != nil && !errors.Is(err, ErrLockLost) {
		return err
	}
	select {
	case <-l.sem:
	default:
	}
	return err
}

// Do runs fn while holding the lock: acquire, run, release — the release
// happens even when fn panics (the panic then propagates). It returns the
// acquisition error, fn's error, or — when fn succeeded — the release error.
// Do is the recommended way to use a Lock: it makes an unbalanced
// acquire/release pair unrepresentable.
func (l *Lock) Do(ctx context.Context, fn func(ctx context.Context) error) (err error) {
	if err := l.Acquire(ctx); err != nil {
		return err
	}
	defer func() {
		relErr := l.Release()
		if err == nil {
			err = relErr
		}
	}()
	return fn(ctx)
}
