package resource_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/resource"
)

// fakeInstance is a local mutex standing in for a protocol instance.
type fakeInstance struct {
	mu       sync.Mutex
	held     bool
	acquires atomic.Int64
	releases atomic.Int64
	injected atomic.Int64
	closed   atomic.Bool
}

func (f *fakeInstance) Acquire(ctx context.Context) error {
	if f.closed.Load() {
		return errors.New("closed")
	}
	f.mu.Lock()
	f.held = true
	f.acquires.Add(1)
	return nil
}

func (f *fakeInstance) TryAcquire(ctx context.Context) (bool, error) {
	if err := f.Acquire(ctx); err != nil {
		return false, err
	}
	return true, nil
}

func (f *fakeInstance) Release() error {
	if !f.held {
		return errors.New("not held")
	}
	f.held = false
	f.releases.Add(1)
	f.mu.Unlock()
	return nil
}

func (f *fakeInstance) Inject(env mutex.Envelope)         { f.injected.Add(1) }
func (f *fakeInstance) InjectBatch(envs []mutex.Envelope) { f.injected.Add(int64(len(envs))) }
func (f *fakeInstance) Close()                            { f.closed.Store(true) }

// newTestManager returns a manager over fake instances plus the creation
// log (name → instance), guarded by its own mutex.
func newTestManager(policy resource.Policy) (*resource.Manager, *sync.Map, *atomic.Int64) {
	var created sync.Map
	var builds atomic.Int64
	m := resource.NewManager(resource.Config{
		Policy: policy,
		New: func(name string) (resource.Instance, error) {
			builds.Add(1)
			inst := &fakeInstance{}
			created.Store(name, inst)
			return inst, nil
		},
	})
	return m, &created, &builds
}

func TestLockHandlesAreCanonical(t *testing.T) {
	m, _, builds := newTestManager(resource.Policy{})
	defer m.Close()
	a1, err := m.Lock("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Lock("a")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("two Lock calls for one name returned distinct handles")
	}
	if a1.Name() != "a" {
		t.Errorf("Name() = %q", a1.Name())
	}
	b, err := m.Lock("b")
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Error("distinct names share a handle")
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("factory ran %d times, want 2 (one per name)", got)
	}
}

func TestLockRejectsEmptyName(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	if _, err := m.Lock(""); err == nil {
		t.Fatal("empty name accepted: the default resource must stay reserved")
	}
}

func TestPolicyValidationRunsOncePerName(t *testing.T) {
	var checks atomic.Int64
	m, _, _ := newTestManager(resource.Policy{
		MaxNameLength: 8,
		Validate: func(name string) error {
			checks.Add(1)
			if name == "verboten" {
				return errors.New("no")
			}
			return nil
		},
	})
	defer m.Close()

	for i := 0; i < 5; i++ {
		if _, err := m.Lock("ok"); err != nil {
			t.Fatal(err)
		}
	}
	if got := checks.Load(); got != 1 {
		t.Errorf("validation hook ran %d times for one name, want 1", got)
	}
	if _, err := m.Lock("verboten"); err == nil {
		t.Error("validation hook was ignored")
	}
	if _, err := m.Lock("way-too-long-name"); err == nil {
		t.Error("oversized name accepted")
	}
	// Oversized names are rejected by the built-in rule before the hook.
	if got := checks.Load(); got != 2 {
		t.Errorf("hook ran %d times, want 2", got)
	}
}

func TestInjectRoutesAndInstantiatesLazily(t *testing.T) {
	m, created, _ := newTestManager(resource.Policy{})
	defer m.Close()
	if err := m.Inject(mutex.Envelope{Resource: "remote-opened", From: 1, To: 0, Msg: mutex.FailureMsg{}}); err != nil {
		t.Fatal(err)
	}
	v, ok := created.Load("remote-opened")
	if !ok {
		t.Fatal("inbound envelope did not instantiate its resource")
	}
	if got := v.(*fakeInstance).injected.Load(); got != 1 {
		t.Errorf("instance saw %d envelopes, want 1", got)
	}

	// A batch splits into per-resource runs.
	batch := []mutex.Envelope{
		{Resource: "x", To: 0, Msg: mutex.FailureMsg{}},
		{Resource: "x", To: 0, Msg: mutex.FailureMsg{}},
		{Resource: "y", To: 0, Msg: mutex.FailureMsg{}},
	}
	if err := m.InjectBatch(batch); err != nil {
		t.Fatal(err)
	}
	x, _ := created.Load("x")
	y, _ := created.Load("y")
	if x.(*fakeInstance).injected.Load() != 2 || y.(*fakeInstance).injected.Load() != 1 {
		t.Errorf("batch routing: x=%d y=%d, want 2/1",
			x.(*fakeInstance).injected.Load(), y.(*fakeInstance).injected.Load())
	}
}

func TestInjectRejectsInvalidResource(t *testing.T) {
	m, _, builds := newTestManager(resource.Policy{MaxNameLength: 4})
	defer m.Close()
	err := m.Inject(mutex.Envelope{Resource: "too-long-for-policy", To: 0, Msg: mutex.FailureMsg{}})
	if err == nil {
		t.Fatal("oversized inbound resource accepted")
	}
	if builds.Load() != 0 {
		t.Error("invalid resource still instantiated")
	}
}

func TestLocalContentionQueuesOnHandle(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	l, err := m.Lock("shared")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 50
	var inCS atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				if err := l.Acquire(context.Background()); err != nil {
					errs <- err
					return
				}
				if got := inCS.Add(1); got != 1 {
					errs <- fmt.Errorf("%d holders of one lock", got)
				}
				inCS.Add(-1)
				if err := l.Release(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDoReleasesOnPanic(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	l, err := m.Lock("guarded")
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed by Do")
			}
		}()
		_ = l.Do(context.Background(), func(context.Context) error { panic("boom") })
	}()
	// The lock must be free again: a fresh Do must finish promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ran := false
	if err := l.Do(ctx, func(context.Context) error { ran = true; return nil }); err != nil {
		t.Fatalf("Do after panic: %v", err)
	}
	if !ran {
		t.Error("guarded function did not run")
	}
}

func TestDoReturnsFnError(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	l, err := m.Lock("errs")
	if err != nil {
		t.Fatal(err)
	}
	want := errors.New("application failure")
	if got := l.Do(context.Background(), func(context.Context) error { return want }); !errors.Is(got, want) {
		t.Errorf("Do = %v, want %v", got, want)
	}
}

func TestTryAcquireTimeoutIsNotAnError(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	l, err := m.Lock("busy")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ok, err := l.TryAcquire(ctx)
	if ok || err != nil {
		t.Errorf("TryAcquire on held lock = (%v, %v), want (false, nil)", ok, err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	ok, err = l.TryAcquire(context.Background())
	if !ok || err != nil {
		t.Errorf("TryAcquire on free lock = (%v, %v), want (true, nil)", ok, err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerClose(t *testing.T) {
	m, created, _ := newTestManager(resource.Policy{})
	if _, err := m.Lock("a"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	v, _ := created.Load("a")
	if !v.(*fakeInstance).closed.Load() {
		t.Error("Close did not close the instance")
	}
	if _, err := m.Lock("b"); !errors.Is(err, resource.ErrClosed) {
		t.Errorf("Lock after Close = %v, want ErrClosed", err)
	}
	if err := m.Inject(mutex.Envelope{Resource: "c", Msg: mutex.FailureMsg{}}); !errors.Is(err, resource.ErrClosed) {
		t.Errorf("Inject after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestEachAndResources(t *testing.T) {
	m, _, _ := newTestManager(resource.Policy{})
	defer m.Close()
	for _, name := range []string{"b", "a", "c"} {
		if _, err := m.Lock(name); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Resources()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Resources() = %v", got)
	}
	if m.Len() != 3 {
		t.Errorf("Len() = %d", m.Len())
	}
	seen := 0
	m.Each(func(string, resource.Instance) { seen++ })
	if seen != 3 {
		t.Errorf("Each visited %d, want 3", seen)
	}
}

// TestConcurrentLockCreation hammers handle creation for overlapping names
// from many goroutines; with -race this exercises the sharded map.
func TestConcurrentLockCreation(t *testing.T) {
	m, _, builds := newTestManager(resource.Policy{})
	defer m.Close()
	const goroutines = 16
	const names = 32
	var wg sync.WaitGroup
	handles := make([][]*resource.Lock, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		handles[g] = make([]*resource.Lock, names)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < names; i++ {
				l, err := m.Lock(fmt.Sprintf("lock-%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				handles[g][i] = l
			}
		}()
	}
	wg.Wait()
	for i := 0; i < names; i++ {
		for g := 1; g < goroutines; g++ {
			if handles[g][i] != handles[0][i] {
				t.Fatalf("non-canonical handle for lock-%d", i)
			}
		}
	}
	if got := builds.Load(); got != names {
		t.Errorf("factory ran %d times, want %d", got, names)
	}
}
