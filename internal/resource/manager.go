// Package resource multiplexes many independently named locks over one set
// of protocol sites and one transport. Each resource name owns a full,
// independent instance of the mutual exclusion protocol (its own per-site
// state machines over the same coterie); the Manager at each site routes
// envelopes between instances by the envelope's Resource field and hands out
// canonical *Lock handles to application code.
//
// The package is deliberately transport-agnostic: a Manager only knows how
// to build an Instance for a new name (Config.New, supplied by the transport
// layer, which also stamps the resource onto outgoing envelopes and
// observability events) and how to find it again. Instances are created
// lazily — on the first Lock call for a name, or on the first inbound
// envelope carrying it — and the name→instance map is sharded so concurrent
// lookups for different locks never contend on one global mutex.
package resource

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dqmx/internal/mutex"
)

// Default is the reserved name of the default resource: the single lock that
// legacy single-mutex deployments (and the pre-resource wire format) use.
// It is addressable through the transport's Node shim, never through
// Manager.Lock.
const Default = ""

// DefaultMaxNameLength bounds resource names when Policy.MaxNameLength is
// unset. Names travel in every wire envelope, so they are kept short.
const DefaultMaxNameLength = 128

// shardCount is the number of map shards; a power of two so the hash folds
// cheaply. 16 shards keep 9-site × dozens-of-locks tests contention-free
// without wasting memory on tiny deployments.
const shardCount = 16

// ErrClosed is returned by Manager operations after Close.
var ErrClosed = errors.New("resource: lock manager is closed")

// Instance is one resource's protocol endpoint at this site. The transport
// layer implements it (internal/transport.Node does); the Manager routes
// inbound envelopes to it, Lock handles drive its blocking operations, and
// Close shuts it down.
type Instance interface {
	// Acquire blocks until the instance holds its critical section, the
	// context is cancelled, or the instance closes.
	Acquire(ctx context.Context) error
	// TryAcquire attempts to enter within the context's lifetime; running
	// out of time is (false, nil), not an error.
	TryAcquire(ctx context.Context) (bool, error)
	// Release exits the critical section.
	Release() error
	// Inject delivers one inbound envelope to the instance.
	Inject(env mutex.Envelope)
	// InjectBatch delivers several inbound envelopes at once, preserving
	// order (one mailbox lock instead of one per envelope).
	InjectBatch(envs []mutex.Envelope)
	// Close shuts the instance down.
	Close()
}

// Policy bounds and validates resource names. Validation runs exactly once
// per name — at instance creation — never on the per-acquire hot path,
// because handles and instances are cached by name.
type Policy struct {
	// MaxNameLength is the maximum name length in bytes
	// (DefaultMaxNameLength when zero or negative).
	MaxNameLength int
	// Validate, when non-nil, is an additional application check run after
	// the built-in rules. Returning an error rejects the name.
	Validate func(name string) error
}

// check applies the policy to a non-default name.
func (p Policy) check(name string) error {
	if name == Default {
		return errors.New("resource: empty lock name (the empty name is the reserved default resource)")
	}
	max := p.MaxNameLength
	if max <= 0 {
		max = DefaultMaxNameLength
	}
	if len(name) > max {
		return fmt.Errorf("resource: lock name of %d bytes exceeds the %d-byte limit", len(name), max)
	}
	if p.Validate != nil {
		if err := p.Validate(name); err != nil {
			return fmt.Errorf("resource: invalid lock name %q: %w", name, err)
		}
	}
	return nil
}

// Config configures a Manager.
type Config struct {
	// New builds this site's protocol instance for a newly seen resource.
	// The transport layer supplies it and is responsible for stamping the
	// resource name onto everything the instance sends or observes.
	New func(name string) (Instance, error)
	// Policy bounds resource names. The zero value applies the defaults.
	Policy Policy
}

// Manager multiplexes named locks at one site: it owns the name→instance
// table, creates instances lazily, routes inbound envelopes, and hands out
// canonical Lock handles.
type Manager struct {
	cfg    Config
	closed atomic.Bool
	shards [shardCount]shard
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

type entry struct {
	inst Instance
	lock *Lock
}

// NewManager returns an empty manager. Instances are created on demand via
// cfg.New.
func NewManager(cfg Config) *Manager {
	m := &Manager{cfg: cfg}
	for i := range m.shards {
		m.shards[i].entries = make(map[string]*entry)
	}
	return m
}

// shardFor hashes a name to its shard (FNV-1a, folded into shardCount).
func (m *Manager) shardFor(name string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &m.shards[h&(shardCount-1)]
}

// entryFor returns the canonical entry for a name, creating instance and
// handle on first use. The hot path is one shard read-lock and a map lookup;
// the policy check runs only on the miss path, so a name is validated once.
func (m *Manager) entryFor(name string) (*entry, error) {
	sh := m.shardFor(name)
	sh.mu.RLock()
	e := sh.entries[name]
	sh.mu.RUnlock()
	if e != nil {
		return e, nil
	}
	if name != Default {
		if err := m.cfg.Policy.check(name); err != nil {
			return nil, err
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[name]; e != nil {
		return e, nil
	}
	// Close sweeps every shard after setting the flag, so checking it under
	// the shard write lock guarantees no instance outlives Close.
	if m.closed.Load() {
		return nil, ErrClosed
	}
	inst, err := m.cfg.New(name)
	if err != nil {
		return nil, err
	}
	e = &entry{inst: inst, lock: newLock(name, inst)}
	sh.entries[name] = e
	return e, nil
}

// Lock returns the canonical handle for the named lock, instantiating the
// resource's protocol instance on first use. Two Lock calls with the same
// name return the same *Lock, so in-process contention for one name
// serializes locally on the handle instead of surfacing as protocol
// busy-errors. The empty name is rejected: the default resource belongs to
// the legacy single-mutex API.
func (m *Manager) Lock(name string) (*Lock, error) {
	if name == Default {
		return nil, m.cfg.Policy.check(name)
	}
	e, err := m.entryFor(name)
	if err != nil {
		return nil, err
	}
	return e.lock, nil
}

// Instance returns the protocol instance for a name, creating it on first
// use. Unlike Lock it accepts the default resource; the transport layer uses
// it to build the legacy Node shim.
func (m *Manager) Instance(name string) (Instance, error) {
	e, err := m.entryFor(name)
	if err != nil {
		return nil, err
	}
	return e.inst, nil
}

// Inject routes one inbound envelope to the instance named by its Resource
// field, instantiating it lazily (a remote site may open a lock this site
// has never touched). Envelopes whose resource fails validation are dropped
// with an error.
func (m *Manager) Inject(env mutex.Envelope) error {
	e, err := m.entryFor(env.Resource)
	if err != nil {
		return err
	}
	e.inst.Inject(env)
	return nil
}

// InjectBatch routes a batch of inbound envelopes, splitting it into
// consecutive same-resource runs so each instance takes its mailbox lock
// once per run. Order within each resource is preserved.
func (m *Manager) InjectBatch(envs []mutex.Envelope) error {
	var firstErr error
	for start := 0; start < len(envs); {
		end := start + 1
		for end < len(envs) && envs[end].Resource == envs[start].Resource {
			end++
		}
		e, err := m.entryFor(envs[start].Resource)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			e.inst.InjectBatch(envs[start:end])
		}
		start = end
	}
	return firstErr
}

// Each calls f for every instantiated resource. The instance table is
// snapshotted first, so f may call back into the manager freely.
func (m *Manager) Each(f func(name string, inst Instance)) {
	type item struct {
		name string
		inst Instance
	}
	var items []item
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for name, e := range sh.entries {
			items = append(items, item{name, e.inst})
		}
		sh.mu.RUnlock()
	}
	for _, it := range items {
		f(it.name, it.inst)
	}
}

// Resources lists every instantiated resource name, sorted.
func (m *Manager) Resources() []string {
	var out []string
	m.Each(func(name string, _ Instance) { out = append(out, name) })
	sort.Strings(out)
	return out
}

// Len returns the number of instantiated resources.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Close shuts every instance down and fails subsequent operations with
// ErrClosed. It is idempotent.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	var insts []Instance
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			insts = append(insts, e.inst)
		}
		sh.mu.Unlock()
	}
	for _, inst := range insts {
		inst.Close()
	}
}
