// Package wire defines the versioned envelope codecs that carry
// mutex.Envelope values over a byte stream, and the registry that maps
// protocol message types onto them.
//
// Two codecs exist. Wire version 0 is the original encoding/gob stream:
// self-describing, allocation-heavy, and kept only so mixed-version clusters
// interoperate during a rolling upgrade. Wire version 1 is a hand-rolled
// binary format — fixed frame layout, varint-encoded integers, a
// per-connection interning table for resource names, and pooled scratch
// buffers — built for the transport's hot path, where gob's per-frame
// reflection and buffering dominated the per-message cost (see PROTOCOL.md
// "Wire format v1" for the exact byte layout).
//
// A codec instance is stateless; encoders and decoders are not. Both carry
// per-stream state (gob's type-descriptor tracking, v1's interning tables),
// so a new connection needs a new encoder/decoder pair — reusing one across
// connections desynchronizes the stream. Encoders and decoders that hold
// pooled buffers implement io.Closer; transports should Close them when the
// connection dies so the scratch returns to the pool.
//
// Message types register themselves with RegisterMessage from their
// package's init: the registration covers both codecs at once (the binary
// tag plus encode/decode functions, and the encoding/gob registration that
// used to be a separate public prerequisite). The registry is written only
// during package initialization and read lock-free on the hot path.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"reflect"
	"sync"

	"dqmx/internal/mutex"
)

// Wire protocol versions, as carried in the connection handshake.
const (
	// VersionGob is wire version 0: the legacy encoding/gob stream.
	VersionGob byte = 0
	// VersionBinary is wire version 1: the hand-rolled binary format.
	VersionBinary byte = 1
	// MaxVersion is the newest version this build speaks.
	MaxVersion = VersionBinary
)

// Canonical codec names, as accepted by ForName (and the public
// dqmx.WireConfig.Codec knob).
const (
	NameGob    = "gob"
	NameBinary = "binary"
)

// Encoder writes envelopes as frames onto an underlying writer. Encoders
// carry per-stream state and must not be shared across connections or
// goroutines.
type Encoder interface {
	Encode(env mutex.Envelope) error
}

// Decoder reads envelope frames from an underlying reader. Malformed,
// truncated, or hostile input must surface as an error — never a panic —
// because the bytes come straight off a network socket.
type Decoder interface {
	Decode() (mutex.Envelope, error)
}

// Codec builds the encoder/decoder pair for one wire version. Codec values
// are stateless and safe to share.
type Codec interface {
	// Name is the codec's canonical name ("gob", "binary").
	Name() string
	// Version is the wire version byte carried in the handshake.
	Version() byte
	// NewEncoder builds a fresh per-connection encoder onto w.
	NewEncoder(w io.Writer) Encoder
	// NewDecoder builds a fresh per-connection decoder over r.
	NewDecoder(r io.Reader) Decoder
}

// ForVersion returns the codec speaking the given wire version.
func ForVersion(v byte) (Codec, error) {
	switch v {
	case VersionGob:
		return Gob(), nil
	case VersionBinary:
		return Binary(), nil
	}
	return nil, fmt.Errorf("wire: unknown wire version %d (max supported %d)", v, MaxVersion)
}

// ForName returns the codec with the given canonical name; the empty name
// selects the default (binary).
func ForName(name string) (Codec, error) {
	switch name {
	case "", NameBinary:
		return Binary(), nil
	case NameGob:
		return Gob(), nil
	}
	return nil, fmt.Errorf("wire: unknown codec %q (valid: %s, %s)", name, NameBinary, NameGob)
}

// msgCodec is one registered message type's binary wiring.
type msgCodec struct {
	tag byte
	enc func(b []byte, m mutex.Message) []byte
	dec func(r *Reader) (mutex.Message, error)
}

// The registry. Written only from package init functions (which the runtime
// serializes before main), read lock-free by every encoder and decoder; regMu
// only orders the writes themselves.
var (
	regMu     sync.Mutex
	regByType = make(map[reflect.Type]*msgCodec)
	regByTag  [256]*msgCodec
)

// RegisterMessage wires one concrete message type into both codecs: enc
// appends the message's binary-v1 field encoding to b, dec parses it back,
// and the prototype is also registered with encoding/gob so the v0 stream
// can carry it as an interface value. tag must be unique and non-zero (tag 0
// is the nil payload of standalone ack frames). Call it from the message
// package's init; duplicate registrations panic.
func RegisterMessage(tag byte, prototype mutex.Message,
	enc func(b []byte, m mutex.Message) []byte,
	dec func(r *Reader) (mutex.Message, error)) {
	if tag == 0 {
		panic("wire: tag 0 is reserved for the nil payload")
	}
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf(prototype)
	if regByTag[tag] != nil {
		panic(fmt.Sprintf("wire: tag %d registered twice (%v and %v)", tag, t, "existing"))
	}
	if _, dup := regByType[t]; dup {
		panic(fmt.Sprintf("wire: message type %v registered twice", t))
	}
	mc := &msgCodec{tag: tag, enc: enc, dec: dec}
	regByTag[tag] = mc
	regByType[t] = mc
	// gob registration rides along: the v0 codec needs every concrete type
	// behind the Msg interface field registered by name. This used to be a
	// public prerequisite (core.RegisterGobMessages); now it is an
	// implementation detail of registering for the wire at all.
	gob.Register(prototype)
}

// appendMessage appends the tag + field encoding of m. A nil message (the
// reliability sublayer's standalone ack frames) is tag 0 with no fields.
func appendMessage(b []byte, m mutex.Message) ([]byte, error) {
	if m == nil {
		return append(b, 0), nil
	}
	mc := regByType[reflect.TypeOf(m)]
	if mc == nil {
		return b, fmt.Errorf("wire: message type %T is not wire-registered", m)
	}
	b = append(b, mc.tag)
	return mc.enc(b, m), nil
}

// decodeMessage parses one tagged message.
func decodeMessage(r *Reader) (mutex.Message, error) {
	tag := r.Byte()
	if tag == 0 {
		return nil, r.Err()
	}
	mc := regByTag[tag]
	if mc == nil {
		return nil, fmt.Errorf("wire: unknown message tag %d", tag)
	}
	return mc.dec(r)
}

// Tags reserved for transport- and mutex-level payloads. Protocol packages
// own their own disjoint ranges (core: 1–7, lamport: 16–18,
// ricart-agrawala: 20–21, maekawa: 24–29, singhal: 32–33,
// suzuki-kasami: 36–37, raymond: 40–41, session: 48–55).
const (
	// TagHeartbeat is claimed by internal/transport for its liveness probe.
	TagHeartbeat byte = 8
	// tagFailure carries mutex.FailureMsg (§6 crash notifications).
	tagFailure byte = 9
	// TagConfig is claimed by internal/transport for membership-stage
	// announcements (the answer a peer sends when it receives a frame
	// stamped with a stale configuration epoch).
	TagConfig byte = 10
)

func init() {
	RegisterMessage(tagFailure, mutex.FailureMsg{},
		func(b []byte, m mutex.Message) []byte {
			return AppendSite(b, m.(mutex.FailureMsg).Failed)
		},
		func(r *Reader) (mutex.Message, error) {
			return mutex.FailureMsg{Failed: r.Site()}, nil
		})
}
