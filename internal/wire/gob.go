package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"dqmx/internal/mutex"
)

// Wire version 0: the legacy encoding/gob stream. Kept byte-compatible with
// pre-codec builds — the struct below carries the same name-matched fields as
// the old transport wireEnvelope, and v0 streams begin directly with gob's
// type descriptors (no handshake preamble) so an old binary on the far end
// never sees anything it does not expect.

// gobCodec is the stateless wire-v0 codec.
type gobCodec struct{}

// Gob returns the wire-v0 gob codec.
func Gob() Codec { return gobCodec{} }

// Name implements Codec.
func (gobCodec) Name() string { return NameGob }

// Version implements Codec.
func (gobCodec) Version() byte { return VersionGob }

// NewEncoder implements Codec.
func (gobCodec) NewEncoder(w io.Writer) Encoder {
	return &gobEncoder{enc: gob.NewEncoder(w)}
}

// NewDecoder implements Codec.
func (gobCodec) NewDecoder(r io.Reader) Decoder {
	return &gobDecoder{dec: gob.NewDecoder(r)}
}

// wireEnvelope is the gob stream's frame. Gob matches struct fields by name,
// so these must stay aligned with what historical peers produced.
type wireEnvelope struct {
	Resource string
	From     mutex.SiteID
	To       mutex.SiteID
	Msg      mutex.Message
	Seq      uint64
	Ack      uint64
}

// gobEncoder adapts a gob stream to the Encoder interface. Gob encoders
// track which type descriptors they have already transmitted, so one must
// live exactly as long as its connection.
type gobEncoder struct {
	enc *gob.Encoder
}

// Encode implements Encoder.
func (e *gobEncoder) Encode(env mutex.Envelope) error {
	return e.enc.Encode(wireEnvelope{
		Resource: env.Resource,
		From:     env.From,
		To:       env.To,
		Msg:      env.Msg,
		Seq:      env.Seq,
		Ack:      env.Ack,
	})
}

// gobDecoder adapts a gob stream to the Decoder interface.
type gobDecoder struct {
	dec *gob.Decoder
}

// Decode implements Decoder. Gob's decoder can panic on hostile input
// (malformed type descriptors), so the recover here converts that into a
// stream error the read loop handles like any other disconnect.
func (d *gobDecoder) Decode() (env mutex.Envelope, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("wire: gob decode panic: %v", r)
		}
	}()
	var we wireEnvelope
	if err := d.dec.Decode(&we); err != nil {
		return mutex.Envelope{}, err
	}
	return mutex.Envelope{
		Resource: we.Resource,
		From:     we.From,
		To:       we.To,
		Msg:      we.Msg,
		Seq:      we.Seq,
		Ack:      we.Ack,
	}, nil
}
