package wire

import (
	"bytes"
	"io"

	"dqmx/internal/mutex"
)

// RoundTrip encodes env through one fresh encoder/decoder pair of the codec
// and returns the decoded result. It exists for tests — per-protocol
// round-trip checks and the gob↔binary differential fuzzer — so they need
// not plumb buffers and stream state themselves.
func RoundTrip(c Codec, env mutex.Envelope) (mutex.Envelope, error) {
	var buf bytes.Buffer
	enc := c.NewEncoder(&buf)
	err := enc.Encode(env)
	if cl, ok := enc.(io.Closer); ok {
		cl.Close()
	}
	if err != nil {
		return mutex.Envelope{}, err
	}
	dec := c.NewDecoder(&buf)
	out, err := dec.Decode()
	if cl, ok := dec.(io.Closer); ok {
		cl.Close()
	}
	return out, err
}
