package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dqmx/internal/mutex"
)

// Binary wire format, version 1. One frame per envelope:
//
//	uvarint  payload length (bytes that follow; 1..maxFrame)
//	payload:
//	  uvarint  resource code: 0 = default resource, 1 = literal (uvarint
//	           length + bytes, appended to the connection's interning table),
//	           k ≥ 2 = interning-table entry k−2
//	  varint   From (zigzag)
//	  varint   To (zigzag)
//	  uvarint  Seq
//	  uvarint  Ack
//	  uvarint  Epoch (membership stage; 0 until a reconfiguration)
//	  byte     message tag (0 = nil payload: a standalone ack frame)
//	  ...      the registered message encoding for that tag
//
// All integers are little-endian base-128 varints (encoding/binary). The
// interning table is per-connection state built identically on both sides
// from the literal escapes, so a named lock's resource string crosses the
// wire once per connection instead of once per message. PROTOCOL.md "Wire
// format v1" documents the layout normatively.

const (
	// maxFrame bounds one frame's payload so a hostile length prefix cannot
	// force a giant allocation. Generous against real traffic: the largest
	// legitimate payload (a suzuki-kasami token at N=4096) stays far under it.
	maxFrame = 1 << 20
	// maxInternedNames bounds the per-connection interning table; a sender
	// that overflows it (thousands of distinct resource names on one
	// connection) gets a stream error, not unbounded receiver memory.
	maxInternedNames = 1 << 12
)

// binaryCodec is the stateless wire-v1 codec.
type binaryCodec struct{}

// Binary returns the wire-v1 binary codec.
func Binary() Codec { return binaryCodec{} }

// Name implements Codec.
func (binaryCodec) Name() string { return NameBinary }

// Version implements Codec.
func (binaryCodec) Version() byte { return VersionBinary }

// NewEncoder implements Codec.
func (binaryCodec) NewEncoder(w io.Writer) Encoder {
	return &binaryEncoder{w: w, buf: getBuf(), names: make(map[string]uint64)}
}

// NewDecoder implements Codec.
func (binaryCodec) NewDecoder(r io.Reader) Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &binaryDecoder{r: br, buf: getBuf()}
}

// binaryEncoder encodes frames into a reused scratch buffer and writes them
// to w (the transport's bufio.Writer). Steady state allocates nothing: the
// scratch grows to the high-water frame size once, and interned names are
// map hits after their first appearance.
type binaryEncoder struct {
	w     io.Writer
	buf   *[]byte
	names map[string]uint64
	// lenBuf is scratch for the frame length prefix. A local array would
	// escape to the heap through the io.Writer interface call; as a field it
	// costs one allocation for the encoder's whole lifetime.
	lenBuf [binary.MaxVarintLen64]byte
}

// Encode implements Encoder.
func (e *binaryEncoder) Encode(env mutex.Envelope) error {
	if e.buf == nil {
		return errors.New("wire: encoder is closed")
	}
	b := (*e.buf)[:0]
	b, newName, err := e.appendResource(b, env.Resource)
	if err != nil {
		return err
	}
	b = AppendSite(b, env.From)
	b = AppendSite(b, env.To)
	b = AppendUint(b, env.Seq)
	b = AppendUint(b, env.Ack)
	b = AppendUint(b, env.Epoch)
	b, err = appendMessage(b, env.Msg)
	*e.buf = b // keep the grown backing array either way
	if err != nil {
		return err
	}
	if len(b) > maxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds limit %d", len(b), maxFrame)
	}
	// Commit the interning entry only once the frame is certain to reach the
	// writer: an encode error above must not leave the table ahead of what
	// the decoder has seen. (A failed Write tears the connection — and this
	// encoder — down, so partial writes cannot desynchronize a live stream.)
	if newName != "" {
		e.names[newName] = uint64(len(e.names)) + 2
	}
	n := binary.PutUvarint(e.lenBuf[:], uint64(len(b)))
	if _, err := e.w.Write(e.lenBuf[:n]); err != nil {
		return err
	}
	_, err = e.w.Write(b)
	return err
}

// appendResource emits the resource's interning code, using the literal
// escape on a name's first appearance. A new name is returned rather than
// committed: Encode adds it to the table only when the frame goes out.
func (e *binaryEncoder) appendResource(b []byte, name string) ([]byte, string, error) {
	if name == "" {
		return append(b, 0), "", nil
	}
	if id, ok := e.names[name]; ok {
		return AppendUint(b, id), "", nil
	}
	if len(e.names) >= maxInternedNames {
		return b, "", fmt.Errorf("wire: interning table full (%d names on one connection)", maxInternedNames)
	}
	b = append(b, 1)
	return AppendString(b, name), name, nil
}

// Close implements io.Closer: the scratch buffer returns to the pool. The
// encoder is unusable afterwards.
func (e *binaryEncoder) Close() error {
	putBuf(e.buf)
	e.buf = nil
	return nil
}

// binaryDecoder reads frames into a reused scratch buffer and parses them in
// place. Its interning table mirrors the peer encoder's, entry for entry,
// because both sides process the same frames in the same stream order.
type binaryDecoder struct {
	r     *bufio.Reader
	buf   *[]byte
	names []string
}

// Decode implements Decoder.
func (d *binaryDecoder) Decode() (mutex.Envelope, error) {
	if d.buf == nil {
		return mutex.Envelope{}, errors.New("wire: decoder is closed")
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return mutex.Envelope{}, err
	}
	if n == 0 || n > maxFrame {
		return mutex.Envelope{}, fmt.Errorf("wire: frame payload length %d out of range (1..%d)", n, maxFrame)
	}
	buf := *d.buf
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	*d.buf = buf
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a frame announced bytes it never sent
		}
		return mutex.Envelope{}, err
	}
	r := NewReader(buf)
	var env mutex.Envelope
	env.Resource = d.readResource(r)
	env.From = r.Site()
	env.To = r.Site()
	env.Seq = r.Uint()
	env.Ack = r.Uint()
	env.Epoch = r.Uint()
	msg, err := decodeMessage(r)
	if err != nil {
		return mutex.Envelope{}, err
	}
	env.Msg = msg
	if err := r.Err(); err != nil {
		return mutex.Envelope{}, err
	}
	if r.Remaining() != 0 {
		return mutex.Envelope{}, fmt.Errorf("wire: %d trailing bytes after frame", r.Remaining())
	}
	return env, nil
}

// readResource resolves the frame's resource code against the table.
func (d *binaryDecoder) readResource(r *Reader) string {
	code := r.Uint()
	switch {
	case r.Err() != nil:
		return ""
	case code == 0:
		return ""
	case code == 1:
		name := r.String()
		if r.Err() != nil {
			return ""
		}
		if name == "" {
			r.Fail("interned empty resource name")
			return ""
		}
		if len(d.names) >= maxInternedNames {
			r.Fail("interning table full")
			return ""
		}
		d.names = append(d.names, name)
		return name
	default:
		i := code - 2
		if i >= uint64(len(d.names)) {
			r.Fail("resource code %d beyond interning table (%d entries)", code, len(d.names))
			return ""
		}
		return d.names[i]
	}
}

// Close implements io.Closer: the scratch buffer returns to the pool. The
// decoder is unusable afterwards.
func (d *binaryDecoder) Close() error {
	putBuf(d.buf)
	d.buf = nil
	return nil
}
