package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"reflect"
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

func TestAppendReaderPrimitives(t *testing.T) {
	var b []byte
	b = AppendUint(b, 0)
	b = AppendUint(b, 1<<40)
	b = AppendSite(b, mutex.SiteID(7))
	b = AppendSite(b, timestamp.None)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "rsrc-a")
	b = AppendString(b, "")
	b = AppendTimestamp(b, timestamp.Max)
	b = AppendTimestamp(b, timestamp.Timestamp{Seq: 42, Site: 3})

	r := NewReader(b)
	if got := r.Uint(); got != 0 {
		t.Errorf("Uint = %d, want 0", got)
	}
	if got := r.Uint(); got != 1<<40 {
		t.Errorf("Uint = %d, want %d", got, uint64(1)<<40)
	}
	if got := r.Site(); got != 7 {
		t.Errorf("Site = %d, want 7", got)
	}
	if got := r.Site(); got != timestamp.None {
		t.Errorf("Site = %d, want None (%d)", got, timestamp.None)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip mismatch")
	}
	if got := r.String(); got != "rsrc-a" {
		t.Errorf("String = %q, want rsrc-a", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.Timestamp(); !got.IsMax() {
		t.Errorf("Timestamp = %v, want Max", got)
	}
	if got := r.Timestamp(); got.Seq != 42 || got.Site != 3 {
		t.Errorf("Timestamp = %v, want {42 3}", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderSentinelCosts(t *testing.T) {
	// The sentinel values must stay single-byte plus flag, not 10-byte varints.
	if n := len(AppendSite(nil, timestamp.None)); n != 1 {
		t.Errorf("None site encodes in %d bytes, want 1", n)
	}
	if n := len(AppendTimestamp(nil, timestamp.Max)); n != 1 {
		t.Errorf("Max timestamp encodes in %d bytes, want 1", n)
	}
}

func TestReaderHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty uvarint":         nil,
		"overlong uvarint":      bytes.Repeat([]byte{0x80}, 11),
		"bad bool":              {2},
		"bad timestamp flag":    {9},
		"string past end":       append(AppendUint(nil, 100), 'x'),
		"truncated timestamp":   {1, 42},
		"missing byte entirely": {},
	}
	for name, data := range cases {
		r := NewReader(data)
		switch name {
		case "empty uvarint", "overlong uvarint":
			r.Uint()
		case "bad bool":
			r.Bool()
		case "bad timestamp flag", "truncated timestamp":
			r.Timestamp()
		case "string past end":
			_ = r.String()
		case "missing byte entirely":
			r.Byte()
		}
		if r.Err() == nil {
			t.Errorf("%s: expected sticky error, got nil", name)
		}
	}
	// The error sticks: later reads return zero values, no panic.
	r := NewReader([]byte{0x80})
	r.Uint()
	if r.Byte() != 0 || r.Site() != 0 || r.String() != "" {
		t.Error("reads after failure should return zero values")
	}
}

func TestReaderLenBounded(t *testing.T) {
	// A hostile element count larger than the remaining bytes must fail
	// before any allocation sized by it.
	b := AppendUint(nil, 1<<50)
	r := NewReader(b)
	if n := r.Len(); n != 0 || r.Err() == nil {
		t.Fatalf("Len = %d err = %v; want 0 and an error", n, r.Err())
	}
}

func testEnvelope(res string) mutex.Envelope {
	return mutex.Envelope{
		Resource: res,
		From:     2,
		To:       5,
		Msg:      mutex.FailureMsg{Failed: 3},
		Seq:      9,
		Ack:      4,
	}
}

func TestRoundTripBothCodecs(t *testing.T) {
	envs := []mutex.Envelope{
		testEnvelope(""),
		testEnvelope("named-lock"),
		{From: 1, To: 2, Seq: 100, Ack: 99}, // nil Msg: standalone ack frame
	}
	for _, c := range []Codec{Binary(), Gob()} {
		for _, env := range envs {
			got, err := RoundTrip(c, env)
			if err != nil {
				t.Fatalf("%s: RoundTrip(%+v): %v", c.Name(), env, err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("%s: round-trip = %+v, want %+v", c.Name(), got, env)
			}
		}
	}
}

func TestBinaryInterning(t *testing.T) {
	var buf bytes.Buffer
	enc := Binary().NewEncoder(&buf)
	env := testEnvelope("a-reasonably-long-resource-name")
	if err := enc.Encode(env); err != nil {
		t.Fatal(err)
	}
	first := buf.Len()
	if err := enc.Encode(env); err != nil {
		t.Fatal(err)
	}
	second := buf.Len() - first
	if second >= first {
		t.Errorf("second frame (%dB) not smaller than first (%dB); interning not effective", second, first)
	}
	if second > 10 {
		t.Errorf("interned frame is %dB, want ≤10 (name must not repeat)", second)
	}
	dec := Binary().NewDecoder(&buf)
	for i := 0; i < 2; i++ {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Errorf("frame %d = %+v, want %+v", i, got, env)
		}
	}
}

func TestBinaryInterningTableFull(t *testing.T) {
	enc := Binary().NewEncoder(io.Discard).(*binaryEncoder)
	for i := 0; i < maxInternedNames; i++ {
		if err := enc.Encode(testEnvelope(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("name %d: %v", i, err)
		}
	}
	if err := enc.Encode(testEnvelope("one-too-many")); err == nil {
		t.Fatal("expected interning-table-full error")
	}
	// The default resource and already-interned names still work.
	if err := enc.Encode(testEnvelope("")); err != nil {
		t.Fatalf("default resource after full table: %v", err)
	}
	if err := enc.Encode(testEnvelope("r0")); err != nil {
		t.Fatalf("interned name after full table: %v", err)
	}
}

func TestBinaryEncodeErrorKeepsTableConsistent(t *testing.T) {
	// An encode failure after a fresh name appears must not commit the name:
	// otherwise the encoder's next interned reference would point at a table
	// entry the decoder never learned.
	var buf bytes.Buffer
	enc := Binary().NewEncoder(&buf)
	bad := testEnvelope("fresh-name")
	bad.Msg = unregisteredMsg{}
	if err := enc.Encode(bad); err == nil {
		t.Fatal("expected unregistered-message error")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed encode wrote %d bytes", buf.Len())
	}
	good := testEnvelope("fresh-name")
	if err := enc.Encode(good); err != nil {
		t.Fatal(err)
	}
	got, err := Binary().NewDecoder(&buf).Decode()
	if err != nil {
		t.Fatalf("decode after failed encode: %v", err)
	}
	if !reflect.DeepEqual(got, good) {
		t.Errorf("decoded %+v, want %+v", got, good)
	}
}

type unregisteredMsg struct{}

func (unregisteredMsg) Kind() string { return "unregistered" }

func TestBinaryDecodeHostileFrames(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		enc := Binary().NewEncoder(&buf)
		if err := enc.Encode(testEnvelope("x")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"zero length":        {0},
		"huge length":        binary.AppendUvarint(nil, maxFrame+1),
		"announced not sent": binary.AppendUvarint(nil, 500),
		"truncated frame":    valid[:len(valid)-2],
		"unknown tag":        frameWith(t, func(b []byte) []byte { return append(b, 0xEE) }),
		"trailing bytes":     frameWith(t, func(b []byte) []byte { return append(b, 0, 1, 2, 3) }),
		"bad resource code":  frame(t, AppendUint(nil, 99)), // table is empty
		"empty interned":     frame(t, append([]byte{1}, AppendString(nil, "")...)),
	}
	for name, data := range cases {
		dec := Binary().NewDecoder(bytes.NewReader(data))
		if _, err := dec.Decode(); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

// frame wraps a payload in a length prefix.
func frame(t *testing.T, payload []byte) []byte {
	t.Helper()
	return append(binary.AppendUvarint(nil, uint64(len(payload))), payload...)
}

// frameWith builds a payload with a valid envelope prefix (default resource,
// From, To, Seq, Ack) and lets the caller corrupt the message section.
func frameWith(t *testing.T, f func([]byte) []byte) []byte {
	t.Helper()
	b := []byte{0} // default resource
	b = AppendSite(b, 1)
	b = AppendSite(b, 2)
	b = AppendUint(b, 3)
	b = AppendUint(b, 4)
	return frame(t, f(b))
}

func TestGobDecodeHostileNoPanic(t *testing.T) {
	inputs := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0x7F}, 64),
		{},
	}
	for _, in := range inputs {
		dec := Gob().NewDecoder(bytes.NewReader(in))
		if _, err := dec.Decode(); err == nil {
			t.Errorf("input %x: expected error", in)
		}
	}
}

func TestForVersionForName(t *testing.T) {
	for _, tc := range []struct {
		v    byte
		name string
	}{{VersionGob, NameGob}, {VersionBinary, NameBinary}} {
		c, err := ForVersion(tc.v)
		if err != nil || c.Name() != tc.name {
			t.Errorf("ForVersion(%d) = %v, %v", tc.v, c, err)
		}
		c, err = ForName(tc.name)
		if err != nil || c.Version() != tc.v {
			t.Errorf("ForName(%q) = %v, %v", tc.name, c, err)
		}
	}
	if c, err := ForName(""); err != nil || c.Name() != NameBinary {
		t.Errorf("ForName(\"\") = %v, %v; want binary", c, err)
	}
	if _, err := ForVersion(200); err == nil {
		t.Error("ForVersion(200): expected error")
	}
	if _, err := ForName("json"); err == nil {
		t.Error("ForName(json): expected error")
	}
}

func benchmarkEncode(b *testing.B, c Codec) {
	enc := c.NewEncoder(io.Discard)
	env := testEnvelope("bench-resource")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeGob(b *testing.B)    { benchmarkEncode(b, Gob()) }
func BenchmarkEncodeBinary(b *testing.B) { benchmarkEncode(b, Binary()) }
