package wire

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// Append-side primitives for the binary codec's field encodings. Message
// packages use these from their RegisterMessage encode functions; everything
// bottoms out in the stdlib's varint appenders, so the append path never
// allocates beyond the destination slice's growth.

// AppendUint appends an unsigned varint.
func AppendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendSite appends a site identifier as a zigzag varint: real sites are
// small non-negative integers (one byte), and the timestamp.None sentinel
// (−1) used by release messages still encodes in one byte.
func AppendSite(b []byte, id mutex.SiteID) []byte {
	return binary.AppendVarint(b, int64(id))
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendTimestamp appends a request timestamp. A leading flag byte separates
// the (max, max) sentinel — whose varint encoding would otherwise cost 10+10
// bytes — from real timestamps, and keeps the zero value distinct from the
// sentinel on the wire.
func AppendTimestamp(b []byte, ts timestamp.Timestamp) []byte {
	if ts.IsMax() {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, ts.Seq)
	return binary.AppendVarint(b, int64(ts.Site))
}

// Reader parses one binary frame payload with a sticky error: every getter
// bounds-checks, returns the zero value once the reader has failed, and the
// frame decoder checks Err once at the end. That keeps hostile input — the
// bytes come straight off a socket — from panicking a read loop without
// sprinkling error checks through every message decoder.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps one frame payload.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Err returns the first parse error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Fail records a parse error (used by decoders for semantic violations such
// as an unknown interning-table index).
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Byte consumes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.Fail("truncated frame: missing byte")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Uint consumes an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.Fail("truncated or overlong uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int consumes a zigzag varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.Fail("truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

// Site consumes a site identifier.
func (r *Reader) Site() mutex.SiteID { return mutex.SiteID(r.Int()) }

// Bool consumes one flag byte; any value other than 0 or 1 is an error, so
// a canonical encoding has exactly one byte representation.
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid bool byte")
		return false
	}
}

// Len consumes an element count for a length-prefixed sequence whose
// elements each occupy at least one byte, bounding it by the bytes actually
// remaining — a hostile count can therefore never force a giant allocation.
func (r *Reader) Len() int {
	n := r.Uint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.Fail("sequence length %d exceeds %d remaining bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Timestamp consumes a request timestamp (see AppendTimestamp).
func (r *Reader) Timestamp() timestamp.Timestamp {
	switch r.Byte() {
	case 0:
		return timestamp.Max
	case 1:
		seq := r.Uint()
		site := r.Site()
		return timestamp.Timestamp{Seq: seq, Site: site}
	default:
		r.Fail("invalid timestamp flag byte")
		return timestamp.Timestamp{}
	}
}

// bufPool recycles frame scratch buffers across encoder/decoder lifetimes
// (one buffer lives for a whole connection; the pool matters on reconnect
// churn and for short-lived test streams).
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if b != nil {
		*b = (*b)[:0]
		bufPool.Put(b)
	}
}
