package core

import (
	"fmt"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// The seven control messages of the delay-optimal protocol (§3.1). Every
// message carries the request timestamps needed to detect staleness: proxied
// replies travel on different channels than the arbiter's own messages, so
// FIFO alone cannot order them (see DESIGN.md).

// requestMsg asks an arbiter for its permission to enter the CS.
type requestMsg struct {
	// TS is the requester's Lamport timestamp (sn, i).
	TS timestamp.Timestamp
	// Refresh marks a §6 crash-refresh resend: the requester observed a
	// failure while it still lacked this arbiter's grant, so the grant may
	// have died in a crashed proxy's custody.
	Refresh bool
	// Dead is the set of sites the requester knew to have crashed when it
	// sent the refresh, smallest first. Because the transport severs a dead
	// peer's streams before announcing the crash, a proxied reply carried by
	// a site in this set is provably undeliverable — the arbiter may re-issue
	// that grant without risking a duplicate. A reply proxied by a site NOT
	// in this set may still be in flight; re-issuing would race a later
	// inquire/yield and could double-grant the permission.
	Dead []mutex.SiteID
}

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// claimsDead reports whether the refresh declares the given site crashed.
func (m requestMsg) claimsDead(id mutex.SiteID) bool {
	for _, f := range m.Dead {
		if f == id {
			return true
		}
	}
	return false
}

func (m requestMsg) String() string {
	if !m.Refresh {
		return fmt.Sprintf("request%v", m.TS)
	}
	return fmt.Sprintf("request%v+refresh%v", m.TS, m.Dead)
}

// transferInfo asks the receiving lock holder to forward the arbiter's
// permission directly to Target when it exits the CS. It travels either as a
// standalone transferMsg or piggybacked on a reply or inquire.
type transferInfo struct {
	// Arbiter is the site whose permission is being proxied.
	Arbiter mutex.SiteID
	// TargetTS identifies the request (and requester) to forward to.
	TargetTS timestamp.Timestamp
}

// replyMsg grants the permission of Arbiter to the request ReqTS. It is sent
// by the arbiter itself or forwarded by an exiting lock holder acting as the
// arbiter's proxy — that indirection is what cuts the synchronization delay
// from 2T to T.
type replyMsg struct {
	// Arbiter is the site whose permission this reply carries.
	Arbiter mutex.SiteID
	// ReqTS is the granted request, used to discard stale replies.
	ReqTS timestamp.Timestamp
	// Transfer optionally piggybacks a transfer instruction (A.4, §6).
	Transfer *transferInfo
}

// Kind implements mutex.Message.
func (replyMsg) Kind() string { return mutex.KindReply }

func (m replyMsg) String() string { return fmt.Sprintf("reply(arb=%d,%v)", m.Arbiter, m.ReqTS) }

// releaseMsg tells an arbiter that the sender exited the CS. If Fwd is not
// timestamp.None the sender forwarded the arbiter's permission to FwdTS's
// requester on the arbiter's behalf; the arbiter re-points its lock rather
// than granting anew. A releaseMsg whose ReqTS is still queued (not locked)
// acts as a withdrawal, which the §6 recovery protocol uses when a site
// abandons a quorum member after a failure.
type releaseMsg struct {
	// ReqTS is the releasing request.
	ReqTS timestamp.Timestamp
	// Fwd is the site that received the forwarded permission, or
	// timestamp.None when the permission was not transferred.
	Fwd mutex.SiteID
	// FwdTS is the request the permission was forwarded to (valid when Fwd
	// is set).
	FwdTS timestamp.Timestamp
	// Withdraw marks a §6 recovery withdrawal: the request abandons its
	// queue slot (or lock) at this arbiter instead of reporting a CS exit.
	// The distinction matters because a yielded request can be queued and
	// proxy-granted at the same time; its normal release must then be
	// buffered until the arbiter's lock catches up, not treated as a
	// dequeue.
	Withdraw bool
}

// Kind implements mutex.Message.
func (releaseMsg) Kind() string { return mutex.KindRelease }

func (m releaseMsg) String() string {
	if m.Fwd == timestamp.None {
		return fmt.Sprintf("release(%v)", m.ReqTS)
	}
	return fmt.Sprintf("release(%v,fwd=%v)", m.ReqTS, m.FwdTS)
}

// inquireMsg asks the current lock holder whether it has succeeded in
// collecting all replies; an unsuccessful holder answers with a yield.
type inquireMsg struct {
	// Arbiter is the inquiring site.
	Arbiter mutex.SiteID
	// HolderTS is the arbiter's current lock value, identifying which grant
	// is being inquired (stale inquires are ignored).
	HolderTS timestamp.Timestamp
}

// Kind implements mutex.Message.
func (inquireMsg) Kind() string { return mutex.KindInquire }

func (m inquireMsg) String() string { return fmt.Sprintf("inquire(arb=%d)", m.Arbiter) }

// failMsg tells a requester that the arbiter has granted a higher-priority
// request and the requester is not currently first in line.
type failMsg struct {
	// Arbiter is the refusing site.
	Arbiter mutex.SiteID
	// ReqTS is the requester's request being refused.
	ReqTS timestamp.Timestamp
}

// Kind implements mutex.Message.
func (failMsg) Kind() string { return mutex.KindFail }

func (m failMsg) String() string { return fmt.Sprintf("fail(arb=%d,%v)", m.Arbiter, m.ReqTS) }

// yieldMsg returns a permission to the arbiter so it can re-grant to a
// higher-priority request; the yielding site waits to be granted again.
type yieldMsg struct {
	// ReqTS is the yielding request (the arbiter's current lock value).
	ReqTS timestamp.Timestamp
}

// Kind implements mutex.Message.
func (yieldMsg) Kind() string { return mutex.KindYield }

func (m yieldMsg) String() string { return fmt.Sprintf("yield(%v)", m.ReqTS) }

// transferMsg carries a transferInfo to the current lock holder, optionally
// piggybacking the arbiter's inquire (counted as a single message, per the
// paper's accounting).
type transferMsg struct {
	// Transfer is the forwarding instruction.
	Transfer transferInfo
	// HolderTS is the arbiter's current lock value; holders ignore transfers
	// that do not match their active request.
	HolderTS timestamp.Timestamp
	// Inquire piggybacks an inquire for the same holder.
	Inquire bool
}

// Kind implements mutex.Message.
func (transferMsg) Kind() string { return mutex.KindTransfer }

func (m transferMsg) String() string {
	s := fmt.Sprintf("transfer(arb=%d,to=%v)", m.Transfer.Arbiter, m.Transfer.TargetTS)
	if m.Inquire {
		s += "+inquire"
	}
	return s
}
