package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
	"dqmx/internal/wire"
)

// wireMessages returns one representative value per §3.1 message type,
// exercising every optional branch (piggybacked transfer, None forwarding,
// sentinel timestamps).
func wireMessages() []mutex.Message {
	ts := func(seq uint64, site mutex.SiteID) timestamp.Timestamp {
		return timestamp.Timestamp{Seq: seq, Site: site}
	}
	return []mutex.Message{
		requestMsg{TS: ts(1, 0)},
		requestMsg{TS: ts(2, 1), Refresh: true, Dead: []mutex.SiteID{0, 3}},
		replyMsg{Arbiter: 2, ReqTS: ts(3, 1)},
		replyMsg{Arbiter: 2, ReqTS: ts(3, 1), Transfer: &transferInfo{Arbiter: 4, TargetTS: ts(5, 2)}},
		releaseMsg{ReqTS: ts(6, 0), Fwd: timestamp.None, FwdTS: timestamp.Timestamp{}},
		releaseMsg{ReqTS: ts(6, 0), Fwd: 3, FwdTS: ts(7, 3), Withdraw: true},
		inquireMsg{Arbiter: 1, HolderTS: ts(8, 2)},
		failMsg{Arbiter: 0, ReqTS: ts(9, 4)},
		yieldMsg{ReqTS: ts(10, 1)},
		transferMsg{Transfer: transferInfo{Arbiter: 5, TargetTS: timestamp.Max}, HolderTS: ts(11, 0), Inquire: true},
	}
}

func TestWireRoundTripCoreMessages(t *testing.T) {
	for _, c := range []wire.Codec{wire.Binary(), wire.Gob()} {
		for _, msg := range wireMessages() {
			env := mutex.Envelope{Resource: "r", From: 1, To: 2, Msg: msg, Seq: 3, Ack: 4}
			got, err := wire.RoundTrip(c, env)
			if err != nil {
				t.Fatalf("%s: %T: %v", c.Name(), msg, err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("%s: %T: round-trip = %+v, want %+v", c.Name(), msg, got, env)
			}
		}
	}
}

// TestCodecAB is the bench-smoke ratio assertion: the binary codec must beat
// gob by ≥3× ns/op on a representative hot-path message mix with near-zero
// steady-state allocations. It measures via testing.Benchmark so the usual
// calibration machinery absorbs scheduler noise; the margin between the
// observed ratio (~10×) and the 3× floor keeps it non-flaky.
func TestCodecAB(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion; skipped in -short")
	}
	msgs := wireMessages()
	roundTrip := func(c wire.Codec) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			var buf bytes.Buffer
			enc := c.NewEncoder(&buf)
			dec := c.NewDecoder(&buf)
			env := mutex.Envelope{Resource: "ab-resource", From: 1, To: 2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env.Msg = msgs[i%len(msgs)]
				env.Seq++
				if err := enc.Encode(env); err != nil {
					b.Fatal(err)
				}
				if _, err := dec.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	gob, bin := roundTrip(wire.Gob()), roundTrip(wire.Binary())
	gobNs, binNs := float64(gob.NsPerOp()), float64(bin.NsPerOp())
	ratio := gobNs / binNs
	t.Logf("gob %.0f ns/op %d B/op; binary %.0f ns/op %d B/op; ratio %.1f×",
		gobNs, gob.AllocedBytesPerOp(), binNs, bin.AllocedBytesPerOp(), ratio)
	if ratio < 3 {
		t.Errorf("binary codec only %.2f× faster than gob, want ≥3×", ratio)
	}
	// The writer hot path — encode alone — must be allocation-free in steady
	// state (pooled scratch, interned names). The round-trip number above
	// also carries the decode side's unavoidable interface boxing, so the
	// zero-alloc assertion goes on an encode-only measurement.
	encOnly := testing.Benchmark(func(b *testing.B) {
		enc := wire.Binary().NewEncoder(io.Discard)
		env := mutex.Envelope{Resource: "ab-resource", From: 1, To: 2}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			env.Msg = msgs[i%len(msgs)]
			env.Seq++
			if err := enc.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	t.Logf("binary encode-only %d ns/op %d B/op", encOnly.NsPerOp(), encOnly.AllocedBytesPerOp())
	if got := encOnly.AllocedBytesPerOp(); got > 0 {
		t.Errorf("binary encode allocates %d B/op in steady state, want 0", got)
	}
}

// benchmarkCodecRoundTrip measures encode+decode over the representative
// §3.1 message mix — the protocol hot path as the TCP read/write loops see
// it. `make bench-codec` runs it for both codecs.
func benchmarkCodecRoundTrip(b *testing.B, c wire.Codec) {
	msgs := wireMessages()
	var buf bytes.Buffer
	enc := c.NewEncoder(&buf)
	dec := c.NewDecoder(&buf)
	env := mutex.Envelope{Resource: "bench-resource", From: 1, To: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Msg = msgs[i%len(msgs)]
		env.Seq++
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	b.Run("gob", func(b *testing.B) { benchmarkCodecRoundTrip(b, wire.Gob()) })
	b.Run("binary", func(b *testing.B) { benchmarkCodecRoundTrip(b, wire.Binary()) })
}

// FuzzCodecDifferential cross-checks the two codecs: any envelope the fuzzer
// can build from a binary frame must round-trip byte-identically through gob
// and through binary, and neither decoder may panic on the raw input.
func FuzzCodecDifferential(f *testing.F) {
	for i, msg := range wireMessages() {
		env := mutex.Envelope{
			Resource: fmt.Sprintf("r%d", i%3),
			From:     mutex.SiteID(i), To: mutex.SiteID(i + 1),
			Msg: msg, Seq: uint64(i * 7), Ack: uint64(i * 3),
		}
		var buf bytes.Buffer
		enc := wire.Binary().NewEncoder(&buf)
		if err := enc.Encode(env); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Stage 1: the binary decoder must never panic on raw fuzz input.
		dec := wire.Binary().NewDecoder(bytes.NewReader(data))
		env, err := dec.Decode()
		if err != nil {
			return // malformed input is fine; panicking is not
		}
		// Stage 2: a successfully decoded envelope must survive both codecs
		// unchanged — this is the gob↔binary differential check.
		codecs := []wire.Codec{wire.Binary(), wire.Gob()}
		if rm, ok := env.Msg.(replyMsg); ok && rm.Transfer != nil && *rm.Transfer == (transferInfo{}) {
			// A pointer to an all-zero transferInfo is not a legal protocol
			// value, and gob's zero-field elision collapses it to nil; only
			// the binary codec is required to carry it exactly.
			codecs = codecs[:1]
		}
		for _, c := range codecs {
			want := env
			if c.Name() == wire.Gob().Name() {
				// The v0 gob frame is frozen for pre-handshake compatibility
				// and predates membership stages, so it drops Epoch; only the
				// v1 binary frame carries it.
				want.Epoch = 0
			}
			got, err := wire.RoundTrip(c, env)
			if err != nil {
				t.Fatalf("%s: re-encode of decoded envelope failed: %v", c.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: round-trip = %+v, want %+v", c.Name(), got, want)
			}
		}
	})
}
