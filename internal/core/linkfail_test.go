package core_test

import (
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// Communication-link failure tests: the paper claims the redundancy in
// fault-tolerant quorums also buys resiliency to link failures. Each
// endpoint of a severed link locally suspects the other and reroutes its
// quorum; cross-view quorum intersection keeps mutual exclusion safe even
// though the "failed" site is actually alive.

func newLinkCluster(t *testing.T, n int, seed int64, cons coterie.Construction) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.Config{
		N:         n,
		Algorithm: core.Algorithm{Construction: cons},
		Delay:     sim.ConstantDelay{D: meanDelay},
		Seed:      seed,
		CSTime:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLinkFailureTreeQuorums: cut a quorum-relevant link mid-run; everyone
// still completes and safety holds.
func TestLinkFailureTreeQuorums(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c := newLinkCluster(t, 15, seed, coterie.Tree{})
		workload.Saturated(c, 3)
		// Site 7's tree quorum includes inner node 1 and the root 0; cut
		// 7's access to 1 mid-run.
		c.CutLinkAt(1500, 7, 1)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := c.Completed(), 15*3; got != want {
			t.Fatalf("seed %d: completed %d of %d", seed, got, want)
		}
	}
}

// TestLinkFailureGridQuorums: grids reroute through another row/column.
func TestLinkFailureGridQuorums(t *testing.T) {
	c := newLinkCluster(t, 16, 3, coterie.Grid{})
	workload.Saturated(c, 3)
	c.CutLinkAt(2500, 5, 6)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMultipleLinkFailures: several cuts, still safe and live while
// substitute quorums exist.
func TestMultipleLinkFailures(t *testing.T) {
	c := newLinkCluster(t, 15, 9, coterie.Tree{})
	workload.Saturated(c, 3)
	c.CutLinkAt(1000, 3, 1)
	c.CutLinkAt(5000, 9, 4)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLinkFailureBothSidesStillRun: the suspected site is alive — it must
// keep completing its own CS executions through its rerouted quorum.
func TestLinkFailureBothSidesStillRun(t *testing.T) {
	c := newLinkCluster(t, 15, 4, coterie.Tree{})
	c.CutLinkAt(0, 7, 1)
	// Request after the suspicion settles so both endpoints have rerouted.
	for i := 0; i < 15; i++ {
		c.RequestAt(20000, mutex.SiteID(i))
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Completed() != 15 {
		t.Fatalf("completed %d of 15", c.Completed())
	}
}
