package core

import (
	"fmt"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
)

// Algorithm builds delay-optimal protocol sites over a pluggable quorum
// construction (the protocol is independent of the quorum being used, §3).
// The zero value uses Maekawa grid quorums with fault tolerance enabled.
type Algorithm struct {
	// Construction supplies the coterie; nil defaults to the Maekawa grid.
	Construction coterie.Construction
	// DisableRecovery turns off the §6 failure recovery, leaving a pure
	// failure-free protocol (crashed quorum members then block requesters,
	// which is the honest semantics of a non-fault-tolerant coterie).
	DisableRecovery bool
	// LiteralTransferHandling drops transfers that arrive before their
	// proxied reply, exactly as the paper's step A.5 prescribes, instead of
	// parking them for replay. Safety and liveness are unaffected (the
	// release fallback heals the lost handoff), but some handovers cost 2T
	// instead of T; the ablation benchmark measures the gap.
	LiteralTransferHandling bool
	// DisablePiggyback sends inquire and transfer as standalone messages
	// instead of riding on transfer/reply. Protocol behaviour is unchanged;
	// the per-CS message count rises — the ablation quantifying §5's
	// piggybacking accounting.
	DisablePiggyback bool
	// DisableTransfer suppresses the transfer mechanism entirely: arbiters
	// never tell the holder about waiting requests, so every handover takes
	// the release → grant path (the paper's 2T baseline, Maekawa's delay).
	// Inquire/yield preemption still runs, so priority order is preserved.
	// This is the live A/B control arm for the delay-optimality claim.
	DisableTransfer bool
}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (a Algorithm) Name() string {
	return "delay-optimal(" + a.construction().Name() + ")"
}

func (a Algorithm) construction() coterie.Construction {
	if a.Construction == nil {
		return coterie.Grid{}
	}
	return a.Construction
}

// NewSites implements mutex.Algorithm.
func (a Algorithm) NewSites(n int) ([]mutex.Site, error) {
	cons := a.construction()
	assign, err := cons.Assign(n)
	if err != nil {
		return nil, fmt.Errorf("core: assign quorums: %w", err)
	}
	if err := assign.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid coterie: %w", err)
	}
	recoveryCons := cons
	if a.DisableRecovery {
		recoveryCons = nil
	}
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		site := newSite(mutex.SiteID(i), n, assign.Quorum(mutex.SiteID(i)), recoveryCons)
		if a.LiteralTransferHandling {
			site.parkTransfers = false
		}
		if a.DisablePiggyback {
			site.piggyback = false
		}
		if a.DisableTransfer {
			site.disableTransfer = true
		}
		sites[i] = site
	}
	return sites, nil
}
