// Package core implements the paper's contribution: a delay-optimal
// quorum-based distributed mutual exclusion algorithm. A site exiting the
// critical section forwards each arbiter's permission *directly* to the next
// requester (transfer/proxy mechanism) instead of routing it through the
// arbiter, reducing the synchronization delay from Maekawa's 2T to the
// provable minimum T while keeping the message complexity between 3(K−1) and
// 6(K−1) per CS execution (K = quorum size).
//
// Each Site is a deterministic state machine combining two halves:
//
//   - the requester half, which collects permissions (reply messages) from
//     its quorum, answers inquire messages with yield when it cannot win, and
//     forwards permissions to transfer targets when it exits the CS; and
//   - the arbiter half, which owns one permission (the lock), queues waiting
//     requests by Lamport priority, and orchestrates handoffs by sending
//     transfer (and, for higher-priority requests, piggybacked inquire)
//     messages to the current lock holder.
//
// The protocol follows §3 of the paper; see DESIGN.md for the reconstruction
// decisions where the published pseudocode is ambiguous, and for the
// staleness tagging that replaces pure channel-FIFO reasoning once replies
// can arrive via proxies.
package core

import (
	"fmt"
	"sort"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

func (s siteState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateWaiting:
		return "waiting"
	case stateInCS:
		return "in-cs"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Site is one participant of the delay-optimal protocol. It implements
// mutex.Site and mutex.FailureObserver and must be driven from a single
// goroutine.
type Site struct {
	id    mutex.SiteID
	n     int
	clock *timestamp.Clock
	cons  coterie.Construction // nil disables §6 quorum reconstruction

	quorum      coterie.Quorum
	nextQuorum  coterie.Quorum // replacement quorum deferred until Exit (§6)
	failedSites map[mutex.SiteID]bool

	// Online membership (mutex.Reconfigurable). memberStage tags the most
	// recent SetMembership (0 = construction default); memberAvoid, when
	// non-nil, replaces cons.QuorumAvoiding for §6 rebuilds so a crash
	// during a joint handover phase is healed with a quorum that still
	// intersects both coteries.
	memberStage uint64
	memberAvoid func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool)

	// Requester half.
	state         siteState
	reqTS         timestamp.Timestamp
	replied       map[mutex.SiteID]bool
	failed        bool
	inqDeferred   map[mutex.SiteID]bool // arbiters with a parked inquire (inq_queue)
	tranStack     []transferInfo        // tran_stack: newest last
	pendTransfers map[mutex.SiteID][]transferInfo

	// Arbiter half.
	lock         timestamp.Timestamp // (max,max) when unlocked
	queue        tsQueue             // req_queue
	inquired     bool                // inquire sent for the current lock generation
	lastTransfer timestamp.Timestamp // target of the latest transfer this generation

	// lockVia is the proxy whose forwarding release produced the current
	// lock value, or timestamp.None when this arbiter granted the lock
	// directly (its own reply shares the holder's channel, so FIFO keeps
	// duplicates safe). A grant that traveled through a proxy lives on a
	// channel this arbiter cannot order against; lockVia is what lets a §6
	// crash refresh decide whether that grant is provably lost.
	lockVia mutex.SiteID

	// refreshDead records, per queued request, the sites its requester has
	// declared crashed via §6 refresh resends. When a forwarding release
	// re-points the lock at such a request and the forwarding proxy is in
	// the set, the proxied reply died with the proxy — the arbiter re-issues
	// the grant directly instead of trusting it.
	refreshDead map[timestamp.Timestamp]map[mutex.SiteID]bool

	// cases counts the §5.2 heavy-load case classification of arrivals.
	cases CaseStats

	// parkTransfers controls whether a transfer that outruns its proxied
	// reply is parked for replay (default) or dropped as the paper's literal
	// A.5 prescribes. Dropping is safe but costs extra 2T fallback
	// handovers; the ablation benchmark quantifies the difference.
	parkTransfers bool

	// piggyback controls whether inquire rides on transfer and transfer on
	// reply (default, matching the paper's §5 accounting) or every control
	// message travels alone — an ablation that quantifies the messages
	// piggybacking saves.
	piggyback bool

	// disableTransfer suppresses the transfer mechanism: ensureHandoff and
	// grantNext never announce the next waiter to the holder, so the holder's
	// tran_stack stays empty and every handover takes the release → grant
	// 2T fallback. The control arm of the synchronization-delay A/B.
	disableTransfer bool

	// earlyReleases buffers releases that arrive before this arbiter has
	// learned (via the previous holder's forwarding release) that the sender
	// holds the lock. A proxied reply lets the next site acquire, execute,
	// and release within one message delay — faster than the arbiter's own
	// view can catch up — so the release is applied when the lock reaches
	// the released request.
	earlyReleases map[timestamp.Timestamp]releaseMsg
}

var (
	_ mutex.Site            = (*Site)(nil)
	_ mutex.FailureObserver = (*Site)(nil)
)

// newSite builds one site. quorum is the site's req_set; cons, when non-nil,
// enables quorum reconstruction after failures.
func newSite(id mutex.SiteID, n int, quorum coterie.Quorum, cons coterie.Construction) *Site {
	return &Site{
		id:            id,
		n:             n,
		clock:         timestamp.NewClock(id),
		cons:          cons,
		quorum:        quorum.Clone(),
		failedSites:   make(map[mutex.SiteID]bool),
		state:         stateIdle,
		reqTS:         timestamp.Max,
		lock:          timestamp.Max,
		lastTransfer:  timestamp.Max,
		lockVia:       timestamp.None,
		parkTransfers: true,
		piggyback:     true,
		earlyReleases: make(map[timestamp.Timestamp]releaseMsg),
	}
}

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// Quorum returns the site's current req_set.
func (s *Site) Quorum() coterie.Quorum { return s.quorum.Clone() }

// Request implements mutex.Site (step A.1): timestamp the request, reset the
// requester state, and ask every quorum member for permission.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	s.state = stateWaiting
	s.reqTS = s.clock.Tick()
	s.failed = false
	s.replied = make(map[mutex.SiteID]bool, len(s.quorum))
	s.inqDeferred = make(map[mutex.SiteID]bool)
	s.tranStack = nil
	s.pendTransfers = make(map[mutex.SiteID][]transferInfo)
	for _, j := range s.quorum {
		out.SendTo(s.id, j, requestMsg{TS: s.reqTS})
	}
	return out
}

// Exit implements mutex.Site (step C): forward each arbiter's permission to
// the newest transfer target from that arbiter, then notify every quorum
// member with a release carrying the forwarding decision.
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	myTS := s.reqTS
	served := make(map[mutex.SiteID]timestamp.Timestamp, len(s.tranStack)) // tran_set
	for k := len(s.tranStack) - 1; k >= 0; k-- {
		e := s.tranStack[k]
		if _, done := served[e.Arbiter]; done {
			continue // older transfer from the same arbiter is void
		}
		served[e.Arbiter] = e.TargetTS
		out.SendTo(s.id, e.TargetTS.Site, replyMsg{Arbiter: e.Arbiter, ReqTS: e.TargetTS})
	}
	for _, j := range s.quorum {
		rel := releaseMsg{ReqTS: myTS, Fwd: timestamp.None}
		if ts, ok := served[j]; ok {
			rel.Fwd = ts.Site
			rel.FwdTS = ts
		}
		out.SendTo(s.id, j, rel)
	}
	s.resetRequester()
	return out
}

func (s *Site) resetRequester() {
	if s.nextQuorum != nil {
		s.quorum = s.nextQuorum
		s.nextQuorum = nil
	}
	s.state = stateIdle
	s.reqTS = timestamp.Max
	s.replied = nil
	s.failed = false
	s.inqDeferred = nil
	s.tranStack = nil
	s.pendTransfers = nil
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		s.onRequest(m, &out)
	case replyMsg:
		s.onReply(m, &out)
	case releaseMsg:
		s.onRelease(m, &out)
	case inquireMsg:
		s.onInquire(m, &out)
	case failMsg:
		s.onFail(m, &out)
	case yieldMsg:
		s.onYield(m, &out)
	case transferMsg:
		s.onTransfer(m, &out)
	case mutex.FailureMsg:
		out.Merge(s.SiteFailed(m.Failed))
	}
	return out
}

// --- Arbiter half -----------------------------------------------------------

func (s *Site) resetLockGen() {
	s.inquired = false
	s.lastTransfer = timestamp.Max
	s.lockVia = timestamp.None
}

// markRefresh accumulates the known-dead claims of a §6 refresh against its
// queued request, consulted when a forwarding release later re-points the
// lock at it.
func (s *Site) markRefresh(m requestMsg) {
	if len(m.Dead) == 0 {
		return
	}
	if s.refreshDead == nil {
		s.refreshDead = make(map[timestamp.Timestamp]map[mutex.SiteID]bool)
	}
	set := s.refreshDead[m.TS]
	if set == nil {
		set = make(map[mutex.SiteID]bool, len(m.Dead))
		s.refreshDead[m.TS] = set
	}
	for _, f := range m.Dead {
		set[f] = true
	}
}

// refreshClaims reports whether a refresh of the queued request ts declared
// site f crashed.
func (s *Site) refreshClaims(ts timestamp.Timestamp, f mutex.SiteID) bool {
	return s.refreshDead[ts][f]
}

func (s *Site) clearRefresh(ts timestamp.Timestamp) {
	delete(s.refreshDead, ts)
}

func (s *Site) clearRefreshSite(f mutex.SiteID) {
	for ts := range s.refreshDead {
		if ts.Site == f {
			delete(s.refreshDead, ts)
		}
	}
}

// onRequest handles step A.2. The published case analysis collapses to three
// rules once the queue is updated first:
//
//   - the new request is not the highest-priority waiter → fail it;
//   - it displaced the previous highest waiter → fail the displaced one;
//   - the highest waiter changed → (re)arm the handoff: send transfer to the
//     lock holder, piggybacking inquire when the waiter outranks the holder.
func (s *Site) onRequest(m requestMsg, out *mutex.Output) {
	s.clock.Witness(m.TS)
	if s.failedSites[m.TS.Site] {
		return // request from a site already announced as crashed
	}
	if s.lock == m.TS {
		// Crash refresh (§6): the requester still lacks our grant. Re-issue
		// it only when the duplicate is provably safe: a directly-granted
		// (or self-proxied) reply travels the same channel as this re-issue
		// and any later inquire, so FIFO lets one yield cover both copies;
		// a grant forwarded by a proxy the refresh declares dead died in the
		// severed channel. A grant in a *live* proxy's custody may still
		// arrive — re-issuing would let a yield straddle the two copies and
		// double-grant the permission, so the refresh waits for either the
		// proxied reply or the proxy's failure notification.
		if s.lockVia == timestamp.None || s.lockVia == s.id || m.claimsDead(s.lockVia) {
			out.SendTo(s.id, m.TS.Site, replyMsg{Arbiter: s.id, ReqTS: m.TS})
		}
		return
	}
	if s.queue.Contains(m.TS) {
		// Crash refresh of a request we already queue: the verdict stands,
		// but remember the requester's dead-set — a forwarding release may
		// yet re-point the lock here trusting a proxied reply that died.
		s.markRefresh(m)
		return
	}
	if s.lock.IsMax() {
		s.lock = m.TS
		s.resetLockGen()
		out.SendTo(s.id, m.TS.Site, replyMsg{Arbiter: s.id, ReqTS: m.TS})
		return
	}
	oldHead := timestamp.Max
	if !s.queue.Empty() {
		oldHead = s.queue.Head()
	}
	s.classify(m.TS, oldHead)
	s.queue.Push(m.TS)
	s.markRefresh(m)
	head := s.queue.Head()
	// A request learns it is currently losing (failed = 1) unless it is the
	// unique winner here: first in line AND higher priority than the lock
	// holder. This is what lets inquire chains terminate in a yield — the
	// §5.2 Case 1 fail that the published pseudocode omits.
	if head != m.TS || !m.TS.Less(s.lock) {
		out.SendTo(s.id, m.TS.Site, failMsg{Arbiter: s.id, ReqTS: m.TS})
	}
	// A displaced head that was winning has not seen a fail yet; tell it.
	if head == m.TS && !oldHead.IsMax() && oldHead.Less(s.lock) {
		out.SendTo(s.id, oldHead.Site, failMsg{Arbiter: s.id, ReqTS: oldHead})
	}
	s.ensureHandoff(out)
}

// ensureHandoff keeps the invariant that the current lock holder knows about
// the highest-priority waiter: it sends a transfer for the head (once per
// head per lock generation) and piggybacks an inquire when the head
// outranks the holder (once per lock generation).
func (s *Site) ensureHandoff(out *mutex.Output) {
	if s.lock.IsMax() || s.queue.Empty() {
		return
	}
	head := s.queue.Head()
	needInquire := head.Less(s.lock) && !s.inquired
	if s.disableTransfer {
		// Preemption must still work — a higher-priority waiter recalls the
		// permission via inquire/yield — but the holder is never told whom to
		// forward to, so the handover itself waits for the release.
		if needInquire {
			out.SendTo(s.id, s.lock.Site, inquireMsg{Arbiter: s.id, HolderTS: s.lock})
			s.inquired = true
		}
		return
	}
	needTransfer := head != s.lastTransfer
	switch {
	case needTransfer:
		s.lastTransfer = head
		out.SendTo(s.id, s.lock.Site, transferMsg{
			Transfer: transferInfo{Arbiter: s.id, TargetTS: head},
			HolderTS: s.lock,
			Inquire:  needInquire && s.piggyback,
		})
		if needInquire && !s.piggyback {
			out.SendTo(s.id, s.lock.Site, inquireMsg{Arbiter: s.id, HolderTS: s.lock})
		}
	case needInquire:
		out.SendTo(s.id, s.lock.Site, inquireMsg{Arbiter: s.id, HolderTS: s.lock})
	default:
		return
	}
	if needInquire {
		s.inquired = true
	}
}

// onYield handles step A.4: the holder returned the permission; grant the
// highest-priority request (which includes the re-enqueued yielder) and tell
// the new holder about the next waiter in the same message.
func (s *Site) onYield(m yieldMsg, out *mutex.Output) {
	if s.lock != m.ReqTS {
		return // stale yield (lock moved on)
	}
	s.queue.Push(m.ReqTS)
	s.grantNext(out)
}

// grantNext pops the highest-priority waiting request, grants it directly,
// and piggybacks a transfer for the next waiter when one exists. The queue
// must not be empty. If the popped request already released early (possible
// only after crash-induced chain breaks), the release is applied instead of
// granting.
func (s *Site) grantNext(out *mutex.Output) {
	grant := s.queue.Pop()
	s.clearRefresh(grant) // the direct reply below supersedes any refresh claim
	s.lock = grant
	s.resetLockGen()
	if rel, ok := s.earlyReleases[grant]; ok {
		delete(s.earlyReleases, grant)
		s.applyRelease(rel, out)
		return
	}
	reply := replyMsg{Arbiter: s.id, ReqTS: grant}
	var follow *transferMsg
	if !s.queue.Empty() && !s.disableTransfer {
		head := s.queue.Head()
		ti := transferInfo{Arbiter: s.id, TargetTS: head}
		if s.piggyback {
			reply.Transfer = &ti
		} else {
			follow = &transferMsg{Transfer: ti, HolderTS: grant}
		}
		s.lastTransfer = head
	}
	out.SendTo(s.id, grant.Site, reply)
	if follow != nil {
		out.SendTo(s.id, grant.Site, *follow)
	}
}

// onRelease handles step C's arrival at the arbiter. With a forward the lock
// is re-pointed at the forwarded request; without one the next waiter is
// granted directly (the 2T fallback path). A release whose request is only
// queued acts as a withdrawal (§6 recovery); a release whose request the
// arbiter does not yet consider the holder is buffered and applied when the
// lock catches up.
func (s *Site) onRelease(m releaseMsg, out *mutex.Output) {
	if s.lock == m.ReqTS {
		s.applyRelease(m, out)
		return
	}
	if m.Withdraw {
		if s.queue.Remove(m.ReqTS) {
			s.clearRefresh(m.ReqTS)
			s.ensureHandoff(out)
		}
		return
	}
	// Early release: the holder-to-holder chain outran this arbiter's view.
	s.earlyReleases[m.ReqTS] = m
}

// applyRelease performs the release of the current lock holder's request.
func (s *Site) applyRelease(m releaseMsg, out *mutex.Output) {
	if m.Fwd != timestamp.None && !s.failedSites[m.Fwd] {
		removed := s.queue.Remove(m.FwdTS)
		_, early := s.earlyReleases[m.FwdTS]
		if removed || early {
			// The forwarding proxy is the releasing holder itself. If a §6
			// refresh from the target declared that proxy dead, the proxied
			// reply died in the severed proxy→target channel — re-issue it.
			reissue := s.refreshClaims(m.FwdTS, m.ReqTS.Site)
			s.clearRefresh(m.FwdTS)
			s.setLock(m.FwdTS, m.ReqTS.Site, reissue, out)
			return
		}
		// The forwarded request is neither queued nor released-ahead: it
		// withdrew from this arbiter (a §6 rebuild or a membership swap)
		// after the transfer naming it was issued, so it will never send the
		// release that clears a re-pointed lock. The permission returns to
		// the pool as a plain release instead.
		s.clearRefresh(m.FwdTS)
	}
	if s.queue.Empty() {
		s.lock = timestamp.Max
		s.resetLockGen()
		return
	}
	s.grantNext(out)
}

// setLock re-points the lock at a request that obtained the permission via
// the proxy via, draining any buffered early release for it (handoff chains
// can run several CS executions ahead of the arbiter's view). Otherwise it
// re-arms the handoff toward the new holder — a higher-priority request may
// have arrived while the forwarding release was in flight. With reissue set
// the proxied reply is known lost: a direct replacement grant is sent, before
// ensureHandoff so channel FIFO orders it ahead of any inquire for this lock
// generation (a yield prompted by that inquire then covers the grant).
func (s *Site) setLock(ts timestamp.Timestamp, via mutex.SiteID, reissue bool, out *mutex.Output) {
	s.lock = ts
	s.resetLockGen()
	s.lockVia = via
	if rel, ok := s.earlyReleases[ts]; ok {
		delete(s.earlyReleases, ts)
		s.applyRelease(rel, out)
		return
	}
	if reissue {
		out.SendTo(s.id, ts.Site, replyMsg{Arbiter: s.id, ReqTS: ts})
	}
	s.ensureHandoff(out)
}

// --- Requester half ----------------------------------------------------------

// onReply handles step A.6. Replies for other sessions — possible only
// during §6 recovery races — are declined so the arbiter is never wedged on
// a grant nobody claims.
func (s *Site) onReply(m replyMsg, out *mutex.Output) {
	if s.state == stateInCS && m.ReqTS == s.reqTS {
		// A crash-refresh duplicate of a permission we already hold raced our
		// entry: ignore it — the Exit release (or the withdrawal already
		// consumed, if the arbiter left our quorum) settles the arbiter.
		// Declining would bounce a release that regrants a permission in use.
		return
	}
	if s.state != stateWaiting || m.ReqTS != s.reqTS || !s.quorum.Contains(m.Arbiter) {
		s.decline(m, out)
		return
	}
	s.replied[m.Arbiter] = true
	if m.Transfer != nil {
		s.acceptTransfer(*m.Transfer, out)
	}
	if pend := s.pendTransfers[m.Arbiter]; len(pend) > 0 {
		delete(s.pendTransfers, m.Arbiter)
		for _, ti := range pend {
			s.acceptTransfer(ti, out)
		}
	}
	if s.inqDeferred[m.Arbiter] && s.failed {
		delete(s.inqDeferred, m.Arbiter)
		s.yieldTo(m.Arbiter, out)
	}
	s.checkEntry(out)
}

// decline bounces an unclaimable grant back to the arbiter as a release so
// the permission is not lost. Unreachable in failure-free runs.
func (s *Site) decline(m replyMsg, out *mutex.Output) {
	out.SendTo(s.id, m.Arbiter, releaseMsg{ReqTS: m.ReqTS, Fwd: timestamp.None})
}

// acceptTransfer implements step A.5 for a transfer whose arbiter has
// already granted us (replied = 1).
func (s *Site) acceptTransfer(ti transferInfo, _ *mutex.Output) {
	if s.failedSites[ti.TargetTS.Site] {
		return // never forward a permission to a crashed site
	}
	s.tranStack = append(s.tranStack, ti)
}

// onTransfer handles a standalone (or inquire-piggybacked) transfer from an
// arbiter. A transfer for a different session is stale and dropped; a
// transfer for the current session that outran its proxied reply is parked
// and replayed when the reply lands.
func (s *Site) onTransfer(m transferMsg, out *mutex.Output) {
	if s.state == stateIdle || m.HolderTS != s.reqTS {
		return
	}
	arb := m.Transfer.Arbiter
	if s.replied[arb] {
		s.acceptTransfer(m.Transfer, out)
	} else if s.parkTransfers {
		s.pendTransfers[arb] = append(s.pendTransfers[arb], m.Transfer)
	}
	if m.Inquire {
		s.handleInquire(arb, out)
	}
}

// onInquire handles step A.3's arrival.
func (s *Site) onInquire(m inquireMsg, out *mutex.Output) {
	if s.state == stateIdle || m.HolderTS != s.reqTS {
		return // arrived after our release; ignore
	}
	s.handleInquire(m.Arbiter, out)
}

// handleInquire applies A.3: yield only when this site has the permission
// but cannot win (failed = 1); otherwise park the inquire for re-evaluation
// on the next reply or fail. Inside the CS the inquire needs no answer — the
// release at exit supersedes it.
func (s *Site) handleInquire(arb mutex.SiteID, out *mutex.Output) {
	if s.state == stateInCS {
		return
	}
	if s.replied[arb] && s.failed {
		s.yieldTo(arb, out)
		return
	}
	s.inqDeferred[arb] = true
}

// yieldTo relinquishes arb's permission: transfers from arb become void and
// the permission is returned for re-granting.
func (s *Site) yieldTo(arb mutex.SiteID, out *mutex.Output) {
	s.replied[arb] = false
	s.failed = true
	s.dropTransfersFrom(arb)
	delete(s.inqDeferred, arb)
	out.SendTo(s.id, arb, yieldMsg{ReqTS: s.reqTS})
}

func (s *Site) dropTransfersFrom(arb mutex.SiteID) {
	kept := s.tranStack[:0]
	for _, e := range s.tranStack {
		if e.Arbiter != arb {
			kept = append(kept, e)
		}
	}
	s.tranStack = kept
	if s.pendTransfers != nil {
		delete(s.pendTransfers, arb)
	}
}

// onFail handles step A.7: remember the refusal and re-evaluate every parked
// inquire — any permission we hold is now yieldable.
func (s *Site) onFail(m failMsg, out *mutex.Output) {
	if s.state != stateWaiting || m.ReqTS != s.reqTS {
		return
	}
	s.failed = true
	for _, arb := range s.deferredArbiters() {
		if s.replied[arb] {
			delete(s.inqDeferred, arb)
			s.yieldTo(arb, out)
		}
	}
}

// deferredArbiters returns the parked-inquire arbiters in site order so
// replays are deterministic (map iteration order is not).
func (s *Site) deferredArbiters() []mutex.SiteID {
	out := make([]mutex.SiteID, 0, len(s.inqDeferred))
	for arb := range s.inqDeferred {
		out = append(out, arb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkEntry performs step B: enter the CS once every quorum member has
// granted. Parked inquires are dropped — the release at exit answers them.
func (s *Site) checkEntry(out *mutex.Output) {
	if s.state != stateWaiting {
		return
	}
	for _, j := range s.quorum {
		if !s.replied[j] {
			return
		}
	}
	s.state = stateInCS
	s.inqDeferred = make(map[mutex.SiteID]bool)
	out.Entered = true
}
