package core_test

import (
	"math/rand"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// TestChaos subjects the protocol to randomized combinations of heavy load,
// exponential delays, site crashes, and link cuts, asserting safety on every
// entry and progress for every surviving site. Crash/cut targets are chosen
// so tree quorums always retain substitution paths (we are testing the
// protocol, not exhausting the coterie).
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const n = 15
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		c, err := sim.NewCluster(sim.Config{
			N:         n,
			Algorithm: core.Algorithm{Construction: coterie.Tree{}},
			Delay:     sim.ExponentialDelay{MeanD: 1000},
			Seed:      seed,
			CSTime:    sim.Time(1 + rng.Intn(200)),
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 3)

		// Crash at most one leaf (keeps every inner node's subtree usable).
		crashed := map[mutex.SiteID]bool{}
		if rng.Intn(2) == 0 {
			victim := mutex.SiteID(7 + rng.Intn(8)) // leaves of the 15-node tree
			crashed[victim] = true
			c.CrashAt(sim.Time(rng.Intn(20000)), victim)
		}
		// Cut up to two random links between distinct live sites.
		for k := 0; k < rng.Intn(3); k++ {
			a := mutex.SiteID(rng.Intn(n))
			b := mutex.SiteID(rng.Intn(n))
			if a != b && !crashed[a] && !crashed[b] {
				c.CutLinkAt(sim.Time(rng.Intn(20000)), a, b)
			}
		}

		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every surviving site must have completed all of its executions,
		// except executions a crashed site could not issue.
		perSite := map[mutex.SiteID]int{}
		for _, r := range c.Records() {
			perSite[r.Site]++
		}
		for i := 0; i < n; i++ {
			s := mutex.SiteID(i)
			if crashed[s] {
				continue
			}
			if perSite[s] != 3 {
				t.Errorf("seed %d: surviving site %d completed %d of 3", seed, s, perSite[s])
			}
		}
	}
}
