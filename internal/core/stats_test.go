package core_test

import (
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// TestCaseStatsCoverHeavyLoad: under saturation, arrivals at locked
// arbiters must be classified, and every classified case the paper analyzes
// (1, 2, 3) must actually occur; case totals must equal the number of
// locked-arrival events.
func TestCaseStatsCoverHeavyLoad(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{
		N: 25, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: 1000}, Seed: 3, CSTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, 10)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	var total core.CaseStats
	for _, s := range c.Sites {
		cs := s.(*core.Site).Cases()
		for i := range cs.Case {
			total.Case[i] += cs.Case[i]
		}
	}
	if total.Total() == 0 {
		t.Fatal("no arrivals classified under saturation")
	}
	for _, want := range []int{1, 2, 3} {
		if total.Case[want] == 0 {
			t.Errorf("case %d never occurred in a saturated run", want)
		}
	}
	if total.Case[0] != 0 {
		t.Errorf("case 0 used: %d", total.Case[0])
	}
}

// TestPreemptionPathsExercised: under randomized delays the full protocol
// vocabulary — inquire, yield, transfer, fail — must actually occur, so the
// simulations genuinely cover the paper's §5.2 cases rather than only the
// in-order fast path.
func TestPreemptionPathsExercised(t *testing.T) {
	totals := map[string]uint64{}
	for seed := int64(1); seed <= 10; seed++ {
		c, err := sim.NewCluster(sim.Config{
			N: 13, Algorithm: core.Algorithm{}, Delay: sim.ExponentialDelay{MeanD: 1000},
			Seed: seed, CSTime: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 5)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		for k, v := range c.Net.CountByKind() {
			totals[k] += v
		}
	}
	for _, kind := range []string{"request", "reply", "release", "transfer", "fail", "yield"} {
		if totals[kind] == 0 {
			t.Errorf("message kind %q never occurred across 10 randomized heavy-load runs", kind)
		}
	}
	// The paper: "whenever a site sends an inquire in response to a high
	// priority request, the inquire is always piggybacked with a transfer" —
	// so standalone inquire envelopes must NOT occur in the default
	// configuration.
	if totals["inquire"] != 0 {
		t.Errorf("%d standalone inquire messages; they should all be piggybacked", totals["inquire"])
	}

	// With piggybacking disabled they must appear as their own envelopes.
	c, err := sim.NewCluster(sim.Config{
		N: 13, Algorithm: core.Algorithm{DisablePiggyback: true},
		Delay: sim.ExponentialDelay{MeanD: 1000}, Seed: 3, CSTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, 5)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Net.CountByKind()["inquire"] == 0 {
		t.Error("no standalone inquires even with piggybacking disabled")
	}
}

// TestLightLoadHasNoCases: uncontended runs never hit a locked arbiter.
func TestLightLoadHasNoCases(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{
		N: 9, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: 1000}, Seed: 1, CSTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.Sequential(c, 20, 100000)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Sites {
		if got := s.(*core.Site).Cases().Total(); got != 0 {
			t.Errorf("site %d classified %d arrivals at light load", i, got)
		}
	}
}

// TestLiteralTransferHandling: the paper-literal A.5 (drop racing
// transfers) must stay safe and live; it just pays more 2T fallbacks, so its
// sync delay is no better than the parking variant's.
func TestLiteralTransferHandling(t *testing.T) {
	run := func(literal bool) sim.Result {
		c, err := sim.NewCluster(sim.Config{
			N:         25,
			Algorithm: core.Algorithm{LiteralTransferHandling: literal},
			Delay:     sim.ExponentialDelay{MeanD: 1000},
			Seed:      5,
			CSTime:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 8)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("literal=%v: %v", literal, err)
		}
		return c.Summarize()
	}
	parked := run(false)
	literal := run(true)
	if literal.SyncDelay+0.05 < parked.SyncDelay {
		t.Errorf("literal handling (%v T) should not beat parking (%v T)",
			literal.SyncDelay, parked.SyncDelay)
	}
}

// TestDisableTransfer: with the transfer mechanism suppressed the protocol
// stays safe and live, sends no transfer messages at all, and pays the 2T
// release-fallback on every handover — so its synchronization delay must be
// clearly worse than the delay-optimal configuration's. This is the
// simulated sanity check behind the live A/B in internal/loadgen.
func TestDisableTransfer(t *testing.T) {
	run := func(disable bool) (sim.Result, map[string]uint64) {
		c, err := sim.NewCluster(sim.Config{
			N:         25,
			Algorithm: core.Algorithm{DisableTransfer: disable},
			Delay:     sim.ConstantDelay{D: 1000},
			Seed:      5,
			CSTime:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 8)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		return c.Summarize(), c.Net.CountByKind()
	}
	with, _ := run(false)
	without, kinds := run(true)
	if kinds["transfer"] != 0 {
		t.Errorf("%d transfer messages sent with the mechanism disabled", kinds["transfer"])
	}
	if without.SyncDelay < 1.5*with.SyncDelay {
		t.Errorf("fallback-only sync delay (%v T) should be ~2x the transfer path's (%v T)",
			without.SyncDelay, with.SyncDelay)
	}
}

// TestDisablePiggyback: without piggybacking the protocol stays safe and
// live but spends strictly more messages per CS execution.
func TestDisablePiggyback(t *testing.T) {
	run := func(disable bool) sim.Result {
		c, err := sim.NewCluster(sim.Config{
			N:         25,
			Algorithm: core.Algorithm{DisablePiggyback: disable},
			Delay:     sim.ExponentialDelay{MeanD: 1000},
			Seed:      5,
			CSTime:    10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 8)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		return c.Summarize()
	}
	with := run(false)
	without := run(true)
	if without.MessagesPerCS <= with.MessagesPerCS {
		t.Errorf("no-piggyback msgs/CS (%v) should exceed piggybacked (%v)",
			without.MessagesPerCS, with.MessagesPerCS)
	}
}
