package core

import (
	"fmt"
	"sort"
	"strings"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// Model-checking seams. internal/modelcheck branches protocol executions by
// deep-copying sites and prunes the search by memoizing canonical state
// strings; both hooks live here, next to the state they must cover, so a new
// Site field fails loudly in review rather than silently weakening the
// checker.

// CloneForCheck deep-copies the site's protocol state so an explorer can
// branch the execution. The copy shares nothing mutable with the original.
func (s *Site) CloneForCheck() mutex.Site { return s.clone() }

// CanonicalState serializes every behaviour-relevant field of the site
// deterministically. Two sites with equal CanonicalState are guaranteed to
// react identically to identical future inputs: the serialization covers the
// whole requester half (including parked transfers and inquires), the whole
// arbiter half (including buffered early releases), the §6 recovery state
// (known-failed sites, the deferred replacement quorum), and the Lamport
// clock — omitting the clock would merge states that issue differently
// prioritized future requests. The online membership (system size and stage
// tag) is covered too, since SetMembership changes it mid-run. Statistics
// counters and construction-time configuration are excluded.
func (s *Site) CanonicalState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S%d{%v %v c=%d f=%v r=%s q=%v nq=%v n=%d ms=%d fs=%s d=%s t=%v p=%s|L=%v Q=%v i=%v lt=%v v=%v er=%s rd=%s}",
		s.id, s.state, s.reqTS, s.clock.Now(), s.failed, canonSet(s.replied),
		s.quorum, s.nextQuorum, s.n, s.memberStage, canonSet(s.failedSites), canonSet(s.inqDeferred),
		s.tranStack, canonPend(s.pendTransfers),
		s.lock, s.queue.items, s.inquired, s.lastTransfer, s.lockVia,
		canonEarly(s.earlyReleases), canonRefresh(s.refreshDead))
	return b.String()
}

func canonSet(m map[mutex.SiteID]bool) string {
	ids := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			ids = append(ids, int(k))
		}
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

func canonPend(m map[mutex.SiteID][]transferInfo) string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:%v;", k, m[mutex.SiteID(k)])
	}
	return b.String()
}

func canonRefresh(m map[timestamp.Timestamp]map[mutex.SiteID]bool) string {
	keys := make([]timestamp.Timestamp, 0, len(m))
	for k := range m {
		if len(m[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%v=%s;", k, canonSet(m[k]))
	}
	return b.String()
}

func canonEarly(m map[timestamp.Timestamp]releaseMsg) string {
	type kv struct {
		k timestamp.Timestamp
		v releaseMsg
	}
	items := make([]kv, 0, len(m))
	for k, v := range m {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].k.Less(items[j].k) })
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%v=%v;", it.k, it.v)
	}
	return b.String()
}
