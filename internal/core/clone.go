package core

import (
	"dqmx/internal/timestamp"

	"dqmx/internal/mutex"
)

// clone deep-copies the site's protocol state. Used by the exhaustive
// model checker to branch executions; the clock is copied by value (it is a
// small struct behind a pointer). memberStage copies with the struct;
// memberAvoid is intentionally shared — it is an immutable closure over the
// handover plan, not mutable state.
func (s *Site) clone() *Site {
	c := *s
	clk := *s.clock
	c.clock = &clk
	c.quorum = s.quorum.Clone()
	if s.nextQuorum != nil {
		c.nextQuorum = s.nextQuorum.Clone()
	}
	c.failedSites = cloneSet(s.failedSites)
	c.replied = cloneSet(s.replied)
	c.inqDeferred = cloneSet(s.inqDeferred)
	c.tranStack = append([]transferInfo(nil), s.tranStack...)
	if s.pendTransfers != nil {
		c.pendTransfers = make(map[mutex.SiteID][]transferInfo, len(s.pendTransfers))
		for k, v := range s.pendTransfers {
			c.pendTransfers[k] = append([]transferInfo(nil), v...)
		}
	}
	c.queue = tsQueue{items: append([]timestamp.Timestamp(nil), s.queue.items...)}
	c.earlyReleases = make(map[timestamp.Timestamp]releaseMsg, len(s.earlyReleases))
	for k, v := range s.earlyReleases {
		c.earlyReleases[k] = v
	}
	if s.refreshDead != nil {
		c.refreshDead = make(map[timestamp.Timestamp]map[mutex.SiteID]bool, len(s.refreshDead))
		for k, v := range s.refreshDead {
			c.refreshDead[k] = cloneSet(v)
		}
	}
	return &c
}

func cloneSet(m map[mutex.SiteID]bool) map[mutex.SiteID]bool {
	if m == nil {
		return nil
	}
	out := make(map[mutex.SiteID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
