package core

import (
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// Micro-benchmarks for the protocol hot paths (these size the state machine
// itself; the paper's experiments live in the repository-root bench file).

func BenchmarkQueuePushPop(b *testing.B) {
	b.ReportAllocs()
	var q tsQueue
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			q.Push(timestamp.Timestamp{Seq: uint64(k * 7 % 16), Site: mutex.SiteID(k)})
		}
		for !q.Empty() {
			q.Pop()
		}
	}
}

func BenchmarkArbiterRequestReleaseCycle(b *testing.B) {
	b.ReportAllocs()
	assign, err := (coterie.Grid{}).Assign(25)
	if err != nil {
		b.Fatal(err)
	}
	s := newSite(0, 25, assign.Quorum(0), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := timestamp.Timestamp{Seq: uint64(i + 1), Site: 5}
		s.Deliver(mutex.Envelope{From: 5, To: 0, Msg: requestMsg{TS: ts}})
		s.Deliver(mutex.Envelope{From: 5, To: 0, Msg: releaseMsg{ReqTS: ts, Fwd: timestamp.None}})
	}
}

func BenchmarkRequesterFullHandshake(b *testing.B) {
	b.ReportAllocs()
	assign, err := (coterie.Grid{}).Assign(25)
	if err != nil {
		b.Fatal(err)
	}
	quorum := assign.Quorum(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newSite(0, 25, quorum, nil)
		s.Request()
		my := s.reqTS
		for _, j := range quorum {
			s.Deliver(mutex.Envelope{From: j, To: 0, Msg: replyMsg{Arbiter: j, ReqTS: my}})
		}
		if !s.InCS() {
			b.Fatal("handshake failed")
		}
		s.Exit()
	}
}
