package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// TestRobustnessAgainstArbitraryMessages throws randomly generated protocol
// messages — stale, inconsistent, self-contradictory — at a live site and
// checks that it never panics, never fabricates a CS entry (Entered implies
// every quorum permission is genuinely marked held), and keeps its arbiter
// queue ordered. This models Byzantine-free but arbitrarily delayed and
// reordered traffic beyond what even a misbehaving network could produce.
func TestRobustnessAgainstArbitraryMessages(t *testing.T) {
	assign, err := (coterie.Grid{}).Assign(9)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newSite(4, 9, assign.Quorum(4), coterie.Grid{})
		s.Request()
		randTS := func() timestamp.Timestamp {
			if rng.Intn(8) == 0 {
				return timestamp.Max
			}
			return timestamp.Timestamp{Seq: uint64(rng.Intn(5)), Site: mutex.SiteID(rng.Intn(9))}
		}
		randSite := func() mutex.SiteID { return mutex.SiteID(rng.Intn(9)) }
		for i := 0; i < 400; i++ {
			var msg mutex.Message
			switch rng.Intn(8) {
			case 0:
				msg = requestMsg{TS: randTS()}
			case 1:
				var tr *transferInfo
				if rng.Intn(2) == 0 {
					tr = &transferInfo{Arbiter: randSite(), TargetTS: randTS()}
				}
				msg = replyMsg{Arbiter: randSite(), ReqTS: randTS(), Transfer: tr}
			case 2:
				msg = releaseMsg{ReqTS: randTS(), Fwd: randSite(), FwdTS: randTS(), Withdraw: rng.Intn(2) == 0}
			case 3:
				msg = releaseMsg{ReqTS: randTS(), Fwd: timestamp.None}
			case 4:
				msg = inquireMsg{Arbiter: randSite(), HolderTS: randTS()}
			case 5:
				msg = failMsg{Arbiter: randSite(), ReqTS: randTS()}
			case 6:
				msg = yieldMsg{ReqTS: randTS()}
			default:
				msg = transferMsg{
					Transfer: transferInfo{Arbiter: randSite(), TargetTS: randTS()},
					HolderTS: randTS(),
					Inquire:  rng.Intn(2) == 0,
				}
			}
			out := s.Deliver(mutex.Envelope{From: randSite(), To: 4, Msg: msg})
			if out.Entered {
				// A fabricated entry would be a safety bug.
				for _, q := range s.quorum {
					if !s.replied[q] {
						return false
					}
				}
				s.Exit()
				s.Request()
			}
			// The arbiter queue must stay strictly ordered and duplicate-free.
			for k := 1; k < s.queue.Len(); k++ {
				if !s.queue.items[k-1].Less(s.queue.items[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
