package core_test

import (
	"fmt"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000) // the paper's T

// runSaturated runs a heavy-load (saturated closed-loop) simulation and
// fails the test on any safety or liveness violation.
func runSaturated(t *testing.T, alg mutex.Algorithm, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: alg, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("n=%d seed=%d: completed %d of %d CS executions", n, seed, got, want)
	}
	return c.Summarize()
}

func TestSingleSite(t *testing.T) {
	res := runSaturated(t, core.Algorithm{}, 1, 5, 1, nil)
	if res.TotalMessages != 0 {
		t.Errorf("single site exchanged %d messages, want 0", res.TotalMessages)
	}
}

func TestTwoSitesContend(t *testing.T) {
	runSaturated(t, core.Algorithm{}, 2, 10, 1, nil)
}

func TestHeavyLoadSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, core.Algorithm{}, n, 5, seed, nil)
		}
	}
}

func TestHeavyLoadRandomDelays(t *testing.T) {
	for _, n := range []int{5, 9, 13} {
		for seed := int64(1); seed <= 10; seed++ {
			runSaturated(t, core.Algorithm{}, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
			runSaturated(t, core.Algorithm{}, n, 4, seed, sim.UniformDelay{Lo: 500, Hi: 1500})
		}
	}
}

// TestLightLoadMessageCount reproduces §5.1: without contention a CS
// execution costs exactly (K−1) request + (K−1) reply + (K−1) release
// messages.
func TestLightLoadMessageCount(t *testing.T) {
	n := 25
	c, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 50
	workload.Sequential(c, total, 100*meanDelay) // far apart: zero contention
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	assign, err := (coterie.Grid{}).Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	k := assign.MaxQuorumSize()
	want := uint64(total * 3 * (k - 1))
	if got := c.Net.Total(); got != want {
		t.Errorf("light-load messages = %d, want exactly %d (= %d × 3(K−1))", got, want, total)
	}
	byKind := c.Net.CountByKind()
	per := uint64(total * (k - 1))
	for _, kind := range []string{mutex.KindRequest, mutex.KindReply, mutex.KindRelease} {
		if byKind[kind] != per {
			t.Errorf("light-load %s count = %d, want %d", kind, byKind[kind], per)
		}
	}
	for _, kind := range []string{mutex.KindInquire, mutex.KindFail, mutex.KindYield, mutex.KindTransfer} {
		if byKind[kind] != 0 {
			t.Errorf("light-load produced %d %s messages, want 0", byKind[kind], kind)
		}
	}
}

// TestLightLoadResponseTime reproduces §5.1's response time of 2T + E.
func TestLightLoadResponseTime(t *testing.T) {
	n := 25
	c, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.Sequential(c, 20, 100*meanDelay)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Records() {
		if got, want := r.Exited-r.Requested, 2*meanDelay+200; got != want {
			t.Fatalf("response time = %d, want %d (2T+E)", got, want)
		}
	}
}

// TestHeavyLoadMessageBound reproduces §5.2: under heavy load the protocol
// needs between 3(K−1) and 6(K−1) messages per CS execution.
func TestHeavyLoadMessageBound(t *testing.T) {
	for _, n := range []int{9, 16, 25} {
		res := runSaturated(t, core.Algorithm{}, n, 10, 42, nil)
		assign, err := (coterie.Grid{}).Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(assign.MaxQuorumSize())
		lo, hi := 3*(k-1), 6*(k-1)
		if res.MessagesPerCS < lo-0.5 || res.MessagesPerCS > hi+0.5 {
			t.Errorf("n=%d: %.2f messages/CS, want within [%.0f, %.0f]", n, res.MessagesPerCS, lo, hi)
		}
	}
}

// TestHeavyLoadSyncDelayIsT is the headline result: the synchronization
// delay under heavy load is ≈ T (one message delay), not Maekawa's 2T,
// because the exiting site forwards permissions directly.
func TestHeavyLoadSyncDelayIsT(t *testing.T) {
	for _, n := range []int{9, 25} {
		res := runSaturated(t, core.Algorithm{}, n, 10, 7, nil)
		if res.SyncDelaySamples == 0 {
			t.Fatalf("n=%d: no handover samples", n)
		}
		if res.SyncDelay < 0.9 || res.SyncDelay > 1.5 {
			t.Errorf("n=%d: sync delay = %.3f T, want ≈ 1 T (got %d samples)",
				n, res.SyncDelay, res.SyncDelaySamples)
		}
	}
}

// TestQuorumIndependence runs the protocol unmodified over every coterie
// construction (§3: "the algorithm does not depend on any particular quorum
// construction method").
func TestQuorumIndependence(t *testing.T) {
	for _, cons := range coterie.Constructions() {
		cons := cons
		t.Run(cons.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runSaturated(t, core.Algorithm{Construction: cons}, 13, 4, seed, nil)
				runSaturated(t, core.Algorithm{Construction: cons}, 13, 4, seed,
					sim.ExponentialDelay{MeanD: meanDelay})
			}
		})
	}
}

// TestStressManySeeds is the broad randomized safety/liveness sweep.
func TestStressManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for seed := int64(1); seed <= 40; seed++ {
		n := 3 + int(seed%12)
		runSaturated(t, core.Algorithm{}, n, 3, seed, sim.ExponentialDelay{MeanD: meanDelay})
	}
}

// TestPoissonSweep crosses from light to heavy load and checks safety,
// liveness and the §5 message bounds at every operating point.
func TestPoissonSweep(t *testing.T) {
	n := 16
	assign, err := (coterie.Grid{}).Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	k := float64(assign.MaxQuorumSize())
	for _, think := range []sim.Time{100, 1000, 10000, 100000} {
		c, err := sim.NewCluster(sim.Config{
			N: n, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, Seed: 5, CSTime: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.ClosedPoisson(c, think, 5, 99)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("think=%d: %v", think, err)
		}
		res := c.Summarize()
		if res.MessagesPerCS < 3*(k-1)-0.5 || res.MessagesPerCS > 6*(k-1)+0.5 {
			t.Errorf("think=%d: %.2f messages/CS outside [3(K−1), 6(K−1)]", think, res.MessagesPerCS)
		}
	}
}

func ExampleAlgorithm_name() {
	fmt.Println(core.Algorithm{}.Name())
	fmt.Println(core.Algorithm{Construction: coterie.Tree{}}.Name())
	// Output:
	// delay-optimal(maekawa-grid)
	// delay-optimal(ae-tree)
}
