package core

import (
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// Online membership (internal/membership): a driver moves this site between
// cluster configurations by replacing its req_set in place. The machinery
// is the §6 quorum-rebuild reconcile generalized from "avoid a crash" to
// "adopt an arbitrary new quorum": arbiters leaving the req_set receive a
// withdrawal, arbiters joining it receive the original request (same
// timestamp, so priority is preserved), and a site inside the critical
// section keeps its held quorum until Exit — the CS was granted under the
// old req_set and must be released to exactly those arbiters.

var _ mutex.Reconfigurable = (*Site)(nil)

// SetMembership implements mutex.Reconfigurable. quorum must be sorted and
// duplicate-free (membership hands out normalized quorums). avoiding, when
// non-nil, replaces the construction's QuorumAvoiding for §6 rebuilds while
// this membership is in force — during a joint handover phase the
// replacement must stay joint, which the construction alone cannot know.
func (s *Site) SetMembership(n int, quorum []mutex.SiteID, avoiding func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool), stage uint64) mutex.Output {
	var out mutex.Output
	newQ := coterie.Quorum(quorum).Clone()
	old := s.quorum
	s.n = n
	s.memberStage = stage
	s.memberAvoid = avoiding

	switch s.state {
	case stateInCS:
		// Keep the held quorum for the current CS; the new req_set takes
		// effect at Exit, which releases the old members (same deferral as a
		// §6 rebuild inside the CS).
		s.nextQuorum = newQ
		return out
	case stateIdle:
		s.quorum = newQ
		// The planned quorum may name sites already known to have crashed
		// (the crash raced the reconfiguration): rebuild around them now, as
		// SiteFailed would have.
		if f, dead := s.firstFailedIn(newQ); dead {
			s.rebuildQuorum(f, &out)
		}
	case stateWaiting:
		s.quorum = newQ
		for _, a := range old {
			if newQ.Contains(a) || s.failedSites[a] {
				continue
			}
			// Leaving arbiter: withdraw our request (frees its lock or queue
			// slot) and void its transfers.
			out.SendTo(s.id, a, releaseMsg{ReqTS: s.reqTS, Fwd: timestamp.None, Withdraw: true})
			delete(s.replied, a)
			s.dropTransfersFrom(a)
			delete(s.inqDeferred, a)
		}
		if f, dead := s.firstFailedIn(newQ); dead {
			// A planned member already crashed: swap onto the membership's
			// avoiding quorum and contact its unreplied members through the
			// §6 refresh, exactly as SiteFailed does (the refresh is first
			// contact for joiners and idempotent for old members).
			s.rebuildQuorum(f, &out)
			s.refreshRequests(&out)
		} else {
			for _, a := range newQ {
				if old.Contains(a) {
					continue
				}
				// Joining arbiter: it has never seen this request; ask it
				// with the original timestamp.
				out.SendTo(s.id, a, requestMsg{TS: s.reqTS})
			}
		}
		// Shrinking may leave every remaining member already granted.
		s.checkEntry(&out)
	}
	return out
}

// firstFailedIn returns the lowest known-crashed site in q, if any.
func (s *Site) firstFailedIn(q coterie.Quorum) (mutex.SiteID, bool) {
	for _, a := range q {
		if s.failedSites[a] {
			return a, true
		}
	}
	return 0, false
}

// MembershipSettled implements mutex.Reconfigurable: false while a req_set
// swap is deferred behind a critical section still held under the previous
// quorum. The reconfiguration barrier polls every site before advancing a
// handover phase.
func (s *Site) MembershipSettled() bool { return s.nextQuorum == nil }

// MembershipStage returns the stage tag of the most recent SetMembership
// (0 until one happens).
func (s *Site) MembershipStage() uint64 { return s.memberStage }
