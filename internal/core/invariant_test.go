package core_test

import (
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// TestPermissionExclusivityInvariant checks, after *every* message delivery
// of a contended run, that no arbiter's permission is counted by two sites
// simultaneously — the per-arbiter mutual exclusion that underlies Theorem 1
// (two CS entrants would need the same arbiter's permission at once).
func TestPermissionExclusivityInvariant(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c, err := sim.NewCluster(sim.Config{
			N: 13, Algorithm: core.Algorithm{}, Delay: sim.ExponentialDelay{MeanD: 1000},
			Seed: seed, CSTime: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		c.Net.Trace = func(at sim.Time, env mutex.Envelope) {
			// The invariant must hold between any two deliveries.
			holders := make(map[mutex.SiteID]mutex.SiteID) // arbiter → holder
			for _, ms := range c.Sites {
				s := ms.(*core.Site)
				for arb := 0; arb < 13; arb++ {
					a := mutex.SiteID(arb)
					if s.HoldsPermissionOf(a) {
						if prev, dup := holders[a]; dup {
							violations++
							t.Errorf("t=%d: arbiter %d held by both %d and %d", at, a, prev, s.ID())
						}
						holders[a] = s.ID()
					}
				}
			}
		}
		workload.Saturated(c, 3)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violations > 0 {
			t.Fatalf("seed %d: %d permission-exclusivity violations", seed, violations)
		}
	}
}
