package core

import (
	"fmt"
	"sort"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// HoldsPermissionOf reports whether the site currently counts arb's
// permission toward its entry condition (replied[arb] = 1). Used by the
// permission-exclusivity invariant checker in tests.
func (s *Site) HoldsPermissionOf(arb mutex.SiteID) bool {
	return s.replied[arb]
}

// RequestTimestamp implements mutex.TimestampedSite: the timestamp of the
// in-flight request, valid while the site is not idle.
func (s *Site) RequestTimestamp() (timestamp.Timestamp, bool) {
	return s.reqTS, s.state != stateIdle
}

// DebugString renders the site's full protocol state; it is the per-site
// dump drivers pick up for liveness diagnostics.
func (s *Site) DebugString() string {
	return fmt.Sprintf("site %d: %s", s.id, DebugState(s))
}

// DebugState renders a site's full protocol state for diagnostics and test
// failure reports. It accepts a mutex.Site so drivers can call it without
// knowing the concrete type; non-core sites yield a short placeholder.
func DebugState(ms mutex.Site) string {
	s, ok := ms.(*Site)
	if !ok {
		return fmt.Sprintf("site %d: (not a core site)", ms.ID())
	}
	repliedOf := make([]mutex.SiteID, 0, len(s.replied))
	for a, ok := range s.replied {
		if ok {
			repliedOf = append(repliedOf, a)
		}
	}
	sort.Slice(repliedOf, func(i, j int) bool { return repliedOf[i] < repliedOf[j] })
	deferred := make([]mutex.SiteID, 0, len(s.inqDeferred))
	for a := range s.inqDeferred {
		deferred = append(deferred, a)
	}
	sort.Slice(deferred, func(i, j int) bool { return deferred[i] < deferred[j] })
	via := ""
	if s.lockVia != timestamp.None {
		via = fmt.Sprintf(" via=%d", s.lockVia)
	}
	return fmt.Sprintf(
		"%v req=%v failed=%v replied=%v quorum=%v inqDef=%v stack=%v | lock=%v%s queue=%v inquired=%v lastTr=%v",
		s.state, s.reqTS, s.failed, repliedOf, s.quorum, deferred, s.tranStack,
		s.lock, via, s.queue.items, s.inquired, s.lastTransfer)
}
