package core

import (
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// White-box tests driving the Site handlers message by message, covering the
// protocol branches that randomized simulation may hit only occasionally.

// mkSite builds a site with the given quorum (no recovery construction).
func mkSite(id mutex.SiteID, quorum ...mutex.SiteID) *Site {
	q := make(coterie.Quorum, len(quorum))
	copy(q, quorum)
	return newSite(id, 16, q, nil)
}

// deliver pushes a message through Deliver.
func deliver(s *Site, from mutex.SiteID, msg mutex.Message) mutex.Output {
	return s.Deliver(mutex.Envelope{From: from, To: s.id, Msg: msg})
}

// sent extracts the messages of a given kind from an output.
func sent(out mutex.Output, kind string) []mutex.Envelope {
	var got []mutex.Envelope
	for _, e := range out.Send {
		if e.Msg.Kind() == kind {
			got = append(got, e)
		}
	}
	return got
}

func TestArbiterGrantsWhenUnlocked(t *testing.T) {
	s := mkSite(1)
	out := deliver(s, 2, requestMsg{TS: ts(5, 2)})
	replies := sent(out, mutex.KindReply)
	if len(replies) != 1 || replies[0].To != 2 {
		t.Fatalf("replies = %v", replies)
	}
	if s.lock != ts(5, 2) {
		t.Errorf("lock = %v", s.lock)
	}
	r, ok := replies[0].Msg.(replyMsg)
	if !ok || r.Arbiter != 1 || r.ReqTS != ts(5, 2) {
		t.Errorf("reply payload = %+v", replies[0].Msg)
	}
}

func TestArbiterFailsNonWinner(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)}) // locks
	// Lower-priority request: head of queue but loses to the lock → fail +
	// transfer toward the holder.
	out := deliver(s, 3, requestMsg{TS: ts(6, 3)})
	if f := sent(out, mutex.KindFail); len(f) != 1 || f[0].To != 3 {
		t.Fatalf("fail = %v", f)
	}
	tr := sent(out, mutex.KindTransfer)
	if len(tr) != 1 || tr[0].To != 2 {
		t.Fatalf("transfer = %v", tr)
	}
	tm := tr[0].Msg.(transferMsg)
	if tm.Inquire {
		t.Error("inquire must not piggyback when the head loses to the lock")
	}
	if tm.Transfer.TargetTS != ts(6, 3) || tm.HolderTS != ts(5, 2) {
		t.Errorf("transfer payload = %+v", tm)
	}
}

func TestArbiterInquiresForHigherPriorityHead(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	// Higher-priority request: no fail to it, transfer+inquire to holder.
	out := deliver(s, 3, requestMsg{TS: ts(4, 3)})
	if f := sent(out, mutex.KindFail); len(f) != 0 {
		t.Fatalf("winner got fail: %v", f)
	}
	tr := sent(out, mutex.KindTransfer)
	if len(tr) != 1 || !tr[0].Msg.(transferMsg).Inquire {
		t.Fatalf("want inquire piggybacked on transfer, got %v", tr)
	}
	if !s.inquired {
		t.Error("inquired flag not set")
	}
}

func TestArbiterFailsDisplacedWinningHead(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(4, 3)}) // winning head, no fail
	// Even higher priority displaces it.
	out := deliver(s, 4, requestMsg{TS: ts(3, 4)})
	f := sent(out, mutex.KindFail)
	if len(f) != 1 || f[0].To != 3 {
		t.Fatalf("displaced head fail = %v", f)
	}
	// The new head gets a fresh transfer but no second inquire (deduped per
	// lock generation).
	tr := sent(out, mutex.KindTransfer)
	if len(tr) != 1 || tr[0].Msg.(transferMsg).Inquire {
		t.Fatalf("transfer = %v (inquire must be deduped)", tr)
	}
}

func TestArbiterDisplacedLosingHeadGetsNoSecondFail(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(2, 2)})
	out1 := deliver(s, 3, requestMsg{TS: ts(6, 3)}) // losing head: failed already
	if len(sent(out1, mutex.KindFail)) != 1 {
		t.Fatal("losing head should fail on arrival")
	}
	out2 := deliver(s, 4, requestMsg{TS: ts(5, 4)}) // displaces, still loses to lock
	var toOld []mutex.Envelope
	for _, e := range sent(out2, mutex.KindFail) {
		if e.To == 3 {
			toOld = append(toOld, e)
		}
	}
	if len(toOld) != 0 {
		t.Errorf("already-failed head re-failed: %v", toOld)
	}
}

func TestRequesterEntersWhenAllReplied(t *testing.T) {
	s := mkSite(1, 2, 3)
	out := s.Request()
	if len(sent(out, mutex.KindRequest)) != 2 {
		t.Fatalf("requests = %v", out.Send)
	}
	myTS := s.reqTS
	out = deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: myTS})
	if out.Entered {
		t.Fatal("entered with one of two replies")
	}
	out = deliver(s, 3, replyMsg{Arbiter: 3, ReqTS: myTS})
	if !out.Entered || !s.InCS() {
		t.Fatal("did not enter with all replies")
	}
}

func TestRequesterIgnoresStaleReply(t *testing.T) {
	s := mkSite(1, 2)
	s.Request()
	out := deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: ts(99, 1)}) // not our request
	if out.Entered {
		t.Fatal("entered on stale reply")
	}
	// The stale grant is declined back to the arbiter so it is not wedged.
	if rel := sent(out, mutex.KindRelease); len(rel) != 1 || rel[0].To != 2 {
		t.Fatalf("stale reply not declined: %v", out.Send)
	}
}

func TestInquireBeforeReplyIsParked(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	myTS := s.reqTS
	out := deliver(s, 2, inquireMsg{Arbiter: 2, HolderTS: myTS})
	if len(out.Send) != 0 {
		t.Fatalf("inquire before reply answered immediately: %v", out.Send)
	}
	if !s.inqDeferred[2] {
		t.Fatal("inquire not parked")
	}
	// A fail arrives, then the reply: A.6 must re-evaluate and yield.
	deliver(s, 3, failMsg{Arbiter: 3, ReqTS: myTS})
	out = deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: myTS})
	y := sent(out, mutex.KindYield)
	if len(y) != 1 || y[0].To != 2 {
		t.Fatalf("parked inquire did not yield after fail+reply: %v", out.Send)
	}
	if s.replied[2] {
		t.Error("replied[2] still set after yield")
	}
}

func TestFailTriggersYieldOfHeldPermission(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	myTS := s.reqTS
	deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: myTS})
	deliver(s, 2, inquireMsg{Arbiter: 2, HolderTS: myTS}) // parked: not failed yet
	out := deliver(s, 3, failMsg{Arbiter: 3, ReqTS: myTS})
	y := sent(out, mutex.KindYield)
	if len(y) != 1 || y[0].To != 2 {
		t.Fatalf("A.7 did not yield: %v", out.Send)
	}
}

func TestInquireInCSIsIgnored(t *testing.T) {
	s := mkSite(1, 2)
	s.Request()
	myTS := s.reqTS
	deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: myTS})
	if !s.InCS() {
		t.Fatal("setup: not in CS")
	}
	out := deliver(s, 2, inquireMsg{Arbiter: 2, HolderTS: myTS})
	if len(out.Send) != 0 {
		t.Fatalf("inquire answered while in CS: %v", out.Send)
	}
}

func TestTransferParkedUntilProxiedReplyArrives(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	myTS := s.reqTS
	// Transfer from arbiter 2 outruns the proxied reply.
	deliver(s, 2, transferMsg{Transfer: transferInfo{Arbiter: 2, TargetTS: ts(9, 5)}, HolderTS: myTS})
	if len(s.tranStack) != 0 {
		t.Fatal("transfer accepted before reply")
	}
	if len(s.pendTransfers[2]) != 1 {
		t.Fatal("transfer not parked")
	}
	// The proxied reply lands (From is the proxy, Arbiter is 2).
	deliver(s, 4, replyMsg{Arbiter: 2, ReqTS: myTS})
	if len(s.tranStack) != 1 || s.tranStack[0].TargetTS != ts(9, 5) {
		t.Fatalf("parked transfer not replayed: %v", s.tranStack)
	}
	if len(s.pendTransfers[2]) != 0 {
		t.Fatal("parking buffer not drained")
	}
}

func TestTransferForOldSessionDropped(t *testing.T) {
	s := mkSite(1, 2)
	s.Request()
	deliver(s, 2, transferMsg{Transfer: transferInfo{Arbiter: 2, TargetTS: ts(9, 5)}, HolderTS: ts(42, 1)})
	if len(s.tranStack) != 0 || len(s.pendTransfers) != 0 {
		t.Fatal("stale transfer retained")
	}
}

func TestYieldRegrantsHighestAndPiggybacksTransfer(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(4, 3)}) // triggers inquire
	deliver(s, 4, requestMsg{TS: ts(6, 4)})
	out := deliver(s, 2, yieldMsg{ReqTS: ts(5, 2)})
	replies := sent(out, mutex.KindReply)
	if len(replies) != 1 || replies[0].To != 3 {
		t.Fatalf("regrant = %v", replies)
	}
	r := replies[0].Msg.(replyMsg)
	if r.Transfer == nil || r.Transfer.TargetTS != ts(5, 2) {
		t.Fatalf("reply should piggyback transfer for next head (the yielder), got %+v", r.Transfer)
	}
	if s.lock != ts(4, 3) {
		t.Errorf("lock = %v", s.lock)
	}
}

func TestStaleYieldIgnored(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	out := deliver(s, 3, yieldMsg{ReqTS: ts(4, 3)}) // not the holder
	if len(out.Send) != 0 || s.lock != ts(5, 2) {
		t.Fatal("stale yield disturbed the lock")
	}
}

func TestExitForwardsNewestTransferPerArbiter(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	myTS := s.reqTS
	deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: myTS})
	deliver(s, 3, replyMsg{Arbiter: 3, ReqTS: myTS})
	// Two transfers from arbiter 2 — only the newest counts; one from 3.
	deliver(s, 2, transferMsg{Transfer: transferInfo{Arbiter: 2, TargetTS: ts(9, 5)}, HolderTS: myTS})
	deliver(s, 2, transferMsg{Transfer: transferInfo{Arbiter: 2, TargetTS: ts(8, 6)}, HolderTS: myTS})
	deliver(s, 3, transferMsg{Transfer: transferInfo{Arbiter: 3, TargetTS: ts(9, 5)}, HolderTS: myTS})
	out := s.Exit()
	replies := sent(out, mutex.KindReply)
	if len(replies) != 2 {
		t.Fatalf("forwarded replies = %v", replies)
	}
	// Arbiter 2's newest transfer targets (8,6): forwarded to site 6.
	var to6, to5 bool
	for _, e := range replies {
		switch e.To {
		case 6:
			to6 = true
			if r := e.Msg.(replyMsg); r.Arbiter != 2 || r.ReqTS != ts(8, 6) {
				t.Errorf("forward payload = %+v", r)
			}
		case 5:
			to5 = true
		}
	}
	if !to6 || !to5 {
		t.Fatalf("forward targets wrong: %v", replies)
	}
	rels := sent(out, mutex.KindRelease)
	if len(rels) != 2 { // one per quorum member (quorum is {2, 3})
		t.Fatalf("releases = %v", rels)
	}
	for _, e := range rels {
		r := e.Msg.(releaseMsg)
		switch e.To {
		case 2:
			if r.Fwd != 6 || r.FwdTS != ts(8, 6) {
				t.Errorf("release to 2 = %+v", r)
			}
		case 3:
			if r.Fwd != 5 {
				t.Errorf("release to 3 = %+v", r)
			}
		}
	}
}

func TestReleaseWithForwardMovesLock(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	out := deliver(s, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: 3, FwdTS: ts(6, 3)})
	if s.lock != ts(6, 3) {
		t.Fatalf("lock = %v, want (6,3)", s.lock)
	}
	if s.queue.Contains(ts(6, 3)) {
		t.Fatal("forwarded request still queued")
	}
	if len(out.Send) != 0 {
		t.Fatalf("no handoff expected with empty queue: %v", out.Send)
	}
}

func TestReleaseWithForwardReArmsHandoff(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	deliver(s, 4, requestMsg{TS: ts(4, 4)}) // higher priority waiter
	out := deliver(s, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: 3, FwdTS: ts(6, 3)})
	tr := sent(out, mutex.KindTransfer)
	if len(tr) != 1 || tr[0].To != 3 {
		t.Fatalf("handoff transfer = %v", tr)
	}
	tm := tr[0].Msg.(transferMsg)
	if !tm.Inquire || tm.Transfer.TargetTS != ts(4, 4) {
		t.Fatalf("handoff = %+v, want inquire for (4,4)", tm)
	}
}

func TestReleaseFallbackGrantsDirectly(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	out := deliver(s, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: timestamp.None})
	replies := sent(out, mutex.KindReply)
	if len(replies) != 1 || replies[0].To != 3 {
		t.Fatalf("fallback grant = %v", replies)
	}
	if s.lock != ts(6, 3) {
		t.Errorf("lock = %v", s.lock)
	}
}

func TestEarlyReleaseBufferedAndDrained(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	// Site 3's release arrives before the arbiter knows 3 got the lock.
	out := deliver(s, 3, releaseMsg{ReqTS: ts(6, 3), Fwd: timestamp.None})
	if len(out.Send) != 0 {
		t.Fatalf("early release acted immediately: %v", out.Send)
	}
	if s.queue.Contains(ts(6, 3)) != true {
		t.Fatal("early release must not dequeue")
	}
	// Now the forwarding release from site 2 catches up: lock moves to
	// (6,3), drains the buffered release, and the lock frees.
	deliver(s, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: 3, FwdTS: ts(6, 3)})
	if !s.lock.IsMax() {
		t.Fatalf("lock = %v, want unlocked after drained early release", s.lock)
	}
	if len(s.earlyReleases) != 0 {
		t.Fatal("early release buffer not drained")
	}
}

func TestWithdrawalRemovesQueuedRequest(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	out := deliver(s, 3, releaseMsg{ReqTS: ts(6, 3), Withdraw: true})
	if s.queue.Contains(ts(6, 3)) {
		t.Fatal("withdrawal did not dequeue")
	}
	if len(s.earlyReleases) != 0 {
		t.Fatal("withdrawal buffered as early release")
	}
	_ = out
}

// TestForwardingReleaseAfterWithdrawalReturnsPermission pins the arbiter
// half of a membership-swap race: a queued request is named in a transfer
// toward the holder, then withdraws (its site swapped onto a req_set that no
// longer contains this arbiter) before the holder's forwarding release
// lands. Re-pointing the lock at the withdrawn request would wedge it
// forever — the withdrawn site releases only to its new req_set — so the
// forwarding release must degrade to a plain release and grant the next
// waiter. Found as a live 7→4 shrink deadlock by the chaos reconfigure
// archetype (seed 61006).
func TestForwardingReleaseAfterWithdrawalReturnsPermission(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)}) // locks
	deliver(s, 3, requestMsg{TS: ts(6, 3)}) // queued; transfer names (6,3)
	deliver(s, 4, requestMsg{TS: ts(7, 4)}) // queued behind it
	// (6,3) withdraws: its site's membership swap dropped arbiter 1.
	deliver(s, 3, releaseMsg{ReqTS: ts(6, 3), Withdraw: true})
	// The holder's forwarding release still names (6,3): the transfer was
	// issued before the withdrawal. The lock must NOT re-point at (6,3).
	out := deliver(s, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: 3, FwdTS: ts(6, 3)})
	if s.lock == ts(6, 3) {
		t.Fatal("lock re-pointed at a withdrawn request")
	}
	if s.lock != ts(7, 4) {
		t.Fatalf("lock = %v, want the next waiter (7,4)", s.lock)
	}
	replies := sent(out, mutex.KindReply)
	if len(replies) != 1 || replies[0].To != 4 {
		t.Fatalf("grant after degraded forwarding release = %v", replies)
	}

	// Same race with an empty queue behind the withdrawn request: the lock
	// must simply free.
	s2 := mkSite(1)
	deliver(s2, 2, requestMsg{TS: ts(5, 2)})
	deliver(s2, 3, requestMsg{TS: ts(6, 3)})
	deliver(s2, 3, releaseMsg{ReqTS: ts(6, 3), Withdraw: true})
	deliver(s2, 2, releaseMsg{ReqTS: ts(5, 2), Fwd: 3, FwdTS: ts(6, 3)})
	if !s2.lock.IsMax() {
		t.Fatalf("lock = %v, want unlocked", s2.lock)
	}
}

func TestRequestFromAnnouncedFailedSiteDropped(t *testing.T) {
	s := mkSite(1, 2)
	s.SiteFailed(5)
	out := deliver(s, 5, requestMsg{TS: ts(3, 5)})
	if len(out.Send) != 0 || !s.lock.IsMax() {
		t.Fatal("request from failed site processed")
	}
}

func TestSiteFailedRegrantsHeldLock(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	out := s.SiteFailed(2) // the holder dies
	replies := sent(out, mutex.KindReply)
	if len(replies) != 1 || replies[0].To != 3 {
		t.Fatalf("regrant after holder crash = %v", replies)
	}
	if s.lock != ts(6, 3) {
		t.Errorf("lock = %v", s.lock)
	}
}

func TestSiteFailedPurgesQueueHead(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	deliver(s, 4, requestMsg{TS: ts(7, 4)})
	out := s.SiteFailed(3) // queued head dies
	if s.queue.Contains(ts(6, 3)) {
		t.Fatal("failed site's request still queued")
	}
	// The holder must learn the new head.
	tr := sent(out, mutex.KindTransfer)
	if len(tr) != 1 || tr[0].Msg.(transferMsg).Transfer.TargetTS != ts(7, 4) {
		t.Fatalf("handoff after purge = %v", tr)
	}
}

func TestDuplicateFailureAnnouncementIdempotent(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	out1 := s.SiteFailed(2)
	out2 := s.SiteFailed(2)
	if len(out2.Send) != 0 {
		t.Fatalf("second announcement acted again: %v", out2.Send)
	}
	_ = out1
}

func TestRequestWhileBusyIsNoOp(t *testing.T) {
	s := mkSite(1, 2)
	s.Request()
	out := s.Request()
	if len(out.Send) != 0 {
		t.Fatal("second Request while pending sent messages")
	}
	if out2 := s.Exit(); len(out2.Send) != 0 {
		t.Fatal("Exit while not in CS sent messages")
	}
}
