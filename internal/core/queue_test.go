package core

import (
	"sort"
	"testing"
	"testing/quick"

	"dqmx/internal/timestamp"
)

func ts(seq uint64, site int) timestamp.Timestamp {
	return timestamp.Timestamp{Seq: seq, Site: timestamp.SiteID(site)}
}

func TestQueuePushPopOrder(t *testing.T) {
	var q tsQueue
	q.Push(ts(3, 1))
	q.Push(ts(1, 2))
	q.Push(ts(2, 0))
	q.Push(ts(1, 1)) // same seq as (1,2), lower site → higher priority
	want := []timestamp.Timestamp{ts(1, 1), ts(1, 2), ts(2, 0), ts(3, 1)}
	for i, w := range want {
		if q.Empty() {
			t.Fatalf("queue empty at %d", i)
		}
		if h := q.Head(); h != w {
			t.Fatalf("Head = %v, want %v", h, w)
		}
		if got := q.Pop(); got != w {
			t.Fatalf("Pop %d = %v, want %v", i, got, w)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestQueueDuplicatePushIgnored(t *testing.T) {
	var q tsQueue
	q.Push(ts(1, 1))
	q.Push(ts(1, 1))
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestQueueRemove(t *testing.T) {
	var q tsQueue
	q.Push(ts(1, 1))
	q.Push(ts(2, 2))
	q.Push(ts(3, 3))
	if !q.Remove(ts(2, 2)) {
		t.Fatal("Remove existing = false")
	}
	if q.Remove(ts(2, 2)) {
		t.Fatal("Remove missing = true")
	}
	if q.Len() != 2 || q.Head() != ts(1, 1) {
		t.Fatalf("unexpected queue state: len=%d head=%v", q.Len(), q.Head())
	}
}

func TestQueueRemoveSite(t *testing.T) {
	var q tsQueue
	q.Push(ts(1, 1))
	q.Push(ts(2, 5))
	q.Push(ts(3, 5))
	q.Push(ts(4, 2))
	if got := q.RemoveSite(5); got != 2 {
		t.Fatalf("RemoveSite = %d, want 2", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Contains(ts(2, 5)) || q.Contains(ts(3, 5)) {
		t.Fatal("site 5 entries still present")
	}
	if !q.Contains(ts(1, 1)) || !q.Contains(ts(4, 2)) {
		t.Fatal("unrelated entries were removed")
	}
}

// TestQueueAlwaysSorted property-checks that any push/remove sequence keeps
// the queue sorted by priority.
func TestQueueAlwaysSorted(t *testing.T) {
	check := func(ops []uint8) bool {
		var q tsQueue
		for _, op := range ops {
			seq := uint64(op % 8)
			site := int(op/8) % 8
			if op%3 == 0 && !q.Empty() {
				q.Remove(q.items[int(op)%len(q.items)])
			} else {
				q.Push(ts(seq, site))
			}
			if !sort.SliceIsSorted(q.items, func(i, j int) bool {
				return q.items[i].Less(q.items[j])
			}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
