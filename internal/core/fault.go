package core

import (
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// SiteFailed implements the §6 recovery protocol. On a failure(f)
// notification the site:
//
//  1. (arbiter half) purges f's request from its queue — regranting or
//     re-arming the handoff when f was the head or the lock holder;
//  2. (requester half) voids transfers issued by or targeting f; and
//  3. when f is in its quorum and a fault-tolerant construction is
//     configured, rebuilds the quorum around the failure: arbiters leaving
//     the quorum receive a withdrawal/release, new arbiters receive the
//     original request (same timestamp, so priority is preserved).
//
// Without a construction the request simply keeps waiting — shrinking a
// quorum ad hoc would break the Intersection property and with it mutual
// exclusion.
func (s *Site) SiteFailed(f mutex.SiteID) mutex.Output {
	var out mutex.Output
	if f == s.id || s.failedSites[f] {
		return out
	}
	s.failedSites[f] = true

	s.arbiterPurge(f, &out)
	s.requesterPurge(f, &out)

	if s.quorum.Contains(f) {
		s.rebuildQuorum(f, &out)
	}
	return out
}

// arbiterPurge removes every trace of the failed site from the arbiter half
// (the paper's Cases 1 and 3 of the recovery actions).
func (s *Site) arbiterPurge(f mutex.SiteID, out *mutex.Output) {
	s.queue.RemoveSite(f)
	if !s.lock.IsMax() && s.lock.Site == f {
		// The failed site held our permission: grant the next request
		// directly, piggybacking a transfer for the one after it.
		if s.queue.Empty() {
			s.lock = timestamp.Max
			s.resetLockGen()
		} else {
			s.grantNext(out)
		}
		return
	}
	// The head may have changed; make sure the holder learns the new head.
	s.ensureHandoff(out)
}

// requesterPurge voids state that references the failed site (Case 2).
func (s *Site) requesterPurge(f mutex.SiteID, _ *mutex.Output) {
	if s.state == stateIdle {
		return
	}
	kept := s.tranStack[:0]
	for _, e := range s.tranStack {
		if e.Arbiter != f && e.TargetTS.Site != f {
			kept = append(kept, e)
		}
	}
	s.tranStack = kept
	if s.pendTransfers != nil {
		delete(s.pendTransfers, f)
	}
	if s.inqDeferred != nil {
		delete(s.inqDeferred, f)
	}
}

// rebuildQuorum swaps the site onto a quorum that avoids all known-failed
// sites, withdrawing from arbiters that leave the quorum and requesting from
// the ones that join. When no live quorum exists the old quorum is kept and
// the request blocks — safety over progress.
func (s *Site) rebuildQuorum(f mutex.SiteID, out *mutex.Output) {
	if s.cons == nil {
		return
	}
	newQ, err := s.cons.QuorumAvoiding(s.n, s.id, s.failedSites)
	if err != nil {
		return // no live quorum; keep waiting
	}
	old := s.quorum
	s.quorum = newQ

	if s.state == stateIdle {
		return
	}
	if s.state == stateInCS {
		// Keep the held quorum for the current CS; the new quorum takes
		// effect for the next request (Exit releases the old members).
		s.quorum = old
		s.nextQuorum = newQ
		return
	}
	// Waiting: reconcile memberships.
	for _, a := range old {
		if a == f || newQ.Contains(a) || s.failedSites[a] {
			continue
		}
		// Leaving arbiter: withdraw our request (frees its lock or queue
		// slot) and void its transfers.
		out.SendTo(s.id, a, releaseMsg{ReqTS: s.reqTS, Fwd: timestamp.None, Withdraw: true})
		delete(s.replied, a)
		s.dropTransfersFrom(a)
		delete(s.inqDeferred, a)
	}
	for _, a := range newQ {
		if !old.Contains(a) {
			out.SendTo(s.id, a, requestMsg{TS: s.reqTS})
		}
	}
	s.checkEntry(out)
}
