package core

import (
	"sort"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// SiteFailed implements the §6 recovery protocol. On a failure(f)
// notification the site:
//
//  1. (arbiter half) purges f's request from its queue — regranting or
//     re-arming the handoff when f was the head or the lock holder;
//  2. (requester half) voids transfers issued by or targeting f; and
//  3. when f is in its quorum and a fault-tolerant construction is
//     configured, rebuilds the quorum around the failure: arbiters leaving
//     the quorum receive a withdrawal/release, new arbiters receive the
//     original request (same timestamp, so priority is preserved).
//
// Without a construction the request simply keeps waiting — shrinking a
// quorum ad hoc would break the Intersection property and with it mutual
// exclusion.
func (s *Site) SiteFailed(f mutex.SiteID) mutex.Output {
	var out mutex.Output
	if f == s.id || s.failedSites[f] {
		return out
	}
	s.failedSites[f] = true

	s.arbiterPurge(f, &out)
	s.requesterPurge(f, &out)

	if s.quorum.Contains(f) {
		s.rebuildQuorum(f, &out)
	}
	if s.state == stateWaiting {
		s.refreshRequests(&out)
	}
	return out
}

// refreshRequests re-sends the pending request to every quorum arbiter that
// has not granted it. The crashed site may have been the proxy carrying an
// arbiter's grant to us — the forwarded reply dying with it while the release
// that re-pointed the arbiter's lock survived — and we cannot tell which
// grants were in a dead proxy's custody. The refresh carries every site we
// know to have crashed: because the transport severs a dead peer's streams
// before announcing the crash, any grant proxied by a site in that set is
// provably undeliverable, and the arbiter may re-issue it — immediately when
// its lock already points at this request, or when a forwarding release
// later re-points it here (the refresh-before-release race; the arbiter
// remembers the dead-set against the queued entry). Grants in a live proxy's
// custody are left alone: the refresh arriving does not prove them lost, and
// re-issuing could double-grant across a yield. If that proxy later crashes,
// the next refresh claims it and heals the gap.
func (s *Site) refreshRequests(out *mutex.Output) {
	dead := make([]mutex.SiteID, 0, len(s.failedSites))
	for f := range s.failedSites {
		dead = append(dead, f)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	for _, a := range s.quorum {
		if s.replied[a] || s.failedSites[a] {
			continue
		}
		out.SendTo(s.id, a, requestMsg{TS: s.reqTS, Refresh: true, Dead: dead})
	}
}

// arbiterPurge removes every trace of the failed site from the arbiter half
// (the paper's Cases 1 and 3 of the recovery actions).
func (s *Site) arbiterPurge(f mutex.SiteID, out *mutex.Output) {
	s.queue.RemoveSite(f)
	s.clearRefreshSite(f)
	if !s.lock.IsMax() && s.lock.Site == f {
		// The failed site held our permission: grant the next request
		// directly, piggybacking a transfer for the one after it.
		if s.queue.Empty() {
			s.lock = timestamp.Max
			s.resetLockGen()
		} else {
			s.grantNext(out)
		}
		return
	}
	// The head may have changed; make sure the holder learns the new head.
	s.ensureHandoff(out)
}

// requesterPurge voids state that references the failed site (Case 2).
func (s *Site) requesterPurge(f mutex.SiteID, _ *mutex.Output) {
	if s.state == stateIdle {
		return
	}
	kept := s.tranStack[:0]
	for _, e := range s.tranStack {
		if e.Arbiter != f && e.TargetTS.Site != f {
			kept = append(kept, e)
		}
	}
	s.tranStack = kept
	if s.pendTransfers != nil {
		delete(s.pendTransfers, f)
	}
	if s.inqDeferred != nil {
		delete(s.inqDeferred, f)
	}
}

// rebuildQuorum swaps the site onto a quorum that avoids all known-failed
// sites, withdrawing from arbiters that leave the quorum and requesting from
// the ones that join. When no live quorum exists the old quorum is kept and
// the request blocks — safety over progress.
func (s *Site) rebuildQuorum(f mutex.SiteID, out *mutex.Output) {
	newQ, ok := s.replacementQuorum()
	if !ok {
		return // no live quorum; keep waiting
	}
	old := s.quorum
	s.quorum = newQ

	if s.state == stateIdle {
		return
	}
	if s.state == stateInCS {
		// Keep the held quorum for the current CS; the new quorum takes
		// effect for the next request (Exit releases the old members).
		s.quorum = old
		s.nextQuorum = newQ
		return
	}
	// Waiting: reconcile memberships.
	for _, a := range old {
		if a == f || newQ.Contains(a) || s.failedSites[a] {
			continue
		}
		// Leaving arbiter: withdraw our request (frees its lock or queue
		// slot) and void its transfers.
		out.SendTo(s.id, a, releaseMsg{ReqTS: s.reqTS, Fwd: timestamp.None, Withdraw: true})
		delete(s.replied, a)
		s.dropTransfersFrom(a)
		delete(s.inqDeferred, a)
	}
	// Joining arbiters receive the original request (same timestamp) through
	// the refresh that SiteFailed runs after the rebuild: they are exactly the
	// quorum members without a reply.
	s.checkEntry(out)
}

// replacementQuorum picks the substitute req_set for a §6 rebuild: the
// active membership's avoiding rule when one is installed (it keeps a joint
// handover quorum joint), otherwise the construction's QuorumAvoiding.
// ok is false when no live quorum exists.
func (s *Site) replacementQuorum() (coterie.Quorum, bool) {
	if s.memberAvoid != nil {
		ids, ok := s.memberAvoid(s.failedSites)
		if !ok {
			return nil, false
		}
		return coterie.Quorum(ids), true
	}
	if s.cons == nil {
		return nil, false
	}
	q, err := s.cons.QuorumAvoiding(s.n, s.id, s.failedSites)
	if err != nil {
		return nil, false
	}
	return q, true
}
