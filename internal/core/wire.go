package core

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration for the seven §3.1 control messages (tags 1–7 in
// the range reserved for core by internal/wire). Field order in each encode
// function is the normative v1 layout documented in PROTOCOL.md; changing it
// is a wire-format break.

const (
	tagRequest byte = iota + 1
	tagReply
	tagRelease
	tagInquire
	tagFail
	tagYield
	tagTransfer
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(requestMsg)
			b = wire.AppendTimestamp(b, v.TS)
			// A flag byte separates the common first-send request from the
			// §6 crash-refresh form carrying the requester's known-dead set.
			if !v.Refresh {
				return wire.AppendBool(b, false)
			}
			b = wire.AppendBool(b, true)
			b = wire.AppendUint(b, uint64(len(v.Dead)))
			for _, f := range v.Dead {
				b = wire.AppendSite(b, f)
			}
			return b
		},
		func(r *wire.Reader) (mutex.Message, error) {
			v := requestMsg{TS: r.Timestamp()}
			if r.Bool() {
				v.Refresh = true
				if n := r.Len(); n > 0 {
					v.Dead = make([]mutex.SiteID, 0, n)
					for i := 0; i < n; i++ {
						v.Dead = append(v.Dead, r.Site())
					}
				}
			}
			return v, nil
		})

	wire.RegisterMessage(tagReply, replyMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(replyMsg)
			b = wire.AppendSite(b, v.Arbiter)
			b = wire.AppendTimestamp(b, v.ReqTS)
			// A flag byte separates the common no-transfer reply from the
			// piggybacked A.4 form.
			if v.Transfer == nil {
				return wire.AppendBool(b, false)
			}
			b = wire.AppendBool(b, true)
			return appendTransferInfo(b, *v.Transfer)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			v := replyMsg{Arbiter: r.Site(), ReqTS: r.Timestamp()}
			if r.Bool() {
				ti := readTransferInfo(r)
				v.Transfer = &ti
			}
			return v, nil
		})

	wire.RegisterMessage(tagRelease, releaseMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(releaseMsg)
			b = wire.AppendTimestamp(b, v.ReqTS)
			b = wire.AppendSite(b, v.Fwd) // timestamp.None (−1) zigzags to one byte
			b = wire.AppendTimestamp(b, v.FwdTS)
			return wire.AppendBool(b, v.Withdraw)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return releaseMsg{
				ReqTS:    r.Timestamp(),
				Fwd:      r.Site(),
				FwdTS:    r.Timestamp(),
				Withdraw: r.Bool(),
			}, nil
		})

	wire.RegisterMessage(tagInquire, inquireMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(inquireMsg)
			b = wire.AppendSite(b, v.Arbiter)
			return wire.AppendTimestamp(b, v.HolderTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return inquireMsg{Arbiter: r.Site(), HolderTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagFail, failMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(failMsg)
			b = wire.AppendSite(b, v.Arbiter)
			return wire.AppendTimestamp(b, v.ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return failMsg{Arbiter: r.Site(), ReqTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagYield, yieldMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(yieldMsg).ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return yieldMsg{ReqTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagTransfer, transferMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(transferMsg)
			b = appendTransferInfo(b, v.Transfer)
			b = wire.AppendTimestamp(b, v.HolderTS)
			return wire.AppendBool(b, v.Inquire)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return transferMsg{
				Transfer: readTransferInfo(r),
				HolderTS: r.Timestamp(),
				Inquire:  r.Bool(),
			}, nil
		})
}

func appendTransferInfo(b []byte, ti transferInfo) []byte {
	b = wire.AppendSite(b, ti.Arbiter)
	return wire.AppendTimestamp(b, ti.TargetTS)
}

func readTransferInfo(r *wire.Reader) transferInfo {
	return transferInfo{Arbiter: r.Site(), TargetTS: r.Timestamp()}
}
