package core

import "encoding/gob"

// RegisterGobMessages registers the protocol's wire messages with
// encoding/gob so mutex.Envelope values can cross a real network (see
// internal/transport). Safe to call multiple times.
func RegisterGobMessages() {
	gob.Register(requestMsg{})
	gob.Register(replyMsg{})
	gob.Register(releaseMsg{})
	gob.Register(inquireMsg{})
	gob.Register(failMsg{})
	gob.Register(yieldMsg{})
	gob.Register(transferMsg{})
}
