package core

// RegisterGobMessages is a no-op kept for source compatibility.
//
// Deprecated: the protocol's messages register themselves with both wire
// codecs (including encoding/gob for the v0 stream) when this package is
// imported; there is no longer a separate registration step to perform.
func RegisterGobMessages() {}
