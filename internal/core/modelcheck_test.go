package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// An exhaustive model checker: it explores EVERY per-channel-FIFO message
// interleaving of a small configuration (three sites with majority quorums,
// one CS request each, plus nondeterministic exit timing) and asserts, in
// every reachable state, that at most one site is in the CS and that every
// terminal state has all three executions completed (no deadlock under any
// delivery order). This is stronger than any number of randomized runs: the
// state space is covered completely, up to the memoized canonical state
// equivalence.

type mcChannel struct{ from, to mutex.SiteID }

type mcState struct {
	sites []*Site
	chans map[mcChannel][]mutex.Envelope
	inCS  int   // -1 when free
	reqs  []int // CS executions each site still has to issue
}

func (st *mcState) clone() *mcState {
	c := &mcState{
		sites: make([]*Site, len(st.sites)),
		chans: make(map[mcChannel][]mutex.Envelope, len(st.chans)),
		inCS:  st.inCS,
		reqs:  append([]int(nil), st.reqs...),
	}
	for i, s := range st.sites {
		c.sites[i] = s.clone()
	}
	for k, v := range st.chans {
		c.chans[k] = append([]mutex.Envelope(nil), v...)
	}
	return c
}

// route applies an output: self-messages run synchronously (as every driver
// does), remote ones append to their FIFO channel. It reports a CS entry.
func (st *mcState) route(siteID int, out mutex.Output) (entered bool, err error) {
	pending := out.Send
	entered = out.Entered
	for len(pending) > 0 {
		env := pending[0]
		pending = pending[1:]
		if env.To == env.From {
			next := st.sites[env.To].Deliver(env)
			entered = entered || next.Entered
			pending = append(pending, next.Send...)
			continue
		}
		key := mcChannel{env.From, env.To}
		st.chans[key] = append(st.chans[key], env)
	}
	if entered {
		if st.inCS != -1 {
			return false, fmt.Errorf("safety: site %d entered while %d in CS", siteID, st.inCS)
		}
		st.inCS = siteID
	}
	return entered, nil
}

type mcAction struct {
	deliver *mcChannel // deliver the head of this channel…
	exit    int        // …or let this site exit the CS…
	request int        // …or let this idle site issue its next request
}

func (st *mcState) enabled() []mcAction {
	var acts []mcAction
	if st.inCS != -1 {
		acts = append(acts, mcAction{exit: st.inCS, request: -1})
	}
	for i, s := range st.sites {
		if st.reqs[i] > 0 && !s.Pending() && !s.InCS() {
			acts = append(acts, mcAction{exit: -1, request: i})
		}
	}
	keys := make([]mcChannel, 0, len(st.chans))
	for k, q := range st.chans {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for i := range keys {
		k := keys[i]
		acts = append(acts, mcAction{deliver: &k, exit: -1, request: -1})
	}
	return acts
}

func (st *mcState) apply(a mcAction) error {
	switch {
	case a.deliver != nil:
		q := st.chans[*a.deliver]
		env := q[0]
		if len(q) == 1 {
			delete(st.chans, *a.deliver)
		} else {
			st.chans[*a.deliver] = q[1:]
		}
		out := st.sites[env.To].Deliver(env)
		_, err := st.route(int(env.To), out)
		return err
	case a.request >= 0:
		st.reqs[a.request]--
		_, err := st.route(a.request, st.sites[a.request].Request())
		return err
	default:
		site := st.sites[a.exit]
		st.inCS = -1
		_, err := st.route(a.exit, site.Exit())
		return err
	}
}

// canonical serializes the full protocol state deterministically (excluding
// the statistics counters, which do not influence behaviour).
func (st *mcState) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cs=%d reqs=%v|", st.inCS, st.reqs)
	for _, s := range st.sites {
		fmt.Fprintf(&b, "S%d{%v %v f=%v r=%s q=%v d=%s ts=%v p=%s|L=%v Q=%v i=%v lt=%v er=%s}",
			s.id, s.state, s.reqTS, s.failed, setStr(s.replied), s.quorum, setStr(s.inqDeferred),
			s.tranStack, pendStr(s.pendTransfers),
			s.lock, s.queue.items, s.inquired, s.lastTransfer, erStr(s.earlyReleases))
	}
	keys := make([]mcChannel, 0, len(st.chans))
	for k := range st.chans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "|%d>%d:%v", k.from, k.to, st.chans[k])
	}
	return b.String()
}

func setStr(m map[mutex.SiteID]bool) string {
	ids := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			ids = append(ids, int(k))
		}
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

func pendStr(m map[mutex.SiteID][]transferInfo) string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:%v;", k, m[mutex.SiteID(k)])
	}
	return b.String()
}

func erStr(m map[timestamp.Timestamp]releaseMsg) string {
	type kv struct {
		k timestamp.Timestamp
		v releaseMsg
	}
	items := make([]kv, 0, len(m))
	for k, v := range m {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].k.Less(items[j].k) })
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%v=%v;", it.k, it.v)
	}
	return b.String()
}

// runModelCheck explores the complete interleaving space (per-channel FIFO,
// nondeterministic request and exit timing) of n sites over the given
// coterie, each issuing perSite CS requests. It fails on any safety
// violation or deadlocked terminal state and returns the number of distinct
// states explored.
func runModelCheck(t *testing.T, cons coterie.Construction, n, perSite, stateCap int) int {
	t.Helper()
	assign, err := cons.Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	init := &mcState{
		chans: make(map[mcChannel][]mutex.Envelope),
		inCS:  -1,
		reqs:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		init.sites = append(init.sites, newSite(mutex.SiteID(i), n, assign.Quorum(mutex.SiteID(i)), nil))
		init.reqs[i] = perSite
	}

	visited := map[string]bool{init.canonical(): true}
	stack := []*mcState{init}
	terminals := 0
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(visited) > stateCap {
			t.Fatalf("state space exceeded the %d-state cap", stateCap)
		}
		acts := st.enabled()
		if len(acts) == 0 {
			terminals++
			for i, r := range st.reqs {
				if r != 0 || st.sites[i].Pending() {
					t.Fatalf("deadlock: site %d incomplete in terminal state:\n%s", i, st.canonical())
				}
			}
			continue
		}
		for _, a := range acts {
			next := st.clone()
			if err := next.apply(a); err != nil {
				t.Fatal(err)
			}
			key := next.canonical()
			if !visited[key] {
				visited[key] = true
				stack = append(stack, next)
			}
		}
	}
	if terminals == 0 {
		t.Fatal("no terminal states reached")
	}
	t.Logf("%s n=%d perSite=%d: %d distinct states, %d terminal states — safety and liveness hold in all",
		cons.Name(), n, perSite, len(visited), terminals)
	return len(visited)
}

// TestModelCheckExhaustive covers every interleaving of the small
// configurations: majority and grid coteries, one and two executions per
// site. The grid run exercises the transfer/inquire/yield machinery because
// site 0's quorum spans all three sites.
func TestModelCheckExhaustive(t *testing.T) {
	runModelCheck(t, coterie.Majority{}, 3, 1, 100_000)
	runModelCheck(t, coterie.Grid{}, 3, 1, 2_000_000)
}

// TestModelCheckTwoRounds lets every site run two CS executions, issued at
// nondeterministic times — the interleaving space where the early-release
// and transfer races actually appear.
func TestModelCheckTwoRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("model checking skipped in -short mode")
	}
	runModelCheck(t, coterie.Majority{}, 3, 2, 6_000_000)
	// The grid config additionally covers the transfer/inquire/yield and
	// early-release machinery (site 0's quorum spans all three sites).
	runModelCheck(t, coterie.Grid{}, 3, 2, 20_000_000)
}
