package core_test

import (
	"fmt"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// TestEarlyReleaseRegression replays the exact configuration (N=13,
// exponential delays, seed 1) that once wedged arbiter 1 on a stale lock:
// the next holder acquired, executed, and released via a proxied grant
// before the forwarding release reached the arbiter. The early-release
// buffer fixed it; this test pins the scenario and dumps full per-site state
// plus a message trace on any recurrence.
func TestEarlyReleaseRegression(t *testing.T) {
	alg := core.Algorithm{}
	c, err := sim.NewCluster(sim.Config{N: 13, Algorithm: alg, Delay: sim.ExponentialDelay{MeanD: 1000}, Seed: 1, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	c.Net.Trace = func(at sim.Time, env mutex.Envelope) {
		if env.From == 1 || env.To == 1 {
			trace = append(trace, fmt.Sprintf("t=%-8d %d->%d %v", at, env.From, env.To, env.Msg))
		}
	}
	workload.Saturated(c, 4)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Logf("run error: %v (completed %d/%d)", err, c.Completed(), c.Issued())
		for i, s := range c.Sites {
			t.Logf("site %d: %s", i, core.DebugState(s))
		}
		for _, line := range trace {
			t.Log(line)
		}
		t.Fail()
	}
}
