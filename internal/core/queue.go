package core

import "dqmx/internal/timestamp"

// tsQueue is a priority queue of request timestamps: the highest-priority
// (smallest) timestamp is at index 0. Quorum sizes are small (O(√N) or
// O(log N)), so an ordered slice beats a heap in both simplicity and
// constant factors, and it supports the removal-by-value the protocol needs.
type tsQueue struct {
	items []timestamp.Timestamp
}

// Len returns the number of queued requests.
func (q *tsQueue) Len() int { return len(q.items) }

// Empty reports whether the queue has no requests.
func (q *tsQueue) Empty() bool { return len(q.items) == 0 }

// Head returns the highest-priority request. It must not be called on an
// empty queue.
func (q *tsQueue) Head() timestamp.Timestamp { return q.items[0] }

// Push inserts ts keeping the queue ordered. Duplicate timestamps are
// ignored (a request is enqueued at most once).
func (q *tsQueue) Push(ts timestamp.Timestamp) {
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.items[mid].Less(ts) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(q.items) && q.items[lo] == ts {
		return
	}
	q.items = append(q.items, timestamp.Timestamp{})
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = ts
}

// Pop removes and returns the highest-priority request. It must not be
// called on an empty queue.
func (q *tsQueue) Pop() timestamp.Timestamp {
	ts := q.items[0]
	q.items = q.items[1:]
	return ts
}

// Remove deletes ts from the queue, reporting whether it was present.
func (q *tsQueue) Remove(ts timestamp.Timestamp) bool {
	for i, t := range q.items {
		if t == ts {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveSite deletes every request issued by the given site, reporting how
// many entries were removed (used by the §6 failure recovery).
func (q *tsQueue) RemoveSite(s timestamp.SiteID) int {
	out := q.items[:0]
	removed := 0
	for _, t := range q.items {
		if t.Site == s {
			removed++
		} else {
			out = append(out, t)
		}
	}
	q.items = out
	return removed
}

// Contains reports whether ts is queued.
func (q *tsQueue) Contains(ts timestamp.Timestamp) bool {
	for _, t := range q.items {
		if t == ts {
			return true
		}
	}
	return false
}
