package core

import "dqmx/internal/timestamp"

// CaseStats counts how often each of the paper's §5.2 heavy-load cases
// occurred at this arbiter: the classification of a request arriving while
// the arbiter is locked, by its priority relative to the lock holder and the
// queue head.
//
//	Case 1: queue empty,     request loses to the lock
//	Case 2: request wins against both lock and queue head (inquire path)
//	Case 3: queue non-empty, request loses to the head
//	Case 4: request displaces a head that outranks the lock
//	Case 5: request beats the head but loses to the lock
type CaseStats struct {
	Case [6]uint64 // index 1..5; 0 unused
}

// Total returns the number of classified arrivals.
func (c CaseStats) Total() uint64 {
	var t uint64
	for _, v := range c.Case {
		t += v
	}
	return t
}

// classify records the §5.2 case of a locked-arbiter arrival. oldHead is
// timestamp.Max when the queue was empty.
func (s *Site) classify(ts, oldHead timestamp.Timestamp) {
	switch {
	case oldHead.IsMax() && !ts.Less(s.lock):
		s.cases.Case[1]++
	case ts.Less(s.lock) && (oldHead.IsMax() || ts.Less(oldHead)):
		s.cases.Case[2]++
	case !oldHead.IsMax() && oldHead.Less(ts):
		s.cases.Case[3]++
	case !oldHead.IsMax() && ts.Less(oldHead) && oldHead.Less(s.lock):
		s.cases.Case[4]++
	default:
		s.cases.Case[5]++
	}
}

// Cases returns the arbiter's §5.2 case counters.
func (s *Site) Cases() CaseStats { return s.cases }
