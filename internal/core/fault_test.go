package core_test

import (
	"errors"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// newFaultCluster builds a cluster with tree quorums (the fault-tolerant
// construction the paper highlights) and the given recovery setting.
func newFaultCluster(t *testing.T, n int, seed int64, disableRecovery bool) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.Config{
		N:         n,
		Algorithm: core.Algorithm{Construction: coterie.Tree{}, DisableRecovery: disableRecovery},
		Delay:     sim.ConstantDelay{D: meanDelay},
		Seed:      seed,
		CSTime:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCrashIdleSiteOthersProceed: crashing a quorum member mid-run must not
// block the survivors when recovery is enabled.
func TestCrashIdleSiteOthersProceed(t *testing.T) {
	n := 15
	c := newFaultCluster(t, n, 1, false)
	// Crash a mid-tree arbiter early; with tree quorums the survivors can
	// substitute paths through its children.
	crashed := mutex.SiteID(1)
	c.CrashAt(10, crashed)
	for i := 0; i < n; i++ {
		if s := mutex.SiteID(i); s != crashed {
			c.RequestAt(sim.Time(100), s)
		}
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("survivors blocked: %v", err)
	}
	if got, want := c.Completed(), n-1; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
}

// TestCrashRootOfTree: the tree root is in every default quorum; recovery
// must rebuild all of them.
func TestCrashRootOfTree(t *testing.T) {
	n := 15
	c := newFaultCluster(t, n, 2, false)
	c.CrashAt(10, 0)
	for i := 1; i < n; i++ {
		c.RequestAt(sim.Time(100), mutex.SiteID(i))
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("survivors blocked after root crash: %v", err)
	}
	if got, want := c.Completed(), n-1; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
}

// TestCrashWhileRequestsInFlight: the crash lands in the middle of a
// saturated run; every surviving request must still complete.
func TestCrashWhileRequestsInFlight(t *testing.T) {
	n := 15
	for seed := int64(1); seed <= 8; seed++ {
		c := newFaultCluster(t, n, seed, false)
		workload.Saturated(c, 3)
		crashed := mutex.SiteID(2)
		c.CrashAt(1500, crashed) // mid-handshake
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCrashLockHolderInCS: the site crashes while holding the critical
// section; its arbiters must re-grant to the waiters.
func TestCrashLockHolderInCS(t *testing.T) {
	n := 15
	c := newFaultCluster(t, n, 3, false)
	workload.Saturated(c, 2)
	// With constant delays the first entrant is site 0 (self-grants at t=0
	// beat network requests); crash it shortly after everyone requested.
	c.CrashAt(5, 0)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("%v", err)
	}
	if c.Completed() == 0 {
		t.Fatal("no survivor completed")
	}
}

// TestWithoutRecoveryRequestsBlock: with recovery disabled, a crashed quorum
// member honestly blocks its dependents (shrinking quorums ad hoc would
// break the intersection property).
func TestWithoutRecoveryRequestsBlock(t *testing.T) {
	n := 7
	c := newFaultCluster(t, n, 4, true)
	c.CrashAt(0, 0) // root: in every tree quorum
	for i := 1; i < n; i++ {
		c.RequestAt(100, mutex.SiteID(i))
	}
	c.Run(0)
	if err := c.Err(); !errors.Is(err, sim.ErrStarvation) {
		t.Fatalf("err = %v, want starvation (recovery disabled)", err)
	}
}

// TestCascadingCrashes: several crashes in sequence; tree quorums degrade
// but survive as long as substitution paths exist.
func TestCascadingCrashes(t *testing.T) {
	n := 15
	c := newFaultCluster(t, n, 5, false)
	workload.Saturated(c, 3)
	c.CrashAt(2000, 1)
	c.CrashAt(20000, 2)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("%v", err)
	}
}

// TestRecoveryMessagesCounted: the failure announcement itself shows up in
// the accounting as KindFailure messages.
func TestRecoveryMessagesCounted(t *testing.T) {
	n := 15
	c := newFaultCluster(t, n, 6, false)
	c.CrashAt(10, 3)
	c.RequestAt(100000, 5) // after detection settles
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// One notification per survivor, minus the detector's own (self
	// deliveries are not network messages).
	if got := c.Net.CountByKind()[mutex.KindFailure]; got != uint64(n-2) {
		t.Errorf("failure notifications = %d, want %d", got, n-2)
	}
}

// TestGridRecovery: recovery also works over grid quorums when a live
// row/column substitution exists.
func TestGridRecovery(t *testing.T) {
	n := 16
	c, err := sim.NewCluster(sim.Config{
		N:         n,
		Algorithm: core.Algorithm{Construction: coterie.Grid{}},
		Delay:     sim.ConstantDelay{D: meanDelay},
		Seed:      7,
		CSTime:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, 2)
	c.CrashAt(1500, 5)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
