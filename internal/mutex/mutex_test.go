package mutex

import "testing"

type fakeMsg struct{ kind string }

func (m fakeMsg) Kind() string { return m.kind }

func TestOutputSendTo(t *testing.T) {
	var out Output
	out.SendTo(1, 2, fakeMsg{"request"})
	out.SendTo(1, 3, fakeMsg{"reply"})
	if len(out.Send) != 2 {
		t.Fatalf("Send len = %d", len(out.Send))
	}
	if out.Send[0].From != 1 || out.Send[0].To != 2 || out.Send[0].Msg.Kind() != "request" {
		t.Errorf("first envelope wrong: %+v", out.Send[0])
	}
	if out.Entered {
		t.Error("SendTo must not set Entered")
	}
}

func TestOutputMerge(t *testing.T) {
	var a, b Output
	a.SendTo(0, 1, fakeMsg{"x"})
	b.SendTo(1, 0, fakeMsg{"y"})
	b.Entered = true
	a.Merge(b)
	if len(a.Send) != 2 {
		t.Fatalf("merged Send len = %d", len(a.Send))
	}
	if !a.Entered {
		t.Error("Merge must propagate Entered")
	}
	// Entered must never be cleared by merging a non-entered output.
	a.Merge(Output{})
	if !a.Entered {
		t.Error("Merge cleared Entered")
	}
}

func TestFailureMsgKind(t *testing.T) {
	if got := (FailureMsg{Failed: 3}).Kind(); got != KindFailure {
		t.Errorf("Kind = %q", got)
	}
}

func TestKindConstantsDistinct(t *testing.T) {
	kinds := []string{
		KindRequest, KindReply, KindRelease, KindInquire,
		KindFail, KindYield, KindTransfer, KindToken, KindFailure,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}
