// Package mutex defines the transport-independent contract shared by every
// distributed mutual exclusion algorithm in this repository.
//
// Each algorithm is implemented as a deterministic, single-threaded state
// machine per site (the Site interface). A driver — the discrete-event
// simulator in internal/sim or the goroutine/TCP runtime in
// internal/transport — owns message delivery and time; the state machines
// never block, never spawn goroutines, and communicate only through the
// Output values they return. This is what lets the exact same protocol code
// run under deterministic simulation (for the paper's measurements) and on a
// real network.
package mutex

import "dqmx/internal/timestamp"

// SiteID aliases the repository-wide site identifier.
type SiteID = timestamp.SiteID

// Message is a protocol payload. Kind returns a stable name used for
// per-type message accounting (the paper counts messages per CS execution by
// type); a payload with piggybacked content still counts as one message,
// matching the paper's accounting ("a control message piggybacked with
// another message is counted as one message").
type Message interface {
	Kind() string
}

// Envelope is one message in flight between two sites. A self-addressed
// envelope (From == To) is delivered immediately by drivers and is not
// counted as a network message, matching the paper's K−1 counting.
//
// Resource scopes the envelope to one named lock when many independent
// protocol instances share a site set (internal/resource). State machines
// never read or set it: the per-resource sender stamps outgoing envelopes
// and transports route incoming ones by it. The zero value is the default
// resource, so single-lock deployments — and the discrete-event simulator —
// ignore the field entirely.
//
// Seq and Ack are transport metadata stamped by the reliable-delivery
// sublayer (internal/transport): Seq is the envelope's position in its
// (From, To) stream (0 means unsequenced transport-level traffic), Ack is
// the cumulative acknowledgement piggybacked for the reverse stream. State
// machines never read or set either field; the zero values keep the gob
// wire format byte-compatible with pre-reliability peers.
//
// Epoch is the sender's membership stage (internal/membership.Stage): 0
// until a cluster has ever reconfigured, then the totally ordered stamp of
// the sender's current configuration. Like Resource/Seq/Ack it is
// transport metadata — stamped by the per-resource sender, read by
// transports to detect laggards (a frame stamped below the receiver's
// stage is answered with the current configuration) — and never touched by
// the state machines. The zero value keeps gob streams from pre-epoch
// peers decodable.
type Envelope struct {
	Resource string
	From     SiteID
	To       SiteID
	Msg      Message
	Seq      uint64
	Ack      uint64
	Epoch    uint64
}

// Output collects the externally visible effects of one state-machine step.
type Output struct {
	// Send lists messages to transmit, in order.
	Send []Envelope
	// Entered is true when the site acquired the critical section during
	// this step. The driver reacts by recording the entry and scheduling the
	// critical-section execution, after which it calls Site.Exit.
	Entered bool
}

// Merge appends the effects of o2 to o.
func (o *Output) Merge(o2 Output) {
	o.Send = append(o.Send, o2.Send...)
	o.Entered = o.Entered || o2.Entered
}

// SendTo appends one message to the output.
func (o *Output) SendTo(from, to SiteID, m Message) {
	o.Send = append(o.Send, Envelope{From: from, To: to, Msg: m})
}

// Site is the per-site protocol state machine. Implementations are not safe
// for concurrent use: a single driver goroutine (or the single-threaded
// simulator) must serialize all calls.
type Site interface {
	// ID returns the site's identifier.
	ID() SiteID
	// Request begins acquiring the critical section. It must not be called
	// while a previous request is still pending or the site is inside the
	// CS; sites execute their CS requests sequentially one by one.
	Request() Output
	// Exit releases the critical section. It must only be called after
	// Entered was reported.
	Exit() Output
	// Deliver processes one incoming message addressed to this site.
	Deliver(env Envelope) Output
	// InCS reports whether the site currently holds the critical section.
	InCS() bool
	// Pending reports whether a request is in flight (issued, not yet
	// entered).
	Pending() bool
}

// TimestampedSite is implemented by sites that can expose the Lamport
// timestamp of their in-flight request. Drivers use it to stamp request
// events for external ordering checks; it is strictly observational and
// must be called only from the goroutine driving the site.
type TimestampedSite interface {
	// RequestTimestamp returns the timestamp of the current request and
	// whether one is in flight (issued and not yet exited).
	RequestTimestamp() (timestamp.Timestamp, bool)
}

// FailureObserver is implemented by algorithms that support the paper's §6
// fault-tolerance extension. Drivers call SiteFailed on every surviving site
// when a failure(f) notification is delivered.
type FailureObserver interface {
	// SiteFailed reacts to the announced crash of site f.
	SiteFailed(f SiteID) Output
}

// Reconfigurable is implemented by sites that support online membership
// change (internal/membership). Drivers move a site between configurations
// by replacing its req_set in place; the site reconciles any in-flight
// request against the new quorum exactly as §6 recovery reconciles around
// a crash — withdrawing from arbiters that left, requesting from arbiters
// that joined, and deferring the swap until Exit while inside the CS.
type Reconfigurable interface {
	// SetMembership installs a new system size and req_set. quorum must be
	// sorted and duplicate-free. avoiding, when non-nil, replaces the
	// construction's §6 QuorumAvoiding for as long as this membership is in
	// force: it returns a substitute req_set avoiding the given crashed
	// sites, or false when none exists (the site then keeps its quorum and
	// blocks — safety over progress). stage tags the membership for state
	// canonicalization; drivers pass the membership.Stage being applied.
	SetMembership(n int, quorum []SiteID, avoiding func(down map[SiteID]bool) ([]SiteID, bool), stage uint64) Output
	// MembershipSettled reports whether the site's effective req_set is the
	// one most recently installed — false while a swap is deferred behind a
	// critical section still held under the previous quorum. The settle
	// barrier between handover phases polls it.
	MembershipSettled() bool
}

// Algorithm constructs the complete set of site state machines for a run.
type Algorithm interface {
	// Name identifies the algorithm in tables and benchmarks.
	Name() string
	// NewSites builds the N per-site state machines for sites 0..n-1.
	NewSites(n int) ([]Site, error)
}

// Message kind names shared across algorithms. Quorum-based algorithms use
// the paper's seven control messages; the token- and permission-based
// baselines reuse request/reply plus their own kinds.
const (
	KindRequest  = "request"
	KindReply    = "reply"
	KindRelease  = "release"
	KindInquire  = "inquire"
	KindFail     = "fail"
	KindYield    = "yield"
	KindTransfer = "transfer"
	KindToken    = "token"
	KindFailure  = "failure" // §6 crash notification
)

// Kinds lists every message kind in canonical table order. Reporting code
// (the simulator's trace summary, the CLI tables, the observability
// snapshots) iterates this list instead of hand-maintaining its own copy.
func Kinds() []string {
	return []string{
		KindRequest, KindReply, KindRelease, KindInquire,
		KindFail, KindYield, KindTransfer, KindToken, KindFailure,
	}
}

// FailureMsg announces that site Failed has crashed (§6). Drivers inject it;
// algorithms implementing FailureObserver react to it.
type FailureMsg struct {
	Failed SiteID
}

// Kind implements Message.
func (FailureMsg) Kind() string { return KindFailure }
