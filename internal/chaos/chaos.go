// Package chaos is the adversarial-testing layer for the live protocol
// stack: a seeded fault-injecting message fabric that sits between the
// in-process transport's senders and mailboxes, plus a conformance checker
// (checker.go) that consumes the internal/obs event stream and asserts the
// paper's safety and cost claims while the faults are running.
//
// The fabric injects message drop, duplication, reordering, bounded latency,
// and scheduled network partitions; site crashes ride on the existing §6
// failure-notification path (transport.Cluster.KillSite). Every decision is
// drawn from a deterministic counter-hash of the plan's single seed and the
// message's (resource, from, to) stream position, so replaying a seed
// replays the per-stream fault decisions exactly even though goroutine
// scheduling still varies across runs. Failing tests print the seed;
// DQMX_CHAOS_SEED replays one schedule in isolation.
//
// Semantics of the knobs:
//
//   - Drop loses the wire copy of a message. The transport's reliable-
//     delivery sublayer sits above the fabric and retransmits until an
//     acknowledgement lands, so a drop-only plan merely delays the protocol:
//     liveness is a checkable claim on such schedules (LivenessExpected).
//   - MinDelay/MaxDelay add bounded latency while preserving per-stream
//     FIFO order, staying inside the paper's channel model.
//   - Reorder lets a message fall behind later traffic of its own stream —
//     a wire-level FIFO violation the sublayer's reorder buffer heals.
//   - Duplicate delivers the wire copy twice; the sublayer's dedup collapses
//     it back to exactly-once before the protocol sees it.
//   - Partitions drop messages crossing the group boundary during a time
//     window (evaluated at delivery time, so delayed messages cannot tunnel
//     through a cut). A partition outlasting the workload's patience can
//     still legitimately stall acquires, so partition schedules assert
//     safety only.
//
// Fabric decisions are keyed by each stream's transmission counter, not the
// sublayer's sequence numbers: a retransmitted copy is a new transmission
// and gets a fresh draw (keying on the sequence number would make a dropped
// message's every retransmission repeat the same drop verdict forever).
// Replaying a seed therefore reproduces the per-transmission decision
// sequence exactly, while which protocol message each decision lands on
// still varies with retransmission timing.
package chaos

import (
	"container/heap"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dqmx/internal/mutex"
)

// SeedEnv is the environment variable that replays a single schedule: sweep
// runners that see it run only that seed.
const SeedEnv = "DQMX_CHAOS_SEED"

// SeedOverride reports the replay seed from the environment, if any.
func SeedOverride() (int64, bool) {
	v := os.Getenv(SeedEnv)
	if v == "" {
		return 0, false
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return seed, true
}

// Partition isolates Group from the rest of the sites during [Start, End)
// (measured from fabric start): messages with exactly one endpoint inside
// the group are dropped at delivery time.
type Partition struct {
	Start, End time.Duration
	Group      []mutex.SiteID
}

// Crash schedules a site kill After the fabric starts; the transport layer
// executes it through the §6 failure path (every surviving site receives a
// failure notification per instantiated resource once DetectAfter elapses).
type Crash struct {
	After       time.Duration
	Site        mutex.SiteID
	DetectAfter time.Duration
}

// Plan is one schedule of faults, fully determined by its fields. The zero
// value injects nothing (the fabric becomes a transparent pass-through).
type Plan struct {
	// Seed drives every probabilistic decision. Two runs with the same plan
	// make identical per-stream decisions.
	Seed int64
	// Drop is the per-message loss probability (0..1).
	Drop float64
	// Duplicate is the per-message duplication probability (0..1).
	Duplicate float64
	// Reorder is the probability a message is held back behind later
	// traffic of its own stream (0..1).
	Reorder float64
	// MinDelay/MaxDelay bound the extra latency added to every delivery.
	MinDelay, MaxDelay time.Duration
	// Partitions are scheduled connectivity cuts.
	Partitions []Partition
	// Crashes are scheduled site kills (executed by the transport layer).
	Crashes []Crash
}

// Quiet reports whether the plan injects nothing at all.
func (p Plan) Quiet() bool {
	return p.Drop == 0 && p.Duplicate == 0 && p.Reorder == 0 &&
		p.MaxDelay == 0 && p.MinDelay == 0 &&
		len(p.Partitions) == 0 && len(p.Crashes) == 0
}

// Lossless reports whether every sent message's wire copy is delivered
// without the reliability sublayer's help. Crashes are allowed: the §6
// recovery protocol is expected to restore progress for the survivors.
func (p Plan) Lossless() bool {
	return p.Drop == 0 && len(p.Partitions) == 0
}

// LivenessExpected reports whether the protocol stack must stay live under
// the plan: every fault it injects — drop, duplication, reordering, delay —
// is healed by the transport's reliable-delivery sublayer. Only crashes and
// partitions remain outside the liveness contract (a crash can strand a
// round at the victim and a long cut can outlast any finite patience), so
// schedules without either must complete every acquire.
func (p Plan) LivenessExpected() bool {
	return len(p.Crashes) == 0 && len(p.Partitions) == 0
}

// String summarizes the plan for failure reports, always naming the seed.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	if p.Drop > 0 {
		fmt.Fprintf(&b, " drop=%.3f", p.Drop)
	}
	if p.Duplicate > 0 {
		fmt.Fprintf(&b, " dup=%.3f", p.Duplicate)
	}
	if p.Reorder > 0 {
		fmt.Fprintf(&b, " reorder=%.3f", p.Reorder)
	}
	if p.MaxDelay > 0 || p.MinDelay > 0 {
		fmt.Fprintf(&b, " delay=[%v,%v]", p.MinDelay, p.MaxDelay)
	}
	for _, pt := range p.Partitions {
		fmt.Fprintf(&b, " partition=%v@[%v,%v)", pt.Group, pt.Start, pt.End)
	}
	for _, cr := range p.Crashes {
		fmt.Fprintf(&b, " crash=%d@%v(detect %v)", cr.Site, cr.After, cr.DetectAfter)
	}
	return b.String()
}

// DeliverFunc injects one envelope into the destination's mailbox. The
// transport layer supplies it.
type DeliverFunc func(env mutex.Envelope) error

// streamKey identifies one FIFO channel of the protocol's network model.
type streamKey struct {
	resource string
	from, to mutex.SiteID
}

// streamState carries the per-stream decision counter (the determinism
// anchor) and the FIFO horizon used to keep plain latency order-preserving.
type streamState struct {
	n      uint64    // messages decided so far on this stream
	lastAt time.Time // latest scheduled delivery of an in-order message
}

// delayedEnv is one message waiting in the fabric's delay queue.
type delayedEnv struct {
	at  time.Time
	seq uint64 // FIFO tiebreak for equal deadlines
	env mutex.Envelope
	dup bool // true for the extra copy of a duplicated message
}

type delayHeap []delayedEnv

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(delayedEnv)) }
func (h *delayHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Fabric is the chaos message layer: a transport.Sender/BatchSender that
// applies the plan's faults before handing envelopes to the real transport.
type Fabric struct {
	plan    Plan
	deliver DeliverFunc
	start   time.Time

	mu      sync.Mutex
	streams map[streamKey]*streamState
	crashed map[mutex.SiteID]bool
	pq      delayHeap
	seq     uint64
	wake    chan struct{}
	hook    func(env mutex.Envelope, dup bool)

	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}
}

// NewFabric starts a fabric applying plan on top of deliver.
func NewFabric(plan Plan, deliver DeliverFunc) *Fabric {
	f := &Fabric{
		plan:    plan,
		deliver: deliver,
		start:   time.Now(),
		streams: make(map[streamKey]*streamState),
		crashed: make(map[mutex.SiteID]bool),
		wake:    make(chan struct{}, 1),
		stopC:   make(chan struct{}),
		doneC:   make(chan struct{}),
	}
	go f.pump()
	return f
}

// Plan returns the fabric's schedule.
func (f *Fabric) Plan() Plan { return f.plan }

// SetDeliveryHook installs a callback invoked after each successful
// delivery (the conformance checker's view of the wire). dup marks the
// extra copy of a duplicated message. Install it before traffic starts.
func (f *Fabric) SetDeliveryHook(hook func(env mutex.Envelope, dup bool)) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

// MarkCrashed silences a site: subsequent messages from or to it are
// dropped. The transport's crash scheduler calls it alongside KillSite.
func (f *Fabric) MarkCrashed(id mutex.SiteID) {
	f.mu.Lock()
	f.crashed[id] = true
	f.mu.Unlock()
}

// Close stops the delay pump; queued deliveries are discarded.
func (f *Fabric) Close() {
	f.stopOnce.Do(func() { close(f.stopC) })
	<-f.doneC
}

// splitmix64 is the counter-hash behind every decision: a tiny, well-mixed
// PRNG keyed by (seed, stream, message index, purpose) so decisions are
// independent of cross-stream goroutine interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw returns a uniform float64 in [0,1) for the k-th message of a stream
// and a given purpose (drop/dup/reorder/delay draw separately so toggling
// one knob does not shift the others' decisions).
func (f *Fabric) draw(key streamKey, k uint64, purpose uint64) float64 {
	x := uint64(f.plan.Seed)
	x = splitmix64(x ^ hashString(key.resource))
	x = splitmix64(x ^ uint64(key.from)<<32 ^ uint64(uint32(key.to)))
	x = splitmix64(x ^ k)
	x = splitmix64(x ^ purpose)
	return float64(x>>11) / float64(1<<53)
}

const (
	purposeDrop uint64 = iota + 1
	purposeDup
	purposeReorder
	purposeDelay
	purposeReorderSpan
)

// partitioned reports whether a cut separates from and to at elapsed time d.
func (p Plan) partitioned(from, to mutex.SiteID, d time.Duration) bool {
	for _, pt := range p.Partitions {
		if d < pt.Start || d >= pt.End {
			continue
		}
		var inFrom, inTo bool
		for _, s := range pt.Group {
			if s == from {
				inFrom = true
			}
			if s == to {
				inTo = true
			}
		}
		if inFrom != inTo {
			return true
		}
	}
	return false
}

// Send implements transport.Sender.
func (f *Fabric) Send(env mutex.Envelope) error {
	key := streamKey{resource: env.Resource, from: env.From, to: env.To}

	f.mu.Lock()
	if f.crashed[env.From] || f.crashed[env.To] {
		f.mu.Unlock()
		return nil
	}
	st := f.streams[key]
	if st == nil {
		st = &streamState{}
		f.streams[key] = st
	}
	k := st.n
	st.n++
	if f.plan.Drop > 0 && f.draw(key, k, purposeDrop) < f.plan.Drop {
		f.mu.Unlock()
		return nil
	}
	dup := f.plan.Duplicate > 0 && f.draw(key, k, purposeDup) < f.plan.Duplicate
	now := time.Now()
	delay := f.plan.MinDelay
	if span := f.plan.MaxDelay - f.plan.MinDelay; span > 0 {
		delay += time.Duration(f.draw(key, k, purposeDelay) * float64(span))
	}
	at := now.Add(delay)
	if f.plan.Reorder > 0 && f.draw(key, k, purposeReorder) < f.plan.Reorder {
		// Held back: later traffic of this stream may overtake it. The extra
		// hold-back spans a few delay windows so the overtake is real even
		// when MaxDelay is small.
		extra := time.Duration(f.draw(key, k, purposeReorderSpan) * float64(2*f.plan.MaxDelay+time.Millisecond))
		at = at.Add(extra)
	} else {
		// Plain latency preserves the channel's FIFO order: never schedule
		// before an earlier in-order message of the same stream.
		if at.Before(st.lastAt) {
			at = st.lastAt
		}
		st.lastAt = at
	}
	if !at.After(now) && len(f.pq) == 0 {
		// Fast path: nothing queued and no delay due — deliver inline on the
		// sender's goroutine, exactly like the raw transport.
		f.mu.Unlock()
		f.deliverNow(env, false)
		if dup {
			f.deliverNow(env, true)
		}
		return nil
	}
	f.push(delayedEnv{at: at, env: env})
	if dup {
		f.push(delayedEnv{at: at, env: env, dup: true})
	}
	f.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
	return nil
}

// SendBatch implements transport.BatchSender. Chaos decisions are
// per-message, so the batch is simply processed in order.
func (f *Fabric) SendBatch(envs []mutex.Envelope) error {
	for _, env := range envs {
		if err := f.Send(env); err != nil {
			return err
		}
	}
	return nil
}

// push queues one delayed delivery; the caller holds f.mu.
func (f *Fabric) push(d delayedEnv) {
	d.seq = f.seq
	f.seq++
	heap.Push(&f.pq, d)
}

// deliverNow applies the delivery-time checks (partitions, crashes) and
// hands the envelope to the transport, then notifies the hook.
func (f *Fabric) deliverNow(env mutex.Envelope, dup bool) {
	f.mu.Lock()
	dead := f.crashed[env.From] || f.crashed[env.To]
	cut := f.plan.partitioned(env.From, env.To, time.Since(f.start))
	hook := f.hook
	f.mu.Unlock()
	if dead || cut {
		return
	}
	// Reliable-channel model: a delivery error means the destination is
	// gone, which the failure protocol handles.
	if err := f.deliver(env); err != nil {
		return
	}
	if hook != nil {
		hook(env, dup)
	}
}

// pump drains the delay queue in deadline order on a dedicated goroutine.
func (f *Fabric) pump() {
	defer close(f.doneC)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		f.mu.Lock()
		var wait time.Duration = -1
		var next delayedEnv
		var have bool
		if len(f.pq) > 0 {
			now := time.Now()
			if !f.pq[0].at.After(now) {
				next = heap.Pop(&f.pq).(delayedEnv)
				have = true
			} else {
				wait = f.pq[0].at.Sub(now)
			}
		}
		f.mu.Unlock()
		if have {
			f.deliverNow(next.env, next.dup)
			continue
		}
		if wait < 0 {
			wait = time.Hour
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-f.wake:
		case <-f.stopC:
			return
		}
	}
}
