// The conformance checker: a live obs.Sink that asserts the paper's claims
// while the chaos fabric runs. Three invariants are checked:
//
//  1. Safety — at most one site holds the critical section per resource at
//     all times (EventEnter while another holder is inside is a violation).
//  2. Timestamp order — among conflicting requests, a request whose full
//     request wave was delivered before a later request was even issued
//     must be served first when its timestamp is smaller. This is the
//     strongest order claim that actually holds for Maekawa-family
//     protocols: a request still in flight can legitimately be overtaken
//     (the arbiter's inquire only revokes grants before CS entry), so the
//     checker tracks each request's wave through the transport's delivery
//     hook and only asserts the pairs the protocol guarantees.
//  3. Message bound — a fault-free run's per-resource message count per CS
//     entry stays within the paper's 3(K-1)..6(K-1) envelope.
//
// A liveness watchdog flags acquires that have been pending longer than a
// patience threshold, attaching a per-site protocol state dump. With the
// transport's reliable-delivery sublayer healing drops, duplicates, and
// reordering, liveness is a testable claim for every schedule without
// crashes or partitions (Plan.LivenessExpected); only those two faults can
// legitimately stall an acquire.

package chaos

import (
	"fmt"
	"sync"
	"time"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/timestamp"
)

// Violation is one detected conformance breach.
type Violation struct {
	// Kind is "safety", "order", "bound", "protocol", or "transport".
	Kind     string
	Resource string
	Site     mutex.SiteID
	Detail   string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] resource %q site %d: %s", v.Kind, v.Resource, v.Site, v.Detail)
}

// Stall is one request pending longer than the watchdog's patience.
type Stall struct {
	Resource string
	Site     mutex.SiteID
	Age      time.Duration
}

// reqState tracks one outstanding request of one site.
type reqState struct {
	ts    timestamp.Timestamp
	hasTS bool
	// reqSeq is the checker-linearized instant the request was issued.
	reqSeq uint64
	// outstanding counts request-wave messages sent but not yet delivered.
	outstanding int
	// settleSeq is the instant the wave fully settled (every request
	// message delivered); 0 while messages are still in flight. A quorum
	// rebuild re-sends requests, which un-settles the wave until the new
	// messages land — exactly the window in which overtaking is legal.
	settleSeq uint64
	// withdrawn is set when the still-waiting request sends a release — a
	// withdrawal (§6 recovery or a membership swap pulling the request from
	// departing arbiters). A withdrawn arbiter may grant anyone, so the
	// order guarantee is void for this wave from then on.
	withdrawn bool
	since     time.Time
}

// resState is the checker's view of one resource.
type resState struct {
	holder  mutex.SiteID
	held    bool
	pending map[mutex.SiteID]*reqState
	sends   uint64
	exits   uint64
	faults  uint64 // failure notifications observed on this resource
}

// Checker consumes the obs event stream of a live cluster and records
// conformance violations. Wire Observe as the cluster's Observer and
// Delivered as the fabric's delivery hook. All methods are safe for
// concurrent use; a single mutex linearizes event observation against
// delivery notifications, which is what makes invariant 2 sound.
type Checker struct {
	mu        sync.Mutex
	seq       uint64
	resources map[string]*resState
	failed    map[mutex.SiteID]bool
	vs        []Violation

	// Reliability-sublayer health, fed by the transport-level events. These
	// never touch the per-resource send counts, so CheckBounds keeps
	// asserting the paper's envelope on the protocol messages alone.
	retransmits   uint64
	dupSuppressed uint64
	acksSent      uint64
}

// NewChecker returns an empty conformance checker.
func NewChecker() *Checker {
	return &Checker{
		resources: make(map[string]*resState),
		failed:    make(map[mutex.SiteID]bool),
	}
}

func (c *Checker) state(resource string) *resState {
	rs := c.resources[resource]
	if rs == nil {
		rs = &resState{pending: make(map[mutex.SiteID]*reqState)}
		c.resources[resource] = rs
	}
	return rs
}

func (c *Checker) violate(kind, resource string, site mutex.SiteID, format string, args ...any) {
	c.vs = append(c.vs, Violation{
		Kind:     kind,
		Resource: resource,
		Site:     site,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// Observe is the obs.Sink half of the checker.
func (c *Checker) Observe(e obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e.Type {
	case obs.EventRetransmit:
		c.retransmits++
		return
	case obs.EventDupDrop:
		c.dupSuppressed++
		return
	case obs.EventAckSend:
		c.acksSent++
		return
	}
	rs := c.state(e.Resource)
	switch e.Type {
	case obs.EventRequest:
		c.seq++
		req := &reqState{reqSeq: c.seq, since: time.Now()}
		if e.ReqTS != (timestamp.Timestamp{}) && !e.ReqTS.IsMax() {
			req.ts, req.hasTS = e.ReqTS, true
		}
		rs.pending[e.Site] = req
	case obs.EventSend:
		rs.sends++
		if e.Kind == mutex.KindRequest {
			if req := rs.pending[e.Site]; req != nil {
				req.outstanding++
				req.settleSeq = 0
			}
		}
		// A release sent while the site is still waiting is a withdrawal:
		// the freed arbiter may now grant a later request, so this wave can
		// be overtaken legally for good.
		if e.Kind == mutex.KindRelease {
			if req := rs.pending[e.Site]; req != nil {
				req.withdrawn = true
				req.settleSeq = 0
			}
		}
	case obs.EventEnter:
		if rs.held {
			c.violate("safety", e.Resource, e.Site,
				"entered CS while site %d still holds it", rs.holder)
		}
		cur := rs.pending[e.Site]
		if cur != nil && cur.hasTS {
			for other, req := range rs.pending {
				if other == e.Site || !req.hasTS || c.failed[other] {
					continue
				}
				// The guaranteed pairs: req's wave settled before cur was
				// even issued, and req carries the smaller timestamp — every
				// shared arbiter queued req first, so cur cannot pass it.
				if req.ts.Less(cur.ts) && req.settleSeq != 0 && req.settleSeq < cur.reqSeq {
					c.violate("order", e.Resource, e.Site,
						"entered CS with ts %v while settled earlier request of site %d (ts %v) is still waiting",
						cur.ts, other, req.ts)
				}
			}
		}
		rs.held, rs.holder = true, e.Site
		delete(rs.pending, e.Site)
	case obs.EventExit:
		if !rs.held || rs.holder != e.Site {
			c.violate("protocol", e.Resource, e.Site, "exited CS without holding it")
		}
		rs.held = false
		rs.exits++
	case obs.EventFailure:
		rs.faults++
		c.failed[e.Peer] = true
		delete(rs.pending, e.Peer)
		// A site that crashed inside the CS never exits; the §6 arbiter
		// purge regrants its slot, which must not read as a double entry.
		// Arbiters observe the failure before purging, so this clears the
		// hold ahead of any regrant-driven entry.
		if rs.held && rs.holder == e.Peer {
			rs.held = false
		}
	}
}

// Delivered is the transport's delivery hook: it settles request waves.
// Wire it to Cluster.SetDeliveryHook, whose exactly-once view means each
// request message settles the wave precisely once — retransmitted and
// duplicated copies are already suppressed below the hook, and a dropped
// wire copy settles later when its retransmission lands. Duplicate-flagged
// calls (the raw fabric fallback) are still ignored defensively.
func (c *Checker) Delivered(env mutex.Envelope, dup bool) {
	if dup || env.Msg == nil || env.Msg.Kind() != mutex.KindRequest {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.resources[env.Resource]
	if rs == nil {
		return
	}
	req := rs.pending[env.From]
	if req == nil {
		return
	}
	if req.outstanding > 0 {
		req.outstanding--
	}
	if req.outstanding == 0 && req.settleSeq == 0 && !req.withdrawn {
		c.seq++
		req.settleSeq = c.seq
	}
}

// Transport reports the reliability-sublayer counters observed so far:
// retransmissions, suppressed duplicates, and standalone acks.
func (c *Checker) Transport() (retransmits, dupSuppressed, acksSent uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retransmits, c.dupSuppressed, c.acksSent
}

// Violations returns the breaches recorded so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.vs))
	copy(out, c.vs)
	return out
}

// Stalled lists requests from live sites that have been pending longer than
// patience — the liveness watchdog's raw signal.
func (c *Checker) Stalled(patience time.Duration) []Stall {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var out []Stall
	for name, rs := range c.resources {
		for site, req := range rs.pending {
			if c.failed[site] {
				continue
			}
			if age := now.Sub(req.since); age >= patience {
				out = append(out, Stall{Resource: name, Site: site, Age: age})
			}
		}
	}
	return out
}

// CheckBounds asserts invariant 3 for every resource that completed at
// least one critical section and saw no failure notifications: the average
// messages per CS entry must land in [lo, hi] (the paper's 3(K-1)..6(K-1)
// for the coterie in use). Call it only after the workload has quiesced on
// a fault-free schedule; any breach is recorded as a "bound" violation.
func (c *Checker) CheckBounds(lo, hi float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, rs := range c.resources {
		if rs.exits == 0 || rs.faults > 0 {
			continue
		}
		perCS := float64(rs.sends) / float64(rs.exits)
		if perCS < lo || perCS > hi {
			c.violate("bound", name, 0,
				"%.2f messages per CS over %d entries, outside [%.0f, %.0f]",
				perCS, rs.exits, lo, hi)
		}
	}
}

// MessageBounds derives the paper's per-CS message envelope
// [3(Kmin-1), 6(Kmax-1)] from a coterie assignment, where Kmin and Kmax are
// the smallest and largest quorum sizes (constructions like the tree quorum
// hand different sites different K).
func MessageBounds(a *coterie.Assignment) (lo, hi float64) {
	minK, maxK := 0, 0
	for _, q := range a.Quorums {
		if k := len(q); minK == 0 || k < minK {
			minK = k
		}
		if k := len(q); k > maxK {
			maxK = k
		}
	}
	if minK < 1 {
		return 0, 0
	}
	return 3 * float64(minK-1), 6 * float64(maxK-1)
}

// Watchdog polls a checker for stalled acquires on its own goroutine and
// reports each (resource, site) stall once, attaching a state dump.
type Watchdog struct {
	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}
}

// NewWatchdog starts a watchdog polling c every interval for requests
// pending longer than patience. For each new stall it calls report with the
// stall and the output of dump (a per-site protocol state snapshot; may be
// nil). Stop it before tearing the cluster down.
func NewWatchdog(c *Checker, interval, patience time.Duration, dump func() string, report func(Stall, string)) *Watchdog {
	w := &Watchdog{stopC: make(chan struct{}), doneC: make(chan struct{})}
	go func() {
		defer close(w.doneC)
		seen := make(map[string]bool)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.stopC:
				return
			case <-ticker.C:
			}
			for _, s := range c.Stalled(patience) {
				key := fmt.Sprintf("%s/%d", s.Resource, s.Site)
				if seen[key] {
					continue
				}
				seen[key] = true
				var state string
				if dump != nil {
					state = dump()
				}
				report(s, state)
			}
		}
	}()
	return w
}

// Stop halts the watchdog and waits for its goroutine to exit.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stopC) })
	<-w.doneC
}
