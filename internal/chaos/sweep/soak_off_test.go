//go:build !soak

package sweep

// soakFactor scales the conformance sweep; the soak build tag raises it for
// long adversarial runs (`go test -race -tags soak ./internal/chaos/sweep`).
const soakFactor = 1
