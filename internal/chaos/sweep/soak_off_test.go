//go:build !soak

package sweep

// soakFactor scales the conformance sweep; the soak build tag raises it for
// long adversarial runs (`go test -race -tags soak ./internal/chaos/sweep`).
const soakFactor = 1

// Lossy-liveness sweep shape (TestLossyLiveness): the soak tag widens the
// drop range and multiplies the schedule count.
const (
	lossySchedules = 8
	lossyDropFloor = 0.02
	lossyDropCeil  = 0.12
)
