package sweep

// Reconfiguration conformance archetypes: seeded chaos schedules with a
// joint-quorum membership switch (internal/membership) in the middle of the
// load. The checker's ≤1-holder invariant is asserted across the epoch
// boundary — entries granted under the old coterie, the joint phase, and
// the new coterie must all exclude each other — and one archetype crashes a
// site mid-handover to compose the §6 recovery path with the switch.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/coterie"
	"dqmx/internal/harness"
	"dqmx/internal/mutex"
	"dqmx/internal/transport"
)

// reconfigurePlan derives the schedule's fault plan: quiet, delayed, or
// lossy. Crashes are injected explicitly by the mid-handover archetype, so
// the derived plans stay crash-free.
func reconfigurePlan(seed int64) chaos.Plan {
	p := chaos.Plan{Seed: seed}
	draw := func(k uint64) float64 {
		x := splitmix(uint64(seed) ^ 0xEC0FFEE ^ k)
		return float64(x>>11) / float64(1<<53)
	}
	switch int(splitmix(uint64(seed)^0x5EED) % 3) {
	case 0:
		// Quiet wire.
	case 1:
		p.MinDelay = 100 * time.Microsecond
		p.MaxDelay = time.Duration(1+draw(1)*3) * time.Millisecond
		p.Reorder = 0.1 + 0.2*draw(2)
	case 2:
		p.Drop = 0.02 + 0.08*draw(1)
		p.MaxDelay = time.Duration(1+draw(2)*2) * time.Millisecond
	}
	return p
}

// runReconfigureSchedule drives continuous contention at every original
// site, switches the cluster from `from` to `to` sites mid-load, and fails
// on any conformance violation. When crashMid is set, one surviving site is
// killed while the handover is in its joint phase.
func runReconfigureSchedule(t *testing.T, seed int64, from, to int, crashMid bool) {
	t.Helper()
	cons := coterie.Majority{}
	alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
	if err != nil {
		t.Fatal(err)
	}
	plan := reconfigurePlan(seed)
	checker := chaos.NewChecker()
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm:    alg,
		N:            from,
		Observer:     checker.Observe,
		Chaos:        &plan,
		Construction: cons,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetDeliveryHook(checker.Delivered)

	// Continuous contention across the switch: one worker per original
	// site. Workers at crashed or retired sites see ErrClosed and exit —
	// that is the schedule working.
	var (
		acquired atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	for id := 0; id < from; id++ {
		lock, err := cluster.Lock(mutex.SiteID(id), "alpha")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				ok, err := lock.TryAcquire(ctx)
				cancel()
				if errors.Is(err, transport.ErrClosed) {
					return
				}
				if err != nil && !errors.Is(err, transport.ErrBusy) {
					t.Errorf("seed %d: acquire: %v", seed, err)
					return
				}
				if !ok || err != nil {
					time.Sleep(time.Millisecond)
					continue
				}
				acquired.Add(1)
				time.Sleep(200 * time.Microsecond)
				if err := lock.Release(); err != nil && !errors.Is(err, transport.ErrClosed) {
					t.Errorf("seed %d: release: %v", seed, err)
					return
				}
			}
		}()
	}
	waitUntil(t, 10*time.Second, "pre-switch load", cluster.DumpState,
		func() bool { return acquired.Load() >= int64(from) })

	if crashMid {
		// Kill a survivor (present in both configurations) the moment the
		// joint phase is published, so §6 recovery rebuilds joint req_sets.
		victimC := make(chan struct{})
		go func() {
			defer close(victimC)
			deadline := time.Now().Add(10 * time.Second)
			for !cluster.Stage().Joint() {
				if time.Now().After(deadline) || stop.Load() {
					return
				}
			}
			cluster.KillSite(mutex.SiteID(1), 2*time.Millisecond)
		}()
		defer func() { <-victimC }()
	}

	// Generous deadline: the switch itself is milliseconds, but CI boxes
	// oversubscribe CPU and the drain polls real time.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := cluster.Reconfigure(ctx, cons, to); err != nil {
		t.Fatalf("seed %d: reconfigure %d→%d: %v\nplan: %s\n%s", seed, from, to, err, plan, cluster.DumpState())
	}
	if got := cluster.N(); got != to {
		t.Fatalf("seed %d: %d sites after reconfigure, want %d", seed, got, to)
	}
	if got := cluster.Epoch(); got != 1 {
		t.Fatalf("seed %d: epoch %d after reconfigure, want 1", seed, got)
	}

	// Joined sites must be full participants under the new coterie.
	if to > from {
		lock, err := cluster.Lock(mutex.SiteID(to-1), "alpha")
		if err != nil {
			t.Fatal(err)
		}
		joinCtx, joinCancel := context.WithTimeout(context.Background(), 15*time.Second)
		ok, err := lock.TryAcquire(joinCtx)
		joinCancel()
		if err != nil || !ok {
			t.Fatalf("seed %d: acquire at joined site %d: ok=%v err=%v", seed, to-1, ok, err)
		}
		if err := lock.Release(); err != nil {
			t.Fatal(err)
		}
	}

	// A little post-switch load, then drain and judge.
	pre := acquired.Load()
	waitUntil(t, 10*time.Second, "post-switch load", cluster.DumpState,
		func() bool { return acquired.Load() > pre })
	stop.Store(true)
	wg.Wait()
	for _, v := range checker.Violations() {
		t.Errorf("seed %d: %s\nplan: %s", seed, v, plan)
	}
}

func waitUntil(t *testing.T, limit time.Duration, what string, dump func() string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadline) {
			var state string
			if dump != nil {
				state = "\n" + dump()
			}
			t.Fatalf("%s: no progress within %v%s", what, limit, state)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosConformanceReconfigureGrow: 5→7 joint-quorum handovers under
// seeded quiet/delay/lossy schedules, conformance-checked across the epoch
// boundary.
func TestChaosConformanceReconfigureGrow(t *testing.T) {
	for _, seed := range reconfigureSeeds(t, 60000) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runReconfigureSchedule(t, seed, 5, 7, false)
		})
	}
}

// TestChaosConformanceReconfigureShrink: 7→4 handovers with drain-and-retire
// of the departing sites, same checking.
func TestChaosConformanceReconfigureShrink(t *testing.T) {
	for _, seed := range reconfigureSeeds(t, 61000) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runReconfigureSchedule(t, seed, 7, 4, false)
		})
	}
}

// TestChaosConformanceReconfigureCrash: a surviving site crashes while the
// handover is joint, composing §6 recovery (joint req_set rebuilds via
// Handover.JointAvoiding) with the switch. Safety must hold throughout.
func TestChaosConformanceReconfigureCrash(t *testing.T) {
	for _, seed := range reconfigureSeeds(t, 62000) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runReconfigureSchedule(t, seed, 5, 7, true)
		})
	}
}

// reconfigureSeeds picks the per-archetype schedule count, honoring the
// DQMX_CHAOS_SEED replay override and trimming under -short.
func reconfigureSeeds(t *testing.T, base int64) []int64 {
	if seed, ok := chaos.SeedOverride(); ok {
		return []int64{seed}
	}
	n := 8 * soakFactor
	if testing.Short() {
		n = 3
	}
	seeds := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		seeds = append(seeds, base+int64(i))
	}
	return seeds
}
