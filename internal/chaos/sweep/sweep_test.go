package sweep

// The conformance sweep: hundreds of seeded chaos schedules against the
// live protocol stack, each replayable in isolation with
//
//	DQMX_CHAOS_SEED=<seed> go test -race -run TestChaosConformance ./internal/chaos/sweep
//
// Every schedule derives its fault plan from its seed (drop, reorder,
// delay, partition, crash/recovery archetypes), drives two named locks
// across every site, and fails on any checker violation — always printing
// the seed and plan so the exact schedule reproduces.

import (
	"fmt"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/harness"
)

// conformanceCase is one (cluster shape, coterie) sweep target.
type conformanceCase struct {
	name   string
	quorum string
	n      int
	base   int64 // seed base; schedule i uses base+i
}

func runConformance(t *testing.T, tc conformanceCase, schedules int) {
	cons, err := harness.NewConstruction(tc.quorum)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := cons.Assign(tc.n)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int64, 0, schedules)
	if seed, ok := chaos.SeedOverride(); ok {
		seeds = append(seeds, seed)
	} else {
		for i := 0; i < schedules; i++ {
			seeds = append(seeds, tc.base+int64(i))
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := RandomPlan(seed, tc.n)
			// The reliable-delivery sublayer heals drops, duplicates, and
			// reordering, so every schedule without crashes or partitions
			// must complete all rounds: drop-only plans get the watchdog
			// too. Crash and partition schedules assert safety only.
			enforceLiveness := plan.LivenessExpected()
			cfg := Config{
				Algorithm:      alg,
				N:              tc.n,
				Plan:           plan,
				Resources:      []string{"alpha", "beta"},
				PerSite:        2,
				AcquireTimeout: 400 * time.Millisecond,
				Hold:           200 * time.Microsecond,
				Assignment:     assign,
			}
			if enforceLiveness {
				cfg.AcquireTimeout = 5 * time.Second
				cfg.Patience = 3 * time.Second
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v\nplan: %s\n%s", seed, err, plan, replayHint(seed))
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s\nplan: %s\n%s", seed, v, plan, replayHint(seed))
			}
			if enforceLiveness {
				for _, s := range res.Stalls {
					t.Errorf("seed %d: liveness stall: %s\nplan: %s\n%s", seed, s, plan, replayHint(seed))
				}
				if res.Missed > 0 {
					t.Errorf("seed %d: %d/%d rounds missed on a liveness-expected schedule\nplan: %s\n%s",
						seed, res.Missed, res.Missed+res.Acquired, plan, replayHint(seed))
				}
			}
		})
	}
}

func replayHint(seed int64) string {
	return fmt.Sprintf("replay: %s=%d go test -race -run TestChaosConformance ./internal/chaos/sweep",
		chaos.SeedEnv, seed)
}

// conformanceSchedules picks the per-target sweep size: ≥100 each (≥200
// total) normally, trimmed under -short for quick CI loops. The soak build
// tag (soak_test.go) multiplies this further.
func conformanceSchedules(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 100 * soakFactor
}

func TestChaosConformanceGrid(t *testing.T) {
	runConformance(t, conformanceCase{name: "grid9", quorum: "maekawa-grid", n: 9, base: 1000}, conformanceSchedules(t))
}

func TestChaosConformanceTree(t *testing.T) {
	runConformance(t, conformanceCase{name: "tree7", quorum: "ae-tree", n: 7, base: 5000}, conformanceSchedules(t))
}

// TestQuietBoundsAcrossQuorums pins invariant 3 directly: a fault-free
// schedule over each swept coterie stays inside 3(K-1)..6(K-1) messages per
// CS (the checker records a "bound" violation otherwise).
func TestQuietBoundsAcrossQuorums(t *testing.T) {
	for _, tc := range []conformanceCase{
		{name: "grid9", quorum: "maekawa-grid", n: 9},
		{name: "tree7", quorum: "ae-tree", n: 7},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cons, err := harness.NewConstruction(tc.quorum)
			if err != nil {
				t.Fatal(err)
			}
			alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
			if err != nil {
				t.Fatal(err)
			}
			assign, err := cons.Assign(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Algorithm:      alg,
				N:              tc.n,
				Plan:           chaos.Plan{Seed: 7},
				Resources:      []string{"alpha", "beta"},
				PerSite:        3,
				AcquireTimeout: 5 * time.Second,
				Hold:           100 * time.Microsecond,
				Assignment:     assign,
				Patience:       3 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
			if res.Missed > 0 {
				t.Errorf("%d rounds missed on a quiet cluster", res.Missed)
			}
			// A quiet wire acks well inside the retransmission backoff: the
			// reliability layer must be pure bookkeeping here.
			if res.Retransmits > 0 {
				t.Errorf("%d retransmissions on a fault-free run", res.Retransmits)
			}
			if res.DupSuppressed > 0 {
				t.Errorf("%d duplicates suppressed on a fault-free run", res.DupSuppressed)
			}
		})
	}
}

// TestLossyLiveness pins the tentpole claim directly: drop-only schedules
// (2–12% loss, the sweep's lossy archetype range) must complete every
// acquire without leaning on the timeout — the reliable-delivery sublayer
// retransmits until the wave lands. Timeouts are NOT honored as success:
// any missed round fails.
func TestLossyLiveness(t *testing.T) {
	for _, tc := range []conformanceCase{
		{name: "grid9", quorum: "maekawa-grid", n: 9, base: 40000},
		{name: "tree7", quorum: "ae-tree", n: 7, base: 41000},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cons, err := harness.NewConstruction(tc.quorum)
			if err != nil {
				t.Fatal(err)
			}
			alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
			if err != nil {
				t.Fatal(err)
			}
			schedules := lossySchedules
			if testing.Short() {
				schedules = 4
			}
			for i := 0; i < schedules; i++ {
				seed := tc.base + int64(i)
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					plan := chaos.Plan{
						Seed:     seed,
						Drop:     lossyDropFloor + (lossyDropCeil-lossyDropFloor)*float64(i%8)/7,
						Reorder:  0.1,
						MaxDelay: time.Millisecond,
					}
					res, err := Run(Config{
						Algorithm:      alg,
						N:              tc.n,
						Plan:           plan,
						Resources:      []string{"alpha", "beta"},
						PerSite:        2,
						AcquireTimeout: 20 * time.Second,
						Hold:           100 * time.Microsecond,
						Patience:       8 * time.Second,
					})
					if err != nil {
						t.Fatalf("seed %d: %v\nplan: %s", seed, err, plan)
					}
					for _, v := range res.Violations {
						t.Errorf("seed %d: %s\nplan: %s", seed, v, plan)
					}
					for _, s := range res.Stalls {
						t.Errorf("seed %d: liveness stall: %s\nplan: %s", seed, s, plan)
					}
					if res.Missed > 0 {
						t.Errorf("seed %d: %d/%d rounds missed under %.0f%% drop — retransmission failed to heal the loss\nplan: %s",
							seed, res.Missed, res.Missed+res.Acquired, 100*plan.Drop, plan)
					}
				})
			}
		})
	}
}

// TestRandomPlanDeterministic guards the replay contract: the same seed
// must derive the same plan.
func TestRandomPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		a, b := RandomPlan(seed, 9), RandomPlan(seed, 9)
		if a.String() != b.String() {
			t.Fatalf("seed %d derived different plans:\n%s\n%s", seed, a, b)
		}
	}
}
