//go:build soak

package sweep

// Long-mode chaos soak: `go test -race -tags soak ./internal/chaos/sweep`
// multiplies the seeded sweep tenfold (2000+ schedules) and adds a
// duplication sweep probing beyond the protocol's exactly-once channel
// model. Every schedule stays replayable by seed.

import (
	"fmt"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/harness"
)

const soakFactor = 10

// Lossy-liveness soak shape: more schedules and harsher loss than the short
// sweep — up to one in five wire copies lost, liveness still required.
const (
	lossySchedules = 40
	lossyDropFloor = 0.05
	lossyDropCeil  = 0.20
)

// TestSoakDuplication sweeps duplicated deliveries on the grid coterie.
// Exactly-once delivery used to be a model assumption probed exploratorily;
// the reliable-delivery sublayer now discharges it (receiver-side dedup), so
// duplication schedules are full conformance: any safety violation fails,
// and every schedule prints its seed.
func TestSoakDuplication(t *testing.T) {
	cons, err := harness.NewConstruction("maekawa-grid")
	if err != nil {
		t.Fatal(err)
	}
	alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		seed := int64(9000 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := chaos.Plan{
				Seed:      seed,
				Duplicate: 0.05,
				Reorder:   0.1,
				MaxDelay:  2 * time.Millisecond,
			}
			res, err := Run(Config{
				Algorithm:      alg,
				N:              9,
				Plan:           plan,
				Resources:      []string{"alpha", "beta"},
				PerSite:        2,
				AcquireTimeout: 2 * time.Second,
				Hold:           100 * time.Microsecond,
			})
			if err != nil {
				t.Fatalf("seed %d: %v\nplan: %s", seed, err, plan)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s\nplan: %s", seed, v, plan)
			}
		})
	}
}
