//go:build soak

package sweep

// Long-mode chaos soak: `go test -race -tags soak ./internal/chaos/sweep`
// multiplies the seeded sweep tenfold (2000+ schedules) and adds a
// duplication sweep probing beyond the protocol's exactly-once channel
// model. Every schedule stays replayable by seed.

import (
	"fmt"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/harness"
)

const soakFactor = 10

// TestSoakDuplication explores duplicated deliveries on the grid coterie.
// Exactly-once delivery is part of the paper's system model, so this runs
// only under the soak tag as an exploratory probe: safety violations here
// chart the model boundary rather than fail the conformance contract, but
// harness errors still fail the run and every schedule prints its seed.
func TestSoakDuplication(t *testing.T) {
	cons, err := harness.NewConstruction("maekawa-grid")
	if err != nil {
		t.Fatal(err)
	}
	alg, err := harness.NewAlgorithm("delay-optimal", cons, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		seed := int64(9000 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := chaos.Plan{
				Seed:      seed,
				Duplicate: 0.05,
				Reorder:   0.1,
				MaxDelay:  2 * time.Millisecond,
			}
			res, err := Run(Config{
				Algorithm:      alg,
				N:              9,
				Plan:           plan,
				Resources:      []string{"alpha", "beta"},
				PerSite:        2,
				AcquireTimeout: 2 * time.Second,
				Hold:           100 * time.Microsecond,
			})
			if err != nil {
				t.Fatalf("seed %d: %v\nplan: %s", seed, err, plan)
			}
			for _, v := range res.Violations {
				t.Logf("seed %d (model-boundary probe): %s\nplan: %s", seed, v, plan)
			}
		})
	}
}
