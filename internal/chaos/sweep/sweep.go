// Package sweep runs seeded chaos schedules against a live in-process
// cluster and reports conformance results. It is the shared engine behind
// the conformance test suite and the cmd/dqmchaos soak CLI: both derive a
// chaos plan from a seed, drive a multi-resource workload through the
// public acquire/release path, and collect the checker's verdict.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/transport"
)

// Config describes one schedule: the cluster under test and the workload
// driven through it.
type Config struct {
	// Algorithm builds the cluster's site machines.
	Algorithm mutex.Algorithm
	// N is the site count.
	N int
	// Plan is the chaos schedule.
	Plan chaos.Plan
	// Resources are the named locks the workload contends on.
	Resources []string
	// PerSite is how many acquire/release rounds each site runs per
	// resource.
	PerSite int
	// AcquireTimeout bounds each acquire attempt. With the reliability
	// sublayer healing drops, only crash and partition schedules still rely
	// on it; liveness-expected plans get a generous deadline that a
	// conforming run never hits.
	AcquireTimeout time.Duration
	// Hold is the simulated critical-section duration.
	Hold time.Duration
	// Assignment, when non-nil, enables the message-bound check for quiet
	// plans (bounds derived via chaos.MessageBounds).
	Assignment *coterie.Assignment
	// Patience is the liveness watchdog threshold; zero disables the
	// watchdog. Stalls are only reported as failures by the caller and only
	// make sense for lossless plans.
	Patience time.Duration
}

// Result is one schedule's outcome.
type Result struct {
	// Violations are the conformance breaches the checker recorded; any
	// entry is a failure of the run.
	Violations []chaos.Violation
	// Stalls are watchdog hits with their per-site state dumps attached.
	Stalls []string
	// Acquired and Missed count workload rounds that entered the CS versus
	// timed out or hit a closed (crashed) site.
	Acquired, Missed int
	// Retransmits, DupSuppressed, and AcksSent report the reliability
	// sublayer's work during the schedule. A quiet plan must show zero
	// retransmissions (enforced as a "transport" violation).
	Retransmits, DupSuppressed, AcksSent uint64
}

// Failed reports whether the schedule violated a checked invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// Run executes one schedule and returns its conformance result. Workload
// errors other than crash-induced closures are returned as err.
func Run(cfg Config) (Result, error) {
	checker := chaos.NewChecker()
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm: cfg.Algorithm,
		N:         cfg.N,
		Observer:  checker.Observe,
		Chaos:     &cfg.Plan,
	})
	if err != nil {
		return Result{}, fmt.Errorf("sweep: build cluster: %w", err)
	}
	defer cluster.Close()
	cluster.SetDeliveryHook(checker.Delivered)

	var res Result
	var resMu sync.Mutex
	var watchdog *chaos.Watchdog
	if cfg.Patience > 0 {
		watchdog = chaos.NewWatchdog(checker, cfg.Patience/4+time.Millisecond, cfg.Patience,
			cluster.DumpState,
			func(s chaos.Stall, dump string) {
				resMu.Lock()
				res.Stalls = append(res.Stalls,
					fmt.Sprintf("resource %q site %d stalled for %v\n%s", s.Resource, s.Site, s.Age, dump))
				resMu.Unlock()
			})
	}

	// One worker per (site, resource): each site runs its rounds for a lock
	// sequentially, sites and locks contend concurrently.
	var wg sync.WaitGroup
	errC := make(chan error, cfg.N*len(cfg.Resources))
	for id := 0; id < cfg.N; id++ {
		for _, name := range cfg.Resources {
			lock, err := cluster.Lock(mutex.SiteID(id), name)
			if err != nil {
				return Result{}, fmt.Errorf("sweep: lock %q at site %d: %w", name, id, err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < cfg.PerSite; round++ {
					ctx, cancel := context.WithTimeout(context.Background(), cfg.AcquireTimeout)
					ok, err := lock.TryAcquire(ctx)
					cancel()
					if err != nil {
						// A crashed site's instances report closure; that is
						// the schedule working, not a harness failure.
						if errors.Is(err, transport.ErrClosed) {
							resMu.Lock()
							res.Missed++
							resMu.Unlock()
							return
						}
						// ErrBusy follows a timed-out round on a lossy
						// schedule: the abandoned request is still in
						// flight, so this round is missed too.
						if errors.Is(err, transport.ErrBusy) {
							resMu.Lock()
							res.Missed++
							resMu.Unlock()
							time.Sleep(time.Millisecond)
							continue
						}
						errC <- err
						return
					}
					resMu.Lock()
					if ok {
						res.Acquired++
					} else {
						res.Missed++
					}
					resMu.Unlock()
					if !ok {
						continue
					}
					if cfg.Hold > 0 {
						time.Sleep(cfg.Hold)
					}
					if err := lock.Release(); err != nil && !errors.Is(err, transport.ErrClosed) {
						errC <- fmt.Errorf("release: %w", err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	if watchdog != nil {
		watchdog.Stop()
	}
	close(errC)
	for err := range errC {
		return res, fmt.Errorf("sweep: workload: %w", err)
	}
	if cfg.Assignment != nil && cfg.Plan.Quiet() {
		// Quiescent and fault-free: sends are counted at the sender before
		// Release returns, so the totals are final once the workload joins.
		lo, hi := chaos.MessageBounds(cfg.Assignment)
		checker.CheckBounds(lo, hi)
	}
	res.Retransmits, res.DupSuppressed, res.AcksSent = checker.Transport()
	res.Violations = checker.Violations()
	if cfg.Plan.Quiet() && res.Retransmits > 0 {
		// A fault-free wire must never trip the retransmission timer: a
		// spurious retransmit means the backoff undercuts the ack path.
		res.Violations = append(res.Violations, chaos.Violation{
			Kind:   "transport",
			Detail: fmt.Sprintf("%d retransmissions on a fault-free schedule", res.Retransmits),
		})
	}
	return res, nil
}

// RandomPlan derives schedule number seed deterministically: a mix of
// quiet, delay-only, lossy, crash, and partition archetypes so a sweep
// covers the fault space while each seed reproduces its schedule exactly.
// n is the cluster size (used to pick crash victims and partition groups).
func RandomPlan(seed int64, n int) chaos.Plan {
	p := chaos.Plan{Seed: seed}
	draw := func(k uint64) float64 {
		x := splitmix(uint64(seed) ^ 0xC0FFEE ^ k)
		return float64(x>>11) / float64(1<<53)
	}
	switch kind := int(splitmix(uint64(seed)) % 5); kind {
	case 0:
		// Quiet: fault-free baseline, eligible for the message-bound check.
	case 1:
		// Delay + reorder: lossless, so liveness must hold.
		p.MinDelay = 100 * time.Microsecond
		p.MaxDelay = time.Duration(1+draw(1)*4) * time.Millisecond
		p.Reorder = 0.1 + 0.3*draw(2)
	case 2:
		// Lossy: drops on top of delay and reordering.
		p.Drop = 0.02 + 0.1*draw(1)
		p.Reorder = 0.2 * draw(2)
		p.MaxDelay = time.Duration(1+draw(3)*3) * time.Millisecond
	case 3:
		// Crash: one victim mid-run, detection shortly after, plus delays.
		victim := mutex.SiteID(splitmix(uint64(seed)^0xDEAD) % uint64(n))
		p.MaxDelay = time.Duration(1+draw(1)*2) * time.Millisecond
		p.Crashes = []chaos.Crash{{
			After:       time.Duration(2+draw(2)*10) * time.Millisecond,
			Site:        victim,
			DetectAfter: time.Duration(1+draw(3)*5) * time.Millisecond,
		}}
	case 4:
		// Partition: a minority group is cut off for a window, then heals.
		size := 1 + int(splitmix(uint64(seed)^0xBEEF)%uint64((n-1)/2))
		group := make([]mutex.SiteID, 0, size)
		first := int(splitmix(uint64(seed)^0xF00D) % uint64(n))
		for i := 0; i < size; i++ {
			group = append(group, mutex.SiteID((first+i)%n))
		}
		start := time.Duration(draw(1)*10) * time.Millisecond
		p.Partitions = []chaos.Partition{{
			Start: start,
			End:   start + time.Duration(5+draw(2)*20)*time.Millisecond,
			Group: group,
		}}
		p.MaxDelay = time.Duration(draw(3)*2) * time.Millisecond
	}
	return p
}

// splitmix mirrors the fabric's decision hash for plan derivation.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
