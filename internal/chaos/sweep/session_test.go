package sweep

// Session-tier conformance archetypes: the lock-service tier (leased client
// sessions over arbiter coteries) driven through the same seeded chaos
// fabric as the peer-level sweep, with the protocol checker attached as a
// hard oracle. Two schedules ride in the sweep:
//
//   - lease-expiry reclaim: a client crashes mid-hold (no bye, keepalives
//     stop); the arbiter must reclaim at lease expiry and a waiter on a
//     different arbiter must be granted within the lease + handoff bound;
//   - arbiter-crash fail-over: the arbiter a client is attached to dies —
//     session server and protocol site both — so the client must fail over
//     to the second arbiter, observe ErrLockLost on its voided grant, and
//     re-acquire through §6 recovery.
//
// Both are asserted as hard conformance (checker violations fail the test)
// and run under -race via the chaos make target.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/session"
	"dqmx/internal/transport"
)

// sessionHarness is one chaos-fabric cluster with a session server bound to
// each of the given sites and the conformance checker observing every
// protocol event.
type sessionHarness struct {
	cluster *transport.Cluster
	checker *chaos.Checker
	addrs   []string
	srvs    []*session.Server
}

func startSessionHarness(t *testing.T, n int, sites []int, lease time.Duration, plan *chaos.Plan) *sessionHarness {
	t.Helper()
	checker := chaos.NewChecker()
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm: core.Algorithm{},
		N:         n,
		Observer:  checker.Observe,
		Chaos:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	cluster.SetDeliveryHook(checker.Delivered)
	h := &sessionHarness{cluster: cluster, checker: checker}
	for _, site := range sites {
		site := site
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := session.NewServer(session.ServerConfig{
			Site: mutex.SiteID(site),
			Locks: session.LockerFunc(func(name string) (*resource.Lock, error) {
				return h.cluster.Lock(mutex.SiteID(site), name)
			}),
			Listener: ln,
			Lease:    lease,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		h.addrs = append(h.addrs, ln.Addr().String())
		h.srvs = append(h.srvs, srv)
	}
	return h
}

// assertConformance fails the test on any checker violation, printing the
// plan and seed so the schedule reproduces.
func (h *sessionHarness) assertConformance(t *testing.T, seed int64, plan *chaos.Plan) {
	t.Helper()
	for _, v := range h.checker.Violations() {
		t.Errorf("seed %d: %s\nplan: %s", seed, v, plan)
	}
}

func sessionDial(t *testing.T, addrs []string, lease time.Duration) *session.Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	c, err := session.Dial(ctx, session.ClientConfig{
		Addrs:          addrs,
		Lease:          lease,
		FailoverWindow: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// sessionSweepSeeds picks the per-archetype schedule count: trimmed under
// -short so the chaos make target stays fast, full in the regular sweep.
func sessionSweepSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1, 42}
	}
	return []int64{1, 7, 23, 42, 99}
}

// sessionPlan derives the fault fabric for one session schedule: drops and
// delay the reliable sublayer must heal, never a protocol-site crash — the
// archetypes inject their own session-tier faults deterministically.
func sessionPlan(seed int64, lossy bool) *chaos.Plan {
	p := &chaos.Plan{Seed: seed, MaxDelay: 2 * time.Millisecond}
	if lossy {
		p.Drop = 0.05
		p.Reorder = 0.1
	}
	return p
}

// TestSessionConformanceLeaseReclaim is the lease-expiry reclaim archetype:
// a holder crashes without a bye; the lease runs out; the arbiter reclaims
// through an ordinary protocol release, so a waiter queued behind the
// holder on another arbiter is granted through the normal transfer path.
func TestSessionConformanceLeaseReclaim(t *testing.T) {
	const lease = 250 * time.Millisecond
	for _, seed := range sessionSweepSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := sessionPlan(seed, true)
			h := startSessionHarness(t, 3, []int{0, 1}, lease, plan)

			holder := sessionDial(t, h.addrs[:1], lease)
			hl, err := holder.Lock("shared")
			if err != nil {
				t.Fatal(err)
			}
			if err := hl.Acquire(context.Background()); err != nil {
				t.Fatal(err)
			}
			waiter := sessionDial(t, h.addrs[1:], lease)
			wl, err := waiter.Lock("shared")
			if err != nil {
				t.Fatal(err)
			}
			granted := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				granted <- wl.Acquire(ctx)
			}()
			time.Sleep(50 * time.Millisecond)
			start := time.Now()
			holder.Abandon()
			select {
			case err := <-granted:
				if err != nil {
					t.Fatalf("seed %d: waiter: %v\nplan: %s", seed, err, plan)
				}
			case <-time.After(20 * time.Second):
				t.Fatalf("seed %d: waiter never granted after holder crash\nplan: %s", seed, plan)
			}
			if elapsed, bound := time.Since(start), lease+5*time.Second; elapsed > bound {
				t.Errorf("seed %d: reclaim took %v, want <= %v\nplan: %s", seed, elapsed, bound, plan)
			}
			if err := wl.Release(); err != nil {
				t.Fatal(err)
			}
			h.assertConformance(t, seed, plan)
		})
	}
}

// TestSessionConformanceArbiterFailover is the arbiter-crash archetype: the
// arbiter a client holds a lock through dies entirely — session server
// closed, protocol site killed — so the surviving sites run §6 recovery
// while the client fails over. The voided grant must surface as
// ErrLockLost, and a re-acquire through the second arbiter must succeed
// against the recovered coterie.
func TestSessionConformanceArbiterFailover(t *testing.T) {
	const lease = 250 * time.Millisecond
	for _, seed := range sessionSweepSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			plan := sessionPlan(seed, false)
			h := startSessionHarness(t, 3, []int{0, 1}, lease, plan)

			c := sessionDial(t, h.addrs, lease)
			l, err := c.Lock("shared")
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Acquire(context.Background()); err != nil {
				t.Fatal(err)
			}
			oldID, oldFence := c.ID(), c.Fence()

			// Kill the arbiter the client is attached to: the session tier
			// stops answering and the protocol site crashes mid-hold, so the
			// lock's release never happens voluntarily — §6 recovery must
			// free it as the surviving sites learn of the failure.
			h.srvs[0].Close()
			h.cluster.KillSite(0, 10*time.Millisecond)

			deadline := time.Now().Add(15 * time.Second)
			for c.ID() == oldID || c.ID() == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("seed %d: client never failed over (id still %d)\nplan: %s", seed, c.ID(), plan)
				}
				time.Sleep(10 * time.Millisecond)
			}
			if fence := c.Fence(); fence <= oldFence {
				t.Errorf("seed %d: fencing token did not advance across failover: %d -> %d", seed, oldFence, fence)
			}
			if err := l.Release(); !errors.Is(err, resource.ErrLockLost) {
				t.Fatalf("seed %d: release after failover: got %v, want ErrLockLost\nplan: %s", seed, err, plan)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			err = l.Acquire(ctx)
			cancel()
			if err != nil {
				t.Fatalf("seed %d: re-acquire after §6 recovery: %v\nplan: %s", seed, err, plan)
			}
			if err := l.Release(); err != nil {
				t.Fatal(err)
			}
			h.assertConformance(t, seed, plan)
		})
	}
}
