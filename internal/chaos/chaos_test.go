package chaos

import (
	"sync"
	"testing"
	"time"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/timestamp"
)

type fakeMsg struct{ kind string }

func (m fakeMsg) Kind() string { return m.kind }

// collect runs a fixed per-stream traffic pattern through a fabric and
// returns the envelopes that survived, keyed by stream.
func collect(t *testing.T, plan Plan, perStream int) map[streamKey][]mutex.Envelope {
	t.Helper()
	var mu sync.Mutex
	got := make(map[streamKey][]mutex.Envelope)
	f := NewFabric(plan, func(env mutex.Envelope) error {
		mu.Lock()
		key := streamKey{resource: env.Resource, from: env.From, to: env.To}
		got[key] = append(got[key], env)
		mu.Unlock()
		return nil
	})
	for i := 0; i < perStream; i++ {
		for from := mutex.SiteID(0); from < 3; from++ {
			for to := mutex.SiteID(0); to < 3; to++ {
				if from == to {
					continue
				}
				if err := f.Send(mutex.Envelope{Resource: "r", From: from, To: to, Msg: fakeMsg{mutex.KindRequest}}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Drain: wait out the largest possible delay plus reorder hold-back.
	time.Sleep(3*plan.MaxDelay + 20*time.Millisecond)
	f.Close()
	return got
}

// TestFabricDeterministicPerStream is the replay contract: the same plan
// must keep or drop exactly the same per-stream message positions across
// runs, regardless of goroutine scheduling.
func TestFabricDeterministicPerStream(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.3, Duplicate: 0.2}
	first := collect(t, plan, 50)
	for run := 0; run < 3; run++ {
		again := collect(t, plan, 50)
		for key, envs := range first {
			if len(again[key]) != len(envs) {
				t.Fatalf("stream %v: run delivered %d envelopes, first run %d",
					key, len(again[key]), len(envs))
			}
		}
	}
	// A different seed must make different decisions somewhere.
	other := collect(t, Plan{Seed: 43, Drop: 0.3, Duplicate: 0.2}, 50)
	same := true
	for key, envs := range first {
		if len(other[key]) != len(envs) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical per-stream outcomes")
	}
}

// TestFabricQuietPassThrough: a zero plan must deliver everything, in
// order, with no duplication.
func TestFabricQuietPassThrough(t *testing.T) {
	got := collect(t, Plan{}, 20)
	if len(got) != 6 {
		t.Fatalf("expected 6 streams, got %d", len(got))
	}
	for key, envs := range got {
		if len(envs) != 20 {
			t.Fatalf("stream %v: %d of 20 delivered by a quiet fabric", key, len(envs))
		}
	}
}

// TestFabricFIFOWithoutReorder: plain bounded delay must preserve each
// stream's FIFO order (the protocol's channel model).
func TestFabricFIFOWithoutReorder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	f := NewFabric(Plan{Seed: 7, MinDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
		func(env mutex.Envelope) error {
			mu.Lock()
			got = append(got, int(env.Msg.(seqMsg)))
			mu.Unlock()
			return nil
		})
	const n = 40
	for i := 0; i < n; i++ {
		if err := f.Send(mutex.Envelope{From: 0, To: 1, Msg: seqMsg(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	f.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated without Reorder: position %d got %d", i, v)
		}
	}
}

type seqMsg int

func (seqMsg) Kind() string { return "seq" }

// TestFabricPartitionWindow: messages crossing the cut during the window
// are lost, messages after healing flow again.
func TestFabricPartitionWindow(t *testing.T) {
	var mu sync.Mutex
	var got []mutex.Envelope
	plan := Plan{
		Seed:       1,
		Partitions: []Partition{{Start: 0, End: 30 * time.Millisecond, Group: []mutex.SiteID{1}}},
	}
	f := NewFabric(plan, func(env mutex.Envelope) error {
		mu.Lock()
		got = append(got, env)
		mu.Unlock()
		return nil
	})
	defer f.Close()
	// Crossing the cut: dropped. Inside the group (1->1 is filtered by the
	// protocol anyway) and outside (0->2): delivered.
	_ = f.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"a"}})
	_ = f.Send(mutex.Envelope{From: 1, To: 0, Msg: fakeMsg{"b"}})
	_ = f.Send(mutex.Envelope{From: 0, To: 2, Msg: fakeMsg{"c"}})
	time.Sleep(40 * time.Millisecond)
	_ = f.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"d"}})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("expected 2 deliveries (c during cut, d after heal), got %d: %v", len(got), got)
	}
	if got[0].Msg.Kind() != "c" || got[1].Msg.Kind() != "d" {
		t.Fatalf("wrong survivors: %v", got)
	}
}

// TestFabricCrashSilences: a marked-crashed site neither sends nor
// receives.
func TestFabricCrashSilences(t *testing.T) {
	var mu sync.Mutex
	count := 0
	f := NewFabric(Plan{Seed: 1}, func(env mutex.Envelope) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
	defer f.Close()
	f.MarkCrashed(2)
	_ = f.Send(mutex.Envelope{From: 2, To: 0, Msg: fakeMsg{"x"}})
	_ = f.Send(mutex.Envelope{From: 0, To: 2, Msg: fakeMsg{"x"}})
	_ = f.Send(mutex.Envelope{From: 0, To: 1, Msg: fakeMsg{"x"}})
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("expected only the 0->1 delivery, got %d", count)
	}
}

func ts(seq uint64, site mutex.SiteID) timestamp.Timestamp {
	return timestamp.Timestamp{Seq: seq, Site: site}
}

// TestCheckerDoubleHolder: overlapping CS entries on one resource are a
// safety violation; entries on different resources are independent.
func TestCheckerDoubleHolder(t *testing.T) {
	c := NewChecker()
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 0, Resource: "a"})
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 1, Resource: "b"})
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("independent resources flagged: %v", c.Violations())
	}
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 2, Resource: "a"})
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != "safety" {
		t.Fatalf("expected one safety violation, got %v", vs)
	}
	// After the holder exits, a new entry is clean again.
	c.Observe(obs.Event{Type: obs.EventExit, Site: 2, Resource: "a"})
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 0, Resource: "a"})
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("clean handover flagged: %v", c.Violations())
	}
}

// requestWave replays one request's full lifecycle prefix into the checker:
// issue, send the wave, deliver it.
func requestWave(c *Checker, site mutex.SiteID, reqTS timestamp.Timestamp, arbiters []mutex.SiteID) {
	c.Observe(obs.Event{Type: obs.EventRequest, Site: site, Resource: "r", ReqTS: reqTS})
	for _, a := range arbiters {
		c.Observe(obs.Event{Type: obs.EventSend, Site: site, Peer: a, Kind: mutex.KindRequest, Resource: "r"})
	}
	for _, a := range arbiters {
		c.Delivered(mutex.Envelope{Resource: "r", From: site, To: a, Msg: fakeMsg{mutex.KindRequest}}, false)
	}
}

// TestCheckerOrdering: a later, larger-timestamp request entering over a
// settled earlier request is a violation; the same entry is legal while the
// earlier request's wave is still in flight.
func TestCheckerOrdering(t *testing.T) {
	arbs := []mutex.SiteID{3, 4}

	c := NewChecker()
	requestWave(c, 0, ts(1, 0), arbs) // settled low-ts request
	requestWave(c, 1, ts(5, 1), arbs) // issued strictly after 0 settled
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 1, Resource: "r"})
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != "order" {
		t.Fatalf("expected one order violation, got %v", vs)
	}

	// In-flight variant: site 0's wave has an undelivered request message,
	// so overtaking it is legal (the arbiter may simply not know yet).
	c = NewChecker()
	c.Observe(obs.Event{Type: obs.EventRequest, Site: 0, Resource: "r", ReqTS: ts(1, 0)})
	for _, a := range arbs {
		c.Observe(obs.Event{Type: obs.EventSend, Site: 0, Peer: a, Kind: mutex.KindRequest, Resource: "r"})
	}
	c.Delivered(mutex.Envelope{Resource: "r", From: 0, To: 3, Msg: fakeMsg{mutex.KindRequest}}, false)
	requestWave(c, 1, ts(5, 1), arbs)
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 1, Resource: "r"})
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("in-flight overtake flagged: %v", vs)
	}

	// Entry in timestamp order is always clean.
	c = NewChecker()
	requestWave(c, 0, ts(1, 0), arbs)
	requestWave(c, 1, ts(5, 1), arbs)
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 0, Resource: "r"})
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("in-order entry flagged: %v", vs)
	}
}

// TestCheckerCrashedHolder: a failure notification for the current holder
// must clear the hold so the §6 regrant is not a false double entry, and
// remove the site's pending request from watchdog consideration.
func TestCheckerCrashedHolder(t *testing.T) {
	c := NewChecker()
	c.Observe(obs.Event{Type: obs.EventRequest, Site: 0, Resource: "r", ReqTS: ts(1, 0)})
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 0, Resource: "r"})
	c.Observe(obs.Event{Type: obs.EventRequest, Site: 1, Resource: "r", ReqTS: ts(2, 1)})
	c.Observe(obs.Event{Type: obs.EventFailure, Site: 2, Peer: 0, Resource: "r"})
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 1, Resource: "r"})
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("regrant after crash flagged: %v", vs)
	}
	if stalls := c.Stalled(0); len(stalls) != 0 {
		t.Fatalf("crashed/served sites still stalled: %v", stalls)
	}
}

// TestCheckerBounds: the per-CS message accounting against explicit bounds.
func TestCheckerBounds(t *testing.T) {
	c := NewChecker()
	for i := 0; i < 12; i++ {
		c.Observe(obs.Event{Type: obs.EventSend, Site: 0, Peer: 1, Kind: mutex.KindReply, Resource: "r"})
	}
	c.Observe(obs.Event{Type: obs.EventEnter, Site: 0, Resource: "r"})
	c.Observe(obs.Event{Type: obs.EventExit, Site: 0, Resource: "r"})
	c.CheckBounds(6, 12) // 12 per CS: inside
	if vs := c.Violations(); len(vs) != 0 {
		t.Fatalf("in-bound run flagged: %v", vs)
	}
	c.CheckBounds(6, 11) // now outside
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != "bound" {
		t.Fatalf("expected one bound violation, got %v", vs)
	}
}

// TestMessageBounds: derived from the coterie's min/max quorum size.
func TestMessageBounds(t *testing.T) {
	assign, err := coterie.Grid{}.Assign(9) // 3x3 grid: every quorum K=5
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MessageBounds(assign)
	if lo != 12 || hi != 24 {
		t.Fatalf("grid-9 bounds: got [%v,%v], want [12,24]", lo, hi)
	}
}

// TestWatchdogReportsStall: a pending request older than patience triggers
// exactly one report carrying the dump.
func TestWatchdogReportsStall(t *testing.T) {
	c := NewChecker()
	c.Observe(obs.Event{Type: obs.EventRequest, Site: 4, Resource: "r", ReqTS: ts(1, 4)})
	var mu sync.Mutex
	var reports []string
	w := NewWatchdog(c, time.Millisecond, 5*time.Millisecond,
		func() string { return "dump!" },
		func(s Stall, dump string) {
			mu.Lock()
			reports = append(reports, dump)
			mu.Unlock()
		})
	time.Sleep(30 * time.Millisecond)
	w.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(reports) != 1 || reports[0] != "dump!" {
		t.Fatalf("expected one stall report with dump, got %v", reports)
	}
}

// TestSeedOverride round-trips the env var.
func TestSeedOverride(t *testing.T) {
	t.Setenv(SeedEnv, "12345")
	seed, ok := SeedOverride()
	if !ok || seed != 12345 {
		t.Fatalf("got (%d,%v)", seed, ok)
	}
	t.Setenv(SeedEnv, "")
	if _, ok := SeedOverride(); ok {
		t.Fatal("empty env read as a seed")
	}
}
