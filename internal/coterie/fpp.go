package coterie

import "fmt"

// FPP implements Maekawa's optimal quorum construction from finite
// projective planes: for a prime order q and N = q²+q+1 sites, the sites are
// the points of PG(2,q) and the quorums are its lines. Every line has
// exactly q+1 ≈ √N points, every point lies on q+1 lines, and any two lines
// meet in exactly one point — so the coterie is both minimal and perfectly
// symmetric, the theoretical optimum Maekawa's paper aims for (the grid
// construction approximates it with K = 2√N−1).
//
// Only system sizes N = q²+q+1 with q prime are supported (7, 13, 31, 57,
// 133, …); Assign returns an error otherwise.
type FPP struct{}

var _ Construction = FPP{}

// Name implements Construction.
func (FPP) Name() string { return "fpp" }

// fppOrder returns the prime order q with q²+q+1 == n, or an error.
func fppOrder(n int) (int, error) {
	for q := 2; q*q+q+1 <= n; q++ {
		if q*q+q+1 == n {
			if !isPrime(q) {
				return 0, fmt.Errorf("coterie: fpp order %d is not prime", q)
			}
			return q, nil
		}
	}
	return 0, fmt.Errorf("coterie: fpp needs n = q²+q+1 with q prime, got %d", n)
}

func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}

// fppPoints enumerates the normalized homogeneous coordinates of PG(2,q):
// the first non-zero coordinate is 1. Exactly q²+q+1 triples.
func fppPoints(q int) [][3]int {
	pts := make([][3]int, 0, q*q+q+1)
	// (1, y, z)
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			pts = append(pts, [3]int{1, y, z})
		}
	}
	// (0, 1, z)
	for z := 0; z < q; z++ {
		pts = append(pts, [3]int{0, 1, z})
	}
	// (0, 0, 1)
	pts = append(pts, [3]int{0, 0, 1})
	return pts
}

// fppLines builds every line of PG(2,q) as the set of point indices
// incident to it (a·x + b·y + c·z ≡ 0 mod q); the lines are indexed by the
// same normalized triples as the points (plane duality).
func fppLines(q int) [][]int {
	pts := fppPoints(q)
	lines := make([][]int, 0, len(pts))
	for _, l := range pts { // duality: line coefficients range over points
		var members []int
		for pi, p := range pts {
			if (l[0]*p[0]+l[1]*p[1]+l[2]*p[2])%q == 0 {
				members = append(members, pi)
			}
		}
		lines = append(lines, members)
	}
	return lines
}

// Assign implements Construction: each site gets the first line through its
// own point.
func (f FPP) Assign(n int) (*Assignment, error) {
	q, err := fppOrder(n)
	if err != nil {
		return nil, err
	}
	lines := fppLines(q)
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		line := lineThrough(lines, i)
		if line == nil {
			return nil, fmt.Errorf("coterie: fpp internal error: no line through point %d", i)
		}
		quorum := make(Quorum, 0, q+1)
		for _, p := range line {
			quorum = append(quorum, SiteID(p))
		}
		a.Quorums[i] = normalize(quorum)
	}
	return a, nil
}

func lineThrough(lines [][]int, point int) []int {
	for _, line := range lines {
		for _, p := range line {
			if p == point {
				return line
			}
		}
	}
	return nil
}

// QuorumAvoiding implements Construction: any fully live line works, since
// all lines pairwise intersect. Lines through the requesting site are
// preferred.
func (f FPP) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	q, err := fppOrder(n)
	if err != nil {
		return nil, err
	}
	lines := fppLines(q)
	live := func(line []int) bool {
		for _, p := range line {
			if down[SiteID(p)] {
				return false
			}
		}
		return true
	}
	pick := func(requireSite bool) Quorum {
		for _, line := range lines {
			if !live(line) {
				continue
			}
			has := false
			for _, p := range line {
				if SiteID(p) == site {
					has = true
					break
				}
			}
			if requireSite && !has {
				continue
			}
			quorum := make(Quorum, 0, len(line))
			for _, p := range line {
				quorum = append(quorum, SiteID(p))
			}
			return normalize(quorum)
		}
		return nil
	}
	if quorum := pick(true); quorum != nil {
		return quorum, nil
	}
	if quorum := pick(false); quorum != nil {
		return quorum, nil
	}
	return nil, ErrNoLiveQuorum
}
