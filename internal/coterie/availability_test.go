package coterie

import (
	"math"
	"testing"
)

func TestTreeAvailabilityDegenerate(t *testing.T) {
	// A single site: availability is p.
	for _, p := range []float64{0, 0.3, 0.9, 1} {
		if got := TreeAvailability(1, p); math.Abs(got-p) > 1e-12 {
			t.Errorf("TreeAvailability(1, %v) = %v, want %v", p, got, p)
		}
	}
}

func TestTreeAvailabilityThreeNodes(t *testing.T) {
	// n=3 perfect tree: A = p(1-(1-p)^2) + (1-p)p^2.
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		want := p*(1-(1-p)*(1-p)) + (1-p)*p*p
		if got := TreeAvailability(3, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("TreeAvailability(3, %v) = %v, want %v", p, got, want)
		}
	}
}

func TestMajorityAvailabilityExact(t *testing.T) {
	// n=3 needs 2 of 3: p^3 + 3 p^2 (1-p).
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		want := p*p*p + 3*p*p*(1-p)
		if got := MajorityAvailability(3, p); math.Abs(got-want) > 1e-9 {
			t.Errorf("MajorityAvailability(3, %v) = %v, want %v", p, got, want)
		}
	}
	if got := MajorityAvailability(5, 1); got != 1 {
		t.Errorf("MajorityAvailability(5, 1) = %v, want 1", got)
	}
	if got := MajorityAvailability(5, 0); got != 0 {
		t.Errorf("MajorityAvailability(5, 0) = %v, want 0", got)
	}
}

func TestMajorityMoreAvailableThanSingletonAtHighP(t *testing.T) {
	for _, p := range []float64{0.8, 0.9, 0.99} {
		if MajorityAvailability(9, p) <= SingletonAvailability(p) {
			t.Errorf("majority availability should exceed singleton at p=%v", p)
		}
	}
}

func TestMonteCarloMatchesExactForMajority(t *testing.T) {
	n, p := 9, 0.85
	exact := MajorityAvailability(n, p)
	est := Availability(Majority{}, n, p, 20000, 42)
	if math.Abs(est-exact) > 0.02 {
		t.Errorf("Monte Carlo = %v, exact = %v (diff > 0.02)", est, exact)
	}
}

func TestMonteCarloMatchesExactForTree(t *testing.T) {
	n, p := 15, 0.9
	exact := TreeAvailability(n, p)
	est := Availability(Tree{}, n, p, 20000, 7)
	if math.Abs(est-exact) > 0.02 {
		t.Errorf("Monte Carlo = %v, exact = %v (diff > 0.02)", est, exact)
	}
}

func TestAvailabilityMonotoneInP(t *testing.T) {
	for _, c := range Constructions() {
		lo := Availability(c, 16, 0.6, 4000, 1)
		hi := Availability(c, 16, 0.95, 4000, 1)
		if hi+0.03 < lo { // slack for sampling noise
			t.Errorf("%s: availability not monotone: p=0.6 → %v, p=0.95 → %v", c.Name(), lo, hi)
		}
	}
}

func TestAvailabilityZeroTrials(t *testing.T) {
	if got := Availability(Majority{}, 5, 0.9, 0, 1); got != 0 {
		t.Errorf("Availability with 0 trials = %v, want 0", got)
	}
}
