package coterie

// Property-based coverage of every registered quorum construction at
// randomized system sizes: Intersection (the safety-bearing coterie
// property) must hold unconditionally, and Minimality must hold at every
// structurally regular size. Several classical constructions genuinely
// produce non-minimal coteries at edge sizes — a truncated grid row can
// contain another site's quorum, for example — so minimality is asserted
// against an explicit per-construction regularity predicate rather than
// watered down globally. The predicates were validated exhaustively for
// every registered construction up to n=200.

import (
	"math"
	"math/rand"
	"testing"
)

// minimalityRegular reports whether the construction guarantees Minimality
// at size n. Sizes outside the predicate are documented waivers, not bugs:
// the shapes the paper evaluates are all regular.
func minimalityRegular(name string, n int) bool {
	switch name {
	case "maekawa-grid":
		// Truncated grids (n < cols*rows) can nest one site's row+column
		// inside another's.
		cols := int(math.Ceil(math.Sqrt(float64(n))))
		if cols == 0 {
			cols = 1
		}
		rows := (n + cols - 1) / cols
		return n == cols*rows
	case "grid-set":
		// GroupSize 4 (the registered shape): a partial trailing group
		// shrinks its internal grid below the other groups'.
		return n%4 == 0
	case "rst":
		// SubgroupSize 3: the group count itself must form a complete
		// group-level grid.
		groups := (n + 2) / 3
		cols := int(math.Ceil(math.Sqrt(float64(groups))))
		if cols == 0 {
			cols = 1
		}
		rows := (groups + cols - 1) / cols
		return groups == cols*rows
	case "crumbling-wall":
		// Triangular rows 1,2,3,…: a truncated last row of width 1 makes
		// that row's site a universal representative.
		rem := n
		for w := 1; rem > w; w++ {
			rem -= w
		}
		return !(rem == 1 && n > 1)
	default:
		return true
	}
}

// propertySeeds is the table of sweep seeds: failures name the seed, so one
// entry reproduces in isolation.
var propertySeeds = []int64{1, 7, 42, 1998, 20260805}

func TestConstructionPropertiesRandomizedN(t *testing.T) {
	for _, cons := range Constructions() {
		cons := cons
		t.Run(cons.Name(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range propertySeeds {
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 40; i++ {
					n := 1 + rng.Intn(96)
					a, err := cons.Assign(n)
					if err != nil {
						t.Fatalf("seed %d: Assign(%d): %v", seed, n, err)
					}
					if a.N != n || len(a.Quorums) != n {
						t.Fatalf("seed %d: Assign(%d) returned %d quorums for N=%d",
							seed, n, len(a.Quorums), a.N)
					}
					if err := a.Validate(); err != nil {
						t.Errorf("seed %d: n=%d violates Intersection: %v", seed, n, err)
					}
					minErr := a.CheckMinimality()
					if minErr != nil && minimalityRegular(cons.Name(), n) {
						t.Errorf("seed %d: n=%d regular but non-minimal: %v", seed, n, minErr)
					}
					if minErr == nil && !minimalityRegular(cons.Name(), n) {
						// Informational only: the waiver is allowed to be
						// conservative, but log when it fires needlessly.
						t.Logf("seed %d: n=%d waived but actually minimal", seed, n)
					}
				}
			}
		})
	}
}
