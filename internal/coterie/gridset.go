package coterie

import "fmt"

// GridSet implements the Grid-set protocol: sites are partitioned into
// groups of (about) GroupSize sites; a quorum takes a *majority of the
// groups* and, within each selected group, a Maekawa-style grid quorum
// (row ∪ column of the group's internal grid). Majority voting at the upper
// level buys resiliency; the grid at the lower level keeps message overhead
// down. Two quorums always share a group (majorities intersect) and inside
// that group two grid quorums intersect.
type GridSet struct {
	// GroupSize is the target number of sites per group (default 4).
	GroupSize int
}

var _ Construction = GridSet{}

// Name implements Construction.
func (g GridSet) Name() string { return "grid-set" }

func (g GridSet) groupSize() int {
	if g.GroupSize <= 0 {
		return 4
	}
	return g.GroupSize
}

// groups partitions 0..n-1 into consecutive runs of the configured size.
func (g GridSet) groups(n int) [][]SiteID {
	size := g.groupSize()
	out := make([][]SiteID, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		grp := make([]SiteID, 0, end-start)
		for s := start; s < end; s++ {
			grp = append(grp, SiteID(s))
		}
		out = append(out, grp)
	}
	return out
}

// gridQuorumWithin returns a grid (row ∪ column) quorum over the members of
// one group, avoiding failed sites. Member indices are local to the group
// and translated back to global SiteIDs.
func gridQuorumWithin(grp []SiteID, prefer SiteID, down map[SiteID]bool) (Quorum, bool) {
	local := make(map[SiteID]bool)
	for _, s := range grp {
		if down[s] {
			local[s] = true
		}
	}
	localDown := make(map[SiteID]bool, len(local))
	preferLocal := SiteID(0)
	for i, s := range grp {
		if local[s] {
			localDown[SiteID(i)] = true
		}
		if s == prefer {
			preferLocal = SiteID(i)
		}
	}
	lq, err := (Grid{}).QuorumAvoiding(len(grp), preferLocal, localDown)
	if err != nil {
		return nil, false
	}
	q := make(Quorum, 0, len(lq))
	for _, li := range lq {
		q = append(q, grp[li])
	}
	return q, true
}

// Assign implements Construction.
func (g GridSet) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: grid-set requires n > 0, got %d", n)
	}
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		q, err := g.QuorumAvoiding(n, SiteID(i), nil)
		if err != nil {
			return nil, fmt.Errorf("coterie: grid-set assignment for site %d: %w", i, err)
		}
		a.Quorums[i] = q
	}
	return a, nil
}

// QuorumAvoiding implements Construction. It selects a majority of groups
// each of which can supply a live internal grid quorum, preferring the
// requesting site's own group first so the site appears in its own quorum
// when alive.
func (g GridSet) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: grid-set requires n > 0, got %d", n)
	}
	grps := g.groups(n)
	need := len(grps)/2 + 1
	home := int(site) / g.groupSize()

	var q Quorum
	got := 0
	take := func(idx int) {
		sub, ok := gridQuorumWithin(grps[idx], site, down)
		if ok {
			q = append(q, sub...)
			got++
		}
	}
	take(home)
	for i := range grps {
		if got == need {
			break
		}
		if i != home {
			take(i)
		}
	}
	if got < need {
		return nil, ErrNoLiveQuorum
	}
	return normalize(q), nil
}
