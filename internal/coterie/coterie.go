// Package coterie implements quorum (coterie) constructions for distributed
// mutual exclusion, together with validation of the coterie properties and
// availability analysis under independent site failures.
//
// A coterie C under a set U of N sites is a set of quorums, where each quorum
// g satisfies:
//
//  1. g ≠ ∅ and g ⊆ U;
//  2. Minimality: no quorum is a subset of another;
//  3. Intersection: every pair of quorums has a non-empty intersection.
//
// The Intersection property is what guarantees mutual exclusion in
// quorum-based algorithms; Minimality is an efficiency concern only.
//
// The package provides the constructions discussed in the paper: Maekawa's
// grid (K ≈ √N), the Agrawal–El Abbadi tree quorums (K as low as log N), the
// Hierarchical Quorum Consensus (HQC), the Grid-set protocol, the
// Rangarajan–Setia–Tripathi protocol, plus majority and singleton coteries as
// baselines. All constructions implement the Construction interface, so the
// mutual exclusion algorithms are independent of the quorum being used.
package coterie

import (
	"errors"
	"fmt"
	"sort"

	"dqmx/internal/timestamp"
)

// SiteID aliases the repository-wide site identifier.
type SiteID = timestamp.SiteID

// Quorum is a sorted set of distinct sites whose unanimous permission lets a
// requester enter the critical section.
type Quorum []SiteID

// ErrNoLiveQuorum is returned when a construction cannot form a quorum that
// avoids the given set of failed sites.
var ErrNoLiveQuorum = errors.New("coterie: no quorum of live sites exists")

// normalize sorts q and removes duplicates in place, returning the result.
func normalize(q Quorum) Quorum {
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
	out := q[:0]
	for i, s := range q {
		if i == 0 || s != q[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Contains reports whether q contains site s. q must be normalized (sorted).
func (q Quorum) Contains(s SiteID) bool {
	i := sort.Search(len(q), func(i int) bool { return q[i] >= s })
	return i < len(q) && q[i] == s
}

// Intersects reports whether q and r share at least one site. Both quorums
// must be normalized.
func (q Quorum) Intersects(r Quorum) bool {
	i, j := 0, 0
	for i < len(q) && j < len(r) {
		switch {
		case q[i] == r[j]:
			return true
		case q[i] < r[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// SubsetOf reports whether every site of q is also in r. Both quorums must be
// normalized.
func (q Quorum) SubsetOf(r Quorum) bool {
	i, j := 0, 0
	for i < len(q) && j < len(r) {
		switch {
		case q[i] == r[j]:
			i++
			j++
		case q[i] > r[j]:
			j++
		default:
			return false
		}
	}
	return i == len(q)
}

// Clone returns an independent copy of q.
func (q Quorum) Clone() Quorum {
	out := make(Quorum, len(q))
	copy(out, q)
	return out
}

// String renders the quorum as "{a, b, c}".
func (q Quorum) String() string {
	b := []byte{'{'}
	for i, s := range q {
		if i > 0 {
			b = append(b, ',', ' ')
		}
		b = fmt.Appendf(b, "%d", s)
	}
	return string(append(b, '}'))
}

// Assignment maps every site to the quorum (its req_set) it must lock to
// enter the critical section.
type Assignment struct {
	// N is the number of sites 0..N-1.
	N int
	// Quorums is indexed by site: Quorums[i] is req_set(i).
	Quorums []Quorum
}

// Quorum returns req_set(site).
func (a *Assignment) Quorum(site SiteID) Quorum { return a.Quorums[site] }

// MaxQuorumSize returns the size of the largest quorum in the assignment.
func (a *Assignment) MaxQuorumSize() int {
	m := 0
	for _, q := range a.Quorums {
		if len(q) > m {
			m = len(q)
		}
	}
	return m
}

// AvgQuorumSize returns the mean quorum size across sites.
func (a *Assignment) AvgQuorumSize() float64 {
	if a.N == 0 {
		return 0
	}
	total := 0
	for _, q := range a.Quorums {
		total += len(q)
	}
	return float64(total) / float64(a.N)
}

// Validate checks the coterie conditions that matter for correctness of the
// mutual exclusion algorithms: every quorum is a non-empty subset of
// {0..N-1}, is sorted and duplicate-free, and every pair of quorums
// intersects. (Minimality is checked separately by CheckMinimality because it
// is an efficiency property, not a safety property, and several classical
// assignments violate it for edge sizes.)
func (a *Assignment) Validate() error {
	if len(a.Quorums) != a.N {
		return fmt.Errorf("coterie: assignment has %d quorums for %d sites", len(a.Quorums), a.N)
	}
	for i, q := range a.Quorums {
		if len(q) == 0 {
			return fmt.Errorf("coterie: quorum of site %d is empty", i)
		}
		for j, s := range q {
			if s < 0 || int(s) >= a.N {
				return fmt.Errorf("coterie: quorum of site %d contains out-of-range site %d", i, s)
			}
			if j > 0 && q[j-1] >= s {
				return fmt.Errorf("coterie: quorum of site %d is not sorted/deduped: %v", i, q)
			}
		}
	}
	for i := 0; i < a.N; i++ {
		for j := i + 1; j < a.N; j++ {
			if !a.Quorums[i].Intersects(a.Quorums[j]) {
				return fmt.Errorf("coterie: quorums of sites %d and %d do not intersect: %v vs %v",
					i, j, a.Quorums[i], a.Quorums[j])
			}
		}
	}
	return nil
}

// CheckMinimality reports the first pair of distinct quorums where one is a
// subset of the other, or nil when the assignment's quorum set is minimal.
func (a *Assignment) CheckMinimality() error {
	uniq := distinctQuorums(a.Quorums)
	for i := range uniq {
		for j := range uniq {
			if i != j && uniq[i].SubsetOf(uniq[j]) {
				return fmt.Errorf("coterie: quorum %v is a subset of %v", uniq[i], uniq[j])
			}
		}
	}
	return nil
}

func distinctQuorums(qs []Quorum) []Quorum {
	seen := make(map[string]bool, len(qs))
	out := make([]Quorum, 0, len(qs))
	for _, q := range qs {
		key := q.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, q)
		}
	}
	return out
}

// Construction builds quorum assignments for a given system size and can
// reconstruct quorums that avoid failed sites (the basis of the paper's §6
// fault tolerance).
type Construction interface {
	// Name identifies the construction (used in reports and benchmarks).
	Name() string
	// Assign builds the per-site quorum assignment for n sites.
	Assign(n int) (*Assignment, error)
	// QuorumAvoiding returns a quorum for the given site that contains no
	// site in down, or ErrNoLiveQuorum when none exists. The returned quorum
	// is guaranteed to intersect every quorum the construction can produce
	// for n sites, so mutual exclusion is preserved across reconstruction.
	QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error)
}

// Constructions returns every construction implemented by this package, in a
// stable order suitable for tables.
func Constructions() []Construction {
	return []Construction{
		Grid{},
		Tree{},
		HQC{},
		GridSet{GroupSize: 4},
		RST{SubgroupSize: 3},
		Wall{},
		Majority{},
		Singleton{},
	}
}
