package coterie

import "fmt"

// Tree implements the Agrawal–El Abbadi tree quorum construction. The n
// sites are the nodes of a binary tree in heap layout (children of node v
// are 2v+1 and 2v+2). A quorum is any root-to-leaf path (size O(log n)); if
// a node on the path has failed, it is substituted by paths from *both* of
// its children to leaves, degrading gracefully toward a majority-like quorum
// (the worst case). All quorums produced this way pairwise intersect, so
// requesters may reconstruct quorums independently after failures without
// endangering mutual exclusion.
type Tree struct{}

var _ Construction = Tree{}

// Name implements Construction.
func (Tree) Name() string { return "ae-tree" }

// Assign implements Construction. Site i receives the root-to-leaf path that
// passes through i (continuing to the leftmost leaf below i), so each site
// appears in its own quorum.
func (t Tree) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: tree requires n > 0, got %d", n)
	}
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		q := make(Quorum, 0, 8)
		// Ancestors of i (path root -> i).
		for v := i; ; v = (v - 1) / 2 {
			q = append(q, SiteID(v))
			if v == 0 {
				break
			}
		}
		// Continue from i to the leftmost leaf below it.
		for v := 2*i + 1; v < n; v = 2*v + 1 {
			q = append(q, SiteID(v))
		}
		a.Quorums[i] = normalize(q)
	}
	return a, nil
}

// QuorumAvoiding implements Construction using the classical recursive
// substitution rule: a live node contributes itself plus a quorum from one
// of its subtrees; a failed node is replaced by quorums from both subtrees.
// A failed leaf (or a failed node missing a child in the heap layout) makes
// that branch unusable.
func (t Tree) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: tree requires n > 0, got %d", n)
	}
	q, ok := treeQuorum(0, n, down)
	if !ok {
		return nil, ErrNoLiveQuorum
	}
	return normalize(q), nil
}

// treeQuorum returns a quorum for the subtree rooted at v avoiding failed
// sites, or ok=false when that subtree cannot supply one.
func treeQuorum(v, n int, down map[SiteID]bool) (Quorum, bool) {
	if v >= n {
		return nil, false
	}
	l, r := 2*v+1, 2*v+2
	leaf := l >= n
	if !down[SiteID(v)] {
		if leaf {
			return Quorum{SiteID(v)}, true
		}
		if ql, ok := treeQuorum(l, n, down); ok {
			return append(ql, SiteID(v)), true
		}
		if qr, ok := treeQuorum(r, n, down); ok {
			return append(qr, SiteID(v)), true
		}
		return nil, false
	}
	// v failed: need quorums from both children; a missing child in the heap
	// layout counts as a failed subtree.
	if leaf {
		return nil, false
	}
	ql, ok := treeQuorum(l, n, down)
	if !ok {
		return nil, false
	}
	qr, ok := treeQuorum(r, n, down)
	if !ok {
		return nil, false
	}
	return append(ql, qr...), true
}
