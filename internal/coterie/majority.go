package coterie

import "fmt"

// Majority implements simple majority voting: any ⌊n/2⌋+1 sites form a
// quorum. It has the highest resiliency of the classical coteries (it
// tolerates any ⌈n/2⌉−1 failures) at the price of O(N) messages.
type Majority struct{}

var _ Construction = Majority{}

// Name implements Construction.
func (Majority) Name() string { return "majority" }

// Assign implements Construction. Site i receives the cyclic window
// {i, i+1, …, i+⌊n/2⌋} (mod n), so every site is in its own quorum and the
// quorum set is spread evenly across sites.
func (m Majority) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: majority requires n > 0, got %d", n)
	}
	size := n/2 + 1
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		q := make(Quorum, 0, size)
		for k := 0; k < size; k++ {
			q = append(q, SiteID((i+k)%n))
		}
		a.Quorums[i] = normalize(q)
	}
	return a, nil
}

// QuorumAvoiding implements Construction: any ⌊n/2⌋+1 live sites.
func (m Majority) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: majority requires n > 0, got %d", n)
	}
	size := n/2 + 1
	q := make(Quorum, 0, size)
	if !down[site] && int(site) < n {
		q = append(q, site)
	}
	for i := 0; i < n && len(q) < size; i++ {
		if s := SiteID(i); s != site && !down[s] {
			q = append(q, s)
		}
	}
	if len(q) < size {
		return nil, ErrNoLiveQuorum
	}
	return normalize(q), nil
}

// Singleton implements the centralized coterie: a single arbiter site (site
// 0) forms the only quorum. It is the degenerate case with K = 1 and no
// fault tolerance; it is included as a baseline for the resiliency tables.
type Singleton struct{}

var _ Construction = Singleton{}

// Name implements Construction.
func (Singleton) Name() string { return "singleton" }

// Assign implements Construction.
func (s Singleton) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: singleton requires n > 0, got %d", n)
	}
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		a.Quorums[i] = Quorum{0}
	}
	return a, nil
}

// QuorumAvoiding implements Construction: the arbiter must be alive.
func (s Singleton) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: singleton requires n > 0, got %d", n)
	}
	if down[0] {
		return nil, ErrNoLiveQuorum
	}
	return Quorum{0}, nil
}
