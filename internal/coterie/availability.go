package coterie

import (
	"math"
	"math/rand"
)

// Availability estimates the probability that a construction can still form
// a quorum when each site is independently up with probability p, using
// Monte Carlo sampling with the given number of trials and a deterministic
// seed. This is the resiliency measure behind the paper's §6 comparison of
// fault-tolerant quorum constructions.
func Availability(c Construction, n int, p float64, trials int, seed int64) float64 {
	if trials <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	alive := 0
	down := make(map[SiteID]bool, n)
	for t := 0; t < trials; t++ {
		clear(down)
		requester := None
		for i := 0; i < n; i++ {
			if rng.Float64() >= p {
				down[SiteID(i)] = true
			} else if requester == None {
				requester = SiteID(i)
			}
		}
		if requester == None {
			continue // every site is down; no one can even ask
		}
		if _, err := c.QuorumAvoiding(n, requester, down); err == nil {
			alive++
		}
	}
	return float64(alive) / float64(trials)
}

// None marks "no site"; re-exported here to keep availability call sites
// self-contained.
const None = SiteID(-1)

// TreeAvailability computes the exact availability of the Agrawal–El Abbadi
// tree construction over n sites in heap layout when each site is
// independently up with probability p, using the standard recursion:
//
//	A(leaf)     = p
//	A(internal) = p·(1−(1−A(l))(1−A(r))) + (1−p)·A(l)·A(r)
//
// where a missing child in the heap layout counts as a failed subtree.
func TreeAvailability(n int, p float64) float64 {
	var rec func(v int) float64
	rec = func(v int) float64 {
		if v >= n {
			return 0
		}
		l, r := 2*v+1, 2*v+2
		if l >= n { // leaf
			return p
		}
		al, ar := rec(l), rec(r)
		return p*(1-(1-al)*(1-ar)) + (1-p)*al*ar
	}
	return rec(0)
}

// MajorityAvailability computes the exact availability of majority voting
// over n sites: the probability that at least ⌊n/2⌋+1 sites are up, i.e. the
// binomial tail Σ_{k=⌊n/2⌋+1}^{n} C(n,k) p^k (1−p)^{n−k}.
func MajorityAvailability(n int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	need := n/2 + 1
	total := 0.0
	for k := need; k <= n; k++ {
		total += math.Exp(logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
	}
	if total > 1 {
		total = 1
	}
	return total
}

// SingletonAvailability is simply p: the lone arbiter must be up.
func SingletonAvailability(p float64) float64 { return p }

// logChoose returns ln C(n, k) via log-gamma for numerical stability.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
