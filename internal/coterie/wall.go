package coterie

import "fmt"

// Wall implements the crumbling-wall construction (Peleg–Wool): sites are
// arranged in rows of configurable widths and a quorum is one *full* row
// plus one representative from every row below it. Two quorums intersect
// because the higher one's representative in the lower one's row meets that
// full row (or they share the same row). The bottom row alone is a quorum,
// so the construction degrades gracefully: small quorums near the bottom,
// resilient full-width rows near the top.
//
// The default wall is triangular (row widths 1, 2, 3, …), giving quorum
// sizes of O(√N).
type Wall struct {
	// Widths lists the row widths from top to bottom; nil selects the
	// triangular wall. The final row is truncated to the remaining sites.
	Widths []int
}

var _ Construction = Wall{}

// Name implements Construction.
func (Wall) Name() string { return "crumbling-wall" }

// rows partitions sites 0..n-1 into rows.
func (w Wall) rows(n int) [][]SiteID {
	var out [][]SiteID
	next := 0
	width := func(r int) int {
		if len(w.Widths) > 0 {
			return w.Widths[r%len(w.Widths)]
		}
		return r + 1 // triangular
	}
	for r := 0; next < n; r++ {
		wd := width(r)
		if wd < 1 {
			wd = 1
		}
		row := make([]SiteID, 0, wd)
		for k := 0; k < wd && next < n; k++ {
			row = append(row, SiteID(next))
			next++
		}
		out = append(out, row)
	}
	return out
}

// rowOf returns the index of the row containing site s.
func rowOf(rows [][]SiteID, s SiteID) int {
	for r, row := range rows {
		for _, m := range row {
			if m == s {
				return r
			}
		}
	}
	return -1
}

// Assign implements Construction: each site's quorum is its own full row
// plus, from each lower row, the member aligned with the site's offset.
func (w Wall) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: wall requires n > 0, got %d", n)
	}
	rows := w.rows(n)
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		s := SiteID(i)
		r := rowOf(rows, s)
		q := make(Quorum, 0, len(rows[r])+len(rows)-r)
		q = append(q, rows[r]...)
		offset := int(s) - int(rows[r][0])
		for rr := r + 1; rr < len(rows); rr++ {
			q = append(q, rows[rr][offset%len(rows[rr])])
		}
		a.Quorums[i] = normalize(q)
	}
	return a, nil
}

// QuorumAvoiding implements Construction: pick a fully live row (preferring
// the site's own) plus a live representative from every row below it.
func (w Wall) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: wall requires n > 0, got %d", n)
	}
	rows := w.rows(n)
	home := rowOf(rows, site)
	if home < 0 {
		home = 0
	}
	rowLive := func(r int) bool {
		for _, m := range rows[r] {
			if down[m] {
				return false
			}
		}
		return true
	}
	liveRep := func(r int) (SiteID, bool) {
		for _, m := range rows[r] {
			if !down[m] {
				return m, true
			}
		}
		return 0, false
	}
	try := func(r int) (Quorum, bool) {
		if !rowLive(r) {
			return nil, false
		}
		q := append(Quorum{}, rows[r]...)
		for rr := r + 1; rr < len(rows); rr++ {
			rep, ok := liveRep(rr)
			if !ok {
				return nil, false
			}
			q = append(q, rep)
		}
		return normalize(q), true
	}
	// Prefer the home row, then search every other row top-down.
	if q, ok := try(home); ok {
		return q, nil
	}
	for r := range rows {
		if r == home {
			continue
		}
		if q, ok := try(r); ok {
			return q, nil
		}
	}
	return nil, ErrNoLiveQuorum
}
