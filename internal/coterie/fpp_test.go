package coterie

import (
	"errors"
	"testing"
)

func TestFPPValidSizes(t *testing.T) {
	// q = 2, 3, 5, 7 → N = 7, 13, 31, 57.
	for _, tc := range []struct{ q, n int }{{2, 7}, {3, 13}, {5, 31}, {7, 57}} {
		a, err := (FPP{}).Assign(tc.n)
		if err != nil {
			t.Fatalf("Assign(%d): %v", tc.n, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		// Every line of PG(2,q) has exactly q+1 points.
		for i, quorum := range a.Quorums {
			if len(quorum) != tc.q+1 {
				t.Errorf("n=%d site %d: |q| = %d, want %d", tc.n, i, len(quorum), tc.q+1)
			}
		}
		if err := a.CheckMinimality(); err != nil {
			t.Errorf("n=%d: %v", tc.n, err)
		}
	}
}

func TestFPPRejectsInvalidSizes(t *testing.T) {
	for _, n := range []int{0, 6, 8, 12, 21 /* q=4 not prime */, 25} {
		if _, err := (FPP{}).Assign(n); err == nil {
			t.Errorf("Assign(%d) succeeded, want error", n)
		}
	}
}

func TestFPPSiteInOwnQuorum(t *testing.T) {
	a, err := (FPP{}).Assign(13)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		if !a.Quorums[i].Contains(SiteID(i)) {
			t.Errorf("site %d not in its own quorum %v", i, a.Quorums[i])
		}
	}
}

func TestFPPExactPairwiseIntersection(t *testing.T) {
	// Projective plane lines meet in exactly one point.
	a, err := (FPP{}).Assign(13)
	if err != nil {
		t.Fatal(err)
	}
	uniq := distinctQuorums(a.Quorums)
	for i := range uniq {
		for j := i + 1; j < len(uniq); j++ {
			common := 0
			for _, s := range uniq[i] {
				if uniq[j].Contains(s) {
					common++
				}
			}
			if common != 1 {
				t.Errorf("lines %v and %v share %d points, want exactly 1", uniq[i], uniq[j], common)
			}
		}
	}
}

func TestFPPQuorumAvoiding(t *testing.T) {
	down := map[SiteID]bool{0: true, 5: true}
	q, err := (FPP{}).QuorumAvoiding(13, 7, down)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range q {
		if down[s] {
			t.Errorf("quorum %v contains failed site %d", q, s)
		}
	}
	// It must still intersect the no-failure assignment.
	a, err := (FPP{}).Assign(13)
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range a.Quorums {
		if !q.Intersects(orig) {
			t.Errorf("avoiding quorum %v misses site %d's quorum %v", q, i, orig)
		}
	}
}

func TestFPPSmallerThanGrid(t *testing.T) {
	// The whole point: q+1 beats the grid's 2√N−1.
	n := 31
	fpp, err := (FPP{}).Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := (Grid{}).Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	if fpp.MaxQuorumSize() >= grid.MaxQuorumSize() {
		t.Errorf("fpp K = %d should beat grid K = %d", fpp.MaxQuorumSize(), grid.MaxQuorumSize())
	}
}

func TestFPPExhaustedAvailability(t *testing.T) {
	down := map[SiteID]bool{}
	for i := 0; i < 13; i++ {
		down[SiteID(i)] = i%2 == 0 // kill 7 of 13: some line must die everywhere?
	}
	// With this many failures a live line may or may not exist; either way
	// the answer must be consistent.
	q, err := (FPP{}).QuorumAvoiding(13, 1, down)
	if err != nil {
		if !errors.Is(err, ErrNoLiveQuorum) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	for _, s := range q {
		if down[s] {
			t.Errorf("returned quorum %v contains failed site %d", q, s)
		}
	}
}
