package coterie

import "fmt"

// RST implements the Rangarajan–Setia–Tripathi protocol, the dual of
// Grid-set: sites are partitioned into subgroups of (about) SubgroupSize
// sites; the subgroups themselves are arranged in a Maekawa grid, and a
// quorum takes, for every subgroup in a row ∪ column of that grid, a
// *majority of the subgroup's members*. The quorum size is
// ((G+1)/2)·O(√(N/G)). Two quorums share a subgroup (grid rows/columns
// cross) and inside it two majorities intersect, so the Intersection
// property holds; a site failure inside a subgroup is masked as long as a
// majority of the subgroup survives, with no reconstruction needed.
type RST struct {
	// SubgroupSize is the target number of sites per subgroup (default 3).
	SubgroupSize int
}

var _ Construction = RST{}

// Name implements Construction.
func (r RST) Name() string { return "rst" }

func (r RST) subgroupSize() int {
	if r.SubgroupSize <= 0 {
		return 3
	}
	return r.SubgroupSize
}

// subgroups partitions 0..n-1 into consecutive runs of the configured size.
func (r RST) subgroups(n int) [][]SiteID {
	size := r.subgroupSize()
	out := make([][]SiteID, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		grp := make([]SiteID, 0, end-start)
		for s := start; s < end; s++ {
			grp = append(grp, SiteID(s))
		}
		out = append(out, grp)
	}
	return out
}

// majorityOf returns any ⌊len(grp)/2⌋+1 live members of grp, preferring the
// given site when it is a live member. ok=false when a majority is not live.
func majorityOf(grp []SiteID, prefer SiteID, down map[SiteID]bool) (Quorum, bool) {
	need := len(grp)/2 + 1
	q := make(Quorum, 0, need)
	if !down[prefer] {
		for _, s := range grp {
			if s == prefer {
				q = append(q, s)
				break
			}
		}
	}
	for _, s := range grp {
		if len(q) == need {
			break
		}
		if s != prefer && !down[s] {
			q = append(q, s)
		}
	}
	if len(q) < need {
		return nil, false
	}
	return q, true
}

// Assign implements Construction.
func (r RST) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: rst requires n > 0, got %d", n)
	}
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		q, err := r.QuorumAvoiding(n, SiteID(i), nil)
		if err != nil {
			return nil, fmt.Errorf("coterie: rst assignment for site %d: %w", i, err)
		}
		a.Quorums[i] = q
	}
	return a, nil
}

// QuorumAvoiding implements Construction. It picks a row and a column of the
// subgroup grid such that every subgroup on them still has a live majority,
// preferring the requesting site's home row/column.
func (r RST) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: rst requires n > 0, got %d", n)
	}
	grps := r.subgroups(n)
	m := len(grps)
	cols, rows := gridDims(m)
	home := int(site) / r.subgroupSize()
	homeRow, homeCol := home/cols, home%cols

	rowOK := func(rr int) bool {
		any := false
		for c := 0; c < cols; c++ {
			g := rr*cols + c
			if g >= m {
				break
			}
			any = true
			if _, ok := majorityOf(grps[g], site, down); !ok {
				return false
			}
		}
		return any
	}
	colOK := func(cc int) bool {
		any := false
		for rr := 0; rr < rows; rr++ {
			g := rr*cols + cc
			if g >= m {
				break
			}
			any = true
			if _, ok := majorityOf(grps[g], site, down); !ok {
				return false
			}
		}
		return any
	}

	pickRow, pickCol := -1, -1
	for i := 0; i < rows; i++ {
		if rr := (homeRow + i) % rows; rowOK(rr) {
			pickRow = rr
			break
		}
	}
	for i := 0; i < cols; i++ {
		if cc := (homeCol + i) % cols; colOK(cc) {
			pickCol = cc
			break
		}
	}
	if pickRow < 0 || pickCol < 0 {
		return nil, ErrNoLiveQuorum
	}

	var q Quorum
	add := func(g int) {
		sub, _ := majorityOf(grps[g], site, down)
		q = append(q, sub...)
	}
	for c := 0; c < cols; c++ {
		if g := pickRow*cols + c; g < m {
			add(g)
		}
	}
	for rr := 0; rr < rows; rr++ {
		if g := rr*cols + pickCol; g < m {
			add(g)
		}
	}
	return normalize(q), nil
}
