package coterie

import "fmt"

// HQC implements Hierarchical Quorum Consensus: sites are the leaves of a
// logical ternary tree and a quorum of an internal node is obtained by
// assembling quorums from a majority of its children, recursively down to
// the leaves. With fanout 3 the quorum size is Θ(n^log₃2) ≈ n^0.63, and the
// construction tolerates failures by choosing different child majorities.
type HQC struct{}

var _ Construction = HQC{}

// Name implements Construction.
func (HQC) Name() string { return "hqc" }

// hqcNode is a node of the logical hierarchy. A leaf holds a physical site;
// an internal node holds children.
type hqcNode struct {
	site     SiteID // valid when leaf
	leaf     bool
	children []*hqcNode
}

// buildHQC builds the ternary hierarchy over n sites.
func buildHQC(n int) *hqcNode {
	level := make([]*hqcNode, n)
	for i := 0; i < n; i++ {
		level[i] = &hqcNode{site: SiteID(i), leaf: true}
	}
	for len(level) > 1 {
		next := make([]*hqcNode, 0, (len(level)+2)/3)
		for i := 0; i < len(level); i += 3 {
			end := i + 3
			if end > len(level) {
				end = len(level)
			}
			next = append(next, &hqcNode{children: level[i:end:end]})
		}
		level = next
	}
	return level[0]
}

// leavesUnder reports whether the subtree at v contains the given site.
func (v *hqcNode) contains(site SiteID) bool {
	if v.leaf {
		return v.site == site
	}
	for _, c := range v.children {
		if c.contains(site) {
			return true
		}
	}
	return false
}

// hqcQuorum assembles a quorum for the subtree rooted at v, avoiding failed
// sites and preferring branches containing prefer (so a site can appear in
// its own quorum). ok=false when no majority of children can supply quorums.
func hqcQuorum(v *hqcNode, prefer SiteID, down map[SiteID]bool) (Quorum, bool) {
	if v.leaf {
		if down[v.site] {
			return nil, false
		}
		return Quorum{v.site}, true
	}
	need := len(v.children)/2 + 1
	// Order children: preferred branch first, then the rest in order.
	order := make([]*hqcNode, 0, len(v.children))
	for _, c := range v.children {
		if c.contains(prefer) {
			order = append(order, c)
		}
	}
	for _, c := range v.children {
		if !c.contains(prefer) {
			order = append(order, c)
		}
	}
	var q Quorum
	got := 0
	for _, c := range order {
		sub, ok := hqcQuorum(c, prefer, down)
		if !ok {
			continue
		}
		q = append(q, sub...)
		got++
		if got == need {
			return q, true
		}
	}
	return nil, false
}

// Assign implements Construction.
func (h HQC) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: hqc requires n > 0, got %d", n)
	}
	root := buildHQC(n)
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		q, ok := hqcQuorum(root, SiteID(i), nil)
		if !ok {
			return nil, fmt.Errorf("coterie: hqc failed to build a quorum for site %d of %d", i, n)
		}
		a.Quorums[i] = normalize(q)
	}
	return a, nil
}

// QuorumAvoiding implements Construction.
func (h HQC) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: hqc requires n > 0, got %d", n)
	}
	q, ok := hqcQuorum(buildHQC(n), site, down)
	if !ok {
		return nil, ErrNoLiveQuorum
	}
	return normalize(q), nil
}
