package coterie

import (
	"errors"
	"math"
	"testing"
)

func TestWallTriangularRows(t *testing.T) {
	rows := Wall{}.rows(10)
	want := [][]int{{0}, {1, 2}, {3, 4, 5}, {6, 7, 8, 9}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for r := range want {
		if len(rows[r]) != len(want[r]) {
			t.Fatalf("row %d = %v, want %v", r, rows[r], want[r])
		}
		for k := range want[r] {
			if rows[r][k] != SiteID(want[r][k]) {
				t.Fatalf("row %d = %v, want %v", r, rows[r], want[r])
			}
		}
	}
}

func TestWallCustomWidths(t *testing.T) {
	rows := (Wall{Widths: []int{2, 3}}).rows(9)
	// widths cycle 2,3,2,3,… → 2+3+2+2(truncated)
	if len(rows) != 4 || len(rows[0]) != 2 || len(rows[1]) != 3 || len(rows[2]) != 2 || len(rows[3]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWallQuorumShape(t *testing.T) {
	a, err := (Wall{}).Assign(10)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 (top row, width 1): itself + 1 rep per lower row = 4.
	if got := len(a.Quorums[0]); got != 4 {
		t.Errorf("site 0 quorum %v, size %d, want 4", a.Quorums[0], got)
	}
	// Bottom-row sites: only their full row.
	for _, s := range []SiteID{6, 7, 8, 9} {
		if got := len(a.Quorums[s]); got != 4 {
			t.Errorf("site %d quorum %v, size %d, want 4 (full bottom row)", s, a.Quorums[s], got)
		}
	}
}

func TestWallQuorumSizeGrowsAsSqrt(t *testing.T) {
	for _, n := range []int{55, 210} { // triangular numbers
		a, err := (Wall{}).Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		// Rows k ≈ √(2N); quorum ≤ width + rows ≈ 2√(2N).
		cap := 2.2 * math.Sqrt(2*float64(n))
		if float64(a.MaxQuorumSize()) > cap {
			t.Errorf("n=%d: max K = %d exceeds ~2√(2N) = %.1f", n, a.MaxQuorumSize(), cap)
		}
	}
}

func TestWallAvoidsDeadRow(t *testing.T) {
	// Kill the whole top row and one site of row 1: quorums re-form below.
	down := map[SiteID]bool{0: true, 1: true}
	q, err := (Wall{}).QuorumAvoiding(10, 7, down)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range q {
		if down[s] {
			t.Errorf("quorum %v contains failed site %d", q, s)
		}
	}
	// Must still intersect every no-failure quorum.
	a, err := (Wall{}).Assign(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range a.Quorums {
		if !q.Intersects(orig) {
			t.Errorf("avoiding quorum %v misses site %d's %v", q, i, orig)
		}
	}
}

func TestWallBottomRowDeadMeansNoQuorum(t *testing.T) {
	// Every quorum needs a representative from (or is) the bottom row.
	down := map[SiteID]bool{6: true, 7: true, 8: true, 9: true}
	if _, err := (Wall{}).QuorumAvoiding(10, 0, down); !errors.Is(err, ErrNoLiveQuorum) {
		t.Fatalf("err = %v, want ErrNoLiveQuorum", err)
	}
}
