package coterie

import (
	"fmt"
	"math"
)

// Grid implements Maekawa's grid construction: sites are arranged in a
// (near-)square grid and the quorum of a site is the union of its row and
// its column, giving K ≈ 2√N − 1. Any two such quorums intersect because the
// row of one crosses the column of the other.
//
// For n that is not a perfect square the grid has ⌈n/cols⌉ rows and the last
// row may be incomplete; a site's quorum is its full row plus, for its
// column, every site of that column present in the grid. A column entry is
// additionally padded with the last row's sites when the incomplete last row
// does not reach the site's column, preserving pairwise intersection.
type Grid struct{}

var _ Construction = Grid{}

// Name implements Construction.
func (Grid) Name() string { return "maekawa-grid" }

// gridDims returns the number of columns and rows used for n sites.
func gridDims(n int) (cols, rows int) {
	cols = int(math.Ceil(math.Sqrt(float64(n))))
	if cols == 0 {
		cols = 1
	}
	rows = (n + cols - 1) / cols
	return cols, rows
}

// Assign implements Construction.
func (g Grid) Assign(n int) (*Assignment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: grid requires n > 0, got %d", n)
	}
	a := &Assignment{N: n, Quorums: make([]Quorum, n)}
	for i := 0; i < n; i++ {
		a.Quorums[i] = g.quorumOf(n, SiteID(i))
	}
	return a, nil
}

// quorumOf builds the row ∪ column quorum of a site.
func (g Grid) quorumOf(n int, site SiteID) Quorum {
	cols, _ := gridDims(n)
	r := int(site) / cols
	c := int(site) % cols
	q := make(Quorum, 0, 2*cols)
	// Full row r (it may be the incomplete last row).
	for cc := 0; cc < cols; cc++ {
		if s := r*cols + cc; s < n {
			q = append(q, SiteID(s))
		}
	}
	// Column c. Pairwise intersection holds even with an incomplete last
	// row: a complete row crosses every column, and two quorums whose rows
	// are both the incomplete last row share that row itself.
	for rr := 0; ; rr++ {
		s := rr*cols + c
		if s >= n {
			break
		}
		q = append(q, SiteID(s))
	}
	return normalize(q)
}

// QuorumAvoiding implements Construction. It scans for a fully live row r'
// and a fully live column c' and returns row(r') ∪ col(c'); any two
// row-union-column quorums intersect, so the substitution is safe. The
// requesting site's own row/column are preferred when live.
func (g Grid) QuorumAvoiding(n int, site SiteID, down map[SiteID]bool) (Quorum, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coterie: grid requires n > 0, got %d", n)
	}
	cols, rows := gridDims(n)
	alive := func(s int) bool { return s < n && !down[SiteID(s)] }

	rowLive := func(r int) bool {
		any := false
		for c := 0; c < cols; c++ {
			s := r*cols + c
			if s >= n {
				break
			}
			any = true
			if !alive(s) {
				return false
			}
		}
		return any
	}
	colLive := func(c int) bool {
		any := false
		for r := 0; r < rows; r++ {
			s := r*cols + c
			if s >= n {
				break
			}
			any = true
			if !alive(s) {
				return false
			}
		}
		return any
	}

	homeRow := int(site) / cols
	homeCol := int(site) % cols
	pickRow, pickCol := -1, -1
	for i := 0; i < rows; i++ {
		r := (homeRow + i) % rows
		if rowLive(r) {
			pickRow = r
			break
		}
	}
	for i := 0; i < cols; i++ {
		c := (homeCol + i) % cols
		if colLive(c) {
			pickCol = c
			break
		}
	}
	if pickRow < 0 || pickCol < 0 {
		return nil, ErrNoLiveQuorum
	}
	q := make(Quorum, 0, cols+rows)
	for c := 0; c < cols; c++ {
		if s := pickRow*cols + c; s < n {
			q = append(q, SiteID(s))
		}
	}
	for r := 0; r < rows; r++ {
		if s := r*cols + pickCol; s < n {
			q = append(q, SiteID(s))
		}
	}
	return normalize(q), nil
}
