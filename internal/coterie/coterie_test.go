package coterie

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestQuorumContains(t *testing.T) {
	q := Quorum{1, 3, 5}
	for _, s := range []SiteID{1, 3, 5} {
		if !q.Contains(s) {
			t.Errorf("Contains(%d) = false, want true", s)
		}
	}
	for _, s := range []SiteID{0, 2, 4, 6} {
		if q.Contains(s) {
			t.Errorf("Contains(%d) = true, want false", s)
		}
	}
}

func TestQuorumIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b Quorum
		want bool
	}{
		{"shared element", Quorum{1, 2, 3}, Quorum{3, 4}, true},
		{"disjoint", Quorum{1, 2}, Quorum{3, 4}, false},
		{"empty left", Quorum{}, Quorum{1}, false},
		{"empty right", Quorum{1}, Quorum{}, false},
		{"identical", Quorum{7}, Quorum{7}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("Intersects(%v, %v) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestQuorumSubsetOf(t *testing.T) {
	tests := []struct {
		name string
		a, b Quorum
		want bool
	}{
		{"proper subset", Quorum{1, 3}, Quorum{1, 2, 3}, true},
		{"equal sets", Quorum{1, 2}, Quorum{1, 2}, true},
		{"superset", Quorum{1, 2, 3}, Quorum{1, 2}, false},
		{"overlap only", Quorum{1, 4}, Quorum{1, 2, 3}, false},
		{"empty subset of anything", Quorum{}, Quorum{1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SubsetOf(tt.b); got != tt.want {
				t.Errorf("SubsetOf(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	q := normalize(Quorum{5, 1, 3, 1, 5})
	want := Quorum{1, 3, 5}
	if len(q) != len(want) {
		t.Fatalf("normalize = %v, want %v", q, want)
	}
	for i := range q {
		if q[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", q, want)
		}
	}
}

func TestQuorumString(t *testing.T) {
	if got := (Quorum{1, 2, 3}).String(); got != "{1, 2, 3}" {
		t.Errorf("String() = %q", got)
	}
	if got := (Quorum{}).String(); got != "{}" {
		t.Errorf("String() = %q", got)
	}
}

// TestAllConstructionsValid checks the coterie Intersection property for
// every construction over a spread of system sizes, including awkward
// non-square, non-power sizes.
func TestAllConstructionsValid(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 25, 31, 36, 49, 50}
	for _, c := range Constructions() {
		for _, n := range sizes {
			a, err := c.Assign(n)
			if err != nil {
				t.Errorf("%s.Assign(%d): %v", c.Name(), n, err)
				continue
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%s n=%d: %v", c.Name(), n, err)
			}
		}
	}
}

// TestConstructionsRejectBadN checks error handling for invalid sizes.
func TestConstructionsRejectBadN(t *testing.T) {
	for _, c := range Constructions() {
		for _, n := range []int{0, -1} {
			if _, err := c.Assign(n); err == nil {
				t.Errorf("%s.Assign(%d) succeeded, want error", c.Name(), n)
			}
			if _, err := c.QuorumAvoiding(n, 0, nil); err == nil {
				t.Errorf("%s.QuorumAvoiding(%d) succeeded, want error", c.Name(), n)
			}
		}
	}
}

// TestSiteInOwnQuorum verifies each site appears in its own req_set for the
// constructions that guarantee it (all but singleton, where only site 0
// hosts the lock).
func TestSiteInOwnQuorum(t *testing.T) {
	for _, c := range Constructions() {
		if c.Name() == "singleton" {
			continue
		}
		for _, n := range []int{4, 9, 13, 25} {
			a, err := c.Assign(n)
			if err != nil {
				t.Fatalf("%s.Assign(%d): %v", c.Name(), n, err)
			}
			for i := 0; i < n; i++ {
				if !a.Quorums[i].Contains(SiteID(i)) {
					t.Errorf("%s n=%d: site %d not in its own quorum %v", c.Name(), n, i, a.Quorums[i])
				}
			}
		}
	}
}

// TestGridQuorumSize checks the K ≈ 2√N − 1 growth of Maekawa grids on
// perfect squares.
func TestGridQuorumSize(t *testing.T) {
	for _, n := range []int{4, 9, 16, 25, 49, 81} {
		a, err := Grid{}.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		root := int(math.Sqrt(float64(n)))
		want := 2*root - 1
		for i, q := range a.Quorums {
			if len(q) != want {
				t.Errorf("grid n=%d site %d: |q| = %d, want %d", n, i, len(q), want)
			}
		}
	}
}

// TestTreeQuorumSize checks the log N best case on perfect trees.
func TestTreeQuorumSize(t *testing.T) {
	for _, n := range []int{1, 3, 7, 15, 31, 63, 127} {
		a, err := Tree{}.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		depth := int(math.Round(math.Log2(float64(n + 1)))) // levels of the perfect tree
		for i, q := range a.Quorums {
			if len(q) != depth {
				t.Errorf("tree n=%d site %d: |q| = %d, want %d (path length)", n, i, len(q), depth)
			}
		}
	}
}

// TestTreeMinimality: distinct root-to-leaf paths never contain one another.
func TestTreeMinimality(t *testing.T) {
	for _, n := range []int{7, 15, 31} {
		a, err := Tree{}.Assign(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckMinimality(); err != nil {
			t.Errorf("tree n=%d: %v", n, err)
		}
	}
}

// TestTreeQuorumAvoidingFailures exercises the substitution paths: with the
// root down, quorums from both subtrees are needed; quorums must still
// pairwise intersect across different failure views.
func TestTreeQuorumAvoidingFailures(t *testing.T) {
	n := 15
	down := map[SiteID]bool{0: true}
	q, err := Tree{}.QuorumAvoiding(n, 3, down)
	if err != nil {
		t.Fatalf("QuorumAvoiding with root down: %v", err)
	}
	if q.Contains(0) {
		t.Errorf("quorum %v contains failed root", q)
	}
	if len(q) < 2 {
		t.Errorf("root-down quorum %v should span both subtrees", q)
	}
	// A quorum under failures must intersect every no-failure quorum.
	a, err := Tree{}.Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range a.Quorums {
		if !q.Intersects(orig) {
			t.Errorf("failure quorum %v misses no-failure quorum of site %d: %v", q, i, orig)
		}
	}
}

// TestTreeQuorumAvoidingExhaustion: failing all leaves makes quorums
// impossible.
func TestTreeQuorumAvoidingExhaustion(t *testing.T) {
	n := 7
	down := map[SiteID]bool{3: true, 4: true, 5: true, 6: true}
	if _, err := (Tree{}).QuorumAvoiding(n, 0, down); !errors.Is(err, ErrNoLiveQuorum) {
		t.Fatalf("err = %v, want ErrNoLiveQuorum", err)
	}
}

// TestCrossViewIntersection: quorums computed under *different* failure
// views must still pairwise intersect — that is what makes reconstruction
// safe during the §6 recovery protocol.
func TestCrossViewIntersection(t *testing.T) {
	views := []map[SiteID]bool{
		nil,
		{1: true},
		{0: true},
		{2: true, 5: true},
	}
	for _, c := range Constructions() {
		n := 16
		var quorums []Quorum
		for _, view := range views {
			q, err := c.QuorumAvoiding(n, 7, view)
			if errors.Is(err, ErrNoLiveQuorum) {
				continue // construction cannot tolerate this view; fine
			}
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			quorums = append(quorums, q)
		}
		for i := range quorums {
			for j := i + 1; j < len(quorums); j++ {
				if !quorums[i].Intersects(quorums[j]) {
					t.Errorf("%s: cross-view quorums %v and %v do not intersect",
						c.Name(), quorums[i], quorums[j])
				}
			}
		}
	}
}

// TestCrossViewIntersectionProperty property-checks the §6 safety keystone:
// quorums computed under two *random, independent* failure views must
// intersect whenever both exist — sites recovering at different times never
// break mutual exclusion.
func TestCrossViewIntersectionProperty(t *testing.T) {
	for _, c := range Constructions() {
		c := c
		check := func(maskA, maskB uint16, siteA, siteB uint8) bool {
			n := 12
			mkView := func(mask uint16) map[SiteID]bool {
				down := make(map[SiteID]bool)
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						down[SiteID(i)] = true
					}
				}
				return down
			}
			qa, errA := c.QuorumAvoiding(n, SiteID(int(siteA)%n), mkView(maskA))
			qb, errB := c.QuorumAvoiding(n, SiteID(int(siteB)%n), mkView(maskB))
			if errA != nil || errB != nil {
				return true // a view may be unservable; that is fine
			}
			return qa.Intersects(qb)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuorumAvoidingExcludesDownSites property-checks that returned quorums
// never include failed sites, across random failure patterns.
func TestQuorumAvoidingExcludesDownSites(t *testing.T) {
	for _, c := range Constructions() {
		c := c
		check := func(mask uint16) bool {
			n := 12
			down := make(map[SiteID]bool)
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					down[SiteID(i)] = true
				}
			}
			q, err := c.QuorumAvoiding(n, 0, down)
			if err != nil {
				return errors.Is(err, ErrNoLiveQuorum)
			}
			for _, s := range q {
				if down[s] {
					return false
				}
			}
			return len(q) > 0
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCheckMinimalityDetectsDomination(t *testing.T) {
	a := &Assignment{
		N:       3,
		Quorums: []Quorum{{0}, {0, 1}, {0, 2}},
	}
	if err := a.CheckMinimality(); err == nil {
		t.Fatal("CheckMinimality missed a dominated quorum")
	}
}

func TestValidateRejectsBrokenAssignments(t *testing.T) {
	tests := []struct {
		name string
		a    Assignment
	}{
		{"wrong count", Assignment{N: 2, Quorums: []Quorum{{0}}}},
		{"empty quorum", Assignment{N: 1, Quorums: []Quorum{{}}}},
		{"out of range", Assignment{N: 1, Quorums: []Quorum{{5}}}},
		{"unsorted", Assignment{N: 2, Quorums: []Quorum{{1, 0}, {0, 1}}}},
		{"disjoint", Assignment{N: 2, Quorums: []Quorum{{0}, {1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.a.Validate(); err == nil {
				t.Error("Validate accepted a broken assignment")
			}
		})
	}
}

func TestAvgAndMaxQuorumSize(t *testing.T) {
	a := &Assignment{N: 2, Quorums: []Quorum{{0}, {0, 1}}}
	if got := a.MaxQuorumSize(); got != 2 {
		t.Errorf("MaxQuorumSize = %d, want 2", got)
	}
	if got := a.AvgQuorumSize(); got != 1.5 {
		t.Errorf("AvgQuorumSize = %v, want 1.5", got)
	}
	empty := &Assignment{}
	if got := empty.AvgQuorumSize(); got != 0 {
		t.Errorf("AvgQuorumSize on empty = %v, want 0", got)
	}
}
