// Package singhal implements Singhal's dynamic information-structure mutual
// exclusion algorithm (the "dynamic" row of the paper's Table 1). Each site
// keeps a request set R (whom to ask) and an inform set I (whom to answer
// after the CS). Initially the sets form a staircase: R_i = {S_0..S_i}, so
// on average a request costs (N−1)/2 request messages at light load, rising
// toward 2(N−1) at heavy load, always with synchronization delay T.
//
// The sets evolve to keep the pairwise arbitration invariant: for every pair
// (i, j), S_i ∈ R_j or S_j ∈ R_i. A site granting a reply first records the
// grantee in its own request set; the grantee may then drop the granter from
// its — the "staircase" rotates so the most recent CS executor asks nobody
// and is asked by everybody.
package singhal

import (
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// requestMsg asks for permission.
type requestMsg struct{ TS timestamp.Timestamp }

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// replyMsg grants permission for request Req.
type replyMsg struct{ Req timestamp.Timestamp }

// Kind implements mutex.Message.
func (replyMsg) Kind() string { return mutex.KindReply }

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

// Site is one participant.
type Site struct {
	id    mutex.SiteID
	n     int
	clock *timestamp.Clock

	state   siteState
	reqTS   timestamp.Timestamp
	reqSet  map[mutex.SiteID]bool // R_i: sites to ask
	inform  map[mutex.SiteID]bool // I_i: sites to answer at exit
	pending map[mutex.SiteID]bool // replies still awaited this request
	// deferredTS remembers the request timestamp of each deferred requester
	// so exit replies can carry it (stale-reply protection).
	deferredTS map[mutex.SiteID]timestamp.Timestamp
}

var _ mutex.Site = (*Site)(nil)

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// RequestSetSize exposes |R_i| for the message-complexity analysis.
func (s *Site) RequestSetSize() int { return len(s.reqSet) }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	s.state = stateWaiting
	s.reqTS = s.clock.Tick()
	s.pending = make(map[mutex.SiteID]bool, len(s.reqSet))
	// Iterate by site id, not map order, so runs are deterministic.
	for j := 0; j < s.n; j++ {
		if sid := mutex.SiteID(j); sid != s.id && s.reqSet[sid] {
			s.pending[sid] = true
			out.SendTo(s.id, sid, requestMsg{TS: s.reqTS})
		}
	}
	s.checkEntry(&out)
	return out
}

// Exit implements mutex.Site: answer the inform set; every grantee joins the
// request set (it may enter the CS, so it must be asked next time).
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	for j := 0; j < s.n; j++ {
		k := mutex.SiteID(j)
		if k == s.id || !s.inform[k] {
			continue
		}
		s.reqSet[k] = true
		out.SendTo(s.id, k, replyMsg{Req: s.deferredTS[k]})
	}
	s.inform = map[mutex.SiteID]bool{s.id: true}
	s.deferredTS = make(map[mutex.SiteID]timestamp.Timestamp)
	s.state = stateIdle
	s.reqTS = timestamp.Max
	s.pending = nil
	return out
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		s.onRequest(m, &out)
	case replyMsg:
		s.onReply(env.From, m, &out)
	}
	return out
}

func (s *Site) onRequest(m requestMsg, out *mutex.Output) {
	s.clock.Witness(m.TS)
	from := m.TS.Site
	switch {
	case s.state == stateInCS:
		// Answer at exit.
		s.inform[from] = true
		s.deferredTS[from] = m.TS
	case s.state == stateWaiting && s.reqTS.Less(m.TS):
		// Our request wins: the loser waits for our exit.
		s.inform[from] = true
		s.deferredTS[from] = m.TS
	case s.state == stateWaiting:
		// The incoming request wins: grant immediately, remember the winner
		// in our request set, and — if we had not asked it — ask now, since
		// it is about to enter the CS ahead of us.
		alreadyAsked := s.pending[from]
		s.reqSet[from] = true
		out.SendTo(s.id, from, replyMsg{Req: m.TS})
		if !alreadyAsked {
			s.pending[from] = true
			out.SendTo(s.id, from, requestMsg{TS: s.reqTS})
		}
	default: // idle
		s.reqSet[from] = true
		out.SendTo(s.id, from, replyMsg{Req: m.TS})
	}
}

func (s *Site) onReply(from mutex.SiteID, m replyMsg, out *mutex.Output) {
	if s.state != stateWaiting || m.Req != s.reqTS {
		return // stale
	}
	delete(s.pending, from)
	// The granter has recorded us in its request set, so the pairwise
	// invariant lets us drop it from ours.
	delete(s.reqSet, from)
	s.checkEntry(out)
}

func (s *Site) checkEntry(out *mutex.Output) {
	if s.state != stateWaiting || len(s.pending) > 0 {
		return
	}
	s.state = stateInCS
	out.Entered = true
}

// Algorithm builds Singhal dynamic-information sites with the initial
// staircase: R_i = {S_0, …, S_i}.
type Algorithm struct{}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (Algorithm) Name() string { return "singhal-dynamic" }

// NewSites implements mutex.Algorithm.
func (Algorithm) NewSites(n int) ([]mutex.Site, error) {
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		reqSet := make(map[mutex.SiteID]bool, i+1)
		for j := 0; j <= i; j++ {
			reqSet[mutex.SiteID(j)] = true
		}
		sites[i] = &Site{
			id:         mutex.SiteID(i),
			n:          n,
			clock:      timestamp.NewClock(mutex.SiteID(i)),
			state:      stateIdle,
			reqTS:      timestamp.Max,
			reqSet:     reqSet,
			inform:     map[mutex.SiteID]bool{mutex.SiteID(i): true},
			deferredTS: make(map[mutex.SiteID]timestamp.Timestamp),
		}
	}
	return sites, nil
}
