package singhal_test

import (
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/singhal"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: singhal.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 16} {
		for seed := int64(1); seed <= 6; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestStaircaseLightLoad: site 0's first request asks nobody (its staircase
// request set is {0}); site N−1 asks everybody.
func TestStaircaseLightLoad(t *testing.T) {
	n := 9
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: singhal.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Net.Total() != 0 {
		t.Errorf("site 0's first request cost %d messages, want 0", c.Net.Total())
	}

	c, err = sim.NewCluster(sim.Config{N: n, Algorithm: singhal.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, mutex.SiteID(n-1))
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Net.Total(), uint64(2*(n-1)); got != want {
		t.Errorf("site N-1's first request cost %d messages, want %d", got, want)
	}
}

// TestMessagesBetweenN1And2N1: at heavy load the cost approaches 2(N−1) but
// never exceeds it by more than the extra dynamic requests.
func TestMessagesBetweenN1And2N1(t *testing.T) {
	n := 9
	res := runSaturated(t, n, 10, 3, nil)
	if res.MessagesPerCS > float64(2*(n-1))+1.0 {
		t.Errorf("messages/CS = %v, want ≤ ~2(N−1) = %d", res.MessagesPerCS, 2*(n-1))
	}
	if res.MessagesPerCS < float64(n-1)/2 {
		t.Errorf("messages/CS = %v suspiciously low", res.MessagesPerCS)
	}
}

// TestSyncDelayIsT: grants travel directly between requesters.
func TestSyncDelayIsT(t *testing.T) {
	res := runSaturated(t, 9, 10, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 0.9 || res.SyncDelay > 1.2 {
		t.Errorf("sync delay = %.3f T, want ≈ 1 T", res.SyncDelay)
	}
}

// TestRequestSetRotates: after executing the CS a site's request set shrinks
// back toward itself while the others have absorbed it.
func TestRequestSetRotates(t *testing.T) {
	n := 5
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: singhal.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Site 4 (largest staircase set) executes alone.
	c.RequestAt(0, 4)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	s4 := c.Sites[4].(*singhal.Site)
	if got := s4.RequestSetSize(); got != 1 {
		t.Errorf("site 4 request set size after CS = %d, want 1 (itself)", got)
	}
	for i := 0; i < 4; i++ {
		s := c.Sites[i].(*singhal.Site)
		if s.RequestSetSize() < 2 {
			t.Errorf("site %d should now include site 4: size %d", i, s.RequestSetSize())
		}
	}
}
