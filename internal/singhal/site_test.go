package singhal

import (
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// White-box handler tests for the dynamic request/inform set machinery.

func newSites(t *testing.T, n int) []mutex.Site {
	t.Helper()
	sites, err := Algorithm{}.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func TestStaircaseInitialization(t *testing.T) {
	sites := newSites(t, 4)
	for i, ms := range sites {
		s := ms.(*Site)
		if got := s.RequestSetSize(); got != i+1 {
			t.Errorf("site %d: |R| = %d, want %d", i, got, i+1)
		}
		if !s.inform[mutex.SiteID(i)] {
			t.Errorf("site %d: inform set missing itself", i)
		}
	}
}

func TestSiteZeroEntersImmediately(t *testing.T) {
	sites := newSites(t, 4)
	out := sites[0].Request()
	if !out.Entered || len(out.Send) != 0 {
		t.Fatalf("site 0 (R={0}) should enter for free: entered=%v sends=%d", out.Entered, len(out.Send))
	}
}

func TestIdleGrantAddsGranteeToRequestSet(t *testing.T) {
	sites := newSites(t, 4)
	s := sites[0].(*Site)
	out := s.Deliver(mutex.Envelope{From: 3, To: 0, Msg: requestMsg{TS: ts(1, 3)}})
	if len(out.Send) != 1 || out.Send[0].Msg.Kind() != mutex.KindReply {
		t.Fatalf("idle grant = %v", out.Send)
	}
	if !s.reqSet[3] {
		t.Fatal("granter did not record the grantee (invariant violation)")
	}
}

func TestGranteeDropsGranter(t *testing.T) {
	sites := newSites(t, 4)
	s := sites[3].(*Site)
	s.Request()
	my := s.reqTS
	if !s.reqSet[0] {
		t.Fatal("setup: site 0 should be in the staircase set")
	}
	s.Deliver(mutex.Envelope{From: 0, To: 3, Msg: replyMsg{Req: my}})
	if s.reqSet[0] {
		t.Fatal("grantee kept the granter in R (the staircase never rotates)")
	}
}

func TestWaitingWinnerDefers(t *testing.T) {
	sites := newSites(t, 4)
	s := sites[1].(*Site)
	s.Request() // ts (1,1)
	out := s.Deliver(mutex.Envelope{From: 3, To: 1, Msg: requestMsg{TS: ts(5, 3)}})
	if len(out.Send) != 0 {
		t.Fatalf("winner must defer the loser: %v", out.Send)
	}
	if !s.inform[3] {
		t.Fatal("loser not recorded in the inform set")
	}
}

func TestWaitingLoserGrantsAndChases(t *testing.T) {
	sites := newSites(t, 4)
	s := sites[1].(*Site)
	s.Request()
	// A higher-priority request from a site we had NOT asked (site 3 is not
	// in site 1's staircase set {0,1}).
	out := s.Deliver(mutex.Envelope{From: 3, To: 1, Msg: requestMsg{TS: ts(0, 3)}})
	var gotReply, gotRequest bool
	for _, e := range out.Send {
		switch e.Msg.Kind() {
		case mutex.KindReply:
			gotReply = e.To == 3
		case mutex.KindRequest:
			gotRequest = e.To == 3
		}
	}
	if !gotReply || !gotRequest {
		t.Fatalf("loser must grant AND chase the winner: %v", out.Send)
	}
	if !s.pending[3] {
		t.Fatal("the chased winner is not awaited")
	}
}

func TestExitAnswersInformSetWithCorrectTimestamps(t *testing.T) {
	sites := newSites(t, 4)
	s := sites[0].(*Site)
	s.Request() // enters immediately
	s.Deliver(mutex.Envelope{From: 2, To: 0, Msg: requestMsg{TS: ts(7, 2)}})
	out := s.Exit()
	if len(out.Send) != 1 || out.Send[0].To != 2 {
		t.Fatalf("exit replies = %v", out.Send)
	}
	r := out.Send[0].Msg.(replyMsg)
	if r.Req != ts(7, 2) {
		t.Fatalf("exit reply carries %v, want the deferred request's timestamp", r.Req)
	}
	if !s.reqSet[2] {
		t.Fatal("grantee not added to R at exit")
	}
}

func ts(seq uint64, site int) timestamp.Timestamp {
	return timestamp.Timestamp{Seq: seq, Site: timestamp.SiteID(site)}
}
