package singhal

import (
	"reflect"
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
	"dqmx/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	ts := timestamp.Timestamp{Seq: 5, Site: 2}
	for _, msg := range []mutex.Message{
		requestMsg{TS: ts},
		replyMsg{Req: ts},
	} {
		env := mutex.Envelope{From: 1, To: 2, Msg: msg}
		for _, c := range []wire.Codec{wire.Binary(), wire.Gob()} {
			got, err := wire.RoundTrip(c, env)
			if err != nil {
				t.Fatalf("%s: %T: %v", c.Name(), msg, err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("%s: %T: got %+v, want %+v", c.Name(), msg, got, env)
			}
		}
	}
}
