// Package metrics provides the small statistics and table-rendering
// utilities shared by the experiment harness, the benchmarks, and the CLI
// tools.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds streaming moments of a sample (Welford's algorithm).
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Table renders rows of columns as an aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
