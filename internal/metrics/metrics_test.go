package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std = %v, want ≈2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty summary should be zero")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	check := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Summary
		for _, x := range clean {
			s.Add(x)
		}
		return math.Abs(s.Mean()-Mean(clean)) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// The input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("algorithm", "msgs/cs", "delay")
	tab.AddRow("maekawa", 39.13, "2T")
	tab.AddRow("delay-optimal", 38.9, "T")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algorithm", "39.13", "38.90", "delay-optimal", "2T"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("got %d lines, want 4", len(lines))
	}
}
