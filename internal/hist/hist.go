// Package hist provides the repository's latency histogram: a fixed-size,
// allocation-free, mergeable log-linear histogram for non-negative integer
// samples (nanoseconds on the live drivers, ticks in the simulator).
//
// Values below 16 are counted exactly. Larger values land in one of 16
// linear sub-buckets of their power-of-two range [2^(e-1), 2^e), so every
// reported quantile is an upper bound within 1/16 (6.25%) of the true
// sample quantile. The bucket array is constant-size (no allocation per
// sample), Add is a handful of integer operations, and two histograms merge
// bucket-by-bucket — which is what lets per-worker recorders stay lock-free
// and be folded together after a measurement window.
//
// The package is stdlib-only and has no dependencies inside the repository,
// so both the observability layer (internal/obs) and the load-generation
// lab (internal/loadgen) build on it without import cycles.
package hist

import (
	"math"
	"math/bits"
)

// subBits is the log2 of the per-range linear sub-bucket count. 4 bits =
// 16 sub-buckets = at most 1/16 relative quantile error.
const subBits = 4

// nBuckets covers values 0..15 exactly plus 16 sub-buckets for each
// power-of-two range up to 2^63.
const nBuckets = (1 << subBits) + (63-subBits)*(1<<subBits)

// Histogram accumulates non-negative int64 samples. The zero value is an
// empty histogram ready for use. It is not safe for concurrent use; callers
// either guard it with their own lock (internal/obs) or keep one per
// goroutine and Merge afterwards (internal/loadgen).
type Histogram struct {
	count    uint64
	sum      float64
	min, max int64
	buckets  [nBuckets]uint64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	e := bits.Len64(u)
	if e <= subBits {
		return int(u) // 0..15 exact
	}
	sub := (u - 1<<(e-1)) >> (e - 1 - subBits)
	return 1<<subBits + (e-1-subBits)*(1<<subBits) + int(sub)
}

// bucketUpper returns the inclusive upper edge of a bucket.
func bucketUpper(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	idx -= 1 << subBits
	e := idx>>subBits + subBits + 1 // values with bit length e
	sub := uint64(idx & (1<<subBits - 1))
	base := uint64(1) << (e - 1)
	width := uint64(1) << (e - 1 - subBits)
	return int64(base + (sub+1)*width - 1)
}

// Add folds one sample into the histogram. Negative samples — which can only
// arise from clock trouble on a live driver — are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the p-th quantile (0 ≤ p ≤ 1): the
// upper edge of the bucket holding the rank-⌈p·n⌉ sample, clamped to the
// observed maximum. The bound is exact for values below 16 and within 1/16
// of the true sample quantile otherwise.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			edge := bucketUpper(i)
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// Merge folds another histogram into h. Merging then querying is equivalent
// to having recorded both sample sets into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset returns the histogram to its empty state.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a point-in-time digest of a histogram in the sample's time
// unit. Quantiles are log-linear-bucket upper bounds (≤ 6.25% above the
// true sample quantile, exact below 16 and at the maximum).
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Stats summarizes the histogram. An empty histogram summarizes to the zero
// Summary.
func (h *Histogram) Stats() Summary {
	if h.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
