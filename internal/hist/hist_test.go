package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 || h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Error("empty histogram quantiles should be zero")
	}
	if (h.Stats() != Summary{}) {
		t.Errorf("empty stats = %+v", h.Stats())
	}
}

func TestOneSample(t *testing.T) {
	var h Histogram
	h.Add(12345)
	st := h.Stats()
	// Every quantile of a one-sample histogram is the sample itself: the
	// bucket upper bound clamps to the observed maximum.
	if st.Min != 12345 || st.Max != 12345 ||
		st.P50 != 12345 || st.P90 != 12345 || st.P95 != 12345 || st.P99 != 12345 {
		t.Errorf("one-sample stats = %+v", st)
	}
	if st.Count != 1 || st.Mean != 12345 {
		t.Errorf("one-sample count/mean = %d/%v", st.Count, st.Mean)
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-7)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative sample: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.Add(v)
	}
	// Values below 16 are bucketed exactly, so quantiles are exact.
	for rank := 1; rank <= 16; rank++ {
		p := float64(rank) / 16
		if got, want := h.Quantile(p), int64(rank-1); got != want {
			t.Errorf("q(%v) = %d, want %d", p, got, want)
		}
	}
}

// sortedQuantile is the reference: the rank-⌈p·n⌉ order statistic.
func sortedQuantile(sorted []int64, p float64) int64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileVsSortedReference checks the histogram's error contract
// against a sorted-sample reference over several sample shapes: for every
// probed p, Quantile(p) must be ≥ the true order statistic and at most
// 1/16 above it.
func TestQuantileVsSortedReference(t *testing.T) {
	shapes := map[string]func(r *rand.Rand) int64{
		"uniform":     func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 1_000_000 + r.Int63n(1000)
			}
			return 100 + r.Int63n(50)
		},
		"tiny": func(r *rand.Rand) int64 { return r.Int63n(20) },
	}
	probes := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			var h Histogram
			samples := make([]int64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := gen(r)
				h.Add(v)
				samples = append(samples, v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, p := range probes {
				want := sortedQuantile(samples, p)
				got := h.Quantile(p)
				if got < want {
					t.Errorf("q(%v) = %d below true quantile %d", p, got, want)
				}
				if limit := want + want/16; got > limit {
					t.Errorf("q(%v) = %d exceeds %d (true %d + 1/16)", p, got, limit, want)
				}
			}
			if h.Max() != samples[len(samples)-1] || h.Min() != samples[0] {
				t.Errorf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
			var sum float64
			for _, v := range samples {
				sum += float64(v)
			}
			if want := sum / float64(len(samples)); math.Abs(h.Mean()-want) > 1e-6*want {
				t.Errorf("mean = %v, want %v", h.Mean(), want)
			}
		})
	}
}

// TestMergeEquivalence: recording a sample set split across two histograms
// and merging must be indistinguishable from one histogram seeing all of it.
func TestMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var whole, a, b Histogram
	for i := 0; i < 4000; i++ {
		v := int64(r.ExpFloat64() * 30_000)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/min/max = %d/%d/%d, want %d/%d/%d",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9*whole.Mean() {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		if a.Quantile(p) != whole.Quantile(p) {
			t.Errorf("q(%v): merged %d, whole %d", p, a.Quantile(p), whole.Quantile(p))
		}
	}
	// Merging an empty histogram is a no-op in both directions.
	var empty Histogram
	before := a.Stats()
	a.Merge(&empty)
	if a.Stats() != before {
		t.Error("merging an empty histogram changed the stats")
	}
	empty.Merge(&a)
	if empty.Stats() != a.Stats() {
		t.Error("merging into an empty histogram lost samples")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Add(99)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("reset histogram should be empty")
	}
}

// TestBucketEdges walks every representable bucket boundary and checks the
// index/upper-edge round trip: a value's bucket upper edge is ≥ the value
// and within 1/16 of it.
func TestBucketEdges(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1023, 1024, 1025,
		1<<20 - 1, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range values {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("value %d: upper edge %d below value", v, up)
		}
		if v >= 16 && up-v > v/16 {
			t.Errorf("value %d: upper edge %d exceeds 1/16 bound", v, up)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	b.ReportAllocs()
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Add(int64(i) * 1001)
	}
}
