package raymond_test

import (
	"testing"

	"dqmx/internal/raymond"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: raymond.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 15, 31} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestRootEntersFree: the root holds the token initially.
func TestRootEntersFree(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{N: 7, Algorithm: raymond.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Net.Total() != 0 {
		t.Errorf("root spent %d messages, want 0", c.Net.Total())
	}
}

// TestLeafCostsTwoPerHop: a leaf's uncontended acquisition costs one request
// and one token per tree edge on the path to the token.
func TestLeafCostsTwoPerHop(t *testing.T) {
	// n=7 perfect tree: site 6 is a leaf at depth 2; token at root.
	c, err := sim.NewCluster(sim.Config{N: 7, Algorithm: raymond.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 6)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Net.Total(), uint64(4); got != want {
		t.Errorf("messages = %d, want %d (2 hops × (request+token))", got, want)
	}
}

// TestAverageMessagesLogarithmic: under heavy load messages per CS stay well
// below N (they track the tree diameter).
func TestAverageMessagesLogarithmic(t *testing.T) {
	n := 31
	res := runSaturated(t, n, 5, 3, nil)
	if res.MessagesPerCS > 12 { // 2·(2·log2(31)) is a loose cap
		t.Errorf("messages/CS = %v, want ≪ N = %d", res.MessagesPerCS, n)
	}
}

// TestSyncDelayExceedsT: token hops along tree edges make handovers slower
// than the quorum algorithms' single delay (on average > 1 T).
func TestSyncDelayExceedsT(t *testing.T) {
	res := runSaturated(t, 31, 8, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 1.0 {
		t.Errorf("sync delay = %.3f T, expected ≥ 1 T for tree routing", res.SyncDelay)
	}
}
