package raymond

import (
	"testing"

	"dqmx/internal/mutex"
)

// White-box handler tests for the tree-token machinery on the 7-site
// perfect binary tree (root 0; children of v are 2v+1, 2v+2).

func newTree(t *testing.T) []mutex.Site {
	t.Helper()
	sites, err := Algorithm{}.NewSites(7)
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func TestRootHoldsInitialToken(t *testing.T) {
	sites := newTree(t)
	out := sites[0].Request()
	if !out.Entered || len(out.Send) != 0 {
		t.Fatalf("root request: entered=%v sends=%d", out.Entered, len(out.Send))
	}
}

func TestLeafRequestClimbsOneEdge(t *testing.T) {
	sites := newTree(t)
	out := sites[6].Request()
	if out.Entered {
		t.Fatal("leaf entered without the token")
	}
	if len(out.Send) != 1 || out.Send[0].To != 2 {
		t.Fatalf("leaf 6 should ask parent 2, got %v", out.Send)
	}
	if out.Send[0].Msg.Kind() != mutex.KindRequest {
		t.Fatalf("kind = %s", out.Send[0].Msg.Kind())
	}
}

func TestRequestForwardedNotDuplicated(t *testing.T) {
	sites := newTree(t)
	mid := sites[2].(*Site)
	// First request from child 6 climbs toward the root.
	out := mid.Deliver(mutex.Envelope{From: 6, To: 2, Msg: requestMsg{}})
	if len(out.Send) != 1 || out.Send[0].To != 0 {
		t.Fatalf("expected one forwarded request to 0, got %v", out.Send)
	}
	// A second child request must not re-ask (asked flag).
	out = mid.Deliver(mutex.Envelope{From: 5, To: 2, Msg: requestMsg{}})
	if len(out.Send) != 0 {
		t.Fatalf("duplicate upstream request: %v", out.Send)
	}
	if len(mid.queue) != 2 {
		t.Fatalf("queue = %v", mid.queue)
	}
}

func TestTokenGrantsHeadAndReAsks(t *testing.T) {
	sites := newTree(t)
	mid := sites[2].(*Site)
	mid.Deliver(mutex.Envelope{From: 6, To: 2, Msg: requestMsg{}})
	mid.Deliver(mutex.Envelope{From: 5, To: 2, Msg: requestMsg{}})
	// The token arrives: grant head (6) and immediately re-request for 5.
	out := mid.Deliver(mutex.Envelope{From: 0, To: 2, Msg: tokenMsg{}})
	var tokenTo, requestTo mutex.SiteID = -1, -1
	for _, e := range out.Send {
		switch e.Msg.Kind() {
		case mutex.KindToken:
			tokenTo = e.To
		case mutex.KindRequest:
			requestTo = e.To
		}
	}
	if tokenTo != 6 {
		t.Fatalf("token went to %d, want 6", tokenTo)
	}
	if requestTo != 6 {
		t.Fatalf("follow-up request went to %d, want 6 (the new holder direction)", requestTo)
	}
	if mid.holder != 6 {
		t.Fatalf("holder pointer = %d, want 6", mid.holder)
	}
}

func TestExitGrantsQueuedNeighbor(t *testing.T) {
	sites := newTree(t)
	root := sites[0].(*Site)
	root.Request() // root is in the CS
	root.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{}})
	out := root.Exit()
	if len(out.Send) != 1 || out.Send[0].To != 1 || out.Send[0].Msg.Kind() != mutex.KindToken {
		t.Fatalf("exit should pass the token to 1, got %v", out.Send)
	}
}

func TestSelfEnqueueOnlyOnce(t *testing.T) {
	sites := newTree(t)
	leaf := sites[6].(*Site)
	leaf.Request()
	out := leaf.Request() // second call while pending: no effect
	if len(out.Send) != 0 || len(leaf.queue) != 1 {
		t.Fatalf("double request corrupted state: queue=%v sends=%v", leaf.queue, out.Send)
	}
}
