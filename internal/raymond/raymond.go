// Package raymond implements Raymond's tree-based token algorithm: sites
// form a logical (here: balanced binary) tree; each site keeps a holder
// pointer toward the privilege token and a FIFO queue of neighbours (or
// itself) wanting it. Requests and the token travel along tree edges, giving
// O(log N) messages per CS execution on average but a synchronization delay
// of up to O(log N) hops — the long-delay trade-off the paper contrasts
// against.
package raymond

import (
	"dqmx/internal/mutex"
)

// requestMsg asks the neighbour closer to the token to send it this way.
type requestMsg struct{}

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// tokenMsg passes the privilege one edge down the tree.
type tokenMsg struct{}

// Kind implements mutex.Message.
func (tokenMsg) Kind() string { return mutex.KindToken }

// Site is one Raymond participant. The tree structure is implicit: holder
// always names the neighbouring site in the token's direction, so no
// explicit adjacency list is needed — requests climb holder pointers and
// the token descends them.
type Site struct {
	id     mutex.SiteID
	holder mutex.SiteID // self when we hold the token
	asked  bool         // request already sent toward the holder
	inCS   bool
	wantCS bool
	queue  []mutex.SiteID // neighbours (or self) waiting for the token
}

var _ mutex.Site = (*Site)(nil)

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.inCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.wantCS && !s.inCS }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.wantCS || s.inCS {
		return out
	}
	s.wantCS = true
	s.enqueue(s.id)
	s.assignPrivilege(&out)
	s.makeRequest(&out)
	return out
}

// Exit implements mutex.Site.
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if !s.inCS {
		return out
	}
	s.inCS = false
	s.assignPrivilege(&out)
	s.makeRequest(&out)
	return out
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch env.Msg.(type) {
	case requestMsg:
		s.enqueue(env.From)
		s.assignPrivilege(&out)
		s.makeRequest(&out)
	case tokenMsg:
		s.holder = s.id
		s.asked = false
		s.assignPrivilege(&out)
		s.makeRequest(&out)
	}
	return out
}

func (s *Site) enqueue(who mutex.SiteID) {
	for _, q := range s.queue {
		if q == who {
			return
		}
	}
	s.queue = append(s.queue, who)
}

// assignPrivilege grants the token to the queue head when this site holds it
// and is not using it.
func (s *Site) assignPrivilege(out *mutex.Output) {
	if s.holder != s.id || s.inCS || len(s.queue) == 0 {
		return
	}
	head := s.queue[0]
	s.queue = s.queue[1:]
	if head == s.id {
		s.wantCS = false
		s.inCS = true
		out.Entered = true
		return
	}
	s.holder = head
	s.asked = false
	out.SendTo(s.id, head, tokenMsg{})
}

// makeRequest asks the holder-side neighbour for the token when work is
// queued and no request is outstanding.
func (s *Site) makeRequest(out *mutex.Output) {
	if s.holder == s.id || len(s.queue) == 0 || s.asked {
		return
	}
	s.asked = true
	out.SendTo(s.id, s.holder, requestMsg{})
}

// Algorithm builds Raymond sites over a balanced binary tree in heap layout,
// with the token initially at site 0 (the root) and every holder pointer on
// the path toward it.
type Algorithm struct{}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (Algorithm) Name() string { return "raymond" }

// NewSites implements mutex.Algorithm.
func (Algorithm) NewSites(n int) ([]mutex.Site, error) {
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		holder := mutex.SiteID(0) // the root holds the token
		if i > 0 {
			holder = mutex.SiteID((i - 1) / 2) // toward the root
		}
		sites[i] = &Site{
			id:     mutex.SiteID(i),
			holder: holder,
		}
	}
	return sites, nil
}
