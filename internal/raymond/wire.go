package raymond

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration (tags 40–41 in internal/wire's tag space). Both
// messages are empty structs — the tag byte alone identifies them, so each
// costs exactly one payload byte on the wire.
const (
	tagRequest byte = iota + 40
	tagToken
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte { return b },
		func(r *wire.Reader) (mutex.Message, error) { return requestMsg{}, nil })

	wire.RegisterMessage(tagToken, tokenMsg{},
		func(b []byte, m mutex.Message) []byte { return b },
		func(r *wire.Reader) (mutex.Message, error) { return tokenMsg{}, nil })
}
