// Package lamport implements Lamport's classical distributed mutual
// exclusion algorithm: every request is broadcast to all other sites and
// totally ordered by Lamport timestamps; a site enters the critical section
// when its own request heads its local request queue and it has received a
// higher-timestamped message (here: an explicit reply) from every other
// site. The cost is 3(N−1) messages per CS execution with synchronization
// delay T.
package lamport

import (
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// requestMsg broadcasts a CS request.
type requestMsg struct{ TS timestamp.Timestamp }

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// replyMsg acknowledges a request with the replier's current clock.
type replyMsg struct {
	From timestamp.Timestamp // replier's clock reading (for the total order)
	Req  timestamp.Timestamp // request being acknowledged
}

// Kind implements mutex.Message.
func (replyMsg) Kind() string { return mutex.KindReply }

// releaseMsg broadcasts a CS exit.
type releaseMsg struct{ TS timestamp.Timestamp }

// Kind implements mutex.Message.
func (releaseMsg) Kind() string { return mutex.KindRelease }

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

// Site is one Lamport-algorithm participant.
type Site struct {
	id    mutex.SiteID
	n     int
	clock *timestamp.Clock

	state   siteState
	reqTS   timestamp.Timestamp
	queue   map[timestamp.Timestamp]bool // pending requests from all sites
	ackFrom map[mutex.SiteID]bool        // sites that acknowledged our request
}

var _ mutex.Site = (*Site)(nil)

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	s.state = stateWaiting
	s.reqTS = s.clock.Tick()
	s.queue[s.reqTS] = true
	s.ackFrom = make(map[mutex.SiteID]bool, s.n)
	for j := 0; j < s.n; j++ {
		if sid := mutex.SiteID(j); sid != s.id {
			out.SendTo(s.id, sid, requestMsg{TS: s.reqTS})
		}
	}
	s.checkEntry(&out)
	return out
}

// Exit implements mutex.Site.
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	delete(s.queue, s.reqTS)
	for j := 0; j < s.n; j++ {
		if sid := mutex.SiteID(j); sid != s.id {
			out.SendTo(s.id, sid, releaseMsg{TS: s.reqTS})
		}
	}
	s.state = stateIdle
	s.reqTS = timestamp.Max
	s.ackFrom = nil
	return out
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		s.clock.Witness(m.TS)
		s.queue[m.TS] = true
		out.SendTo(s.id, m.TS.Site, replyMsg{From: s.clock.Tick(), Req: m.TS})
	case replyMsg:
		s.clock.Witness(m.From)
		if s.state == stateWaiting && m.Req == s.reqTS {
			s.ackFrom[m.From.Site] = true
			s.checkEntry(&out)
		}
	case releaseMsg:
		s.clock.Witness(m.TS)
		delete(s.queue, m.TS)
		s.checkEntry(&out)
	}
	return out
}

// checkEntry applies Lamport's entry condition: our request precedes every
// other queued request and every other site has acknowledged it.
func (s *Site) checkEntry(out *mutex.Output) {
	if s.state != stateWaiting {
		return
	}
	for ts := range s.queue {
		if ts != s.reqTS && ts.Less(s.reqTS) {
			return
		}
	}
	if len(s.ackFrom) < s.n-1 {
		return
	}
	s.state = stateInCS
	out.Entered = true
}

// Algorithm builds Lamport sites.
type Algorithm struct{}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (Algorithm) Name() string { return "lamport" }

// NewSites implements mutex.Algorithm.
func (Algorithm) NewSites(n int) ([]mutex.Site, error) {
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		sites[i] = &Site{
			id:    mutex.SiteID(i),
			n:     n,
			clock: timestamp.NewClock(mutex.SiteID(i)),
			state: stateIdle,
			reqTS: timestamp.Max,
			queue: make(map[timestamp.Timestamp]bool),
		}
	}
	return sites, nil
}
