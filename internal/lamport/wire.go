package lamport

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration (tags 16–18 in internal/wire's tag space).
const (
	tagRequest byte = iota + 16
	tagReply
	tagRelease
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(requestMsg).TS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return requestMsg{TS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagReply, replyMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(replyMsg)
			b = wire.AppendTimestamp(b, v.From)
			return wire.AppendTimestamp(b, v.Req)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return replyMsg{From: r.Timestamp(), Req: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagRelease, releaseMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(releaseMsg).TS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return releaseMsg{TS: r.Timestamp()}, nil
		})
}
