package lamport_test

import (
	"testing"

	"dqmx/internal/lamport"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: lamport.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestMessagesAre3N1: Lamport costs exactly 3(N−1) messages per CS at any
// load (request + reply + release to every other site).
func TestMessagesAre3N1(t *testing.T) {
	n := 9
	res := runSaturated(t, n, 5, 2, nil)
	want := float64(3 * (n - 1))
	if res.MessagesPerCS != want {
		t.Errorf("messages/CS = %v, want exactly %v", res.MessagesPerCS, want)
	}
}

// TestSyncDelayIsT: the release broadcast reaches the next site directly.
func TestSyncDelayIsT(t *testing.T) {
	res := runSaturated(t, 9, 10, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 0.9 || res.SyncDelay > 1.2 {
		t.Errorf("sync delay = %.3f T, want ≈ 1 T", res.SyncDelay)
	}
}

// TestLightLoadResponse: 2T + E for an uncontended request.
func TestLightLoadResponse(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{N: 5, Algorithm: lamport.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	workload.Sequential(c, 10, 100*meanDelay)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Records() {
		if got, want := r.Exited-r.Requested, 2*meanDelay+100; got != want {
			t.Fatalf("response = %d, want %d", got, want)
		}
	}
}
