package lamport

import (
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// White-box handler tests for Lamport's queue-and-ack machinery.

func newSites(t *testing.T, n int) []mutex.Site {
	t.Helper()
	sites, err := Algorithm{}.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func TestRequestBroadcastsToAllOthers(t *testing.T) {
	sites := newSites(t, 4)
	out := sites[1].Request()
	if out.Entered {
		t.Fatal("entered without acks")
	}
	if len(out.Send) != 3 {
		t.Fatalf("sends = %d, want 3", len(out.Send))
	}
}

func TestEveryRequestIsAcked(t *testing.T) {
	sites := newSites(t, 3)
	s := sites[0].(*Site)
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 1, Site: 1}}})
	if len(out.Send) != 1 || out.Send[0].Msg.Kind() != mutex.KindReply {
		t.Fatalf("request not acked: %v", out.Send)
	}
	r := out.Send[0].Msg.(replyMsg)
	if r.From.Seq <= 1 {
		t.Errorf("ack clock %v must exceed witnessed request", r.From)
	}
}

func TestEntryNeedsHeadOfQueueAndAllAcks(t *testing.T) {
	sites := newSites(t, 3)
	s := sites[2].(*Site)
	s.Request()
	myTS := s.reqTS
	// A higher-priority foreign request blocks entry even with all acks.
	s.Deliver(mutex.Envelope{From: 0, To: 2, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 1, Site: 0}}})
	out := s.Deliver(mutex.Envelope{From: 0, To: 2, Msg: replyMsg{From: timestamp.Timestamp{Seq: 9, Site: 0}, Req: myTS}})
	if out.Entered {
		t.Fatal("entered ahead of a higher-priority request")
	}
	out = s.Deliver(mutex.Envelope{From: 1, To: 2, Msg: replyMsg{From: timestamp.Timestamp{Seq: 9, Site: 1}, Req: myTS}})
	if out.Entered {
		t.Fatal("still blocked by the queued higher-priority request")
	}
	// The release of the blocking request unblocks entry.
	out = s.Deliver(mutex.Envelope{From: 0, To: 2, Msg: releaseMsg{TS: timestamp.Timestamp{Seq: 1, Site: 0}}})
	if !out.Entered {
		t.Fatal("did not enter after release + all acks")
	}
}

func TestStaleAckIgnored(t *testing.T) {
	sites := newSites(t, 2)
	s := sites[0].(*Site)
	s.Request()
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: replyMsg{
		From: timestamp.Timestamp{Seq: 9, Site: 1},
		Req:  timestamp.Timestamp{Seq: 42, Site: 0}, // not our request
	}})
	if out.Entered {
		t.Fatal("entered on a stale ack")
	}
}

func TestExitBroadcastsRelease(t *testing.T) {
	sites := newSites(t, 3)
	s := sites[0].(*Site)
	s.Request()
	my := s.reqTS
	s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: replyMsg{From: timestamp.Timestamp{Seq: 5, Site: 1}, Req: my}})
	out := s.Deliver(mutex.Envelope{From: 2, To: 0, Msg: replyMsg{From: timestamp.Timestamp{Seq: 5, Site: 2}, Req: my}})
	if !out.Entered {
		t.Fatal("setup: no entry")
	}
	out = s.Exit()
	if len(out.Send) != 2 {
		t.Fatalf("releases = %d, want 2", len(out.Send))
	}
	for _, e := range out.Send {
		if e.Msg.Kind() != mutex.KindRelease {
			t.Fatalf("kind = %s", e.Msg.Kind())
		}
	}
	if len(s.queue) != 0 {
		t.Fatalf("own request still queued after exit: %v", s.queue)
	}
}
