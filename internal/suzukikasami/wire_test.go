package suzukikasami

import (
	"reflect"
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	for _, msg := range []mutex.Message{
		requestMsg{From: 3, Num: 17},
		tokenMsg{LN: []uint64{0, 4, 2}, Queue: []mutex.SiteID{2, 0}},
		tokenMsg{}, // empty token: nil slices must survive both codecs
	} {
		env := mutex.Envelope{From: 1, To: 2, Msg: msg}
		for _, c := range []wire.Codec{wire.Binary(), wire.Gob()} {
			got, err := wire.RoundTrip(c, env)
			if err != nil {
				t.Fatalf("%s: %T: %v", c.Name(), msg, err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("%s: %T: got %+v, want %+v", c.Name(), msg, got, env)
			}
		}
	}
}
