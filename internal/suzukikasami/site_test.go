package suzukikasami

import (
	"testing"

	"dqmx/internal/mutex"
)

// White-box handler tests for the token machinery.

func newPair(t *testing.T) (holder, other *Site) {
	t.Helper()
	sites, err := Algorithm{}.NewSites(3)
	if err != nil {
		t.Fatal(err)
	}
	return sites[0].(*Site), sites[1].(*Site)
}

func TestHolderEntersWithoutMessages(t *testing.T) {
	holder, _ := newPair(t)
	out := holder.Request()
	if !out.Entered || len(out.Send) != 0 {
		t.Fatalf("holder request: entered=%v sends=%d", out.Entered, len(out.Send))
	}
}

func TestNonHolderBroadcastsNumberedRequest(t *testing.T) {
	_, other := newPair(t)
	out := other.Request()
	if out.Entered {
		t.Fatal("entered without the token")
	}
	if len(out.Send) != 2 {
		t.Fatalf("sends = %d, want 2 (N−1 broadcast)", len(out.Send))
	}
	for _, e := range out.Send {
		req, ok := e.Msg.(requestMsg)
		if !ok || req.From != 1 || req.Num != 1 {
			t.Fatalf("broadcast payload = %+v", e.Msg)
		}
	}
}

func TestIdleHolderPassesTokenOnFreshRequest(t *testing.T) {
	holder, _ := newPair(t)
	out := holder.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{From: 1, Num: 1}})
	if len(out.Send) != 1 {
		t.Fatalf("sends = %v", out.Send)
	}
	tok, ok := out.Send[0].Msg.(tokenMsg)
	if !ok || out.Send[0].To != 1 {
		t.Fatalf("expected token to site 1, got %+v", out.Send[0])
	}
	if len(tok.Queue) != 0 {
		t.Fatalf("token queue = %v, want empty", tok.Queue)
	}
	if holder.hasToken {
		t.Fatal("holder kept the token")
	}
}

func TestStaleRequestDoesNotMoveToken(t *testing.T) {
	holder, _ := newPair(t)
	// Serve request #1.
	holder.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{From: 1, Num: 1}})
	// Token comes back.
	holder.Deliver(mutex.Envelope{From: 1, To: 0, Msg: tokenMsg{LN: []uint64{0, 1, 0}}})
	// A duplicate of the already-served request must not move the token.
	out := holder.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{From: 1, Num: 1}})
	if len(out.Send) != 0 {
		t.Fatalf("stale request moved the token: %v", out.Send)
	}
	if !holder.hasToken {
		t.Fatal("holder lost the token to a stale request")
	}
}

func TestExitAppendsOutstandingRequesters(t *testing.T) {
	holder, _ := newPair(t)
	holder.Request() // enters
	holder.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{From: 1, Num: 1}})
	holder.Deliver(mutex.Envelope{From: 2, To: 0, Msg: requestMsg{From: 2, Num: 1}})
	out := holder.Exit()
	if len(out.Send) != 1 {
		t.Fatalf("sends = %v", out.Send)
	}
	tok := out.Send[0].Msg.(tokenMsg)
	if out.Send[0].To != 1 {
		t.Fatalf("token went to %d, want 1 (first requester)", out.Send[0].To)
	}
	if len(tok.Queue) != 1 || tok.Queue[0] != 2 {
		t.Fatalf("token queue = %v, want [2]", tok.Queue)
	}
}

func TestTokenArrivalEntersWaitingSite(t *testing.T) {
	_, other := newPair(t)
	other.Request()
	out := other.Deliver(mutex.Envelope{From: 0, To: 1, Msg: tokenMsg{LN: make([]uint64, 3)}})
	if !out.Entered || !other.InCS() {
		t.Fatal("token arrival did not grant entry")
	}
}
