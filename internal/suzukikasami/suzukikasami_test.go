package suzukikasami_test

import (
	"testing"

	"dqmx/internal/sim"
	"dqmx/internal/suzukikasami"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: suzukikasami.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 16} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestTokenHolderEntersFree: the initial token holder pays zero messages.
func TestTokenHolderEntersFree(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{N: 5, Algorithm: suzukikasami.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 0) // site 0 holds the token initially
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Net.Total() != 0 {
		t.Errorf("token holder spent %d messages, want 0", c.Net.Total())
	}
}

// TestNonHolderCostsN: a non-holder pays N−1 requests plus one token move.
func TestNonHolderCostsN(t *testing.T) {
	n := 7
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: suzukikasami.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 3)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Net.Total(), uint64(n); got != want {
		t.Errorf("messages = %d, want %d (N−1 requests + 1 token)", got, want)
	}
}

// TestMessagesAtMostN: per CS execution the cost never exceeds N.
func TestMessagesAtMostN(t *testing.T) {
	n := 9
	res := runSaturated(t, n, 5, 3, nil)
	if res.MessagesPerCS > float64(n) {
		t.Errorf("messages/CS = %v, want ≤ %d", res.MessagesPerCS, n)
	}
}

// TestSyncDelayIsT: the token hops directly between consecutive users.
func TestSyncDelayIsT(t *testing.T) {
	res := runSaturated(t, 9, 10, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 0.9 || res.SyncDelay > 1.2 {
		t.Errorf("sync delay = %.3f T, want ≈ 1 T", res.SyncDelay)
	}
}
