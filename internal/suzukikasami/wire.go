package suzukikasami

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration (tags 36–37 in internal/wire's tag space).
const (
	tagRequest byte = iota + 36
	tagToken
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(requestMsg)
			b = wire.AppendSite(b, v.From)
			return wire.AppendUint(b, v.Num)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return requestMsg{From: r.Site(), Num: r.Uint()}, nil
		})

	wire.RegisterMessage(tagToken, tokenMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(tokenMsg)
			b = wire.AppendUint(b, uint64(len(v.LN)))
			for _, n := range v.LN {
				b = wire.AppendUint(b, n)
			}
			b = wire.AppendUint(b, uint64(len(v.Queue)))
			for _, s := range v.Queue {
				b = wire.AppendSite(b, s)
			}
			return b
		},
		func(r *wire.Reader) (mutex.Message, error) {
			// Empty slices decode to nil, matching what a gob round-trip
			// produces, so the differential fuzzer sees identical envelopes.
			var v tokenMsg
			if n := r.Len(); n > 0 {
				v.LN = make([]uint64, n)
				for i := range v.LN {
					v.LN[i] = r.Uint()
				}
			}
			if n := r.Len(); n > 0 {
				v.Queue = make([]mutex.SiteID, n)
				for i := range v.Queue {
					v.Queue[i] = r.Site()
				}
			}
			return v, nil
		})
}
