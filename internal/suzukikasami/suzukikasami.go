// Package suzukikasami implements the Suzuki–Kasami broadcast token
// algorithm: a single token grants the critical section; a site without the
// token broadcasts a numbered request, and the token carries the last
// request number served per site plus a FIFO queue of waiting sites. Message
// cost is 0 (token already local) or N per CS execution; synchronization
// delay is T (one token hop).
package suzukikasami

import (
	"dqmx/internal/mutex"
)

// requestMsg broadcasts the requester's current request number.
type requestMsg struct {
	From mutex.SiteID
	Num  uint64
}

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// tokenMsg carries the privilege.
type tokenMsg struct {
	// LN[j] is the request number of site j's most recently served request.
	LN []uint64
	// Queue lists sites waiting for the token, in service order.
	Queue []mutex.SiteID
}

// Kind implements mutex.Message.
func (tokenMsg) Kind() string { return mutex.KindToken }

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

// Site is one Suzuki–Kasami participant.
type Site struct {
	id mutex.SiteID
	n  int

	state    siteState
	rn       []uint64 // highest request number seen per site
	hasToken bool
	token    tokenMsg // valid when hasToken
}

var _ mutex.Site = (*Site)(nil)

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	if s.hasToken {
		s.state = stateInCS
		out.Entered = true
		return out
	}
	s.state = stateWaiting
	s.rn[s.id]++
	for j := 0; j < s.n; j++ {
		if sid := mutex.SiteID(j); sid != s.id {
			out.SendTo(s.id, sid, requestMsg{From: s.id, Num: s.rn[s.id]})
		}
	}
	return out
}

// Exit implements mutex.Site: update the token bookkeeping, enqueue newly
// outstanding requests, and pass the token to the queue head if any.
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	s.state = stateIdle
	s.token.LN[s.id] = s.rn[s.id]
	queued := make(map[mutex.SiteID]bool, len(s.token.Queue))
	for _, j := range s.token.Queue {
		queued[j] = true
	}
	for j := 0; j < s.n; j++ {
		sid := mutex.SiteID(j)
		if sid != s.id && !queued[sid] && s.rn[sid] == s.token.LN[sid]+1 {
			s.token.Queue = append(s.token.Queue, sid)
		}
	}
	s.passToken(&out)
	return out
}

// passToken hands the token to the queue head when the queue is non-empty.
func (s *Site) passToken(out *mutex.Output) {
	if !s.hasToken || len(s.token.Queue) == 0 {
		return
	}
	next := s.token.Queue[0]
	s.token.Queue = s.token.Queue[1:]
	tok := tokenMsg{LN: append([]uint64(nil), s.token.LN...), Queue: append([]mutex.SiteID(nil), s.token.Queue...)}
	s.hasToken = false
	s.token = tokenMsg{}
	out.SendTo(s.id, next, tok)
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		if m.Num > s.rn[m.From] {
			s.rn[m.From] = m.Num
		}
		// An idle token holder serves the request immediately.
		if s.hasToken && s.state == stateIdle && s.rn[m.From] == s.token.LN[m.From]+1 {
			s.token.Queue = append(s.token.Queue, m.From)
			s.passToken(&out)
		}
	case tokenMsg:
		s.hasToken = true
		s.token = m
		if s.state == stateWaiting {
			s.state = stateInCS
			out.Entered = true
		}
	}
	return out
}

// Algorithm builds Suzuki–Kasami sites with site 0 holding the initial
// token.
type Algorithm struct{}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (Algorithm) Name() string { return "suzuki-kasami" }

// NewSites implements mutex.Algorithm.
func (Algorithm) NewSites(n int) ([]mutex.Site, error) {
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		st := &Site{
			id:    mutex.SiteID(i),
			n:     n,
			state: stateIdle,
			rn:    make([]uint64, n),
		}
		if i == 0 {
			st.hasToken = true
			st.token = tokenMsg{LN: make([]uint64, n)}
		}
		sites[i] = st
	}
	return sites, nil
}
