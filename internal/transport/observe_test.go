package transport_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/transport"
)

func TestReleaseNotHeld(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	node := cluster.Node(0)
	if err := node.Release(); !errors.Is(err, transport.ErrNotHeld) {
		t.Fatalf("release without acquire = %v, want ErrNotHeld", err)
	}
	if err := node.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := node.Release(); err != nil {
		t.Fatalf("matched release = %v", err)
	}
	if err := node.Release(); !errors.Is(err, transport.ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
	// A node that never acquired must still be able to acquire after the
	// rejected release (the rejection must not corrupt loop state).
	if err := node.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := node.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseClosed(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()
	if err := cluster.Node(0).Release(); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("release on closed node = %v, want ErrClosed", err)
	}
}

func TestTryAcquire(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Uncontended: the grant arrives well within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	ok, err := cluster.Node(0).TryAcquire(ctx)
	cancel()
	if err != nil || !ok {
		t.Fatalf("uncontended TryAcquire = (%v, %v), want (true, nil)", ok, err)
	}

	// Held elsewhere: an expiring context yields (false, nil), not an error.
	ctx, cancel = context.WithTimeout(context.Background(), 20*time.Millisecond)
	ok, err = cluster.Node(1).TryAcquire(ctx)
	cancel()
	if err != nil || ok {
		t.Fatalf("contended TryAcquire = (%v, %v), want (false, nil)", ok, err)
	}

	// Re-trying on the holder reports ErrBusy.
	ctx, cancel = context.WithTimeout(context.Background(), 20*time.Millisecond)
	ok, err = cluster.Node(0).TryAcquire(ctx)
	cancel()
	if !errors.Is(err, transport.ErrBusy) || ok {
		t.Fatalf("TryAcquire while holding = (%v, %v), want ErrBusy", ok, err)
	}

	if err := cluster.Node(0).Release(); err != nil {
		t.Fatal(err)
	}
	// The abandoned request from node 1's expired try stays in flight until
	// its grant arrives and is handed back automatically; retries during
	// that window see ErrBusy, and once it drains a fresh try succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel = context.WithTimeout(context.Background(), time.Second)
		ok, err = cluster.Node(1).TryAcquire(ctx)
		cancel()
		if ok && err == nil {
			break
		}
		if err != nil && !errors.Is(err, transport.ErrBusy) {
			t.Fatalf("retry after abandonment = (%v, %v)", ok, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned request never drained: last = (%v, %v)", ok, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cluster.Node(1).Release(); err != nil {
		t.Fatal(err)
	}
}

// TestTryAcquireClosed covers both shutdown orders: close before and after
// the try is issued.
func TestTryAcquireClosed(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()
	if ok, err := cluster.Node(0).TryAcquire(context.Background()); !errors.Is(err, transport.ErrClosed) || ok {
		t.Fatalf("TryAcquire on closed node = (%v, %v), want ErrClosed", ok, err)
	}
}

// TestAcquireCancelThenCloseDoesNotLeak exercises the context-cancel path
// whose background grant-waiter used to block forever when the node closed
// before the grant arrived. Under -race with goroutine accounting this now
// winds down cleanly; the observable contract is simply that Close returns.
func TestAcquireCancelThenCloseDoesNotLeak(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 holds the CS so node 1's request can never be granted.
	if err := cluster.Node(0).Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := cluster.Node(1).Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire = %v, want deadline exceeded", err)
	}
	// Close with the grant still pending: the background waiter must select
	// doneC instead of blocking on the never-delivered response.
	done := make(chan struct{})
	go func() {
		cluster.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with an abandoned acquire pending")
	}
}

// TestClusterObserved checks the event stream and the metrics snapshot of
// an instrumented in-process cluster.
func TestClusterObserved(t *testing.T) {
	m := obs.NewMetrics()
	var events []obs.Event
	evC := make(chan obs.Event, 1024)
	cluster, err := transport.NewClusterObserved(core.Algorithm{}, 4, m, func(e obs.Event) { evC <- e })
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for k := 0; k < rounds; k++ {
		for i := 0; i < 4; i++ {
			node := cluster.Node(mutex.SiteID(i))
			if err := node.Acquire(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := node.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cluster.Close()
	close(evC)
	for e := range evC {
		events = append(events, e)
	}

	snap, ok := cluster.Snapshot()
	if !ok {
		t.Fatal("Snapshot reported no metrics on an observed cluster")
	}
	if snap.Requests != 4*rounds || snap.Entries != 4*rounds || snap.Exits != 4*rounds {
		t.Errorf("lifecycle counters = %d/%d/%d, want %d each",
			snap.Requests, snap.Entries, snap.Exits, 4*rounds)
	}
	if snap.Messages == 0 || snap.ByKind[mutex.KindRequest] == 0 {
		t.Errorf("no messages recorded: %+v", snap.ByKind)
	}
	// The raw observer must have seen exactly what the collector counted.
	var sends, enters uint64
	for _, e := range events {
		switch e.Type {
		case obs.EventSend:
			sends++
		case obs.EventEnter:
			enters++
		}
	}
	if sends != snap.Messages || enters != snap.Entries {
		t.Errorf("observer saw %d sends / %d enters, collector %d / %d",
			sends, enters, snap.Messages, snap.Entries)
	}
	// Response and waiting must have one sample per completed execution.
	if snap.Response.Count != uint64(4*rounds) || snap.Waiting.Count != uint64(4*rounds) {
		t.Errorf("delay sample counts = %d/%d", snap.Response.Count, snap.Waiting.Count)
	}
}

// TestSnapshotDisabled checks the disabled path stays disabled.
func TestSnapshotDisabled(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, ok := cluster.Snapshot(); ok {
		t.Error("unobserved cluster claims to have metrics")
	}
}
