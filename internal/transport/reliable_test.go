package transport

// White-box tests of the reliable-delivery sublayer: a scripted lossy wire
// loops the layer's raw sends back into its own receive side, so drop,
// duplication, and reordering recovery are assertable without a network.
// The file also pins the two accounting contracts the layer must keep:
// transport traffic is invisible to obs message tallies, and a TCP pair
// survives deterministic writer-side frame loss.

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

// relTestMsg is a sequenced protocol payload for wire tests.
type relTestMsg struct {
	N int
}

func (relTestMsg) Kind() string { return "test" }

// scriptedWire loops sends back into the layer's receive side, consulting a
// per-transmission script (n counts every frame the wire carries, acks and
// retransmissions included).
type scriptedWire struct {
	rel *reliable

	mu     sync.Mutex
	n      int
	drop   func(n int, env mutex.Envelope) bool
	dupAll bool
	sent   int
}

func (w *scriptedWire) Send(env mutex.Envelope) error {
	w.mu.Lock()
	n := w.n
	w.n++
	w.sent++
	drop := w.drop != nil && w.drop(n, env)
	dup := w.dupAll
	w.mu.Unlock()
	if drop {
		return nil
	}
	if err := w.rel.Receive(env); err != nil {
		return err
	}
	if dup {
		return w.rel.Receive(env)
	}
	return nil
}

func (w *scriptedWire) sentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sent
}

// collector accumulates upward deliveries.
type collector struct {
	mu  sync.Mutex
	got []mutex.Envelope
}

func (c *collector) deliver(env mutex.Envelope) error {
	c.mu.Lock()
	c.got = append(c.got, env)
	c.mu.Unlock()
	return nil
}

func (c *collector) snapshot() []mutex.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]mutex.Envelope(nil), c.got...)
}

// startReliable wires a reliable layer to a scripted wire and returns both.
func startReliable(t *testing.T, sink obs.Sink) (*reliable, *scriptedWire, *collector) {
	t.Helper()
	col := &collector{}
	r := newReliable(col.deliver, sink)
	w := &scriptedWire{rel: r}
	r.start(w)
	t.Cleanup(r.Close)
	return r, w, col
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReliableHealsDrops drives 50 envelopes through a wire losing every
// third frame: the protocol side must still see all 50, exactly once, in
// order, and the sender's retransmission queue must drain.
func TestReliableHealsDrops(t *testing.T) {
	r, w, col := startReliable(t, nil)
	w.mu.Lock()
	w.drop = func(n int, env mutex.Envelope) bool { return n%3 == 2 }
	w.mu.Unlock()

	const total = 50
	for i := 0; i < total; i++ {
		if err := r.Send(mutex.Envelope{From: 0, To: 1, Msg: relTestMsg{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, func() bool { return len(col.snapshot()) >= total }, "all envelopes delivered")
	got := col.snapshot()
	if len(got) != total {
		t.Fatalf("delivered %d envelopes, want exactly %d", len(got), total)
	}
	for i, env := range got {
		if msg := env.Msg.(relTestMsg); msg.N != i {
			t.Fatalf("delivery %d carries payload %d: FIFO order broken", i, msg.N)
		}
	}
	// The sender must settle: every retransmission eventually acked.
	waitFor(t, 30*time.Second, func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		ss := r.out[streamID{from: 0, to: 1}]
		return ss != nil && len(ss.unacked) == 0
	}, "retransmission queue to drain")
}

// TestReliableDedup duplicates every wire frame: deliveries stay exactly
// once and the suppression is reported through the transport-level events.
func TestReliableDedup(t *testing.T) {
	var evMu sync.Mutex
	var dups int
	sink := func(e obs.Event) {
		if e.Type == obs.EventDupDrop {
			evMu.Lock()
			dups++
			evMu.Unlock()
		}
	}
	r, w, col := startReliable(t, sink)
	w.mu.Lock()
	w.dupAll = true
	w.mu.Unlock()

	const total = 20
	for i := 0; i < total; i++ {
		if err := r.Send(mutex.Envelope{From: 2, To: 3, Msg: relTestMsg{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return len(col.snapshot()) >= total }, "all envelopes delivered")
	if got := col.snapshot(); len(got) != total {
		t.Fatalf("delivered %d envelopes under duplication, want exactly %d", len(got), total)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if dups < total {
		t.Errorf("suppressed %d duplicates, want at least %d", dups, total)
	}
}

// TestReliableReorder swaps adjacent wire frames: the reorder buffer must
// restore per-stream FIFO before delivery.
func TestReliableReorder(t *testing.T) {
	col := &collector{}
	r := newReliable(col.deliver, nil)
	// A reordering wire: hold every even-indexed protocol frame and release
	// it after the following frame, swapping pairs on the wire.
	var held *mutex.Envelope
	var wireMu sync.Mutex
	w := senderFunc(func(env mutex.Envelope) error {
		wireMu.Lock()
		defer wireMu.Unlock()
		if env.Seq == 0 {
			return r.Receive(env)
		}
		if held == nil {
			e := env
			held = &e
			return nil
		}
		first, second := env, *held
		held = nil
		if err := r.Receive(first); err != nil {
			return err
		}
		return r.Receive(second)
	})
	r.start(w)
	defer r.Close()

	const total = 10
	for i := 0; i < total; i++ {
		if err := r.Send(mutex.Envelope{From: 4, To: 5, Msg: relTestMsg{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return len(col.snapshot()) >= total }, "all envelopes delivered")
	for i, env := range col.snapshot() {
		if msg := env.Msg.(relTestMsg); msg.N != i {
			t.Fatalf("delivery %d carries payload %d: reorder buffer failed", i, msg.N)
		}
	}
}

// senderFunc adapts a function to the Sender interface.
type senderFunc func(env mutex.Envelope) error

func (f senderFunc) Send(env mutex.Envelope) error { return f(env) }

// TestReliablePeerFailedStopsRetransmission cuts the wire to a peer, lets
// the retransmission loop run, then declares the peer dead: the babbling
// must stop and the stream state must be gone.
func TestReliablePeerFailedStopsRetransmission(t *testing.T) {
	r, w, _ := startReliable(t, nil)
	w.mu.Lock()
	w.drop = func(n int, env mutex.Envelope) bool { return env.To == 9 }
	w.mu.Unlock()

	for i := 0; i < 3; i++ {
		if err := r.Send(mutex.Envelope{From: 0, To: 9, Msg: relTestMsg{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for at least one retransmission wave at the dead peer.
	base := w.sentCount()
	waitFor(t, 10*time.Second, func() bool { return w.sentCount() > base }, "a retransmission")

	r.PeerFailed(9)
	r.mu.Lock()
	_, haveOut := r.out[streamID{from: 0, to: 9}]
	r.mu.Unlock()
	if haveOut {
		t.Fatal("send stream to the dead peer survived PeerFailed")
	}
	// No further wire traffic: sample well past several backoff windows.
	after := w.sentCount()
	time.Sleep(3 * rtxBase)
	if got := w.sentCount(); got != after {
		t.Fatalf("wire saw %d new frames after PeerFailed", got-after)
	}
	// Sends to the dead peer are discarded outright.
	if err := r.Send(mutex.Envelope{From: 0, To: 9, Msg: relTestMsg{N: 99}}); err != nil {
		t.Fatal(err)
	}
	if got := w.sentCount(); got != after {
		t.Fatal("a send to a declared-dead peer reached the wire")
	}
}

// TestTransportTrafficExcludedFromCounts is the obs-accounting contract: a
// quiet lossless run reports byte-identical protocol message tallies whether
// the reliability layer is on (default) or bypassed, because sequencing,
// acks, and (absent faults, zero) retransmissions are all below the
// EventSend emission point. The per-event totals differ only in the
// transport-level extras.
func TestTransportTrafficExcludedFromCounts(t *testing.T) {
	run := func(bypass bool) (obs.Snapshot, *Cluster) {
		t.Helper()
		m := obs.NewMetrics()
		cluster, err := NewClusterConfig(ClusterConfig{
			Algorithm:  core.Algorithm{},
			N:          5,
			Metrics:    m,
			unreliable: bypass,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		// Uncontended sequential rounds: the protocol's message pattern is
		// deterministic (request/reply/release waves only), so tallies are
		// exactly comparable across runs.
		for round := 0; round < 3; round++ {
			for id := 0; id < cluster.N(); id++ {
				node := cluster.Node(mutex.SiteID(id))
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					t.Fatalf("site %d round %d: %v", id, round, err)
				}
				if err := node.Release(); err != nil {
					t.Fatalf("site %d round %d release: %v", id, round, err)
				}
			}
		}
		snap, ok := cluster.Snapshot()
		if !ok {
			t.Fatal("metrics missing")
		}
		return snap, cluster
	}

	withRel, relCluster := run(false)
	if relCluster.rel == nil {
		t.Fatal("default cluster built without the reliability layer")
	}
	without, rawCluster := run(true)
	if rawCluster.rel != nil {
		t.Fatal("bypass cluster built the reliability layer anyway")
	}

	if withRel.Messages != without.Messages {
		t.Errorf("message totals diverge: %d with reliability, %d without", withRel.Messages, without.Messages)
	}
	if !reflect.DeepEqual(withRel.ByKind, without.ByKind) {
		t.Errorf("per-kind counts diverge:\n  with    %v\n  without %v", withRel.ByKind, without.ByKind)
	}
	for _, c := range []struct {
		name       string
		with, sans uint64
	}{
		{"requests", withRel.Requests, without.Requests},
		{"entries", withRel.Entries, without.Entries},
		{"exits", withRel.Exits, without.Exits},
	} {
		if c.with != c.sans {
			t.Errorf("%s diverge: %d with reliability, %d without", c.name, c.with, c.sans)
		}
	}
	// A fault-free in-process wire acks long before the backoff fires.
	if withRel.Transport.Retransmits != 0 {
		t.Errorf("%d retransmissions on a quiet lossless run", withRel.Transport.Retransmits)
	}
	if withRel.Transport.DupSuppressed != 0 {
		t.Errorf("%d duplicates suppressed on a quiet lossless run", withRel.Transport.DupSuppressed)
	}
	// The bypassed cluster must report no transport activity at all.
	if without.Transport != (obs.TransportStats{}) {
		t.Errorf("bypass run reported transport stats %+v", without.Transport)
	}
}

// TestTCPReliableUnderDrops runs a two-peer TCP cluster whose writers drop
// every third sequenced frame before it reaches the wire: every
// Acquire/Release round must still complete well within its deadline,
// carried by retransmission.
func TestTCPReliableUnderDrops(t *testing.T) {
	const n = 2
	alg := core.Algorithm{Construction: coterie.Majority{}}
	sites, err := alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[mutex.SiteID]string, n)
	peers := make([]*TCPPeer, n)
	for i := 0; i < n; i++ {
		p, err := NewTCPPeer(sites[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		addrs[mutex.SiteID(i)] = p.Addr()
	}
	for _, p := range peers {
		p.Close()
	}
	sites, err = alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		book := make(map[mutex.SiteID]string, n-1)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := NewTCPPeer(sites[i], addrs[mutex.SiteID(i)], book)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	// Deterministic loss at the writer: every third sequenced frame a peer
	// tries to put on the wire vanishes. Retransmissions advance the counter
	// too, so a victim frame survives on a later attempt.
	var dropMu sync.Mutex
	var dropped int
	for _, p := range peers {
		var mu sync.Mutex
		var nth int
		p.setDropHook(func(env mutex.Envelope) bool {
			if env.Seq == 0 {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			nth++
			if nth%3 == 0 {
				dropMu.Lock()
				dropped++
				dropMu.Unlock()
				return true
			}
			return false
		})
	}

	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			node := peers[i].Node()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := node.Acquire(ctx)
			cancel()
			if err != nil {
				t.Fatalf("site %d round %d: acquire under drops: %v", i, round, err)
			}
			if err := node.Release(); err != nil {
				t.Fatalf("site %d round %d: release: %v", i, round, err)
			}
		}
	}
	// The layer did real work: frames were actually lost and healed.
	dropMu.Lock()
	defer dropMu.Unlock()
	if dropped == 0 {
		t.Fatal("drop hook never fired: the test exercised nothing")
	}
}
