package transport

import (
	"fmt"

	"dqmx/internal/mutex"
)

// inprocSender routes envelopes between nodes of the same process.
type inprocSender struct {
	cluster *Cluster
}

// Send implements Sender.
func (s inprocSender) Send(env mutex.Envelope) error {
	node := s.cluster.node(env.To)
	if node == nil {
		return fmt.Errorf("transport: no node for site %d", env.To)
	}
	node.Inject(env)
	return nil
}

// Cluster hosts every site of an algorithm in one process, each on its own
// goroutine, wired by in-memory FIFO mailboxes. It is the easiest way to use
// the library: build a cluster, then Acquire/Release through its nodes.
type Cluster struct {
	nodes []*Node
}

// NewCluster builds and starts an in-process cluster of n sites.
func NewCluster(alg mutex.Algorithm, n int) (*Cluster, error) {
	sites, err := alg.NewSites(n)
	if err != nil {
		return nil, fmt.Errorf("transport: build sites: %w", err)
	}
	c := &Cluster{nodes: make([]*Node, n)}
	sender := inprocSender{cluster: c}
	for i, s := range sites {
		c.nodes[i] = NewNode(s, sender)
	}
	return c, nil
}

// Node returns the node hosting the given site.
func (c *Cluster) Node(id mutex.SiteID) *Node { return c.node(id) }

// N returns the number of sites.
func (c *Cluster) N() int { return len(c.nodes) }

func (c *Cluster) node(id mutex.SiteID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Close stops every node and waits for their loops to exit.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
