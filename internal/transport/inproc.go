package transport

import (
	"fmt"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

// inprocSender routes envelopes between nodes of the same process.
type inprocSender struct {
	cluster *Cluster
}

// Send implements Sender.
func (s inprocSender) Send(env mutex.Envelope) error {
	node := s.cluster.node(env.To)
	if node == nil {
		return fmt.Errorf("transport: no node for site %d", env.To)
	}
	node.Inject(env)
	return nil
}

// Cluster hosts every site of an algorithm in one process, each on its own
// goroutine, wired by in-memory FIFO mailboxes. It is the easiest way to use
// the library: build a cluster, then Acquire/Release through its nodes.
type Cluster struct {
	nodes   []*Node
	metrics *obs.Metrics // nil unless metrics collection was requested
}

// NewCluster builds and starts an in-process cluster of n sites with
// observability disabled.
func NewCluster(alg mutex.Algorithm, n int) (*Cluster, error) {
	return NewClusterObserved(alg, n, nil, nil)
}

// NewClusterObserved builds and starts an in-process cluster whose nodes
// all feed the given metrics collector (exposed through Snapshot) and raw
// event sink. Either may be nil; when both are nil the event path reduces
// to a per-event nil check.
func NewClusterObserved(alg mutex.Algorithm, n int, m *obs.Metrics, sink obs.Sink) (*Cluster, error) {
	sites, err := alg.NewSites(n)
	if err != nil {
		return nil, fmt.Errorf("transport: build sites: %w", err)
	}
	combined := sink
	if m != nil {
		combined = obs.Tee(m.Observe, sink)
	}
	c := &Cluster{nodes: make([]*Node, n), metrics: m}
	sender := inprocSender{cluster: c}
	for i, s := range sites {
		c.nodes[i] = NewNodeObserved(s, sender, combined)
	}
	return c, nil
}

// Snapshot returns the aggregated live metrics. ok is false when the
// cluster was built without a metrics collector.
func (c *Cluster) Snapshot() (snap obs.Snapshot, ok bool) {
	if c.metrics == nil {
		return obs.Snapshot{}, false
	}
	return c.metrics.Snapshot(), true
}

// Node returns the node hosting the given site.
func (c *Cluster) Node(id mutex.SiteID) *Node { return c.node(id) }

// N returns the number of sites.
func (c *Cluster) N() int { return len(c.nodes) }

func (c *Cluster) node(id mutex.SiteID) *Node {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Close stops every node and waits for their loops to exit.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
