package transport

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/coterie"
	"dqmx/internal/membership"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
)

// inprocSender routes envelopes between the managers of the same process,
// delivering consecutive same-destination runs under one mailbox lock.
type inprocSender struct {
	cluster *Cluster
}

// Send implements Sender.
func (s inprocSender) Send(env mutex.Envelope) error {
	mgr := s.cluster.manager(env.To)
	if mgr == nil {
		return fmt.Errorf("transport: no node for site %d", env.To)
	}
	return mgr.Inject(env)
}

// SendBatch implements BatchSender with cross-destination coalescing: ALL of
// a destination's envelopes in the batch — not just consecutive runs — are
// injected as one batch under one mailbox lock, preserving per-destination
// order. Interleaved destinations (a multi-resource step fanning out to the
// same quorum) therefore cost one injection per destination.
func (s inprocSender) SendBatch(envs []mutex.Envelope) error {
	var firstErr error
	var group []mutex.Envelope
	forEachDestination(envs, func(dest mutex.SiteID) {
		mgr := s.cluster.manager(dest)
		if mgr == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: no node for site %d", dest)
			}
			return
		}
		group = group[:0]
		for _, env := range envs {
			if env.To == dest {
				group = append(group, env)
			}
		}
		if err := mgr.InjectBatch(group); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// relWire is the perfect in-process wire under the reliability layer: the
// sender's goroutine hands each envelope straight to the layer's receive
// side, which routes it into the destination mailbox. The layer's lock is
// never held across this hop, so the inline re-entry cannot deadlock.
type relWire struct {
	rel *reliable
}

// Send implements Sender.
func (w relWire) Send(env mutex.Envelope) error { return w.rel.Receive(env) }

// SendBatch implements BatchSender.
func (w relWire) SendBatch(envs []mutex.Envelope) error {
	var firstErr error
	for _, env := range envs {
		if err := w.rel.Receive(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// Algorithm builds the per-resource site machines.
	Algorithm mutex.Algorithm
	// N is the number of sites.
	N int
	// Metrics, when non-nil, aggregates the cluster's events (exposed
	// through Snapshot and SnapshotResource).
	Metrics *obs.Metrics
	// Observer, when non-nil, receives the raw event stream.
	Observer obs.Sink
	// Policy bounds named-lock resource names.
	Policy resource.Policy
	// Chaos, when non-nil, interposes a seeded fault-injecting fabric
	// between every node and the in-process mailboxes: message drop,
	// duplication, reordering, bounded delay, and partitions per the plan,
	// plus scheduled site crashes executed through the §6 failure path.
	// The reliable-delivery sublayer sits above the fabric, so drop-only
	// plans merely delay the protocol instead of stalling it.
	// In-process clusters only.
	Chaos *chaos.Plan
	// Construction, when non-nil, names the coterie construction behind
	// Algorithm and enables online reconfiguration (Cluster.Reconfigure):
	// it provides the §6 avoiding rule for the old side of a handover. It
	// must be the same construction the algorithm assigns quorums with.
	Construction coterie.Construction
	// unreliable bypasses the reliable-delivery sublayer, wiring nodes
	// straight to the mailboxes (or the chaos fabric) as before it existed.
	// Test-only: it lets the obs-accounting equivalence test compare message
	// tallies with the layer on and off.
	unreliable bool
}

// Cluster hosts every site of an algorithm in one process and multiplexes
// any number of named locks over them: each resource name lazily gets its
// own full protocol instance (N fresh site machines over the same coterie),
// each site machine on its own goroutine, wired by in-memory FIFO
// mailboxes. The legacy single-mutex interface — Node(id).Acquire/Release —
// is the default resource's instance; named locks are reached through Lock.
type Cluster struct {
	alg     mutex.Algorithm
	metrics *obs.Metrics // nil unless metrics collection was requested
	sink    obs.Sink     // combined metrics+observer sink

	// members is the live site roster: sender goroutines read it lock-free
	// on every envelope, Reconfigure swaps it copy-on-write when sites join
	// or retire. Slot i hosts site i; a retired high slot is dropped by
	// publishing a shorter view.
	members atomic.Pointer[memberView]
	sender  BatchSender // the delivery stack handed to every new node

	// stage is the cluster's current membership stage (membership.Stage),
	// stamped onto every outgoing envelope by the per-resource senders.
	stage atomic.Uint64

	rel       *reliable     // the reliable-delivery sublayer; nil only in test bypass mode
	fabric    *chaos.Fabric // nil unless chaos injection was requested
	chaosStop chan struct{}
	chaosWG   sync.WaitGroup

	reconfMu sync.Mutex // serializes Reconfigure end to end
	policy   resource.Policy

	mu       sync.Mutex
	siteSets map[string][]mutex.Site // per-resource machines, built once per resource
	cfg      membership.Config      // last stable configuration; zero Coterie = membership untracked
	cons     coterie.Construction   // construction behind cfg (may be nil)
	handover *membership.Handover   // non-nil while a handover is in progress
}

// memberView is one immutable snapshot of the cluster roster.
type memberView struct {
	managers []*resource.Manager
	nodes    []*Node // default-resource instances, cached for Node(id)
}

// NewCluster builds and starts an in-process cluster of n sites with
// observability disabled.
func NewCluster(alg mutex.Algorithm, n int) (*Cluster, error) {
	return NewClusterConfig(ClusterConfig{Algorithm: alg, N: n})
}

// NewClusterObserved builds and starts an in-process cluster whose nodes
// all feed the given metrics collector (exposed through Snapshot) and raw
// event sink. Either may be nil; when both are nil the event path reduces
// to a per-event nil check.
func NewClusterObserved(alg mutex.Algorithm, n int, m *obs.Metrics, sink obs.Sink) (*Cluster, error) {
	return NewClusterConfig(ClusterConfig{Algorithm: alg, N: n, Metrics: m, Observer: sink})
}

// NewClusterConfig builds and starts an in-process cluster with explicit
// configuration.
func NewClusterConfig(cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{
		alg:      cfg.Algorithm,
		metrics:  cfg.Metrics,
		sink:     cfg.Observer,
		siteSets: make(map[string][]mutex.Site),
	}
	if cfg.Metrics != nil {
		c.sink = obs.Tee(cfg.Metrics.Observe, cfg.Observer)
	}
	// Build the default resource's site set up front: it validates the
	// algorithm and site count at construction even for degenerate N.
	defaultSites, err := cfg.Algorithm.NewSites(cfg.N)
	if err != nil {
		return nil, fmt.Errorf("transport: build sites: %w", err)
	}
	c.siteSets[resource.Default] = defaultSites
	// Record the epoch-0 configuration for online reconfiguration. The
	// coterie is read off the live site machines — the ground truth of what
	// the handover's old side must intersect — so membership tracking works
	// for any algorithm whose sites expose their req_set.
	if assign := assignmentOf(defaultSites); assign != nil {
		c.cfg = membership.Config{Epoch: 0, Sites: siteIDRange(cfg.N), Coterie: assign}
		c.cons = cfg.Construction
	}
	// The delivery stack, bottom-up: inprocSender injects into mailboxes;
	// the reliable sublayer's receive side feeds it; the wire under the
	// sublayer is either the chaos fabric or a perfect inline loopback.
	var sender BatchSender = inprocSender{cluster: c}
	if !cfg.unreliable {
		c.rel = newReliable(sender.Send, c.sink)
	}
	if cfg.Chaos != nil {
		if c.rel != nil {
			c.fabric = chaos.NewFabric(*cfg.Chaos, c.rel.Receive)
		} else {
			direct := sender
			c.fabric = chaos.NewFabric(*cfg.Chaos, direct.Send)
		}
		c.chaosStop = make(chan struct{})
	}
	switch {
	case c.rel != nil && c.fabric != nil:
		c.rel.start(c.fabric)
		sender = c.rel
	case c.rel != nil:
		c.rel.start(relWire{rel: c.rel})
		sender = c.rel
	case c.fabric != nil:
		sender = c.fabric
	}
	c.sender = sender
	view := &memberView{
		managers: make([]*resource.Manager, cfg.N),
		nodes:    make([]*Node, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		view.managers[i] = c.newManager(mutex.SiteID(i), cfg.Policy)
	}
	c.policy = cfg.Policy
	c.members.Store(view)
	// The default resource is eager: it validates the algorithm/coterie at
	// construction and backs the legacy Node(id) interface.
	for i, mgr := range view.managers {
		inst, err := mgr.Instance(resource.Default)
		if err != nil {
			c.Close()
			return nil, err
		}
		view.nodes[i] = inst.(*Node)
	}
	// Start the chaos crash scheduler only once every manager exists: a
	// crash with a tiny After would otherwise race killSite's manager()
	// lookup against the construction loop above.
	if cfg.Chaos != nil {
		for _, cr := range cfg.Chaos.Crashes {
			cr := cr
			c.chaosWG.Add(1)
			go func() {
				defer c.chaosWG.Done()
				timer := time.NewTimer(cr.After)
				defer timer.Stop()
				select {
				case <-timer.C:
					c.killSite(cr.Site, cr.DetectAfter, c.chaosStop)
				case <-c.chaosStop:
				}
			}()
		}
	}
	return c, nil
}

// newManager builds site id's resource manager: the per-site table of lazy
// protocol instances sharing the cluster's delivery stack.
func (c *Cluster) newManager(id mutex.SiteID, policy resource.Policy) *resource.Manager {
	return resource.NewManager(resource.Config{
		Policy: policy,
		New: func(name string) (resource.Instance, error) {
			site, err := c.siteFor(name, id)
			if err != nil {
				return nil, err
			}
			return newResourceNode(name, site, c.sender, c.sink, &c.stage), nil
		},
	})
}

// assignmentOf reads the coterie assignment off a freshly built site set,
// or nil when the algorithm's sites do not expose their req_set.
func assignmentOf(sites []mutex.Site) *coterie.Assignment {
	assign := &coterie.Assignment{N: len(sites), Quorums: make([]coterie.Quorum, len(sites))}
	for i, s := range sites {
		q, ok := s.(interface{ Quorum() coterie.Quorum })
		if !ok {
			return nil
		}
		assign.Quorums[i] = q.Quorum()
	}
	return assign
}

func siteIDRange(n int) []mutex.SiteID {
	ids := make([]mutex.SiteID, n)
	for i := range ids {
		ids[i] = mutex.SiteID(i)
	}
	return ids
}

// stagedSite is the probe for a machine's current membership stage tag.
type stagedSite interface{ MembershipStage() uint64 }

// siteFor hands out site id's machine for a resource, building the
// resource's full site set on first use so all managers share one coherent
// coterie assignment per resource. Sets are built for the membership in
// force at build time, extended when the cluster has grown past them, and
// each handed-out machine is normalized to the current membership stage —
// a machine that sat unwired in a set while a reconfiguration advanced is
// still idle, so the swap is a plain req_set replacement.
func (c *Cluster) siteFor(name string, id mutex.SiteID) (mutex.Site, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.liveMembershipLocked()
	set, ok := c.siteSets[name]
	if !ok {
		var err error
		set, err = c.buildSitesLocked(live)
		if err != nil {
			return nil, err
		}
		c.siteSets[name] = set
	}
	if int(id) >= len(set) {
		// The cluster grew past this resource's set: build the tail
		// machines at the current membership and graft them on.
		fresh, err := c.buildSitesLocked(live)
		if err != nil {
			return nil, err
		}
		if int(id) >= len(fresh) {
			return nil, fmt.Errorf("transport: site %d out of range for resource %q", id, name)
		}
		set = append(set, fresh[len(set):]...)
		c.siteSets[name] = set
	}
	site := set[id]
	if live.stage != 0 {
		if st, ok := site.(stagedSite); !ok || st.MembershipStage() != live.stage {
			rc, ok := site.(mutex.Reconfigurable)
			if !ok {
				return nil, fmt.Errorf("transport: site %d of resource %q cannot adopt membership stage %d", id, name, live.stage)
			}
			rc.SetMembership(live.n, live.quorum(id), live.avoid(id), live.stage)
		}
	}
	return site, nil
}

// liveMembership describes the membership new or unwired machines must
// adopt: the live system size, per-site req_sets, and §6 avoiding rules,
// tagged with the current stage. stage 0 means the cluster has never
// reconfigured and machines are used as the algorithm built them.
type liveMembership struct {
	n      int
	stage  uint64
	quorum func(id mutex.SiteID) []mutex.SiteID
	avoid  func(id mutex.SiteID) func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool)
}

func (c *Cluster) liveMembershipLocked() liveMembership {
	if h := c.handover; h != nil {
		return liveMembership{
			n:      h.JointN(),
			stage:  c.stage.Load(),
			quorum: func(id mutex.SiteID) []mutex.SiteID { return []mutex.SiteID(h.JointQuorum(id)) },
			avoid: func(id mutex.SiteID) func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
				return jointAvoidFunc(h, id)
			},
		}
	}
	cfg, cons := c.cfg, c.cons
	return liveMembership{
		n:      cfg.N(),
		stage:  c.stage.Load(),
		quorum: func(id mutex.SiteID) []mutex.SiteID { return []mutex.SiteID(cfg.Coterie.Quorum(id)) },
		avoid: func(id mutex.SiteID) func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
			return stableAvoidFunc(cons, cfg.N(), id)
		},
	}
}

// buildSitesLocked builds a fresh full site set for the current membership:
// the algorithm's machines at the live site count. Req_set normalization to
// the live membership happens in siteFor when a machine is handed out.
func (c *Cluster) buildSitesLocked(live liveMembership) ([]mutex.Site, error) {
	set, err := c.alg.NewSites(live.n)
	if err != nil {
		return nil, fmt.Errorf("transport: build sites: %w", err)
	}
	return set, nil
}

// jointAvoidFunc is the §6 avoiding rule during a handover: rebuild as the
// union of an old- and a new-coterie quorum so the replacement stays joint.
func jointAvoidFunc(h *membership.Handover, id mutex.SiteID) func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
	return func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		q, err := h.JointAvoiding(id, down)
		if err != nil {
			return nil, false
		}
		return []mutex.SiteID(q), true
	}
}

// stableAvoidFunc is the §6 avoiding rule of a stable configuration: the
// construction's QuorumAvoiding at the configuration's size. A nil
// construction disables rebuilds (safety over progress).
func stableAvoidFunc(cons coterie.Construction, n int, id mutex.SiteID) func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
	if cons == nil {
		return nil
	}
	return func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		q, err := cons.QuorumAvoiding(n, id, down)
		if err != nil {
			return nil, false
		}
		return []mutex.SiteID(q), true
	}
}

// Snapshot returns the aggregated live metrics over every resource. ok is
// false when the cluster was built without a metrics collector.
func (c *Cluster) Snapshot() (snap obs.Snapshot, ok bool) {
	if c.metrics == nil {
		return obs.Snapshot{}, false
	}
	return c.metrics.Snapshot(), true
}

// SnapshotResource returns the live metrics of one named lock. ok is false
// without a metrics collector or when the resource has seen no events.
func (c *Cluster) SnapshotResource(name string) (snap obs.Snapshot, ok bool) {
	if c.metrics == nil {
		return obs.Snapshot{}, false
	}
	return c.metrics.SnapshotResource(name)
}

// Lock returns site id's canonical handle for the named lock, instantiating
// the resource's protocol instance on first use.
func (c *Cluster) Lock(id mutex.SiteID, name string) (*resource.Lock, error) {
	mgr := c.manager(id)
	if mgr == nil {
		return nil, fmt.Errorf("transport: site %d out of range 0..%d", id, c.N()-1)
	}
	return mgr.Lock(name)
}

// Resources lists every resource name instantiated anywhere in the cluster,
// sorted and de-duplicated (the default resource is always present).
func (c *Cluster) Resources() []string {
	seen := make(map[string]bool)
	var out []string
	for _, mgr := range c.members.Load().managers {
		for _, name := range mgr.Resources() {
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Node returns the node hosting the given site's default resource — the
// legacy single-mutex interface, now a shim over Lock's machinery.
func (c *Cluster) Node(id mutex.SiteID) *Node {
	view := c.members.Load()
	if int(id) < 0 || int(id) >= len(view.nodes) {
		return nil
	}
	return view.nodes[id]
}

// N returns the current number of sites. It changes when Reconfigure grows
// or shrinks the cluster.
func (c *Cluster) N() int { return len(c.members.Load().managers) }

// Epoch returns the cluster's current stable configuration epoch, and
// Stage the totally ordered membership stage (which additionally exposes
// the joint phase while a reconfiguration is in flight).
func (c *Cluster) Epoch() membership.Epoch { return c.Stage().Epoch() }

// Stage returns the cluster's current membership stage.
func (c *Cluster) Stage() membership.Stage { return membership.Stage(c.stage.Load()) }

// Chaos returns the cluster's fault-injecting fabric, or nil when the
// cluster was built without a chaos plan.
func (c *Cluster) Chaos() *chaos.Fabric { return c.fabric }

// SetDeliveryHook installs an observer of exactly-once envelope deliveries —
// the conformance checker's view of the wire. The hook fires once per
// sequenced envelope after the reliability layer's dedup and reordering, so
// retransmitted and duplicated copies never double-count; on a cluster built
// without the layer (test bypass) it falls back to the chaos fabric's raw
// deliveries. Install it before traffic starts.
func (c *Cluster) SetDeliveryHook(hook func(env mutex.Envelope, dup bool)) {
	if c.rel != nil {
		c.rel.setDeliveryHook(hook)
		return
	}
	if c.fabric != nil {
		c.fabric.SetDeliveryHook(hook)
	}
}

// DumpState renders the protocol state of every instantiated resource node
// in the cluster, one line per (site, resource). Each line is produced on
// the owning node's loop goroutine, so the dump is safe under live traffic.
func (c *Cluster) DumpState() string {
	var b strings.Builder
	for _, mgr := range c.members.Load().managers {
		if mgr == nil {
			continue
		}
		mgr.Each(func(name string, inst resource.Instance) {
			node, ok := inst.(*Node)
			if !ok {
				return
			}
			label := name
			if label == resource.Default {
				label = "(default)"
			}
			fmt.Fprintf(&b, "[%s] %s\n", label, node.Dump())
		})
	}
	return b.String()
}

func (c *Cluster) manager(id mutex.SiteID) *resource.Manager {
	view := c.members.Load()
	if int(id) < 0 || int(id) >= len(view.managers) {
		return nil
	}
	return view.managers[id]
}

// Close stops every instance of every resource and waits for their loops to
// exit, then tears down the reliability and chaos layers. The order matters:
// the reliability loop may still hand retransmissions to the fabric, so it
// stops before the fabric does.
func (c *Cluster) Close() {
	if c.chaosStop != nil {
		close(c.chaosStop)
		c.chaosWG.Wait()
		c.chaosStop = nil
	}
	for _, mgr := range c.members.Load().managers {
		if mgr != nil {
			mgr.Close()
		}
	}
	if c.rel != nil {
		c.rel.Close()
	}
	if c.fabric != nil {
		c.fabric.Close()
	}
}
