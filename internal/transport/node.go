// Package transport runs the mutual exclusion state machines outside the
// simulator: one goroutine per site, with in-process channel wiring for
// single-binary deployments and a gob-over-TCP transport for real clusters.
// The protocol code is identical to what the simulator drives — only the
// message plumbing differs.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

var (
	// ErrBusy is returned by Acquire when the site already holds or is
	// acquiring the critical section (sites execute requests one by one).
	ErrBusy = errors.New("transport: site already holds or awaits the critical section")
	// ErrClosed is returned when the node has shut down.
	ErrClosed = errors.New("transport: node is closed")
	// ErrNotHeld is returned by Release when the site does not hold the
	// critical section — a release without a matching successful acquire.
	ErrNotHeld = errors.New("transport: release without a held critical section")
	// ErrNotReconfigurable is returned by Reconfigure when the hosted
	// algorithm does not implement mutex.Reconfigurable.
	ErrNotReconfigurable = errors.New("transport: algorithm does not support membership reconfiguration")
)

// epoch anchors the live drivers' event timestamps: monotonic nanoseconds
// since process start, comparable across every node in the process.
var epoch = time.Now()

func nanos() int64 { return int64(time.Since(epoch)) }

// Sender transmits an envelope toward a remote site. Implementations must
// preserve per-destination FIFO ordering (the protocol's channel model).
type Sender interface {
	Send(env mutex.Envelope) error
}

// BatchSender is an optional Sender extension: all envelopes produced by one
// state-machine step are handed over together, letting the transport
// coalesce them — one mailbox lock in-process, one buffered write per
// destination over TCP — instead of paying per-envelope overhead. Order
// within the batch must be preserved per destination.
type BatchSender interface {
	Sender
	SendBatch(envs []mutex.Envelope) error
}

// mailbox is an unbounded FIFO of envelopes: the reliable, order-preserving
// "network buffer" in front of each node. Unboundedness mirrors the system
// model (reliable channels, no backpressure) and prevents distributed
// deadlock between node loops sending to each other.
type mailbox struct {
	mu     sync.Mutex
	items  []mutex.Envelope
	notify chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{notify: make(chan struct{}, 1)}
}

func (m *mailbox) put(env mutex.Envelope) {
	m.mu.Lock()
	m.items = append(m.items, env)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

func (m *mailbox) putAll(envs []mutex.Envelope) {
	if len(envs) == 0 {
		return
	}
	m.mu.Lock()
	m.items = append(m.items, envs...)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

func (m *mailbox) drain() []mutex.Envelope {
	m.mu.Lock()
	items := m.items
	m.items = nil
	m.mu.Unlock()
	return items
}

// Node hosts one site state machine on a dedicated goroutine and exposes a
// blocking Acquire/Release interface to application code.
type Node struct {
	site   mutex.Site
	sender Sender
	inbox  *mailbox
	sink   obs.Sink // nil when observability is disabled

	acquireC chan chan error
	releaseC chan chan error
	dumpC    chan chan string
	ctrlC    chan func() // membership control, run on the loop goroutine
	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}

	waiter   chan error // pending Acquire responder, loop-owned
	retiring bool       // loop-owned: departing the cluster, no new acquires
}

// NewNode starts the node's event loop with observability disabled. sender
// carries envelopes addressed to other sites; envelopes addressed to this
// site short-circuit internally.
func NewNode(site mutex.Site, sender Sender) *Node {
	return NewNodeObserved(site, sender, nil)
}

// NewNodeObserved starts the node's event loop with the given event sink.
// A nil sink costs exactly one nil check per potential event.
func NewNodeObserved(site mutex.Site, sender Sender, sink obs.Sink) *Node {
	n := &Node{
		site:     site,
		sender:   sender,
		inbox:    newMailbox(),
		sink:     sink,
		acquireC: make(chan chan error),
		releaseC: make(chan chan error),
		dumpC:    make(chan chan string),
		ctrlC:    make(chan func()),
		stopC:    make(chan struct{}),
		doneC:    make(chan struct{}),
	}
	go n.run()
	return n
}

// ID returns the hosted site's identifier.
func (n *Node) ID() mutex.SiteID { return n.site.ID() }

// Inject delivers an incoming envelope (called by transports).
func (n *Node) Inject(env mutex.Envelope) { n.inbox.put(env) }

// InjectBatch delivers several incoming envelopes in order under one mailbox
// lock (called by batching transports).
func (n *Node) InjectBatch(envs []mutex.Envelope) { n.inbox.putAll(envs) }

// Acquire blocks until the site holds the critical section, the context is
// cancelled, or the node closes. If the context is cancelled after the
// request was issued, the eventually acquired critical section is released
// automatically.
func (n *Node) Acquire(ctx context.Context) error {
	resp := make(chan error, 1)
	select {
	case n.acquireC <- resp:
	case <-ctx.Done():
		return ctx.Err()
	case <-n.doneC:
		return ErrClosed
	}
	select {
	case err := <-resp:
		return err
	case <-ctx.Done():
		// The protocol has no cancel message: wait out the grant in the
		// background and hand it straight back. The node may close before
		// the grant ever arrives, so also watch doneC or this goroutine
		// leaks.
		go func() {
			select {
			case err := <-resp:
				if err == nil {
					_ = n.Release()
				}
			case <-n.doneC:
			}
		}()
		return ctx.Err()
	case <-n.doneC:
		return ErrClosed
	}
}

// TryAcquire attempts to enter the critical section within the context's
// lifetime and reports whether it succeeded. Unlike Acquire, running out of
// time is not an error: if ctx is done before the grant arrives TryAcquire
// returns (false, nil) and the abandoned request is wound down exactly as in
// Acquire — when the quorum's grant eventually lands it is handed straight
// back. Callers bound the wait with a context deadline; an already-expired
// context makes TryAcquire a pure local-state probe. Errors are reserved for
// real failures: ErrBusy when an acquire is already held or in flight, and
// ErrClosed after shutdown.
func (n *Node) TryAcquire(ctx context.Context) (bool, error) {
	switch err := n.Acquire(ctx); {
	case err == nil:
		return true, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return false, nil
	default:
		return false, err
	}
}

// Release exits the critical section. It returns ErrNotHeld when the site
// does not currently hold the CS (no matching successful Acquire), and
// ErrClosed after shutdown.
func (n *Node) Release() error {
	resp := make(chan error, 1)
	select {
	case n.releaseC <- resp:
		return <-resp
	case <-n.doneC:
		return ErrClosed
	}
}

// Dump renders the site's protocol state for diagnostics (liveness
// watchdogs, operator tooling). The render runs on the node's own loop
// goroutine — the only place the state machine may be touched — so it is
// safe to call concurrently with protocol traffic.
func (n *Node) Dump() string {
	resp := make(chan string, 1)
	select {
	case n.dumpC <- resp:
		return <-resp
	case <-n.doneC:
		return fmt.Sprintf("site %d: node closed", n.site.ID())
	}
}

// Close stops the node's event loop and waits for it to exit.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stopC) })
	<-n.doneC
}

// observe emits one lifecycle event; callers must have checked n.sink.
func (n *Node) observe(t obs.EventType, peer mutex.SiteID, kind string) {
	n.sink(obs.Event{Type: t, Site: n.site.ID(), Peer: peer, Kind: kind, Time: nanos()})
}

func (n *Node) run() {
	defer close(n.doneC)
	for {
		select {
		case <-n.inbox.notify:
			for _, env := range n.inbox.drain() {
				if n.sink != nil {
					if f, ok := env.Msg.(mutex.FailureMsg); ok {
						n.observe(obs.EventFailure, f.Failed, "")
						n.apply(n.site.Deliver(env))
						n.observe(obs.EventRecovery, f.Failed, "")
						continue
					}
				}
				n.apply(n.site.Deliver(env))
			}
		case resp := <-n.acquireC:
			if n.retiring {
				resp <- ErrClosed
				continue
			}
			if n.waiter != nil || n.site.InCS() || n.site.Pending() {
				resp <- ErrBusy
				continue
			}
			n.waiter = resp
			// Request() first, observe second: the event can then carry the
			// request's logical timestamp. apply follows, so the event still
			// precedes every EventSend of the request wave.
			out := n.site.Request()
			if n.sink != nil {
				e := obs.Event{Type: obs.EventRequest, Site: n.site.ID(), Peer: n.site.ID(), Time: nanos()}
				if ts, ok := n.site.(mutex.TimestampedSite); ok {
					if reqTS, pending := ts.RequestTimestamp(); pending {
						e.ReqTS = reqTS
					}
				}
				n.sink(e)
			}
			n.apply(out)
		case resp := <-n.releaseC:
			if !n.site.InCS() {
				resp <- ErrNotHeld
				continue
			}
			if n.sink != nil {
				n.observe(obs.EventExit, n.site.ID(), "")
			}
			n.apply(n.site.Exit())
			resp <- nil
		case resp := <-n.dumpC:
			resp <- siteDebug(n.site)
		case fn := <-n.ctrlC:
			fn()
		case <-n.stopC:
			return
		}
	}
}

// onLoop runs fn on the node's loop goroutine and waits for it to finish.
// It returns ErrClosed when the node shut down before (or while) fn could
// run — the loop exiting between enqueue and execution included.
func (n *Node) onLoop(fn func()) error {
	done := make(chan struct{})
	wrapped := func() {
		fn()
		close(done)
	}
	select {
	case n.ctrlC <- wrapped:
	case <-n.doneC:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-n.doneC:
		return ErrClosed
	}
}

// Reconfigure installs a new membership on the hosted site (see
// mutex.Reconfigurable): system size nn, req_set quorum, the §6 avoiding
// rule for the membership, and the membership stage tag. The reconcile —
// withdrawals to departing arbiters, requests to joining ones — runs as an
// ordinary state-machine step on the node's loop; a pending Acquire that
// completes because the new quorum is already fully granted is woken
// exactly as any other entry.
func (n *Node) Reconfigure(nn int, quorum []mutex.SiteID, avoiding func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool), stage uint64) error {
	rc, ok := n.site.(mutex.Reconfigurable)
	if !ok {
		return ErrNotReconfigurable
	}
	return n.onLoop(func() {
		n.apply(rc.SetMembership(nn, quorum, avoiding, stage))
	})
}

// MembershipSettled reports whether the hosted site's effective req_set is
// the most recently installed one (false while the swap waits behind a held
// critical section). Closed nodes report settled: a stopped machine can no
// longer hold a stale quorum. Non-reconfigurable sites are always settled.
func (n *Node) MembershipSettled() bool {
	rc, ok := n.site.(mutex.Reconfigurable)
	if !ok {
		return true
	}
	settled := true
	if err := n.onLoop(func() { settled = rc.MembershipSettled() }); err != nil {
		return true
	}
	return settled
}

// BeginRetire marks the node as departing: every subsequent Acquire fails
// with ErrClosed while in-flight work continues undisturbed. Used by the
// reconfiguration drain so a leaving site can finish what it holds without
// taking on new work.
func (n *Node) BeginRetire() {
	_ = n.onLoop(func() { n.retiring = true })
}

// Quiesced reports whether the node has no critical section held, no
// request in flight, and no waiting acquirer — the drain condition for
// retiring a departing site. A closed node is quiesced.
func (n *Node) Quiesced() bool {
	quiet := true
	if err := n.onLoop(func() {
		quiet = !n.site.InCS() && !n.site.Pending() && n.waiter == nil
	}); err != nil {
		return true
	}
	return quiet
}

// siteDebug renders one site's protocol state, preferring the rich dump of
// sites that expose one over the generic lifecycle summary.
func siteDebug(s mutex.Site) string {
	if d, ok := s.(interface{ DebugString() string }); ok {
		return d.DebugString()
	}
	return fmt.Sprintf("site %d: inCS=%v pending=%v", s.ID(), s.InCS(), s.Pending())
}

// apply executes one state-machine step's effects: self-addressed envelopes
// run inline (they are local bookkeeping, not network messages), remote ones
// go to the sender — batched when the transport supports it — and a CS entry
// wakes the pending Acquire.
func (n *Node) apply(out mutex.Output) {
	pending := out.Send
	entered := out.Entered
	var remote []mutex.Envelope
	for len(pending) > 0 {
		env := pending[0]
		pending = pending[1:]
		if env.To == n.site.ID() {
			next := n.site.Deliver(env)
			pending = append(pending, next.Send...)
			entered = entered || next.Entered
			continue
		}
		if n.sink != nil {
			n.observe(obs.EventSend, env.To, env.Msg.Kind())
		}
		remote = append(remote, env)
	}
	// Reliable-channel model: transports retry internally; an error here
	// means the peer is gone, which the failure protocol handles.
	if len(remote) > 0 {
		if bs, ok := n.sender.(BatchSender); ok {
			_ = bs.SendBatch(remote)
		} else {
			for _, env := range remote {
				_ = n.sender.Send(env)
			}
		}
	}
	if entered {
		if n.sink != nil {
			n.observe(obs.EventEnter, n.site.ID(), "")
		}
		if n.waiter != nil {
			n.waiter <- nil
			n.waiter = nil
		}
	}
}
