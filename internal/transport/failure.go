package transport

import (
	"math/rand"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/wire"
)

// heartbeatMsg is the liveness probe exchanged by peers running a failure
// detector. It is transport-level traffic: nodes never see it.
type heartbeatMsg struct {
	From mutex.SiteID
}

// Kind implements mutex.Message.
func (heartbeatMsg) Kind() string { return "heartbeat" }

// transportMessage marks heartbeats as transport-level for the reliability
// sublayer: probes travel unsequenced and are never retransmitted (a probe
// is a question about now; re-asking it later is a new probe).
func (heartbeatMsg) transportMessage() {}

func init() {
	wire.RegisterMessage(wire.TagHeartbeat, heartbeatMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendSite(b, m.(heartbeatMsg).From)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return heartbeatMsg{From: r.Site()}, nil
		})
}

// KillSite simulates a crash in an in-process cluster: every protocol
// instance hosted at the site — the default resource and all named locks —
// stops immediately and, after detectAfter, every surviving site receives a
// failure(f) notification per instantiated resource so the §6 recovery
// protocol can rebuild each lock's quorums. It blocks until the
// notifications are injected.
func (c *Cluster) KillSite(id mutex.SiteID, detectAfter time.Duration) {
	c.killSite(id, detectAfter, nil)
}

// killSite is KillSite with an interruptible detection delay: closing stopC
// during the delay abandons the kill without injecting notifications (used
// by the chaos crash scheduler so Cluster.Close never waits out a pending
// detection window).
func (c *Cluster) killSite(id mutex.SiteID, detectAfter time.Duration, stopC <-chan struct{}) {
	victim := c.manager(id)
	if victim == nil {
		return
	}
	if f := c.fabric; f != nil {
		f.MarkCrashed(id)
	}
	if r := c.rel; r != nil {
		// §6 composition: tear down the crashed site's streams so pending
		// retransmissions at the corpse stop immediately.
		r.PeerFailed(id)
	}
	victim.Close()
	if detectAfter > 0 {
		timer := time.NewTimer(detectAfter)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-stopC:
			return
		}
	}
	for j, mgr := range c.members.Load().managers {
		if mutex.SiteID(j) == id {
			continue
		}
		self := mutex.SiteID(j)
		mgr.Each(func(name string, inst resource.Instance) {
			inst.Inject(mutex.Envelope{Resource: name, From: self, To: self, Msg: mutex.FailureMsg{Failed: id}})
		})
	}
}

// Detector runs heartbeat-based failure detection for one TCP peer: it
// probes every known peer on an interval and, when a peer's silence exceeds
// the timeout, injects a failure notification into the local node (each peer
// detects independently; the §6 recovery protocol tolerates duplicate and
// unsynchronized announcements).
type Detector struct {
	peer     *TCPPeer
	interval time.Duration
	timeout  time.Duration

	mu       sync.Mutex
	lastSeen map[mutex.SiteID]time.Time
	declared map[mutex.SiteID]bool

	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}
}

// StartDetector begins heartbeating for the peer. interval is the probe
// period; timeout is the silence threshold for declaring a peer dead
// (typically 3–5 intervals).
func (p *TCPPeer) StartDetector(interval, timeout time.Duration) *Detector {
	d := &Detector{
		peer:     p,
		interval: interval,
		timeout:  timeout,
		lastSeen: make(map[mutex.SiteID]time.Time),
		declared: make(map[mutex.SiteID]bool),
		stopC:    make(chan struct{}),
		doneC:    make(chan struct{}),
	}
	now := time.Now()
	for _, id := range p.peerList() {
		d.lastSeen[id] = now
	}
	p.setHeartbeatSink(d)
	go d.run()
	return d
}

// Stop terminates the detector and waits for its loop to exit.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stopC) })
	<-d.doneC
}

// observe records a heartbeat (called from the peer's read loops).
func (d *Detector) observe(from mutex.SiteID) {
	d.mu.Lock()
	d.lastSeen[from] = time.Now()
	d.mu.Unlock()
}

// track starts monitoring a (newly joined or restarted) peer with a fresh
// grace period; a previous death declaration is forgiven so a rolling
// restart can rejoin without waiting out the old silence.
func (d *Detector) track(id mutex.SiteID) {
	d.mu.Lock()
	d.lastSeen[id] = time.Now()
	delete(d.declared, id)
	d.mu.Unlock()
}

// forget stops monitoring a retired peer entirely: no probes, no pending
// timeout, no death declaration for a site nobody's req_set contains.
func (d *Detector) forget(id mutex.SiteID) {
	d.mu.Lock()
	delete(d.lastSeen, id)
	delete(d.declared, id)
	d.mu.Unlock()
}

// Dead returns the peers this detector has declared failed.
func (d *Detector) Dead() []mutex.SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]mutex.SiteID, 0, len(d.declared))
	for id := range d.declared {
		out = append(out, id)
	}
	return out
}

func (d *Detector) run() {
	defer close(d.doneC)
	// A jittered timer instead of a fixed ticker: N peers sharing an
	// interval would otherwise probe (and time each other out) in lockstep.
	timer := time.NewTimer(d.jittered())
	defer timer.Stop()
	self := d.peer.node.ID()
	for {
		select {
		case <-timer.C:
			timer.Reset(d.jittered())
			// Probe only peers not yet declared dead: heartbeating a corpse
			// just churns the outbound reconnect backoff forever. The
			// address book is snapshotted under its own lock — membership
			// changes (AddPeer/RemovePeer) race with this loop.
			known := d.peer.peerList()
			d.mu.Lock()
			targets := make([]mutex.SiteID, 0, len(known))
			for _, id := range known {
				if !d.declared[id] {
					targets = append(targets, id)
				}
			}
			d.mu.Unlock()
			for _, id := range targets {
				// Best effort: an unreachable peer shows up as silence.
				_ = d.peer.Send(mutex.Envelope{From: self, To: id, Msg: heartbeatMsg{From: self}})
			}
			now := time.Now()
			var dead []mutex.SiteID
			d.mu.Lock()
			for id, seen := range d.lastSeen {
				if !d.declared[id] && now.Sub(seen) > d.timeout {
					d.declared[id] = true
					dead = append(dead, id)
				}
			}
			d.mu.Unlock()
			// Announce outside the detector lock: every instantiated
			// resource at this peer rebuilds its quorums around the crash.
			for _, id := range dead {
				d.peer.injectFailure(id)
			}
		case <-d.stopC:
			return
		}
	}
}

// jittered spreads the probe period ±10% around the configured interval.
func (d *Detector) jittered() time.Duration {
	spread := 0.9 + 0.2*rand.Float64()
	return time.Duration(float64(d.interval) * spread)
}
