package transport

// White-box fuzzing of the TCP read path's frame decoding: whatever bytes a
// peer (or an attacker holding the port) sends, the wire decoders must
// return an error — never panic the reader goroutine. Every input runs
// through both codecs, since an attacker controls which decoder a
// connection gets (the handshake trusts the first byte).

import (
	"bytes"
	"testing"

	_ "dqmx/internal/core" // registers the protocol's wire messages
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// fuzzEnvelopes is realistic wire traffic for seeding: transport-level
// messages, sequenced reliability frames, and a standalone cumulative ack.
func fuzzEnvelopes() [][]mutex.Envelope {
	return [][]mutex.Envelope{
		{{From: 1, To: 2, Msg: heartbeatMsg{From: 1}}},
		{{Resource: "orders", From: 3, To: 0, Msg: mutex.FailureMsg{Failed: 5}}},
		{
			{From: 0, To: 1, Msg: heartbeatMsg{From: 0}},
			{From: 1, To: 0, Msg: mutex.FailureMsg{Failed: 2}},
		},
		{{Resource: "orders", From: 2, To: 4, Msg: mutex.FailureMsg{Failed: 1}, Seq: 7, Ack: 3}},
		{{From: 4, To: 2, Ack: 9}},
		{
			{From: 0, To: 1, Msg: mutex.FailureMsg{Failed: 3}, Seq: 1},
			{From: 1, To: 0, Ack: 1},
			{From: 0, To: 1, Msg: mutex.FailureMsg{Failed: 3}, Seq: 2, Ack: 5},
		},
	}
}

// fuzzSeeds encodes the seed traffic through both codecs, so the fuzzer
// mutates realistic gob and binary streams rather than noise.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte
	for _, c := range []wire.Codec{wire.Gob(), wire.Binary()} {
		for _, envs := range fuzzEnvelopes() {
			var buf bytes.Buffer
			enc := c.NewEncoder(&buf)
			for _, env := range envs {
				if err := enc.Encode(env); err != nil {
					t.Fatalf("%s: encode seed: %v", c.Name(), err)
				}
			}
			closeCodec(enc)
			seeds = append(seeds, buf.Bytes())
		}
	}
	return seeds
}

func FuzzEnvelopeDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Truncations exercise the mid-frame EOF paths.
		if len(seed) > 3 {
			f.Add(seed[:len(seed)/2])
			f.Add(seed[:len(seed)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []wire.Codec{wire.Gob(), wire.Binary()} {
			dec := c.NewDecoder(bytes.NewReader(data))
			// Decode a few frames like the read loop would; any error ends
			// the connection, and a panic escaping Decode fails the fuzz run
			// by crashing the process.
			for i := 0; i < 4; i++ {
				if _, err := dec.Decode(); err != nil {
					break
				}
			}
			closeCodec(dec)
		}
	})
}

// FuzzAckFrameDecode goes one layer deeper than FuzzEnvelopeDecode: frames
// that do decode are fed through a live reliable-delivery endpoint, so
// adversarial Seq/Ack values (huge acks, duplicate seqs, gaps, ack-only
// frames with garbage metadata) must neither panic the sublayer nor wedge
// its bookkeeping.
func FuzzAckFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []wire.Codec{wire.Gob(), wire.Binary()} {
			rel := newReliable(func(env mutex.Envelope) error { return nil }, nil)
			rel.start(senderFunc(func(env mutex.Envelope) error { return nil }))
			dec := c.NewDecoder(bytes.NewReader(data))
			for i := 0; i < 8; i++ {
				env, err := dec.Decode()
				if err != nil {
					break
				}
				if err := rel.Receive(env); err != nil {
					break
				}
			}
			closeCodec(dec)
			// The endpoint must remain usable after hostile input.
			if err := rel.Send(mutex.Envelope{From: 100, To: 101, Msg: mutex.FailureMsg{Failed: 1}}); err != nil {
				t.Fatalf("%s: endpoint wedged after fuzzed input: %v", c.Name(), err)
			}
			rel.Close()
		}
	})
}

// TestDecodeTruncated pins the non-fuzz guarantee: truncated and garbage
// frames error out of both decoders without panicking.
func TestDecodeTruncated(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut < len(seed); cut += 1 + len(seed)/16 {
			for _, c := range []wire.Codec{wire.Gob(), wire.Binary()} {
				dec := c.NewDecoder(bytes.NewReader(seed[:cut]))
				for i := 0; i < 16; i++ {
					if _, err := dec.Decode(); err != nil {
						break
					}
				}
				closeCodec(dec)
			}
		}
	}
	dec := wire.Gob().NewDecoder(bytes.NewReader([]byte{0x07, 0xff, 0x81, 0x03, 0x01, 0x01}))
	for i := 0; i < 4; i++ {
		if _, err := dec.Decode(); err != nil {
			return
		}
	}
	t.Fatal("garbage stream decoded without error")
}
