package transport

// White-box fuzzing of the TCP read path's frame decoding: whatever bytes a
// peer (or an attacker holding the port) sends, decodeWireEnvelope must
// return an error — never panic the reader goroutine.

import (
	"bytes"
	"encoding/gob"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
)

// fuzzSeeds produces valid single- and multi-frame gob streams to seed the
// corpus, so the fuzzer mutates realistic wire traffic rather than noise.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	core.RegisterGobMessages()
	RegisterGobMessages()
	var seeds [][]byte
	encode := func(envs ...wireEnvelope) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, we := range envs {
			if err := enc.Encode(we); err != nil {
				t.Fatalf("encode seed: %v", err)
			}
		}
		seeds = append(seeds, buf.Bytes())
	}
	encode(wireEnvelope{From: 1, To: 2, Msg: heartbeatMsg{From: 1}})
	encode(wireEnvelope{Resource: "orders", From: 3, To: 0, Msg: mutex.FailureMsg{Failed: 5}})
	encode(
		wireEnvelope{From: 0, To: 1, Msg: heartbeatMsg{From: 0}},
		wireEnvelope{From: 1, To: 0, Msg: mutex.FailureMsg{Failed: 2}},
	)
	// Sequenced frames as the reliable-delivery sublayer emits them: a
	// payload with seq/ack metadata, and a standalone cumulative ack (no
	// payload at all).
	encode(wireEnvelope{Resource: "orders", From: 2, To: 4, Msg: mutex.FailureMsg{Failed: 1}, Seq: 7, Ack: 3})
	encode(wireEnvelope{From: 4, To: 2, Ack: 9})
	encode(
		wireEnvelope{From: 0, To: 1, Msg: mutex.FailureMsg{Failed: 3}, Seq: 1},
		wireEnvelope{From: 1, To: 0, Ack: 1},
		wireEnvelope{From: 0, To: 1, Msg: mutex.FailureMsg{Failed: 3}, Seq: 2, Ack: 5},
	)
	return seeds
}

func FuzzEnvelopeDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Truncations exercise the mid-frame EOF paths.
		if len(seed) > 3 {
			f.Add(seed[:len(seed)/2])
			f.Add(seed[:len(seed)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := gob.NewDecoder(bytes.NewReader(data))
		// Decode a few frames like the read loop would; any error ends the
		// connection, and a panic escaping decodeWireEnvelope fails the fuzz
		// run by crashing the process.
		for i := 0; i < 4; i++ {
			if _, err := decodeWireEnvelope(dec); err != nil {
				break
			}
		}
	})
}

// FuzzAckFrameDecode goes one layer deeper than FuzzEnvelopeDecode: frames
// that do decode are fed through a live reliable-delivery endpoint, so
// adversarial Seq/Ack values (huge acks, duplicate seqs, gaps, ack-only
// frames with garbage metadata) must neither panic the sublayer nor wedge
// its bookkeeping.
func FuzzAckFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel := newReliable(func(env mutex.Envelope) error { return nil }, nil)
		rel.start(senderFunc(func(env mutex.Envelope) error { return nil }))
		defer rel.Close()
		dec := gob.NewDecoder(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			we, err := decodeWireEnvelope(dec)
			if err != nil {
				break
			}
			if err := rel.Receive(mutex.Envelope{
				Resource: we.Resource,
				From:     we.From,
				To:       we.To,
				Msg:      we.Msg,
				Seq:      we.Seq,
				Ack:      we.Ack,
			}); err != nil {
				break
			}
		}
		// The endpoint must remain usable after hostile input.
		if err := rel.Send(mutex.Envelope{From: 100, To: 101, Msg: mutex.FailureMsg{Failed: 1}}); err != nil {
			t.Fatalf("endpoint wedged after fuzzed input: %v", err)
		}
	})
}

// TestDecodeWireEnvelopeTruncated pins the non-fuzz guarantee: truncated and
// garbage frames error out without panicking.
func TestDecodeWireEnvelopeTruncated(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut < len(seed); cut += 1 + len(seed)/16 {
			dec := gob.NewDecoder(bytes.NewReader(seed[:cut]))
			for {
				if _, err := decodeWireEnvelope(dec); err != nil {
					break
				}
			}
		}
	}
	dec := gob.NewDecoder(bytes.NewReader([]byte{0x07, 0xff, 0x81, 0x03, 0x01, 0x01}))
	for i := 0; i < 4; i++ {
		if _, err := decodeWireEnvelope(dec); err != nil {
			return
		}
	}
	t.Fatal("garbage stream decoded without error")
}
