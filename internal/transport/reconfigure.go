package transport

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dqmx/internal/coterie"
	"dqmx/internal/membership"
	"dqmx/internal/mutex"
	"dqmx/internal/resource"
)

// ErrNoMembership is returned by Reconfigure on a cluster whose algorithm
// does not expose its coterie (membership tracking needs the epoch-0
// assignment as the old side of the first handover).
var ErrNoMembership = errors.New("transport: cluster has no membership state (algorithm does not expose its coterie)")

// Reconfigure moves the live cluster onto the coterie cons builds for n
// sites, advancing the configuration epoch by one. The switch is a
// joint-quorum handover (see internal/membership):
//
//  1. Joint phase — the handover is published (new protocol instances
//     adopt joint req_sets from here on), joining sites are started so
//     their arbiters exist before traffic reaches them, and every live
//     instance's req_set becomes the union of an old- and a new-coterie
//     quorum. Any two critical-section entries keep intersecting
//     throughout, whichever side of the switch granted them.
//  2. Settle barrier — waits until no site still holds the critical
//     section under a pure old-epoch req_set (a site inside the CS defers
//     its swap until Exit).
//  3. Final phase — the new configuration is published and every surviving
//     instance's req_set becomes its pure new-coterie quorum.
//  4. Drain & retire — departing sites stop accepting acquires, finish
//     what they hold, and are then shut down and dropped from the roster.
//
// Reconfigure blocks until the switch completes or ctx is done. Returning
// with ctx's error leaves the cluster in whatever phase it reached — every
// phase is safe indefinitely (joint req_sets intersect both coteries), and
// a retry with the same target resumes the switch. Reconfigurations are
// serialized; concurrent calls queue.
func (c *Cluster) Reconfigure(ctx context.Context, cons coterie.Construction, n int) error {
	if cons == nil {
		return errors.New("transport: Reconfigure requires a coterie construction")
	}
	if n < 1 {
		return fmt.Errorf("transport: Reconfigure to %d sites", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c.reconfMu.Lock()
	defer c.reconfMu.Unlock()

	c.mu.Lock()
	old := c.cfg
	oldCons := c.cons
	var probe mutex.Site
	if set := c.siteSets[resource.Default]; len(set) > 0 {
		probe = set[0]
	}
	c.mu.Unlock()
	if old.Coterie == nil {
		return ErrNoMembership
	}
	if _, ok := probe.(mutex.Reconfigurable); !ok {
		return ErrNotReconfigurable
	}

	target, err := membership.NewConfig(old.Epoch+1, cons, n)
	if err != nil {
		return err
	}
	h, err := membership.PlanHandover(old, target)
	if err != nil {
		return err
	}
	h.OldCons, h.NewCons = oldCons, cons
	if err := h.Validate(); err != nil {
		return err
	}

	// Phase 1: joint.
	c.mu.Lock()
	c.handover = h
	c.stage.Store(uint64(membership.JointStage(old.Epoch)))
	joint := c.liveMembershipLocked()
	c.mu.Unlock()
	if h.JointN() > c.N() {
		if err := c.grow(h.JointN()); err != nil {
			return err
		}
	}
	if err := c.sweepMembership(ctx, h.JointN(), joint); err != nil {
		return err
	}

	// Phase 2: settle barrier.
	if err := c.awaitSettled(ctx, h.JointN()); err != nil {
		return err
	}

	// Phase 3: final.
	c.mu.Lock()
	c.cfg = target
	c.cons = cons
	c.handover = nil
	c.stage.Store(uint64(membership.StableStage(target.Epoch)))
	final := c.liveMembershipLocked()
	c.mu.Unlock()
	if err := c.sweepMembership(ctx, target.N(), final); err != nil {
		return err
	}

	// Phase 4: drain and retire departing sites.
	if target.N() < h.JointN() {
		if err := c.retire(ctx, target.N(), h.JointN()); err != nil {
			return err
		}
	}
	return nil
}

// grow extends the roster to `to` sites: new managers (and their eager
// default-resource nodes) are built under the published membership, then a
// new member view is swapped in. Joining sites are fully wired before any
// survivor learns of them, so their arbiters never miss traffic.
func (c *Cluster) grow(to int) error {
	view := c.members.Load()
	next := &memberView{
		managers: append(append([]*resource.Manager(nil), view.managers...), make([]*resource.Manager, to-len(view.managers))...),
		nodes:    append(append([]*Node(nil), view.nodes...), make([]*Node, to-len(view.nodes))...),
	}
	for i := len(view.managers); i < to; i++ {
		id := mutex.SiteID(i)
		if c.rel != nil {
			// The ID may have belonged to a site retired (or crashed) under
			// an earlier configuration; the joining site starts fresh streams.
			c.rel.ReviveSite(id)
		}
		mgr := c.newManager(id, c.policy)
		inst, err := mgr.Instance(resource.Default)
		if err != nil {
			mgr.Close()
			return fmt.Errorf("transport: start joining site %d: %w", id, err)
		}
		next.managers[i] = mgr
		next.nodes[i] = inst.(*Node)
	}
	c.members.Store(next)
	return nil
}

// sweepMembership installs the live membership on every instantiated
// protocol instance of sites 0..count-1. Instances that closed mid-sweep
// (a crash, a racing shutdown) are skipped: a stopped machine holds no
// quorum. Instances created concurrently adopt the membership at birth via
// siteFor, so the sweep and the lazy path cannot miss between them.
func (c *Cluster) sweepMembership(ctx context.Context, count int, live liveMembership) error {
	for i := 0; i < count; i++ {
		id := mutex.SiteID(i)
		mgr := c.manager(id)
		if mgr == nil {
			continue
		}
		var firstErr error
		mgr.Each(func(name string, inst resource.Instance) {
			node, ok := inst.(*Node)
			if !ok {
				return
			}
			err := node.Reconfigure(live.n, live.quorum(id), live.avoid(id), live.stage)
			if err != nil && !errors.Is(err, ErrClosed) && firstErr == nil {
				firstErr = fmt.Errorf("transport: reconfigure site %d resource %q: %w", id, name, err)
			}
		})
		if firstErr != nil {
			return firstErr
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// awaitSettled polls until every instance of sites 0..count-1 runs on its
// most recently installed req_set — i.e. no critical section is still held
// under a pre-handover quorum — or ctx is done.
func (c *Cluster) awaitSettled(ctx context.Context, count int) error {
	for {
		settled := true
		for i := 0; i < count && settled; i++ {
			mgr := c.manager(mutex.SiteID(i))
			if mgr == nil {
				continue
			}
			mgr.Each(func(name string, inst resource.Instance) {
				node, ok := inst.(*Node)
				if ok && !node.MembershipSettled() {
					settled = false
				}
			})
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// retire drains and shuts down sites from..to-1: new acquires at them fail
// immediately, in-flight work completes (the §3.1 release path hands their
// locks to the next waiters), then their managers close, their reliability
// streams are severed, and the roster shrinks. Survivors already excluded
// them from every req_set during the final sweep.
func (c *Cluster) retire(ctx context.Context, from, to int) error {
	for i := from; i < to; i++ {
		if mgr := c.manager(mutex.SiteID(i)); mgr != nil {
			mgr.Each(func(name string, inst resource.Instance) {
				if node, ok := inst.(*Node); ok {
					node.BeginRetire()
				}
			})
		}
	}
	for {
		quiet := true
		for i := from; i < to && quiet; i++ {
			mgr := c.manager(mutex.SiteID(i))
			if mgr == nil {
				continue
			}
			mgr.Each(func(name string, inst resource.Instance) {
				if node, ok := inst.(*Node); ok && !node.Quiesced() {
					quiet = false
				}
			})
		}
		if quiet {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	// Quiesced covers the protocol machines, not the wire: a departing
	// site's final release or transfer may still be unacknowledged in the
	// reliability sublayer. Severing its streams now would drop that message
	// and strand the lock it hands over, so wait until every departing
	// site's outbound streams drain.
	if c.rel != nil {
		for {
			drained := true
			for i := from; i < to && drained; i++ {
				drained = c.rel.Drained(mutex.SiteID(i))
			}
			if drained {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
	}
	view := c.members.Load()
	next := &memberView{
		managers: append([]*resource.Manager(nil), view.managers[:from]...),
		nodes:    append([]*Node(nil), view.nodes[:from]...),
	}
	c.members.Store(next)
	for i := from; i < to && i < len(view.managers); i++ {
		view.managers[i].Close()
		if c.rel != nil {
			c.rel.PeerFailed(mutex.SiteID(i))
		}
	}
	return nil
}
