package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"dqmx/internal/wire"
)

// Defaults for the reconnect policy of broken outbound connections: a bounded
// exponential-backoff dial loop, so a transient peer restart is absorbed by
// the transport instead of surfacing as a protocol error. The total retry
// window is ~1.3s of backoff plus dial timeouts; a peer silent for longer is
// the failure detector's problem, not the sender's.
const (
	dialTimeout       = 5 * time.Second
	reconnectAttempts = 6
	reconnectBase     = 25 * time.Millisecond
	reconnectMax      = 500 * time.Millisecond
)

// WireConfig gathers every knob of the byte layer under one roof: which
// codec frames envelopes, the synthetic per-hop latency, and the reconnect
// policy. The zero value means "binary codec, no delay, default reconnect
// policy"; withDefaults resolves it.
type WireConfig struct {
	// Codec frames envelopes on TCP connections. Nil selects the binary
	// wire-v1 codec; pin wire.Gob() to interoperate with peers that predate
	// the handshake (they speak raw gob and nothing else).
	Codec wire.Codec
	// LinkDelay, when positive, holds every outbound batch for that long
	// before it reaches the wire — a deterministic per-hop latency for
	// benchmarking on loopback, where the real network delay is too small
	// and too noisy to separate a T handover from a 2T one. It delays
	// whole batches, not bytes: queueing ahead of the sleep still
	// coalesces, so it models link latency, not bandwidth.
	LinkDelay time.Duration
	// DialTimeout bounds one connection attempt, handshake included.
	DialTimeout time.Duration
	// ReconnectAttempts is the dial budget per batch delivery.
	ReconnectAttempts int
	// ReconnectBase and ReconnectMax bound the exponential backoff between
	// dial attempts.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
}

// withDefaults resolves the zero values.
func (c WireConfig) withDefaults() WireConfig {
	if c.Codec == nil {
		c.Codec = wire.Binary()
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = dialTimeout
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = reconnectAttempts
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = reconnectBase
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = reconnectMax
	}
	return c
}

// Connection handshake. A sender offering wire version ≥1 opens with a
// 5-byte preamble — 0x00, "DQX", offered version — and waits for the
// receiver's 1-byte answer: min(offered, receiver's own version). Both sides
// then speak the answered version. A v0 (gob) sender writes no preamble at
// all: its stream is byte-identical to the pre-handshake wire format, which
// is what lets it talk to peers that predate the handshake entirely. The
// receiver tells the two cases apart by the first byte — a gob stream opens
// with a non-zero message length, so 0x00 can only be a preamble.
const (
	preambleByte = 0x00
	preambleLen  = 5
)

var preambleMagic = [3]byte{'D', 'Q', 'X'}

// negotiateOutbound runs the dialer's half of the handshake on a fresh
// connection and returns the encoder for the negotiated version. bw must be
// a fresh bufio.Writer onto conn. On error the connection is unusable.
func negotiateOutbound(conn net.Conn, bw *bufio.Writer, local wire.Codec, timeout time.Duration) (wire.Encoder, error) {
	if local.Version() == wire.VersionGob {
		return local.NewEncoder(bw), nil
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	pre := [preambleLen]byte{preambleByte, preambleMagic[0], preambleMagic[1], preambleMagic[2], local.Version()}
	if _, err := bw.Write(pre[:]); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	var reply [1]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return nil, fmt.Errorf("transport: handshake reply: %w", err)
	}
	if reply[0] > local.Version() {
		return nil, fmt.Errorf("transport: peer answered wire version %d above offered %d", reply[0], local.Version())
	}
	codec, err := wire.ForVersion(reply[0])
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return codec.NewEncoder(bw), nil
}

// negotiateInbound runs the listener's half: it sniffs the first byte to
// tell a preamble from a bare gob stream, answers the version pick, and
// returns the decoder for whatever the connection will carry. br must be a
// fresh bufio.Reader over conn.
func negotiateInbound(conn net.Conn, br *bufio.Reader, local wire.Codec, timeout time.Duration) (wire.Decoder, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] != preambleByte {
		// A peer that sent no preamble speaks raw gob, old build or pinned.
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return nil, err
		}
		return wire.Gob().NewDecoder(br), nil
	}
	var pre [preambleLen]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, err
	}
	if [3]byte{pre[1], pre[2], pre[3]} != preambleMagic {
		return nil, fmt.Errorf("transport: bad handshake magic %q", pre[1:4])
	}
	offered := pre[4]
	if offered == wire.VersionGob {
		return nil, fmt.Errorf("transport: preamble offered wire version 0 (v0 senders send no preamble)")
	}
	answer := offered
	if v := local.Version(); v < answer {
		answer = v
	}
	if _, err := conn.Write([]byte{answer}); err != nil {
		return nil, err
	}
	codec, err := wire.ForVersion(answer)
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return codec.NewDecoder(br), nil
}

// closeCodec returns an encoder's or decoder's pooled scratch, if it holds
// any, when its connection dies.
func closeCodec(v any) {
	if c, ok := v.(io.Closer); ok {
		_ = c.Close()
	}
}
