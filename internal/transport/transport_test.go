package transport_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/transport"
)

// TestInProcMutualExclusion hammers an in-process cluster from every site
// concurrently and checks that the critical section is exclusive.
func TestInProcMutualExclusion(t *testing.T) {
	const (
		n       = 9
		perSite = 20
	)
	cluster, err := transport.NewCluster(core.Algorithm{}, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var inCS atomic.Int32
	var counter int // protected by the distributed mutex only
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		id := mutex.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(id)
			for k := 0; k < perSite; k++ {
				if err := node.Acquire(context.Background()); err != nil {
					errs <- fmt.Errorf("site %d acquire: %w", id, err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					errs <- fmt.Errorf("site %d: %d sites in CS", id, got)
				}
				counter++
				inCS.Add(-1)
				node.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if counter != n*perSite {
		t.Errorf("counter = %d, want %d (lost updates)", counter, n*perSite)
	}
}

func TestInProcTreeQuorums(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{Construction: coterie.Tree{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for k := 0; k < 5; k++ {
		for i := 0; i < 7; i++ {
			node := cluster.Node(mutex.SiteID(i))
			if err := node.Acquire(context.Background()); err != nil {
				t.Fatal(err)
			}
			node.Release()
		}
	}
}

func TestAcquireBusy(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	node := cluster.Node(0)
	if err := node.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := node.Acquire(ctx); !errors.Is(err, transport.ErrBusy) {
		t.Fatalf("second acquire = %v, want ErrBusy", err)
	}
	node.Release()
}

func TestAcquireContextCancelled(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	// Site 0 takes the CS; site 1's acquire must respect its deadline, and
	// the abandoned grant must be auto-released so site 0 can re-acquire.
	if err := cluster.Node(0).Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := cluster.Node(1).Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire = %v, want deadline exceeded", err)
	}
	cluster.Node(0).Release()
	// The cancelled site's grant is handed back automatically; site 0 must
	// be able to go again.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := cluster.Node(0).Acquire(ctx2); err != nil {
		t.Fatalf("re-acquire after abandoned grant: %v", err)
	}
	cluster.Node(0).Release()
}

func TestNodeCloseUnblocks(t *testing.T) {
	cluster, err := transport.NewCluster(core.Algorithm{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	node := cluster.Node(0)
	cluster.Close()
	if err := node.Acquire(context.Background()); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("acquire on closed node = %v, want ErrClosed", err)
	}
}

// TestTCPCluster runs a three-site cluster over real loopback TCP.
func TestTCPCluster(t *testing.T) {
	const n = 3
	alg := core.Algorithm{Construction: coterie.Majority{}}
	sites, err := alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*transport.TCPPeer, n)
	addrs := make(map[mutex.SiteID]string, n)
	// First pass: listeners on ephemeral ports.
	for i := 0; i < n; i++ {
		p, err := transport.NewTCPPeer(sites[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		addrs[mutex.SiteID(i)] = p.Addr()
	}
	// Tear down and rebuild with full address books (simplest wiring for an
	// ephemeral-port test).
	for _, p := range peers {
		p.Close()
	}
	sites, err = alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		book := make(map[mutex.SiteID]string, n-1)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := transport.NewTCPPeer(sites[i], addrs[mutex.SiteID(i)], book)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	var inCS atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := peers[i].Node()
			for k := 0; k < 5; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err := node.Acquire(ctx)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("site %d: %w", i, err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					errs <- fmt.Errorf("site %d: %d sites in CS over TCP", i, got)
				}
				time.Sleep(time.Millisecond)
				inCS.Add(-1)
				node.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
