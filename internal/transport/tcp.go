package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

// TCPPeer hosts one site of a cluster spread across processes or machines.
// Envelopes travel as gob streams over one outbound TCP connection per
// destination, which preserves the protocol's per-channel FIFO requirement.
// Algorithms must register their message types with encoding/gob first
// (core.RegisterGobMessages does this for the delay-optimal protocol).
type TCPPeer struct {
	node     *Node
	listener net.Listener
	peers    map[mutex.SiteID]string
	metrics  *obs.Metrics // nil unless metrics collection was requested

	mu      sync.Mutex
	conns   map[mutex.SiteID]*gob.Encoder
	raw     map[mutex.SiteID]net.Conn
	inbound map[net.Conn]bool
	hbSink  *Detector // set by StartDetector; receives heartbeat traffic

	stopOnce sync.Once
	stopC    chan struct{}
	wg       sync.WaitGroup
}

// NewTCPPeer starts a peer for the given site: it listens on listenAddr for
// inbound protocol traffic and dials the peer addresses lazily on first
// send. peers maps every other site to its listen address.
func NewTCPPeer(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string) (*TCPPeer, error) {
	return NewTCPPeerObserved(site, listenAddr, peers, nil, nil)
}

// NewTCPPeerObserved starts a peer whose node feeds the given metrics
// collector (exposed through Snapshot) and raw event sink. Either may be
// nil; when both are nil the event path reduces to a per-event nil check.
func NewTCPPeerObserved(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string, m *obs.Metrics, sink obs.Sink) (*TCPPeer, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	p := &TCPPeer{
		listener: ln,
		peers:    make(map[mutex.SiteID]string, len(peers)),
		metrics:  m,
		conns:    make(map[mutex.SiteID]*gob.Encoder),
		raw:      make(map[mutex.SiteID]net.Conn),
		inbound:  make(map[net.Conn]bool),
		stopC:    make(chan struct{}),
	}
	for id, addr := range peers {
		p.peers[id] = addr
	}
	combined := sink
	if m != nil {
		combined = obs.Tee(m.Observe, sink)
	}
	p.node = NewNodeObserved(site, p, combined)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Snapshot returns the peer's aggregated live metrics. ok is false when the
// peer was built without a metrics collector.
func (p *TCPPeer) Snapshot() (snap obs.Snapshot, ok bool) {
	if p.metrics == nil {
		return obs.Snapshot{}, false
	}
	return p.metrics.Snapshot(), true
}

// Node returns the hosted node for Acquire/Release.
func (p *TCPPeer) Node() *Node { return p.node }

// Addr returns the peer's actual listen address (useful with ":0").
func (p *TCPPeer) Addr() string { return p.listener.Addr().String() }

// wireEnvelope is the on-the-wire representation.
type wireEnvelope struct {
	From mutex.SiteID
	To   mutex.SiteID
	Msg  mutex.Message
}

// Send implements Sender: one persistent connection per destination, dialed
// lazily, with a single retry on a broken pipe.
func (p *TCPPeer) Send(env mutex.Envelope) error {
	for attempt := 0; attempt < 2; attempt++ {
		enc, err := p.encoderFor(env.To)
		if err != nil {
			return err
		}
		if err = enc.Encode(wireEnvelope{From: env.From, To: env.To, Msg: env.Msg}); err == nil {
			return nil
		}
		p.dropConn(env.To)
	}
	return fmt.Errorf("transport: send to site %d failed", env.To)
}

func (p *TCPPeer) encoderFor(id mutex.SiteID) (*gob.Encoder, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if enc, ok := p.conns[id]; ok {
		return enc, nil
	}
	addr, ok := p.peers[id]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", id)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial peer %d: %w", id, err)
	}
	enc := gob.NewEncoder(conn)
	p.conns[id] = enc
	p.raw[id] = conn
	return enc, nil
}

func (p *TCPPeer) dropConn(id mutex.SiteID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if conn, ok := p.raw[id]; ok {
		_ = conn.Close()
	}
	delete(p.conns, id)
	delete(p.raw, id)
}

func (p *TCPPeer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.stopC:
				return
			default:
				return // listener broke; the peer is effectively down
			}
		}
		p.mu.Lock()
		p.inbound[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

func (p *TCPPeer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.inbound, conn)
		p.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var we wireEnvelope
		if err := dec.Decode(&we); err != nil {
			return
		}
		if hb, ok := we.Msg.(heartbeatMsg); ok {
			p.mu.Lock()
			sink := p.hbSink
			p.mu.Unlock()
			if sink != nil {
				sink.observe(hb.From)
			}
			continue
		}
		p.node.Inject(mutex.Envelope{From: we.From, To: we.To, Msg: we.Msg})
	}
}

// setHeartbeatSink routes incoming heartbeats to the detector.
func (p *TCPPeer) setHeartbeatSink(d *Detector) {
	p.mu.Lock()
	p.hbSink = d
	p.mu.Unlock()
}

// Close shuts the peer down: the node loop, the listener, and every
// connection.
func (p *TCPPeer) Close() {
	p.stopOnce.Do(func() { close(p.stopC) })
	p.node.Close()
	_ = p.listener.Close()
	p.mu.Lock()
	for id, conn := range p.raw {
		_ = conn.Close()
		delete(p.conns, id)
		delete(p.raw, id)
	}
	for conn := range p.inbound {
		_ = conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
