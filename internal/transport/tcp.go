package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
	"dqmx/internal/wire"
)

// TCPConfig configures a TCP peer.
type TCPConfig struct {
	// Self is the hosted site's identifier.
	Self mutex.SiteID
	// Factory builds this site's machine for a resource. It is called once
	// per resource name — eagerly for the default resource, lazily for
	// named locks (on first Lock or first inbound envelope).
	Factory func(name string) (mutex.Site, error)
	// ListenAddr is the address to listen on for inbound protocol traffic.
	ListenAddr string
	// Peers maps every other site to its listen address. The book may hold
	// more sites than the current coterie uses: a deployment that plans to
	// grow lists the joiners' addresses from the start.
	Peers map[mutex.SiteID]string
	// N is the protocol cluster size. Zero means len(Peers)+1 — right only
	// when the address book holds exactly the current members.
	N int
	// Metrics, when non-nil, aggregates this peer's events.
	Metrics *obs.Metrics
	// Observer, when non-nil, receives the raw event stream.
	Observer obs.Sink
	// Policy bounds named-lock resource names.
	Policy resource.Policy
	// Wire configures the byte layer: codec, link delay, reconnect policy.
	Wire WireConfig
}

// TCPPeer hosts one site of a cluster spread across processes or machines
// and multiplexes any number of named locks over it. Envelopes travel as
// framed codec streams (wire v1 binary by default, negotiated per connection
// at handshake) over one outbound TCP connection per destination; a
// dedicated writer goroutine per destination preserves the protocol's
// per-channel FIFO requirement and coalesces envelopes queued by different
// resources and different destinations' interleavings into one buffered
// write, so adding locks does not multiply syscalls. Message types register
// themselves with internal/wire when their protocol package is imported —
// there is no separate registration step.
type TCPPeer struct {
	self     mutex.SiteID
	manager  *resource.Manager
	node     *Node     // default-resource instance, kept for the legacy Node API
	rel      *reliable // the reliable-delivery sublayer over the raw writers
	listener net.Listener
	peers    map[mutex.SiteID]string
	metrics  *obs.Metrics // nil unless metrics collection was requested
	wire     WireConfig   // resolved byte-layer configuration

	// stage is the membership stage stamped onto every outbound envelope
	// (see internal/membership). It starts at the epoch-0 stable stage and
	// advances via ApplyMembership when an operator drives a handover.
	// stageHint tracks the newest stage heard from other peers; memberN the
	// cluster size the current stage was applied with.
	stage     atomic.Uint64
	stageHint atomic.Uint64
	memberN   atomic.Int64

	mu      sync.Mutex
	outs    map[mutex.SiteID]*outbound
	inbound map[net.Conn]bool
	hbSink    *Detector                     // set by StartDetector; receives heartbeat traffic
	dropOut   func(env mutex.Envelope) bool // test hook: writer-side deterministic frame drops
	staleTold map[mutex.SiteID]uint64       // highest stage each peer was told it lags behind

	stopOnce sync.Once
	stopC    chan struct{}
	wg       sync.WaitGroup
}

// NewTCPPeer starts a single-resource peer for the given site: it listens on
// listenAddr for inbound protocol traffic and dials the peer addresses
// lazily on first send. peers maps every other site to its listen address.
func NewTCPPeer(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string) (*TCPPeer, error) {
	return NewTCPPeerObserved(site, listenAddr, peers, nil, nil)
}

// NewTCPPeerObserved starts a single-resource peer whose node feeds the
// given metrics collector (exposed through Snapshot) and raw event sink.
// Either may be nil. Peers built this way serve only the default resource —
// Lock returns an error — because a lone site machine cannot instantiate
// further protocol instances; use NewTCPPeerConfig with a Factory for named
// locks.
func NewTCPPeerObserved(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string, m *obs.Metrics, sink obs.Sink) (*TCPPeer, error) {
	used := false
	return NewTCPPeerConfig(TCPConfig{
		Self: site.ID(),
		Factory: func(name string) (mutex.Site, error) {
			if name != resource.Default {
				return nil, fmt.Errorf("transport: peer was built single-resource; named lock %q needs NewTCPPeerConfig", name)
			}
			if used {
				return nil, fmt.Errorf("transport: default resource already instantiated")
			}
			used = true
			return site, nil
		},
		ListenAddr: listenAddr,
		Peers:      peers,
		Metrics:    m,
		Observer:   sink,
	})
}

// NewTCPPeerConfig starts a multi-resource peer with explicit configuration.
func NewTCPPeerConfig(cfg TCPConfig) (*TCPPeer, error) {
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
	}
	p := &TCPPeer{
		self:     cfg.Self,
		listener: ln,
		peers:    make(map[mutex.SiteID]string, len(cfg.Peers)),
		metrics:  cfg.Metrics,
		wire:     cfg.Wire.withDefaults(),
		outs:     make(map[mutex.SiteID]*outbound),
		inbound:  make(map[net.Conn]bool),
		stopC:    make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		p.peers[id] = addr
	}
	if cfg.N > 0 {
		p.memberN.Store(int64(cfg.N))
	} else {
		p.memberN.Store(int64(len(cfg.Peers) + 1))
	}
	combined := cfg.Observer
	if cfg.Metrics != nil {
		combined = obs.Tee(cfg.Metrics.Observe, cfg.Observer)
	}
	// The reliability sublayer sits between the node loops and the raw
	// per-destination writers: its receive side is fed by the read loops and
	// hands exactly-once, per-stream-FIFO envelopes to dispatch.
	p.rel = newReliable(p.dispatch, combined)
	p.manager = resource.NewManager(resource.Config{
		Policy: cfg.Policy,
		New: func(name string) (resource.Instance, error) {
			site, err := cfg.Factory(name)
			if err != nil {
				return nil, err
			}
			return newResourceNode(name, site, p, combined, &p.stage), nil
		},
	})
	inst, err := p.manager.Instance(resource.Default)
	if err != nil {
		_ = ln.Close()
		p.manager.Close()
		return nil, err
	}
	p.node = inst.(*Node)
	p.rel.start(tcpWire{peer: p})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Snapshot returns the peer's aggregated live metrics over every resource.
// ok is false when the peer was built without a metrics collector.
func (p *TCPPeer) Snapshot() (snap obs.Snapshot, ok bool) {
	if p.metrics == nil {
		return obs.Snapshot{}, false
	}
	return p.metrics.Snapshot(), true
}

// SnapshotResource returns the peer's live metrics for one named lock. ok is
// false without a metrics collector or when the resource has seen no events.
func (p *TCPPeer) SnapshotResource(name string) (snap obs.Snapshot, ok bool) {
	if p.metrics == nil {
		return obs.Snapshot{}, false
	}
	return p.metrics.SnapshotResource(name)
}

// Lock returns this peer's canonical handle for the named lock,
// instantiating the resource's protocol instance on first use.
func (p *TCPPeer) Lock(name string) (*resource.Lock, error) {
	return p.manager.Lock(name)
}

// Resources lists every resource instantiated at this peer, sorted.
func (p *TCPPeer) Resources() []string { return p.manager.Resources() }

// Node returns the default resource's hosted node — the legacy single-mutex
// interface for Acquire/Release.
func (p *TCPPeer) Node() *Node { return p.node }

// Addr returns the peer's actual listen address (useful with ":0").
func (p *TCPPeer) Addr() string { return p.listener.Addr().String() }

// Send implements Sender: the envelope passes through the reliability
// sublayer (sequencing, retransmission) and is queued on the destination's
// outbound writer. An error means the destination is unknown or the peer is
// shut down.
func (p *TCPPeer) Send(env mutex.Envelope) error {
	return p.rel.Send(env)
}

// SendBatch implements BatchSender: each destination's envelopes are queued
// in one operation and leave in one buffered write.
func (p *TCPPeer) SendBatch(envs []mutex.Envelope) error {
	return p.rel.SendBatch(envs)
}

// tcpWire is the raw sender under the reliability sublayer: already-stamped
// envelopes go straight to the per-destination writers.
type tcpWire struct {
	peer *TCPPeer
}

// Send implements Sender.
func (w tcpWire) Send(env mutex.Envelope) error {
	o, err := w.peer.outboundFor(env.To)
	if err != nil {
		return err
	}
	o.enqueue([]mutex.Envelope{env})
	return nil
}

// SendBatch implements BatchSender with cross-resource, cross-position
// coalescing: ALL of a destination's envelopes in the batch — not just
// consecutive runs — are queued under one lock acquisition and leave in one
// buffered write, so a multi-resource batch that interleaves destinations
// still costs one enqueue per destination. Per-destination FIFO order is
// preserved (the scan keeps each destination's relative order intact).
func (w tcpWire) SendBatch(envs []mutex.Envelope) error {
	var firstErr error
	forEachDestination(envs, func(dest mutex.SiteID) {
		o, err := w.peer.outboundFor(dest)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		o.enqueueFor(envs, dest)
	})
	return firstErr
}

// forEachDestination calls fn once per distinct destination in envs, in
// first-appearance order, without allocating. Batches are small (bounded by
// the quorum size times the node's per-step fan-out), so the quadratic
// first-occurrence scan stays cheaper than building a map.
func forEachDestination(envs []mutex.Envelope, fn func(dest mutex.SiteID)) {
	for i := range envs {
		dest := envs[i].To
		seen := false
		for j := 0; j < i; j++ {
			if envs[j].To == dest {
				seen = true
				break
			}
		}
		if !seen {
			fn(dest)
		}
	}
}

// outboundFor returns the destination's writer, starting it on first use.
func (p *TCPPeer) outboundFor(id mutex.SiteID) (*outbound, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if o, ok := p.outs[id]; ok {
		return o, nil
	}
	select {
	case <-p.stopC:
		return nil, fmt.Errorf("transport: peer is closed")
	default:
	}
	addr, ok := p.peers[id]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", id)
	}
	o := &outbound{
		peer:   p,
		id:     id,
		addr:   addr,
		notify: make(chan struct{}, 1),
	}
	p.outs[id] = o
	p.wg.Add(1)
	go o.run()
	return o, nil
}

// outbound is one destination's write side: an unbounded FIFO of envelopes
// drained by a dedicated writer goroutine over one persistent connection.
type outbound struct {
	peer *TCPPeer
	id   mutex.SiteID
	addr string

	mu     sync.Mutex
	queue  []mutex.Envelope
	spare  []mutex.Envelope // drained batch recycled as the next queue backing
	notify chan struct{}

	// conn is guarded by mu so Close can abort a blocked write from outside
	// the writer goroutine; bw and enc are owned by the writer alone.
	conn net.Conn
	bw   *bufio.Writer
	enc  wire.Encoder
}

func (o *outbound) enqueue(envs []mutex.Envelope) {
	o.mu.Lock()
	o.queue = append(o.queue, envs...)
	o.mu.Unlock()
	select {
	case o.notify <- struct{}{}:
	default:
	}
}

// enqueueFor queues every envelope of the batch addressed to dest — the
// whole selection under one lock acquisition, one wakeup.
func (o *outbound) enqueueFor(envs []mutex.Envelope, dest mutex.SiteID) {
	o.mu.Lock()
	for _, env := range envs {
		if env.To == dest {
			o.queue = append(o.queue, env)
		}
	}
	o.mu.Unlock()
	select {
	case o.notify <- struct{}{}:
	default:
	}
}

// run drains the queue: everything queued since the last drain — across all
// resources — is encoded back-to-back and flushed in one write. The queue and
// the previous drain's batch double-buffer: while one slice is being written,
// enqueue appends into the other, and each write-out hands its backing array
// back as the next queue. Steady-state traffic therefore allocates no queue
// space at all once both buffers have grown to the high-water batch size.
func (o *outbound) run() {
	defer o.peer.wg.Done()
	defer o.closeConn()
	for {
		select {
		case <-o.notify:
		case <-o.peer.stopC:
			return
		}
		for {
			o.mu.Lock()
			batch := o.queue
			o.queue = o.spare
			o.spare = nil
			o.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			o.write(batch)
			// Drop the envelope contents (Msg holds pointers) before
			// recycling, so the spare buffer never pins protocol messages.
			for i := range batch {
				batch[i] = mutex.Envelope{}
			}
			o.mu.Lock()
			o.spare = batch[:0]
			o.mu.Unlock()
		}
	}
}

// write delivers one batch, reconnecting once mid-batch on a broken pipe.
// A batch that cannot be delivered within the reconnect budget is dropped:
// the reliability sublayer retransmits sequenced traffic, and a peer gone
// for good is the failure protocol's to report.
func (o *outbound) write(batch []mutex.Envelope) {
	o.peer.mu.Lock()
	drop := o.peer.dropOut
	o.peer.mu.Unlock()
	if d := o.peer.wire.LinkDelay; d > 0 {
		select {
		case <-time.After(d):
		case <-o.peer.stopC:
			return
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		if !o.ensureConn() {
			return
		}
		ok := true
		for _, env := range batch {
			if drop != nil && drop(env) {
				continue // test hook: simulate wire loss at the writer
			}
			if err := o.enc.Encode(env); err != nil {
				ok = false
				break
			}
		}
		if ok && o.bw.Flush() == nil {
			return
		}
		o.closeConn()
	}
}

// ensureConn dials the destination with bounded exponential backoff and runs
// the codec handshake on the fresh connection. It reports false when the
// budget is exhausted or the peer is shutting down.
func (o *outbound) ensureConn() bool {
	select {
	case <-o.peer.stopC:
		return false
	default:
	}
	o.mu.Lock()
	connected := o.conn != nil
	o.mu.Unlock()
	if connected {
		return true
	}
	wcfg := o.peer.wire
	delay := wcfg.ReconnectBase
	for attempt := 0; attempt < wcfg.ReconnectAttempts; attempt++ {
		conn, err := net.DialTimeout("tcp", o.addr, wcfg.DialTimeout)
		if err == nil {
			if o.bw == nil {
				o.bw = bufio.NewWriter(conn)
			} else {
				o.bw.Reset(conn) // recycle the write buffer across reconnects
			}
			// Encoders carry per-stream state (gob's type descriptors, the
			// binary codec's interning table), so each connection gets a
			// fresh one for the version the handshake lands on.
			enc, herr := negotiateOutbound(conn, o.bw, wcfg.Codec, wcfg.DialTimeout)
			if herr == nil {
				o.mu.Lock()
				o.conn = conn
				o.mu.Unlock()
				o.enc = enc
				return true
			}
			_ = conn.Close()
			o.bw.Reset(nil)
		}
		if attempt == wcfg.ReconnectAttempts-1 {
			break
		}
		select {
		case <-time.After(delay):
		case <-o.peer.stopC:
			return false
		}
		delay *= 2
		if delay > wcfg.ReconnectMax {
			delay = wcfg.ReconnectMax
		}
	}
	return false
}

func (o *outbound) closeConn() {
	o.mu.Lock()
	conn := o.conn
	o.conn = nil
	o.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	// The encoder dies with its stream (its pooled scratch goes back); the
	// bufio.Writer survives and is Reset onto the next connection.
	closeCodec(o.enc)
	o.enc = nil
	if o.bw != nil {
		o.bw.Reset(nil)
	}
}

// abort closes the live connection from outside the writer goroutine,
// unblocking a write stalled on a dead peer during shutdown. The writer's
// own error path then clears its encoder state.
func (o *outbound) abort() {
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

func (p *TCPPeer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.stopC:
				return
			default:
				return // listener broke; the peer is effectively down
			}
		}
		p.mu.Lock()
		p.inbound[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

// readLoop negotiates the connection's wire version, then decodes frames
// until the stream dies. It is codec-agnostic: everything
// version-dependent — sniffing legacy gob streams, hardening against
// hostile bytes — lives behind the wire.Decoder returned by the handshake.
func (p *TCPPeer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.inbound, conn)
		p.mu.Unlock()
	}()
	dec, err := negotiateInbound(conn, bufio.NewReader(conn), p.wire.Codec, p.wire.DialTimeout)
	if err != nil {
		return
	}
	defer closeCodec(dec)
	for {
		env, err := dec.Decode()
		if err != nil {
			return
		}
		// Everything funnels through the reliability sublayer: it consumes
		// acks, suppresses duplicates, reorders sequenced traffic, and hands
		// exactly-once deliveries to dispatch.
		_ = p.rel.Receive(env)
	}
}

// dispatch consumes one exactly-once, in-order envelope from the reliability
// sublayer: heartbeats feed the failure detector, ack-only frames are
// already fully consumed, stage announcements fold into the membership hint,
// and protocol traffic routes to the resource's instance (instantiated
// lazily; an envelope for a name this peer cannot build is dropped).
//
// Frames stamped with a stale membership stage are still delivered — during
// a joint handover phase both stages legitimately coexist, and the protocol
// layer is stage-agnostic (safety rests on quorum intersection, which the
// joint req_sets preserve) — but the sender is answered with the current
// configuration so a process that slept through a reconfiguration learns it
// is behind.
func (p *TCPPeer) dispatch(env mutex.Envelope) error {
	if hb, ok := env.Msg.(heartbeatMsg); ok {
		p.mu.Lock()
		sink := p.hbSink
		p.mu.Unlock()
		if sink != nil {
			sink.observe(hb.From)
		}
		return nil
	}
	if cm, ok := env.Msg.(configMsg); ok {
		p.noteRemoteStage(cm.Stage)
		return nil
	}
	if env.Msg == nil {
		return nil
	}
	if cur := p.stage.Load(); env.Epoch < cur {
		p.answerStale(env.From, cur)
	} else if env.Epoch > cur {
		p.noteRemoteStage(env.Epoch)
	}
	return p.manager.Inject(env)
}

// setDropHook installs a writer-side frame filter (return true to drop the
// frame before it reaches the wire). Test-only: it simulates deterministic
// message loss so the reliability sublayer's recovery is assertable over
// real connections.
func (p *TCPPeer) setDropHook(drop func(env mutex.Envelope) bool) {
	p.mu.Lock()
	p.dropOut = drop
	p.mu.Unlock()
}

// injectFailure announces a crashed site to every instantiated resource, so
// each lock's §6 recovery rebuilds its quorums. The reliability sublayer
// resets its streams first: retransmission at the dead peer stops.
func (p *TCPPeer) injectFailure(failed mutex.SiteID) {
	p.rel.PeerFailed(failed)
	p.manager.Each(func(name string, inst resource.Instance) {
		inst.Inject(mutex.Envelope{Resource: name, From: p.self, To: p.self, Msg: mutex.FailureMsg{Failed: failed}})
	})
}

// setHeartbeatSink routes incoming heartbeats to the detector.
func (p *TCPPeer) setHeartbeatSink(d *Detector) {
	p.mu.Lock()
	p.hbSink = d
	p.mu.Unlock()
}

// Close shuts the peer down: every resource's node loop, the listener, the
// outbound writers, and every connection.
func (p *TCPPeer) Close() {
	p.stopOnce.Do(func() { close(p.stopC) })
	p.manager.Close()
	p.rel.Close()
	_ = p.listener.Close()
	p.mu.Lock()
	outs := make([]*outbound, 0, len(p.outs))
	for _, o := range p.outs {
		outs = append(outs, o)
	}
	for conn := range p.inbound {
		_ = conn.Close()
	}
	p.mu.Unlock()
	// Abort live connections so writers stalled mid-write observe an error
	// and then stopC; their deferred closeConn finishes the teardown.
	for _, o := range outs {
		o.abort()
	}
	p.wg.Wait()
}
