package transport

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
)

// Reconnect policy for broken outbound connections: a bounded
// exponential-backoff dial loop, so a transient peer restart is absorbed by
// the transport instead of surfacing as a protocol error. The total retry
// window is ~1.3s of backoff plus dial timeouts; a peer silent for longer is
// the failure detector's problem, not the sender's.
const (
	dialTimeout       = 5 * time.Second
	reconnectAttempts = 6
	reconnectBase     = 25 * time.Millisecond
	reconnectMax      = 500 * time.Millisecond
)

// TCPConfig configures a TCP peer.
type TCPConfig struct {
	// Self is the hosted site's identifier.
	Self mutex.SiteID
	// Factory builds this site's machine for a resource. It is called once
	// per resource name — eagerly for the default resource, lazily for
	// named locks (on first Lock or first inbound envelope).
	Factory func(name string) (mutex.Site, error)
	// ListenAddr is the address to listen on for inbound protocol traffic.
	ListenAddr string
	// Peers maps every other site to its listen address.
	Peers map[mutex.SiteID]string
	// Metrics, when non-nil, aggregates this peer's events.
	Metrics *obs.Metrics
	// Observer, when non-nil, receives the raw event stream.
	Observer obs.Sink
	// Policy bounds named-lock resource names.
	Policy resource.Policy
	// LinkDelay, when positive, holds every outbound batch for that long
	// before it reaches the wire — a deterministic per-hop latency for
	// benchmarking on loopback, where the real network delay is too small
	// and too noisy to separate a T handover from a 2T one. It delays
	// whole batches, not bytes: queueing ahead of the sleep still
	// coalesces, so it models link latency, not bandwidth.
	LinkDelay time.Duration
}

// TCPPeer hosts one site of a cluster spread across processes or machines
// and multiplexes any number of named locks over it. Envelopes travel as gob
// streams over one outbound TCP connection per destination; a dedicated
// writer goroutine per destination preserves the protocol's per-channel FIFO
// requirement and coalesces envelopes queued by different resources into one
// buffered write, so adding locks does not multiply syscalls. Algorithms
// must register their message types with encoding/gob first
// (core.RegisterGobMessages does this for the delay-optimal protocol).
type TCPPeer struct {
	self      mutex.SiteID
	manager   *resource.Manager
	node      *Node     // default-resource instance, kept for the legacy Node API
	rel       *reliable // the reliable-delivery sublayer over the raw writers
	listener  net.Listener
	peers     map[mutex.SiteID]string
	metrics   *obs.Metrics // nil unless metrics collection was requested
	linkDelay time.Duration

	mu      sync.Mutex
	outs    map[mutex.SiteID]*outbound
	inbound map[net.Conn]bool
	hbSink  *Detector                  // set by StartDetector; receives heartbeat traffic
	dropOut func(we wireEnvelope) bool // test hook: writer-side deterministic frame drops

	stopOnce sync.Once
	stopC    chan struct{}
	wg       sync.WaitGroup
}

// NewTCPPeer starts a single-resource peer for the given site: it listens on
// listenAddr for inbound protocol traffic and dials the peer addresses
// lazily on first send. peers maps every other site to its listen address.
func NewTCPPeer(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string) (*TCPPeer, error) {
	return NewTCPPeerObserved(site, listenAddr, peers, nil, nil)
}

// NewTCPPeerObserved starts a single-resource peer whose node feeds the
// given metrics collector (exposed through Snapshot) and raw event sink.
// Either may be nil. Peers built this way serve only the default resource —
// Lock returns an error — because a lone site machine cannot instantiate
// further protocol instances; use NewTCPPeerConfig with a Factory for named
// locks.
func NewTCPPeerObserved(site mutex.Site, listenAddr string, peers map[mutex.SiteID]string, m *obs.Metrics, sink obs.Sink) (*TCPPeer, error) {
	used := false
	return NewTCPPeerConfig(TCPConfig{
		Self: site.ID(),
		Factory: func(name string) (mutex.Site, error) {
			if name != resource.Default {
				return nil, fmt.Errorf("transport: peer was built single-resource; named lock %q needs NewTCPPeerConfig", name)
			}
			if used {
				return nil, fmt.Errorf("transport: default resource already instantiated")
			}
			used = true
			return site, nil
		},
		ListenAddr: listenAddr,
		Peers:      peers,
		Metrics:    m,
		Observer:   sink,
	})
}

// NewTCPPeerConfig starts a multi-resource peer with explicit configuration.
func NewTCPPeerConfig(cfg TCPConfig) (*TCPPeer, error) {
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.ListenAddr, err)
	}
	p := &TCPPeer{
		self:      cfg.Self,
		listener:  ln,
		peers:     make(map[mutex.SiteID]string, len(cfg.Peers)),
		metrics:   cfg.Metrics,
		linkDelay: cfg.LinkDelay,
		outs:      make(map[mutex.SiteID]*outbound),
		inbound:   make(map[net.Conn]bool),
		stopC:     make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		p.peers[id] = addr
	}
	combined := cfg.Observer
	if cfg.Metrics != nil {
		combined = obs.Tee(cfg.Metrics.Observe, cfg.Observer)
	}
	// The reliability sublayer sits between the node loops and the raw
	// per-destination writers: its receive side is fed by the read loops and
	// hands exactly-once, per-stream-FIFO envelopes to dispatch.
	p.rel = newReliable(p.dispatch, combined)
	p.manager = resource.NewManager(resource.Config{
		Policy: cfg.Policy,
		New: func(name string) (resource.Instance, error) {
			site, err := cfg.Factory(name)
			if err != nil {
				return nil, err
			}
			return newResourceNode(name, site, p, combined), nil
		},
	})
	inst, err := p.manager.Instance(resource.Default)
	if err != nil {
		_ = ln.Close()
		p.manager.Close()
		return nil, err
	}
	p.node = inst.(*Node)
	p.rel.start(tcpWire{peer: p})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Snapshot returns the peer's aggregated live metrics over every resource.
// ok is false when the peer was built without a metrics collector.
func (p *TCPPeer) Snapshot() (snap obs.Snapshot, ok bool) {
	if p.metrics == nil {
		return obs.Snapshot{}, false
	}
	return p.metrics.Snapshot(), true
}

// SnapshotResource returns the peer's live metrics for one named lock. ok is
// false without a metrics collector or when the resource has seen no events.
func (p *TCPPeer) SnapshotResource(name string) (snap obs.Snapshot, ok bool) {
	if p.metrics == nil {
		return obs.Snapshot{}, false
	}
	return p.metrics.SnapshotResource(name)
}

// Lock returns this peer's canonical handle for the named lock,
// instantiating the resource's protocol instance on first use.
func (p *TCPPeer) Lock(name string) (*resource.Lock, error) {
	return p.manager.Lock(name)
}

// Resources lists every resource instantiated at this peer, sorted.
func (p *TCPPeer) Resources() []string { return p.manager.Resources() }

// Node returns the default resource's hosted node — the legacy single-mutex
// interface for Acquire/Release.
func (p *TCPPeer) Node() *Node { return p.node }

// Addr returns the peer's actual listen address (useful with ":0").
func (p *TCPPeer) Addr() string { return p.listener.Addr().String() }

// wireEnvelope is the on-the-wire representation. Resource scopes the
// envelope to one named lock; Seq and Ack carry the reliability sublayer's
// stream position and cumulative acknowledgement. gob omits every
// zero-valued field, so single-lock unsequenced traffic is byte-compatible
// with the pre-resource wire format in both directions (an old peer decodes
// sequenced frames too — it just never acks them, which is why mixed
// deployments are unsupported for protocol traffic; see PROTOCOL.md).
type wireEnvelope struct {
	Resource string
	From     mutex.SiteID
	To       mutex.SiteID
	Msg      mutex.Message
	Seq      uint64
	Ack      uint64
}

// Send implements Sender: the envelope passes through the reliability
// sublayer (sequencing, retransmission) and is queued on the destination's
// outbound writer. An error means the destination is unknown or the peer is
// shut down.
func (p *TCPPeer) Send(env mutex.Envelope) error {
	return p.rel.Send(env)
}

// SendBatch implements BatchSender: consecutive same-destination runs are
// queued in one operation and leave in one buffered write.
func (p *TCPPeer) SendBatch(envs []mutex.Envelope) error {
	return p.rel.SendBatch(envs)
}

// tcpWire is the raw sender under the reliability sublayer: already-stamped
// envelopes go straight to the per-destination writers.
type tcpWire struct {
	peer *TCPPeer
}

// Send implements Sender.
func (w tcpWire) Send(env mutex.Envelope) error {
	o, err := w.peer.outboundFor(env.To)
	if err != nil {
		return err
	}
	o.enqueue([]mutex.Envelope{env})
	return nil
}

// SendBatch implements BatchSender.
func (w tcpWire) SendBatch(envs []mutex.Envelope) error {
	var firstErr error
	for start := 0; start < len(envs); {
		end := start + 1
		for end < len(envs) && envs[end].To == envs[start].To {
			end++
		}
		o, err := w.peer.outboundFor(envs[start].To)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.enqueue(envs[start:end])
		}
		start = end
	}
	return firstErr
}

// outboundFor returns the destination's writer, starting it on first use.
func (p *TCPPeer) outboundFor(id mutex.SiteID) (*outbound, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if o, ok := p.outs[id]; ok {
		return o, nil
	}
	select {
	case <-p.stopC:
		return nil, fmt.Errorf("transport: peer is closed")
	default:
	}
	addr, ok := p.peers[id]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", id)
	}
	o := &outbound{
		peer:   p,
		id:     id,
		addr:   addr,
		notify: make(chan struct{}, 1),
	}
	p.outs[id] = o
	p.wg.Add(1)
	go o.run()
	return o, nil
}

// outbound is one destination's write side: an unbounded FIFO of envelopes
// drained by a dedicated writer goroutine over one persistent connection.
type outbound struct {
	peer *TCPPeer
	id   mutex.SiteID
	addr string

	mu     sync.Mutex
	queue  []wireEnvelope
	spare  []wireEnvelope // drained batch recycled as the next queue backing
	notify chan struct{}

	// conn is guarded by mu so Close can abort a blocked write from outside
	// the writer goroutine; bw and enc are owned by the writer alone.
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
}

func (o *outbound) enqueue(envs []mutex.Envelope) {
	o.mu.Lock()
	for _, env := range envs {
		o.queue = append(o.queue, wireEnvelope{
			Resource: env.Resource, From: env.From, To: env.To,
			Msg: env.Msg, Seq: env.Seq, Ack: env.Ack,
		})
	}
	o.mu.Unlock()
	select {
	case o.notify <- struct{}{}:
	default:
	}
}

// run drains the queue: everything queued since the last drain — across all
// resources — is encoded back-to-back and flushed in one write. The queue and
// the previous drain's batch double-buffer: while one slice is being written,
// enqueue appends into the other, and each write-out hands its backing array
// back as the next queue. Steady-state traffic therefore allocates no queue
// space at all once both buffers have grown to the high-water batch size.
func (o *outbound) run() {
	defer o.peer.wg.Done()
	defer o.closeConn()
	for {
		select {
		case <-o.notify:
		case <-o.peer.stopC:
			return
		}
		for {
			o.mu.Lock()
			batch := o.queue
			o.queue = o.spare
			o.spare = nil
			o.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			o.write(batch)
			// Drop the envelope contents (Msg holds pointers) before
			// recycling, so the spare buffer never pins protocol messages.
			for i := range batch {
				batch[i] = wireEnvelope{}
			}
			o.mu.Lock()
			o.spare = batch[:0]
			o.mu.Unlock()
		}
	}
}

// write delivers one batch, reconnecting once mid-batch on a broken pipe.
// A batch that cannot be delivered within the reconnect budget is dropped:
// the reliability sublayer retransmits sequenced traffic, and a peer gone
// for good is the failure protocol's to report.
func (o *outbound) write(batch []wireEnvelope) {
	o.peer.mu.Lock()
	drop := o.peer.dropOut
	o.peer.mu.Unlock()
	if d := o.peer.linkDelay; d > 0 {
		select {
		case <-time.After(d):
		case <-o.peer.stopC:
			return
		}
	}
	for attempt := 0; attempt < 2; attempt++ {
		if !o.ensureConn() {
			return
		}
		ok := true
		for _, we := range batch {
			if drop != nil && drop(we) {
				continue // test hook: simulate wire loss at the writer
			}
			if err := o.enc.Encode(we); err != nil {
				ok = false
				break
			}
		}
		if ok && o.bw.Flush() == nil {
			return
		}
		o.closeConn()
	}
}

// ensureConn dials the destination with bounded exponential backoff. It
// reports false when the budget is exhausted or the peer is shutting down.
func (o *outbound) ensureConn() bool {
	select {
	case <-o.peer.stopC:
		return false
	default:
	}
	o.mu.Lock()
	connected := o.conn != nil
	o.mu.Unlock()
	if connected {
		return true
	}
	delay := reconnectBase
	for attempt := 0; attempt < reconnectAttempts; attempt++ {
		conn, err := net.DialTimeout("tcp", o.addr, dialTimeout)
		if err == nil {
			o.mu.Lock()
			o.conn = conn
			o.mu.Unlock()
			if o.bw == nil {
				o.bw = bufio.NewWriter(conn)
			} else {
				o.bw.Reset(conn) // recycle the write buffer across reconnects
			}
			// The encoder cannot be reused: gob sends type descriptors once
			// per stream, and a new connection is a new stream.
			o.enc = gob.NewEncoder(o.bw)
			return true
		}
		if attempt == reconnectAttempts-1 {
			break
		}
		select {
		case <-time.After(delay):
		case <-o.peer.stopC:
			return false
		}
		delay *= 2
		if delay > reconnectMax {
			delay = reconnectMax
		}
	}
	return false
}

func (o *outbound) closeConn() {
	o.mu.Lock()
	conn := o.conn
	o.conn = nil
	o.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	// The encoder dies with its stream; the bufio.Writer survives and is
	// Reset onto the next connection.
	o.enc = nil
	if o.bw != nil {
		o.bw.Reset(nil)
	}
}

// abort closes the live connection from outside the writer goroutine,
// unblocking a write stalled on a dead peer during shutdown. The writer's
// own error path then clears its encoder state.
func (o *outbound) abort() {
	o.mu.Lock()
	conn := o.conn
	o.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

func (p *TCPPeer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.stopC:
				return
			default:
				return // listener broke; the peer is effectively down
			}
		}
		p.mu.Lock()
		p.inbound[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

// decodeWireEnvelope decodes one frame from the stream. Malformed or
// truncated input must surface as an error, never kill the reader: gob's
// decoder is not hardened against hostile bytes and can panic on
// pathological inputs, so panics are converted into errors here.
func decodeWireEnvelope(dec *gob.Decoder) (we wireEnvelope, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("transport: decode envelope: %v", r)
		}
	}()
	err = dec.Decode(&we)
	return we, err
}

func (p *TCPPeer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		_ = conn.Close()
		p.mu.Lock()
		delete(p.inbound, conn)
		p.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		we, err := decodeWireEnvelope(dec)
		if err != nil {
			return
		}
		// Everything funnels through the reliability sublayer: it consumes
		// acks, suppresses duplicates, reorders sequenced traffic, and hands
		// exactly-once deliveries to dispatch.
		_ = p.rel.Receive(mutex.Envelope{
			Resource: we.Resource, From: we.From, To: we.To,
			Msg: we.Msg, Seq: we.Seq, Ack: we.Ack,
		})
	}
}

// dispatch consumes one exactly-once, in-order envelope from the reliability
// sublayer: heartbeats feed the failure detector, ack-only frames are
// already fully consumed, and protocol traffic routes to the resource's
// instance (instantiated lazily; an envelope for a name this peer cannot
// build is dropped).
func (p *TCPPeer) dispatch(env mutex.Envelope) error {
	if hb, ok := env.Msg.(heartbeatMsg); ok {
		p.mu.Lock()
		sink := p.hbSink
		p.mu.Unlock()
		if sink != nil {
			sink.observe(hb.From)
		}
		return nil
	}
	if env.Msg == nil {
		return nil
	}
	return p.manager.Inject(env)
}

// setDropHook installs a writer-side frame filter (return true to drop the
// frame before it reaches the wire). Test-only: it simulates deterministic
// message loss so the reliability sublayer's recovery is assertable over
// real connections.
func (p *TCPPeer) setDropHook(drop func(we wireEnvelope) bool) {
	p.mu.Lock()
	p.dropOut = drop
	p.mu.Unlock()
}

// injectFailure announces a crashed site to every instantiated resource, so
// each lock's §6 recovery rebuilds its quorums. The reliability sublayer
// resets its streams first: retransmission at the dead peer stops.
func (p *TCPPeer) injectFailure(failed mutex.SiteID) {
	p.rel.PeerFailed(failed)
	p.manager.Each(func(name string, inst resource.Instance) {
		inst.Inject(mutex.Envelope{Resource: name, From: p.self, To: p.self, Msg: mutex.FailureMsg{Failed: failed}})
	})
}

// setHeartbeatSink routes incoming heartbeats to the detector.
func (p *TCPPeer) setHeartbeatSink(d *Detector) {
	p.mu.Lock()
	p.hbSink = d
	p.mu.Unlock()
}

// Close shuts the peer down: every resource's node loop, the listener, the
// outbound writers, and every connection.
func (p *TCPPeer) Close() {
	p.stopOnce.Do(func() { close(p.stopC) })
	p.manager.Close()
	p.rel.Close()
	_ = p.listener.Close()
	p.mu.Lock()
	outs := make([]*outbound, 0, len(p.outs))
	for _, o := range p.outs {
		outs = append(outs, o)
	}
	for conn := range p.inbound {
		_ = conn.Close()
	}
	p.mu.Unlock()
	// Abort live connections so writers stalled mid-write observe an error
	// and then stopC; their deferred closeConn finishes the teardown.
	for _, o := range outs {
		o.abort()
	}
	p.wg.Wait()
}
