package transport

// Handshake negotiation unit tests over net.Pipe, plus a mixed-version
// cluster interop test: a peer pinned to the v0 gob codec and peers on the
// default v1 binary codec must agree pairwise on every connection and still
// run the protocol correctly in both directions.

import (
	"bufio"
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// handshakeResult is one side's outcome, delivered on a channel because the
// two halves must run concurrently: a v0 dialer sends no preamble, so the
// listener's sniff only returns once the first real frame is flushed.
type handshakeResult[T any] struct {
	v   T
	err error
}

func TestHandshakeNegotiation(t *testing.T) {
	cases := []struct {
		name             string
		dialer, listener wire.Codec
		wantEnc, wantDec string
	}{
		{"binary-binary", wire.Binary(), wire.Binary(), "*wire.binaryEncoder", "*wire.binaryDecoder"},
		{"binary-gob", wire.Binary(), wire.Gob(), "*wire.gobEncoder", "*wire.gobDecoder"},
		{"gob-binary", wire.Gob(), wire.Binary(), "*wire.gobEncoder", "*wire.gobDecoder"},
		{"gob-gob", wire.Gob(), wire.Gob(), "*wire.gobEncoder", "*wire.gobDecoder"},
	}
	env := mutex.Envelope{Resource: "hs", From: 1, To: 2, Msg: mutex.FailureMsg{Failed: 3}, Seq: 4, Ack: 5}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cs, ls := net.Pipe()
			defer cs.Close()
			defer ls.Close()
			// The dialer side: handshake, then immediately encode + flush the
			// first frame — the flush is what lets a v0 listener sniff.
			bw := bufio.NewWriter(cs)
			sendC := make(chan handshakeResult[wire.Encoder], 1)
			go func() {
				enc, err := negotiateOutbound(cs, bw, tc.dialer, time.Second)
				if err == nil {
					if err = enc.Encode(env); err == nil {
						err = bw.Flush()
					}
				}
				sendC <- handshakeResult[wire.Encoder]{enc, err}
			}()
			dec, err := negotiateInbound(ls, bufio.NewReader(ls), tc.listener, time.Second)
			if err != nil {
				t.Fatalf("inbound handshake: %v", err)
			}
			defer closeCodec(dec)
			got, err := dec.Decode()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			sent := <-sendC
			if sent.err != nil {
				t.Fatalf("outbound handshake/encode: %v", sent.err)
			}
			defer closeCodec(sent.v)
			if gotT := reflect.TypeOf(sent.v).String(); gotT != tc.wantEnc {
				t.Errorf("encoder = %s, want %s", gotT, tc.wantEnc)
			}
			if gotT := reflect.TypeOf(dec).String(); gotT != tc.wantDec {
				t.Errorf("decoder = %s, want %s", gotT, tc.wantDec)
			}
			if !reflect.DeepEqual(got, env) {
				t.Errorf("round-trip = %+v, want %+v", got, env)
			}
		})
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	// A preamble with bad magic must fail the inbound side.
	cs, ls := net.Pipe()
	defer cs.Close()
	defer ls.Close()
	go func() {
		_, _ = cs.Write([]byte{0x00, 'X', 'X', 'X', 1})
	}()
	if _, err := negotiateInbound(ls, bufio.NewReader(ls), wire.Binary(), time.Second); err == nil {
		t.Error("bad magic accepted")
	}

	// A preamble offering version 0 is a protocol violation (v0 senders send
	// no preamble at all).
	cs2, ls2 := net.Pipe()
	defer cs2.Close()
	defer ls2.Close()
	go func() {
		_, _ = cs2.Write([]byte{0x00, 'D', 'Q', 'X', 0})
	}()
	if _, err := negotiateInbound(ls2, bufio.NewReader(ls2), wire.Binary(), time.Second); err == nil {
		t.Error("version-0 preamble accepted")
	}

	// Silence must time out, not hang the read loop forever.
	cs3, ls3 := net.Pipe()
	defer cs3.Close()
	defer ls3.Close()
	start := time.Now()
	if _, err := negotiateInbound(ls3, bufio.NewReader(ls3), wire.Binary(), 50*time.Millisecond); err == nil {
		t.Error("silent connection accepted")
	} else if time.Since(start) > 2*time.Second {
		t.Error("handshake timeout did not bound the wait")
	}
}

// newTCPClusterWithCodecs builds an n-peer TCP cluster where peer i uses
// codecs[i], using the two-pass ephemeral-port wiring from TestTCPCluster.
func newTCPClusterWithCodecs(t *testing.T, codecs []wire.Codec) []*TCPPeer {
	t.Helper()
	n := len(codecs)
	alg := core.Algorithm{Construction: coterie.Majority{}}
	sites, err := alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[mutex.SiteID]string, n)
	peers := make([]*TCPPeer, n)
	for i := 0; i < n; i++ {
		p, err := NewTCPPeer(sites[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		addrs[mutex.SiteID(i)] = p.Addr()
	}
	for _, p := range peers {
		p.Close()
	}
	sites, err = alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		book := make(map[mutex.SiteID]string, n-1)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		site := sites[i]
		p, err := NewTCPPeerConfig(TCPConfig{
			Self:       site.ID(),
			Factory:    func(string) (mutex.Site, error) { return site, nil },
			ListenAddr: addrs[mutex.SiteID(i)],
			Peers:      book,
			Wire:       WireConfig{Codec: codecs[i]},
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.Close()
		}
	})
	return peers
}

// TestMixedVersionInterop runs the delay-optimal protocol across a cluster
// where site 0 is pinned to the v0 gob codec and sites 1-2 run the default
// v1 binary codec: every pairwise connection handshakes down to a common
// version and every site still acquires and releases the lock.
func TestMixedVersionInterop(t *testing.T) {
	peers := newTCPClusterWithCodecs(t, []wire.Codec{wire.Gob(), wire.Binary(), wire.Binary()})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Several rounds so traffic crosses every mixed-version pair repeatedly
	// in both directions (gob→binary and binary→gob).
	for round := 0; round < 3; round++ {
		for i, p := range peers {
			if err := p.Node().Acquire(ctx); err != nil {
				t.Fatalf("round %d: site %d acquire: %v", round, i, err)
			}
			if err := p.Node().Release(); err != nil {
				t.Fatalf("round %d: site %d release: %v", round, i, err)
			}
		}
	}
}
