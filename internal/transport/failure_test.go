package transport_test

import (
	"context"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/transport"
)

// TestKillSiteRecovery: in-process §6 recovery — after a crashed quorum
// member is announced, survivors rebuild tree quorums and keep acquiring.
func TestKillSiteRecovery(t *testing.T) {
	const n = 15
	cluster, err := transport.NewCluster(core.Algorithm{Construction: coterie.Tree{}}, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Everyone exercises the mutex once before the crash.
	for i := 0; i < n; i++ {
		node := cluster.Node(mutex.SiteID(i))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := node.Acquire(ctx)
		cancel()
		if err != nil {
			t.Fatalf("pre-crash site %d: %v", i, err)
		}
		node.Release()
	}

	cluster.KillSite(1, 10*time.Millisecond) // inner tree node

	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		node := cluster.Node(mutex.SiteID(i))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := node.Acquire(ctx)
		cancel()
		if err != nil {
			t.Fatalf("post-crash site %d: %v", i, err)
		}
		node.Release()
	}
}

// TestKillSiteWithoutRecoveryBlocks: without the §6 protocol a dependent
// request blocks, as the honest semantics require.
func TestKillSiteWithoutRecoveryBlocks(t *testing.T) {
	const n = 7
	cluster, err := transport.NewCluster(core.Algorithm{
		Construction:    coterie.Tree{},
		DisableRecovery: true,
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cluster.KillSite(0, 10*time.Millisecond) // the root: in every quorum
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := cluster.Node(3).Acquire(ctx); err == nil {
		t.Fatal("acquire succeeded although the root is dead and recovery is off")
	}
}

// TestTCPDetector: heartbeat detection over real TCP — when one peer dies,
// the others declare it and the recovery protocol keeps the mutex usable.
func TestTCPDetector(t *testing.T) {
	const n = 3
	alg := core.Algorithm{Construction: coterie.Majority{}}

	sites, err := alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	tmp := make([]*transport.TCPPeer, n)
	addrs := make(map[mutex.SiteID]string, n)
	for i := 0; i < n; i++ {
		p, err := transport.NewTCPPeer(sites[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		tmp[i] = p
		addrs[mutex.SiteID(i)] = p.Addr()
	}
	for _, p := range tmp {
		p.Close()
	}
	sites, err = alg.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*transport.TCPPeer, n)
	detectors := make([]*transport.Detector, n)
	for i := 0; i < n; i++ {
		book := make(map[mutex.SiteID]string)
		for j, a := range addrs {
			if int(j) != i {
				book[j] = a
			}
		}
		p, err := transport.NewTCPPeer(sites[i], addrs[mutex.SiteID(i)], book)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
		detectors[i] = p.StartDetector(20*time.Millisecond, 150*time.Millisecond)
	}
	defer func() {
		for i, p := range peers {
			if i != 2 {
				detectors[i].Stop()
				p.Close()
			}
		}
	}()

	// Warm up: site 0 acquires once with all peers alive.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = peers[0].Node().Acquire(ctx)
	cancel()
	if err != nil {
		t.Fatalf("warm-up acquire: %v", err)
	}
	peers[0].Node().Release()

	// Kill peer 2; survivors must detect it.
	detectors[2].Stop()
	peers[2].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		dead0 := detectors[0].Dead()
		if len(dead0) == 1 && dead0[0] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("site 0 never declared site 2 dead (declared: %v)", dead0)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The mutex stays usable: majority quorums avoid the dead site.
	for _, i := range []int{0, 1} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := peers[i].Node().Acquire(ctx)
		cancel()
		if err != nil {
			t.Fatalf("post-crash acquire by site %d: %v", i, err)
		}
		peers[i].Node().Release()
	}
}
