package transport

import (
	"sync/atomic"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
)

// resourceSender stamps the owning resource's name — and, when the hosting
// transport tracks cluster membership, the current membership stage — onto
// every envelope a per-resource node sends. State machines never see either
// field; this wrapper is what scopes their traffic to one lock and one
// configuration epoch.
type resourceSender struct {
	name  string
	under Sender
	stage *atomic.Uint64 // nil when the transport has no membership state
}

func (s resourceSender) stamp(env *mutex.Envelope) {
	env.Resource = s.name
	if s.stage != nil {
		env.Epoch = s.stage.Load()
	}
}

// Send implements Sender.
func (s resourceSender) Send(env mutex.Envelope) error {
	s.stamp(&env)
	return s.under.Send(env)
}

// SendBatch implements BatchSender, falling back to per-envelope sends when
// the underlying transport does not batch.
func (s resourceSender) SendBatch(envs []mutex.Envelope) error {
	for i := range envs {
		s.stamp(&envs[i])
	}
	if bs, ok := s.under.(BatchSender); ok {
		return bs.SendBatch(envs)
	}
	var firstErr error
	for _, env := range envs {
		if err := s.under.Send(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// resourceSink stamps the resource name onto observed events so the metrics
// collector can key its aggregation per lock. The default resource passes
// the sink through untouched (the zero Event.Resource is already correct).
func resourceSink(name string, sink obs.Sink) obs.Sink {
	if sink == nil || name == resource.Default {
		return sink
	}
	return func(e obs.Event) {
		e.Resource = name
		sink(e)
	}
}

// newResourceNode builds the per-resource protocol node: the site machine
// wrapped with a resource- and stage-stamping sender and a resource-stamping
// sink. It is the Config.New used by both the in-process cluster and the
// TCP peer. stage may be nil (no membership tracking).
func newResourceNode(name string, site mutex.Site, under Sender, sink obs.Sink, stage *atomic.Uint64) *Node {
	return NewNodeObserved(site, resourceSender{name: name, under: under, stage: stage}, resourceSink(name, sink))
}
