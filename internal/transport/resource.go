package transport

import (
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
)

// resourceSender stamps the owning resource's name onto every envelope a
// per-resource node sends. State machines never see resource names; this
// wrapper is what scopes their traffic to one lock.
type resourceSender struct {
	name  string
	under Sender
}

// Send implements Sender.
func (s resourceSender) Send(env mutex.Envelope) error {
	env.Resource = s.name
	return s.under.Send(env)
}

// SendBatch implements BatchSender, falling back to per-envelope sends when
// the underlying transport does not batch.
func (s resourceSender) SendBatch(envs []mutex.Envelope) error {
	for i := range envs {
		envs[i].Resource = s.name
	}
	if bs, ok := s.under.(BatchSender); ok {
		return bs.SendBatch(envs)
	}
	var firstErr error
	for _, env := range envs {
		if err := s.under.Send(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// resourceSink stamps the resource name onto observed events so the metrics
// collector can key its aggregation per lock. The default resource passes
// the sink through untouched (the zero Event.Resource is already correct).
func resourceSink(name string, sink obs.Sink) obs.Sink {
	if sink == nil || name == resource.Default {
		return sink
	}
	return func(e obs.Event) {
		e.Resource = name
		sink(e)
	}
}

// newResourceNode builds the per-resource protocol node: the site machine
// wrapped with a resource-stamping sender and sink. It is the Config.New
// used by both the in-process cluster and the TCP peer.
func newResourceNode(name string, site mutex.Site, under Sender, sink obs.Sink) *Node {
	return NewNodeObserved(site, resourceSender{name: name, under: under}, resourceSink(name, sink))
}
