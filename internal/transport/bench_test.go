package transport

// White-box benchmark of the per-destination TCP writer: a flood of
// transport-level envelopes from one peer to a sink peer over real loopback,
// measuring the allocation cost of the enqueue → encode → flush path under
// each wire codec. The queue double-buffering, bufio.Writer recycling, and
// the binary codec's pooled scratch exist for this number; run with
// -benchmem to see it, or `make bench-codec` for the gob-vs-binary A/B.

import (
	"testing"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// benchSite is an inert protocol site: the benchmark traffic is transport
// heartbeats, which never reach the resource layer.
type benchSite struct{ id mutex.SiteID }

func (s benchSite) ID() mutex.SiteID                  { return s.id }
func (benchSite) Request() mutex.Output               { return mutex.Output{} }
func (benchSite) Exit() mutex.Output                  { return mutex.Output{} }
func (benchSite) Deliver(mutex.Envelope) mutex.Output { return mutex.Output{} }
func (benchSite) InCS() bool                          { return false }
func (benchSite) Pending() bool                       { return false }

func benchmarkTCPWriter(b *testing.B, codec wire.Codec) {
	sinkCfg := TCPConfig{
		Self:       1,
		Factory:    func(string) (mutex.Site, error) { return benchSite{id: 1}, nil },
		ListenAddr: "127.0.0.1:0",
		Wire:       WireConfig{Codec: codec},
	}
	sink, err := NewTCPPeerConfig(sinkCfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	src, err := NewTCPPeerConfig(TCPConfig{
		Self:       0,
		Factory:    func(string) (mutex.Site, error) { return benchSite{id: 0}, nil },
		ListenAddr: "127.0.0.1:0",
		Peers:      map[mutex.SiteID]string{1: sink.Addr()},
		Wire:       WireConfig{Codec: codec},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	// Heartbeats are transport-owned, best-effort, and unordered: they skip
	// the sequencing machinery and exercise exactly the writer under test.
	env := mutex.Envelope{From: 0, To: 1, Msg: heartbeatMsg{From: 0}}
	o, err := src.outboundFor(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(env); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for the writer to drain so encode/flush costs land inside the
	// measured window rather than leaking into the next benchmark.
	for {
		o.mu.Lock()
		queued := len(o.queue)
		o.mu.Unlock()
		if queued == 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func BenchmarkTCPWriter(b *testing.B) {
	b.Run("gob", func(b *testing.B) { benchmarkTCPWriter(b, wire.Gob()) })
	b.Run("binary", func(b *testing.B) { benchmarkTCPWriter(b, wire.Binary()) })
}
