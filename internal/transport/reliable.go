package transport

// The reliable-delivery sublayer: the piece of the stack that discharges the
// paper's reliable-FIFO-channel assumption on a lossy wire. It sits between
// the node loops and the raw fabric (the in-process mailboxes, the chaos
// fabric, or the TCP writers) and is shared by both live transports.
//
// Every (source, destination) site pair is one bidirectional pair of
// streams. The send side stamps protocol envelopes with monotone sequence
// numbers, keeps them on a retransmission queue until the peer's cumulative
// acknowledgement covers them, and re-sends overdue entries with exponential
// backoff plus jitter. The receive side deduplicates by sequence number and
// holds out-of-order arrivals in a reorder buffer, so the state machines in
// internal/core continue to observe exactly-once, per-stream-FIFO delivery
// even when the wire drops, duplicates, or reorders.
//
// Acknowledgements are cumulative and piggybacked on every outgoing envelope
// of the reverse direction; a receiver with nothing to say flushes a
// standalone ack frame (Seq 0, nil Msg) after a short idle grace. Transport-
// level traffic — heartbeats and the ack frames themselves — travels
// unsequenced (Seq 0): probing is time-sensitive and must never be
// retransmitted at a peer that is already gone.
//
// All of this is invisible to the protocol's message-complexity accounting:
// obs.EventSend is emitted once per protocol message in Node.apply, above
// this layer, so retransmitted copies and ack frames never inflate the
// 3(K−1)..6(K−1) bound. The layer reports its own health through the
// transport-level events EventRetransmit, EventDupDrop, and EventAckSend.
//
// Composition with the §6 failure path: PeerFailed tears down every stream
// that touches the declared-dead site and drops its pending retransmissions,
// so a crash stops the layer from babbling at a corpse and a later regrant
// never resurrects stale sequence state.

import (
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
)

// Retransmission and acknowledgement timing. The base backoff is much larger
// than the ack flush grace so a healthy wire never retransmits: an envelope
// is only re-sent when its ack had dozens of flush windows to arrive.
const (
	// rtxBase is the first retransmission backoff.
	rtxBase = 100 * time.Millisecond
	// rtxMax caps the exponential backoff.
	rtxMax = 800 * time.Millisecond
	// ackGrace is how long a receiver waits for reverse traffic to piggyback
	// an ack before flushing a standalone ack frame.
	ackGrace = 2 * time.Millisecond
	// relTick is the period of the combined retransmit/ack-flush loop.
	relTick = 2 * time.Millisecond
)

// transportMessage marks payloads owned by the transport itself (heartbeat
// probes): they bypass sequencing and retransmission, carrying only a
// piggybacked ack.
type transportMessage interface {
	transportMessage()
}

// streamID names one direction of a site pair's channel.
type streamID struct {
	from, to mutex.SiteID
}

// relPending is one sent-but-unacknowledged envelope.
type relPending struct {
	env     mutex.Envelope
	due     time.Time
	attempt uint
}

// sendStream is the send half of one stream: the next sequence number and
// the retransmission queue (ascending by Seq, so a cumulative ack clears a
// prefix).
type sendStream struct {
	nextSeq uint64
	unacked []relPending
}

// recvStream is the receive half: the cumulative delivery horizon, the
// reorder buffer for arrivals beyond it, and the pending-ack state.
type recvStream struct {
	delivered uint64
	buffer    map[uint64]mutex.Envelope
	ackDue    bool
	ackAt     time.Time
}

// reliable is the delivery layer for one endpoint (an in-process cluster
// shares a single instance across all its sites; a TCP peer owns one).
//
// Lock discipline: r.mu is never held across a downward send — the chaos
// fabric's fast path delivers inline on the sender's goroutine, which
// re-enters Receive. Upward deliveries, by contrast, run under r.mu so two
// wire goroutines completing the same stream cannot hand envelopes to the
// node out of order; that is safe because delivery only appends to the
// destination's unbounded mailbox and never calls back into this layer.
type reliable struct {
	deliver func(env mutex.Envelope) error // upward exactly-once path
	sink    obs.Sink                       // transport-level events; may be nil

	raw Sender // downward wire; set by start before any traffic

	mu   sync.Mutex
	out  map[streamID]*sendStream
	in   map[streamID]*recvStream
	dead map[mutex.SiteID]bool
	hook func(env mutex.Envelope, dup bool) // post-dedup delivery observer
	rng  uint64                             // jitter state, guarded by mu

	stopOnce sync.Once
	stopC    chan struct{}
	doneC    chan struct{}
}

// newReliable builds the layer around its upward delivery path. The caller
// must start it (wiring the downward sender) before any traffic flows; the
// two-step construction breaks the cycle with fabrics that deliver into
// Receive.
func newReliable(deliver func(env mutex.Envelope) error, sink obs.Sink) *reliable {
	return &reliable{
		deliver: deliver,
		sink:    sink,
		out:     make(map[streamID]*sendStream),
		in:      make(map[streamID]*recvStream),
		dead:    make(map[mutex.SiteID]bool),
		rng:     uint64(time.Now().UnixNano()) | 1,
		stopC:   make(chan struct{}),
		doneC:   make(chan struct{}),
	}
}

// start wires the downward sender and spawns the retransmit/ack-flush loop.
func (r *reliable) start(raw Sender) {
	r.raw = raw
	go r.loop()
}

// Close stops the background loop. Pending retransmissions are discarded.
func (r *reliable) Close() {
	r.stopOnce.Do(func() { close(r.stopC) })
	<-r.doneC
}

// setDeliveryHook installs an observer invoked once per exactly-once upward
// delivery of a sequenced envelope (the conformance checker's post-dedup
// view of the wire). Install it before traffic starts.
func (r *reliable) setDeliveryHook(hook func(env mutex.Envelope, dup bool)) {
	r.mu.Lock()
	r.hook = hook
	r.mu.Unlock()
}

// PeerFailed composes the layer with the §6 failure path: every stream
// touching the declared-dead site is torn down, its retransmission queue and
// reorder buffer dropped, and all future traffic from or to the site is
// discarded. Retransmission at a corpse stops immediately.
func (r *reliable) PeerFailed(id mutex.SiteID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead[id] {
		return
	}
	r.dead[id] = true
	for sid := range r.out {
		if sid.from == id || sid.to == id {
			delete(r.out, sid)
		}
	}
	for sid := range r.in {
		if sid.from == id || sid.to == id {
			delete(r.in, sid)
		}
	}
}

// Drained reports whether every outbound stream of the given site has been
// fully acknowledged — no envelope it sent is still waiting to land. The
// reconfiguration drain polls this before retiring a departing site:
// tearing the streams down earlier would drop the site's final release and
// transfer messages in flight and strand the locks they hand over.
func (r *reliable) Drained(id mutex.SiteID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for sid, out := range r.out {
		if sid.from == id && len(out.unacked) > 0 {
			return false
		}
	}
	return true
}

// ReviveSite clears the dead mark of a site ID so it can be reused by a
// later configuration (a grow after a shrink, or a crash-replace restart).
// Streams were already torn down at death, so the revived site starts from
// fresh sequence state on both sides.
func (r *reliable) ReviveSite(id mutex.SiteID) {
	r.mu.Lock()
	delete(r.dead, id)
	r.mu.Unlock()
}

// isTransportMsg reports whether the payload is transport-level (unsequenced).
func isTransportMsg(m mutex.Message) bool {
	if m == nil {
		return true
	}
	_, ok := m.(transportMessage)
	return ok
}

// Send implements Sender: protocol envelopes are sequenced and queued for
// retransmission, transport-level ones pass through; both carry the reverse
// stream's cumulative ack.
func (r *reliable) Send(env mutex.Envelope) error {
	if !r.prepare(&env) {
		return nil
	}
	return r.raw.Send(env)
}

// SendBatch implements BatchSender, preserving the batch's per-destination
// order through sequencing.
func (r *reliable) SendBatch(envs []mutex.Envelope) error {
	kept := envs[:0]
	for i := range envs {
		if r.prepare(&envs[i]) {
			kept = append(kept, envs[i])
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if bs, ok := r.raw.(BatchSender); ok {
		return bs.SendBatch(kept)
	}
	var firstErr error
	for _, env := range kept {
		if err := r.raw.Send(env); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// prepare stamps one outgoing envelope under the lock — piggybacked ack,
// sequence number, retransmission entry — and reports whether it should
// reach the wire at all (traffic involving a dead site is discarded).
func (r *reliable) prepare(env *mutex.Envelope) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dead[env.From] || r.dead[env.To] {
		return false
	}
	// Piggyback the cumulative ack of the reverse stream; the carried ack
	// supersedes any pending standalone flush.
	if rs := r.in[streamID{from: env.To, to: env.From}]; rs != nil {
		env.Ack = rs.delivered
		rs.ackDue = false
	}
	if isTransportMsg(env.Msg) {
		return true
	}
	id := streamID{from: env.From, to: env.To}
	ss := r.out[id]
	if ss == nil {
		ss = &sendStream{}
		r.out[id] = ss
	}
	ss.nextSeq++
	env.Seq = ss.nextSeq
	ss.unacked = append(ss.unacked, relPending{
		env: *env,
		due: time.Now().Add(r.backoffLocked(0)),
	})
	return true
}

// Receive ingests one envelope off the wire: it applies the piggybacked ack,
// passes transport-level frames straight up, and runs sequenced traffic
// through the dedup/reorder machinery so exactly the next in-order suffix is
// delivered.
func (r *reliable) Receive(env mutex.Envelope) error {
	r.mu.Lock()
	if r.dead[env.From] || r.dead[env.To] {
		r.mu.Unlock()
		return nil
	}
	if env.Ack > 0 {
		r.ackLocked(streamID{from: env.To, to: env.From}, env.Ack)
	}
	if env.Seq == 0 {
		r.mu.Unlock()
		if env.Msg == nil {
			return nil // standalone ack frame: fully consumed above
		}
		return r.deliver(env) // heartbeat and friends: best-effort, unordered
	}
	id := streamID{from: env.From, to: env.To}
	rs := r.in[id]
	if rs == nil {
		rs = &recvStream{buffer: make(map[uint64]mutex.Envelope)}
		r.in[id] = rs
	}
	if env.Seq <= rs.delivered {
		// Already delivered: a retransmission that crossed our ack, or a wire
		// duplicate. Suppress it and re-arm the ack so the sender settles.
		r.noteAckLocked(rs)
		r.emitLocked(obs.Event{Type: obs.EventDupDrop, Site: env.To, Peer: env.From, Time: nanos()})
		r.mu.Unlock()
		return nil
	}
	if env.Seq != rs.delivered+1 {
		// A gap: park the envelope until retransmission fills it.
		if _, dup := rs.buffer[env.Seq]; dup {
			r.emitLocked(obs.Event{Type: obs.EventDupDrop, Site: env.To, Peer: env.From, Time: nanos()})
		} else {
			rs.buffer[env.Seq] = env
		}
		r.noteAckLocked(rs)
		r.mu.Unlock()
		return nil
	}
	// In order: deliver it and drain whatever the buffer now makes
	// contiguous, all under the lock so a concurrent Receive on the same
	// stream cannot interleave its suffix.
	ready := append(make([]mutex.Envelope, 0, 1+len(rs.buffer)), env)
	rs.delivered++
	for {
		next, ok := rs.buffer[rs.delivered+1]
		if !ok {
			break
		}
		delete(rs.buffer, rs.delivered+1)
		rs.delivered++
		ready = append(ready, next)
	}
	r.noteAckLocked(rs)
	hook := r.hook
	var firstErr error
	for _, e := range ready {
		if err := r.deliver(e); err != nil && firstErr == nil {
			firstErr = err
		}
		if hook != nil {
			hook(e, false)
		}
	}
	r.mu.Unlock()
	return firstErr
}

// ackLocked clears the acknowledged prefix of a send stream.
func (r *reliable) ackLocked(id streamID, ack uint64) {
	ss := r.out[id]
	if ss == nil {
		return
	}
	i := 0
	for i < len(ss.unacked) && ss.unacked[i].env.Seq <= ack {
		i++
	}
	if i > 0 {
		ss.unacked = append(ss.unacked[:0], ss.unacked[i:]...)
	}
}

// noteAckLocked arms the idle standalone-ack flush for a receive stream.
func (r *reliable) noteAckLocked(rs *recvStream) {
	if !rs.ackDue {
		rs.ackDue = true
		rs.ackAt = time.Now().Add(ackGrace)
	}
}

// emitLocked reports one transport-level event; the caller holds r.mu. Sinks
// are obs collectors and observers, which never call back into this layer.
func (r *reliable) emitLocked(e obs.Event) {
	if r.sink != nil {
		r.sink(e)
	}
}

// randLocked advances the jitter PRNG (splitmix-style); caller holds r.mu.
func (r *reliable) randLocked() float64 {
	r.rng += 0x9e3779b97f4a7c15
	x := r.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// backoffLocked returns the retransmission delay for the given attempt:
// exponential from rtxBase, capped at rtxMax, with ±25% jitter so N streams
// recovering from one outage do not retransmit in lockstep.
func (r *reliable) backoffLocked(attempt uint) time.Duration {
	d := rtxBase
	for i := uint(0); i < attempt && d < rtxMax; i++ {
		d *= 2
	}
	if d > rtxMax {
		d = rtxMax
	}
	return time.Duration(float64(d) * (0.75 + 0.5*r.randLocked()))
}

// loop periodically retransmits overdue envelopes and flushes idle acks.
func (r *reliable) loop() {
	defer close(r.doneC)
	ticker := time.NewTicker(relTick)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			r.flush()
		case <-r.stopC:
			return
		}
	}
}

// flush collects due retransmissions and standalone acks under the lock,
// then puts them on the wire outside it (the raw sender may deliver inline).
func (r *reliable) flush() {
	now := time.Now()
	var resend []mutex.Envelope
	var acks []mutex.Envelope
	var events []obs.Event
	r.mu.Lock()
	for id, ss := range r.out {
		for i := range ss.unacked {
			p := &ss.unacked[i]
			if now.Before(p.due) {
				continue
			}
			p.attempt++
			p.due = now.Add(r.backoffLocked(p.attempt))
			e := p.env
			// Refresh the piggybacked ack: the retransmitted copy carries the
			// current reverse-stream horizon, not the one from first send.
			if rs := r.in[streamID{from: id.to, to: id.from}]; rs != nil {
				e.Ack = rs.delivered
				rs.ackDue = false
			}
			resend = append(resend, e)
			kind := ""
			if e.Msg != nil {
				kind = e.Msg.Kind()
			}
			events = append(events, obs.Event{
				Type: obs.EventRetransmit, Site: e.From, Peer: e.To,
				Kind: kind, Resource: e.Resource, Time: nanos(),
			})
		}
	}
	for id, rs := range r.in {
		if !rs.ackDue || now.Before(rs.ackAt) {
			continue
		}
		rs.ackDue = false
		acks = append(acks, mutex.Envelope{From: id.to, To: id.from, Ack: rs.delivered})
		events = append(events, obs.Event{
			Type: obs.EventAckSend, Site: id.to, Peer: id.from, Time: nanos(),
		})
	}
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		for _, e := range events {
			sink(e)
		}
	}
	for _, e := range resend {
		_ = r.raw.Send(e)
	}
	for _, e := range acks {
		_ = r.raw.Send(e)
	}
}
