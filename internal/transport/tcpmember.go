package transport

import (
	"errors"
	"fmt"

	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/wire"
)

// configMsg announces the sender's current membership stage and cluster
// size. A peer sends it in answer to a frame stamped with a stale stage, so
// a process that slept through a reconfiguration (a rolling restart, a
// partitioned operator) learns it is behind and can fetch the new
// configuration out of band. It carries no coterie — quorum assignments are
// the operator plane's to distribute (dqmd's /reconfigure), not the data
// plane's.
type configMsg struct {
	From  mutex.SiteID
	Stage uint64
	N     uint64
}

// Kind implements mutex.Message.
func (configMsg) Kind() string { return "config" }

// transportMessage: stage announcements are idempotent and monotone, so they
// travel unsequenced like heartbeats — a lost announcement is re-triggered
// by the next stale frame.
func (configMsg) transportMessage() {}

func init() {
	wire.RegisterMessage(wire.TagConfig, configMsg{},
		func(b []byte, m mutex.Message) []byte {
			cm := m.(configMsg)
			b = wire.AppendSite(b, cm.From)
			b = wire.AppendUint(b, cm.Stage)
			return wire.AppendUint(b, cm.N)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return configMsg{From: r.Site(), Stage: r.Uint(), N: r.Uint()}, nil
		})
}

// ApplyMembership installs a membership stage on every protocol instance
// hosted at this peer: each instance's req_set becomes the given quorum, and
// all subsequent outbound frames carry the stage. The operator plane drives
// a TCP cluster's handover by calling this on every process — joint stage
// first (everywhere), then the final stable stage — mirroring what
// Cluster.Reconfigure does in one process for the in-process transport.
// Stages are monotone: applying a stage older than the current one fails.
//
// avoiding replaces the construction-supplied replacement-quorum search for
// §6 recovery while this stage is live; it may be nil when the machines were
// built with a Construction of their own and the stage is stable.
func (p *TCPPeer) ApplyMembership(n int, quorum []mutex.SiteID, avoiding func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool), stage uint64) error {
	if n < 1 {
		return fmt.Errorf("transport: membership with %d sites", n)
	}
	if cur := p.stage.Load(); stage < cur {
		return fmt.Errorf("transport: stale membership stage %d (current %d)", stage, cur)
	}
	var firstErr error
	p.manager.Each(func(name string, inst resource.Instance) {
		node, ok := inst.(*Node)
		if !ok {
			return
		}
		if err := node.Reconfigure(n, quorum, avoiding, stage); err != nil && !errors.Is(err, ErrClosed) && firstErr == nil {
			firstErr = fmt.Errorf("transport: apply membership to resource %q: %w", name, err)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	p.stage.Store(stage)
	p.memberN.Store(int64(n))
	return nil
}

// Stage returns the membership stage this peer currently stamps onto its
// outbound frames.
func (p *TCPPeer) Stage() uint64 { return p.stage.Load() }

// N returns the cluster size of the peer's current membership stage.
func (p *TCPPeer) N() int { return int(p.memberN.Load()) }

// MembershipHint returns the newest stage this peer has heard from the rest
// of the cluster and whether that is ahead of its own — the "you slept
// through a reconfiguration" signal surfaced on dqmd's debug page.
func (p *TCPPeer) MembershipHint() (stage uint64, behind bool) {
	hint := p.stageHint.Load()
	return hint, hint > p.stage.Load()
}

// AddPeer adds (or re-addresses) a site in this peer's address book, so a
// joining arbiter is dialable before the joint stage that includes it is
// applied. A running failure detector starts probing it; a site previously
// declared dead is given a fresh grace period (rolling restart).
func (p *TCPPeer) AddPeer(id mutex.SiteID, addr string) {
	p.mu.Lock()
	p.peers[id] = addr
	sink := p.hbSink
	p.mu.Unlock()
	if sink != nil {
		sink.track(id)
	}
}

// RemovePeer drops a departed site: its address, its outbound stream state,
// and its failure-detector entry (a retired site must not be declared
// crashed — nobody's req_set contains it anymore, so there is nothing to
// recover). Call it after the final stable stage is applied everywhere.
func (p *TCPPeer) RemovePeer(id mutex.SiteID) {
	p.mu.Lock()
	delete(p.peers, id)
	o := p.outs[id]
	delete(p.outs, id)
	sink := p.hbSink
	p.mu.Unlock()
	if o != nil {
		o.abort() // its writer idles until Close; the conn dies now
	}
	p.rel.PeerFailed(id)
	if sink != nil {
		sink.forget(id)
	}
}

// peerList snapshots the known peer IDs under the address-book lock (the
// detector iterates peers concurrently with AddPeer/RemovePeer).
func (p *TCPPeer) peerList() []mutex.SiteID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]mutex.SiteID, 0, len(p.peers))
	for id := range p.peers {
		out = append(out, id)
	}
	return out
}

// noteRemoteStage folds an observed remote stage into the hint maximum.
func (p *TCPPeer) noteRemoteStage(stage uint64) {
	for {
		cur := p.stageHint.Load()
		if stage <= cur || p.stageHint.CompareAndSwap(cur, stage) {
			return
		}
	}
}

// answerStale tells a peer running an older stage what the current one is —
// once per (peer, stage), so a chatty stale site does not flood the wire.
// It runs on the dispatch path, which the reliability sublayer calls with
// its stream lock held, so the answer must leave on a fresh goroutine — a
// synchronous Send would re-enter that lock and deadlock the peer.
func (p *TCPPeer) answerStale(to mutex.SiteID, stage uint64) {
	p.mu.Lock()
	if p.staleTold == nil {
		p.staleTold = make(map[mutex.SiteID]uint64)
	}
	told := p.staleTold[to]
	if told >= stage {
		p.mu.Unlock()
		return
	}
	p.staleTold[to] = stage
	p.mu.Unlock()
	env := mutex.Envelope{
		From:  p.self,
		To:    to,
		Epoch: stage,
		Msg:   configMsg{From: p.self, Stage: stage, N: uint64(p.memberN.Load())},
	}
	go func() { _ = p.rel.Send(env) }()
}
