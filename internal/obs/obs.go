// Package obs is the protocol observability layer: a structured event
// stream fed by every driver (the discrete-event simulator, the in-process
// node loop, and the TCP peer) plus an aggregator that folds the stream into
// the paper's metrics — per-kind message counters, synchronization delay,
// response time, and waiting time.
//
// The design goal is zero cost when disabled: drivers hold a nil Sink and
// guard every emission with a single nil check, so the hot path neither
// allocates nor synchronizes unless an observer is installed. Events are
// plain value structs; emitting one is a function call with no heap traffic.
//
// Timestamps are driver-relative int64s in whatever unit the driver counts
// time: simulated ticks for internal/sim, monotonic nanoseconds for the live
// transports. The aggregator only ever subtracts timestamps, so the unit
// cancels out of every ratio-of-T metric and only scales the delay stats.
package obs

import (
	"fmt"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// EventType enumerates the protocol lifecycle events drivers emit.
type EventType uint8

// Protocol event types. Message events carry the message kind (request,
// reply, transfer, inquire, yield, fail, release, token, failure), so the
// per-kind accounting of the paper's tables falls out of the Send stream.
const (
	// EventRequest marks a site issuing a critical-section request.
	EventRequest EventType = iota + 1
	// EventSend marks one protocol message leaving a site for a remote
	// site. Self-addressed deliveries are local bookkeeping and are not
	// reported, matching the paper's K−1 message counting.
	EventSend
	// EventEnter marks a site entering the critical section.
	EventEnter
	// EventExit marks a site exiting the critical section.
	EventExit
	// EventFailure marks the delivery of a failure(f) notification to a
	// site (Peer is the failed site).
	EventFailure
	// EventRecovery marks a site completing its local §6 recovery step for
	// a failed peer (quorum rebuilt around the crash).
	EventRecovery
	// EventRetransmit marks the reliable-delivery sublayer re-sending an
	// unacknowledged envelope. Transport-level: it never counts toward the
	// protocol's per-CS message accounting.
	EventRetransmit
	// EventDupDrop marks the receiver suppressing an already-delivered
	// (duplicate) envelope. Transport-level.
	EventDupDrop
	// EventAckSend marks a standalone cumulative acknowledgement leaving a
	// site after an idle flush (piggybacked acks are not reported).
	// Transport-level.
	EventAckSend
	// EventSessionOpen marks an arbiter granting a new client session lease
	// (Site is the arbiter). Service-level: session events never count
	// toward the protocol's per-CS message accounting.
	EventSessionOpen
	// EventSessionExpire marks an arbiter expiring a client session whose
	// lease ran out without renewal. Service-level.
	EventSessionExpire
	// EventSessionClose marks an orderly client session shutdown.
	// Service-level.
	EventSessionClose
	// EventLockReclaim marks the arbiter releasing a lock held by an
	// expired session (Resource names the lock), feeding the grant back
	// into the quorum protocol for the next waiter. Service-level.
	EventLockReclaim
	// EventOverload marks the arbiter refusing work for backpressure: a new
	// session past the session cap or an acquire past the per-session
	// in-flight cap. The client backs off and retries. Service-level.
	EventOverload
)

// String returns the event type's stable name.
func (t EventType) String() string {
	switch t {
	case EventRequest:
		return "request"
	case EventSend:
		return "send"
	case EventEnter:
		return "enter"
	case EventExit:
		return "exit"
	case EventFailure:
		return "failure"
	case EventRecovery:
		return "recovery"
	case EventRetransmit:
		return "retransmit"
	case EventDupDrop:
		return "dup-drop"
	case EventAckSend:
		return "ack"
	case EventSessionOpen:
		return "session-open"
	case EventSessionExpire:
		return "session-expire"
	case EventSessionClose:
		return "session-close"
	case EventLockReclaim:
		return "lock-reclaim"
	case EventOverload:
		return "overload"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one structured protocol event.
type Event struct {
	// Type is the lifecycle event type.
	Type EventType
	// Site is the site at which the event occurred.
	Site mutex.SiteID
	// Peer is the message destination (EventSend) or the failed site
	// (EventFailure, EventRecovery); otherwise it is unused.
	Peer mutex.SiteID
	// Kind is the message kind for EventSend events.
	Kind string
	// Time is the driver timestamp: simulated ticks under internal/sim,
	// monotonic nanoseconds under the live transports.
	Time int64
	// Resource names the lock the event belongs to when many named locks
	// are multiplexed over one site set. The empty string is the default
	// resource (single-lock deployments and the simulator).
	Resource string
	// ReqTS is the protocol's logical request timestamp for EventRequest
	// events, when the site exposes one (mutex.TimestampedSite). The zero
	// value means the timestamp is unavailable; conformance checkers must
	// then skip timestamp-order assertions for the request.
	ReqTS timestamp.Timestamp
}

// String renders the event as one trace line.
func (e Event) String() string {
	suffix := ""
	if e.Resource != "" {
		suffix = fmt.Sprintf("  [%s]", e.Resource)
	}
	switch e.Type {
	case EventSend:
		return fmt.Sprintf("t=%-12d site %-3d send %s -> %d%s", e.Time, e.Site, e.Kind, e.Peer, suffix)
	case EventFailure:
		return fmt.Sprintf("t=%-12d site %-3d observed failure of %d%s", e.Time, e.Site, e.Peer, suffix)
	case EventRecovery:
		return fmt.Sprintf("t=%-12d site %-3d recovered around %d%s", e.Time, e.Site, e.Peer, suffix)
	default:
		return fmt.Sprintf("t=%-12d site %-3d %s%s", e.Time, e.Site, e.Type, suffix)
	}
}

// Sink receives protocol events. Sinks run inline on the driver's hot path:
// implementations must be fast and must not block. A nil Sink means
// observability is disabled.
type Sink func(Event)

// Tee fans one event stream out to several sinks, skipping nil entries. It
// returns nil when every sink is nil (keeping the disabled fast path a
// single nil check) and the sink itself when only one remains.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, s := range live {
			s(e)
		}
	}
}
