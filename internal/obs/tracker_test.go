package obs

import "testing"

// TestDelayTrackerWindow drives three handovers and checks that only the one
// inside the recording window samples, while pairing state built during
// warmup still pairs correctly.
func TestDelayTrackerWindow(t *testing.T) {
	tr := NewDelayTracker()
	emit := tr.Observe
	// Warmup handover: must not sample.
	emit(Event{Type: EventRequest, Site: 0, Time: 0})
	emit(Event{Type: EventEnter, Site: 0, Time: 10})
	emit(Event{Type: EventRequest, Site: 1, Time: 5})
	emit(Event{Type: EventExit, Site: 0, Time: 20})
	tr.StartRecording()
	// Site 1 requested during warmup (t=5) but enters inside the window:
	// pairing state from warmup must still produce the right samples.
	emit(Event{Type: EventEnter, Site: 1, Time: 30})
	emit(Event{Type: EventRequest, Site: 2, Time: 25})
	emit(Event{Type: EventExit, Site: 1, Time: 40})
	emit(Event{Type: EventEnter, Site: 2, Time: 45})
	tr.StopRecording()
	// Drain handover: must not sample.
	emit(Event{Type: EventRequest, Site: 0, Time: 44})
	emit(Event{Type: EventExit, Site: 2, Time: 50})
	emit(Event{Type: EventEnter, Site: 0, Time: 60})

	handoff := tr.Handoff()
	if handoff.Count != 2 {
		t.Fatalf("handoff samples = %d, want 2", handoff.Count)
	}
	// Samples: 30-20=10 and 45-40=5.
	if handoff.Mean != 7.5 || handoff.Min != 5 || handoff.Max != 10 {
		t.Errorf("handoff = %+v", handoff)
	}
	waiting := tr.Waiting()
	// Samples: 30-5=25 and 45-25=20.
	if waiting.Count != 2 || waiting.Mean != 22.5 {
		t.Errorf("waiting = %+v", waiting)
	}
}

// TestDelayTrackerUncontended: an entry whose request came after the
// previous exit is queue wait only, never a handoff.
func TestDelayTrackerUncontended(t *testing.T) {
	tr := NewDelayTracker()
	tr.StartRecording()
	tr.Observe(Event{Type: EventRequest, Site: 0, Time: 0})
	tr.Observe(Event{Type: EventEnter, Site: 0, Time: 10})
	tr.Observe(Event{Type: EventExit, Site: 0, Time: 20})
	tr.Observe(Event{Type: EventRequest, Site: 1, Time: 100})
	tr.Observe(Event{Type: EventEnter, Site: 1, Time: 110})
	if h := tr.Handoff(); h.Count != 0 {
		t.Errorf("uncontended run took %d handoff samples", h.Count)
	}
	if w := tr.Waiting(); w.Count != 2 {
		t.Errorf("waiting samples = %d, want 2", w.Count)
	}
}

// TestDelayTrackerPerResource: pairing is per resource; cross-resource
// exit/enter interleavings never produce a handoff sample.
func TestDelayTrackerPerResource(t *testing.T) {
	tr := NewDelayTracker()
	tr.StartRecording()
	tr.Observe(Event{Type: EventRequest, Site: 0, Resource: "a", Time: 0})
	tr.Observe(Event{Type: EventRequest, Site: 1, Resource: "b", Time: 0})
	tr.Observe(Event{Type: EventEnter, Site: 0, Resource: "a", Time: 10})
	tr.Observe(Event{Type: EventExit, Site: 0, Resource: "a", Time: 20})
	// Resource b's entry follows a's exit in time but is no handover.
	tr.Observe(Event{Type: EventEnter, Site: 1, Resource: "b", Time: 30})
	if h := tr.Handoff(); h.Count != 0 {
		t.Errorf("cross-resource handoff samples = %d", h.Count)
	}
}
