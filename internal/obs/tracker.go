package obs

import (
	"sync"

	"dqmx/internal/mutex"
)

// DelayTracker derives the two components of acquire latency from the live
// event stream, per resource, exactly as the Metrics aggregator does —
// queue wait is request→entry, handoff delay is previous-exit→entry over
// handovers where the entering site was already waiting — but gates sample
// recording behind an explicit measurement window. The load-generation lab
// (internal/loadgen) installs one per run: pairing state is maintained from
// the first event so the derivation stays correct across phase boundaries,
// while only entries observed between StartRecording and StopRecording
// contribute samples. That is what keeps warmup and drain traffic out of
// the reported percentiles.
//
// It is a Sink (Observe) and safe for concurrent use; live drivers run one
// goroutine per site, all feeding the same tracker.
type DelayTracker struct {
	mu        sync.Mutex
	recording bool
	res       map[string]*trackerRes
	handoff   Histogram
	waiting   Histogram
}

// trackerRes is the per-resource pairing state; guarded by the tracker's mu.
type trackerRes struct {
	requested map[mutex.SiteID]int64
	lastExit  int64
	haveExit  bool
}

// NewDelayTracker returns a tracker with recording off.
func NewDelayTracker() *DelayTracker {
	return &DelayTracker{res: make(map[string]*trackerRes)}
}

// StartRecording opens the measurement window: subsequent entries sample.
func (t *DelayTracker) StartRecording() {
	t.mu.Lock()
	t.recording = true
	t.mu.Unlock()
}

// StopRecording closes the measurement window.
func (t *DelayTracker) StopRecording() {
	t.mu.Lock()
	t.recording = false
	t.mu.Unlock()
}

// Observe folds one event into the tracker; it is the tracker's Sink.
func (t *DelayTracker) Observe(e Event) {
	switch e.Type {
	case EventRequest, EventEnter, EventExit:
	default:
		return // message and transport events carry no delay information
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.res[e.Resource]
	if !ok {
		r = &trackerRes{requested: make(map[mutex.SiteID]int64)}
		t.res[e.Resource] = r
	}
	switch e.Type {
	case EventRequest:
		r.requested[e.Site] = e.Time
	case EventEnter:
		req, waited := r.requested[e.Site]
		delete(r.requested, e.Site)
		if !t.recording || !waited {
			return
		}
		t.waiting.Add(e.Time - req)
		// A handoff sample needs a handover: the entering site requested
		// before the previous holder exited (the paper's heavy-load
		// synchronization-delay definition).
		if r.haveExit && req <= r.lastExit && e.Time >= r.lastExit {
			t.handoff.Add(e.Time - r.lastExit)
		}
	case EventExit:
		r.lastExit = e.Time
		r.haveExit = true
	}
}

// Handoff summarizes the recorded handoff-delay (exit→next-entry) samples.
func (t *DelayTracker) Handoff() DelayStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handoff.Stats()
}

// Waiting summarizes the recorded queue-wait (request→entry) samples.
func (t *DelayTracker) Waiting() DelayStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waiting.Stats()
}
