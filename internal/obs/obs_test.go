package obs

import (
	"strings"
	"sync"
	"testing"

	"dqmx/internal/mutex"
)

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils should be nil")
	}
	var got []EventType
	one := func(e Event) { got = append(got, e.Type) }
	Tee(nil, one)(Event{Type: EventEnter})
	Tee(one, one)(Event{Type: EventExit})
	want := []EventType{EventEnter, EventExit, EventExit}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Type: EventSend, Site: 3, Peer: 5, Kind: mutex.KindRequest, Time: 1000}
	if s := e.String(); !strings.Contains(s, "send request -> 5") {
		t.Errorf("send event rendered as %q", s)
	}
	if s := (Event{Type: EventEnter, Site: 1}).String(); !strings.Contains(s, "enter") {
		t.Errorf("enter event rendered as %q", s)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Mean(), float64(1+2+3+100+1000)/5; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	st := h.Stats()
	if st.Min != 1 || st.Max != 1000 {
		t.Errorf("min/max = %d/%d", st.Min, st.Max)
	}
	// P99 must land in the top bucket and be clamped to the observed max.
	if st.P99 != 1000 {
		t.Errorf("p99 = %d, want 1000", st.P99)
	}
	// The median of {1,2,3,100,1000} is 3; the log-bucket upper bound for
	// bit-length 2 is 3.
	if st.P50 != 3 {
		t.Errorf("p50 = %d, want 3", st.P50)
	}
	h.Add(-5) // clock skew clamps to zero
	if h.Stats().Min != 0 {
		t.Error("negative sample should clamp to 0")
	}
}

// TestMetricsLifecycle drives the collector through two CS executions where
// the second requester waits behind the first, and checks every aggregate.
func TestMetricsLifecycle(t *testing.T) {
	m := NewMetrics()
	emit := m.Observe
	// Site 0: request at t=0, two sends, enter at 10, exit at 20.
	emit(Event{Type: EventRequest, Site: 0, Time: 0})
	emit(Event{Type: EventSend, Site: 0, Peer: 1, Kind: mutex.KindRequest, Time: 0})
	emit(Event{Type: EventSend, Site: 0, Peer: 2, Kind: mutex.KindRequest, Time: 0})
	emit(Event{Type: EventEnter, Site: 0, Time: 10})
	// Site 1 requests at t=5 (while 0 holds the CS).
	emit(Event{Type: EventRequest, Site: 1, Time: 5})
	emit(Event{Type: EventExit, Site: 0, Time: 20})
	// Site 1 enters one delay later: a synchronization-delay handover.
	emit(Event{Type: EventEnter, Site: 1, Time: 30})
	emit(Event{Type: EventExit, Site: 1, Time: 40})
	emit(Event{Type: EventFailure, Site: 2, Peer: 3, Time: 50})
	emit(Event{Type: EventRecovery, Site: 2, Peer: 3, Time: 55})

	s := m.Snapshot()
	if s.Requests != 2 || s.Entries != 2 || s.Exits != 2 {
		t.Errorf("lifecycle counters = %d/%d/%d", s.Requests, s.Entries, s.Exits)
	}
	if s.Messages != 2 || s.ByKind[mutex.KindRequest] != 2 {
		t.Errorf("messages = %d byKind = %v", s.Messages, s.ByKind)
	}
	if s.MessagesPerCS != 1 {
		t.Errorf("messages/CS = %v", s.MessagesPerCS)
	}
	if s.Failures != 1 || s.Recoveries != 1 {
		t.Errorf("failures/recoveries = %d/%d", s.Failures, s.Recoveries)
	}
	// Response: site 0 = 20, site 1 = 35. Waiting: 10 and 25.
	if s.Response.Count != 2 || s.Response.Mean != 27.5 {
		t.Errorf("response = %+v", s.Response)
	}
	if s.Waiting.Count != 2 || s.Waiting.Mean != 17.5 {
		t.Errorf("waiting = %+v", s.Waiting)
	}
	// One handover: site 1 requested (5) before site 0 exited (20) and
	// entered at 30 → sample 10.
	if s.SyncDelay.Count != 1 || s.SyncDelay.Mean != 10 {
		t.Errorf("sync delay = %+v", s.SyncDelay)
	}
	if got := s.Kinds(); len(got) != 1 || got[0] != mutex.KindRequest {
		t.Errorf("kinds = %v", got)
	}
}

// TestMetricsUncontendedNoSyncSample checks the paper's definition: an entry
// whose request came after the previous exit is not a handover.
func TestMetricsUncontendedNoSyncSample(t *testing.T) {
	m := NewMetrics()
	m.Observe(Event{Type: EventRequest, Site: 0, Time: 0})
	m.Observe(Event{Type: EventEnter, Site: 0, Time: 10})
	m.Observe(Event{Type: EventExit, Site: 0, Time: 20})
	m.Observe(Event{Type: EventRequest, Site: 1, Time: 100}) // after the exit
	m.Observe(Event{Type: EventEnter, Site: 1, Time: 110})
	m.Observe(Event{Type: EventExit, Site: 1, Time: 120})
	if s := m.Snapshot(); s.SyncDelay.Count != 0 {
		t.Errorf("uncontended run took %d sync samples", s.SyncDelay.Count)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(Event{Type: EventSend, Site: mutex.SiteID(g), Peer: 0, Kind: mutex.KindReply, Time: int64(i)})
			}
		}()
	}
	wg.Wait()
	if s := m.Snapshot(); s.Messages != 8000 || s.ByKind[mutex.KindReply] != 8000 {
		t.Errorf("concurrent messages = %d", s.Messages)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if got := r.Events(); len(got) != 0 {
		t.Errorf("fresh ring has %d events", len(got))
	}
	for i := 1; i <= 5; i++ {
		r.Observe(Event{Time: int64(i)})
	}
	got := r.Events()
	if len(got) != 3 || got[0].Time != 3 || got[2].Time != 5 {
		t.Errorf("ring events = %+v", got)
	}
}

func BenchmarkMetricsObserveSend(b *testing.B) {
	b.ReportAllocs()
	m := NewMetrics()
	e := Event{Type: EventSend, Site: 1, Peer: 2, Kind: mutex.KindRequest}
	for i := 0; i < b.N; i++ {
		e.Time = int64(i)
		m.Observe(e)
	}
}
