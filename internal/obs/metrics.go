package obs

import (
	"sort"
	"sync"

	"dqmx/internal/hist"
	"dqmx/internal/mutex"
)

// Histogram is the repository's log-linear latency histogram
// (internal/hist): constant-size, allocation-free on Add, mergeable, with
// ≤ 6.25% quantile error. The alias keeps the observability layer's delay
// tracking and the load-generation lab (internal/loadgen) on one type.
type Histogram = hist.Histogram

// DelayStats reports one delay distribution in the driver's time unit
// (simulated ticks or nanoseconds). P50/P90/P95/P99 are log-linear-bucket
// upper bounds, exact at the maximum.
type DelayStats = hist.Summary

// TransportStats counts the reliable-delivery sublayer's own traffic. It is
// collector-global (the sublayer multiplexes every resource over one set of
// site-pair streams) and deliberately separate from the protocol counters:
// retransmissions, duplicate suppressions, and standalone acks never touch
// Messages or ByKind, so the paper's 3(K−1)..6(K−1) accounting stays exact.
type TransportStats struct {
	// Retransmits counts envelopes re-sent after an acknowledgement timeout.
	Retransmits uint64
	// DupSuppressed counts received envelopes dropped as already delivered.
	DupSuppressed uint64
	// AcksSent counts standalone cumulative acknowledgements (piggybacked
	// acks ride existing messages and are not counted).
	AcksSent uint64
}

// SessionStats counts lock-service session lifecycle events. Like
// TransportStats it is collector-global: the session tier sits above the
// resource layer (one session may hold many named locks), so the counters
// never touch the per-resource protocol accounting.
type SessionStats struct {
	// Opened counts granted session leases (new sessions, not renewals).
	Opened uint64
	// Expired counts sessions whose lease ran out without renewal.
	Expired uint64
	// Closed counts orderly session shutdowns.
	Closed uint64
	// LocksReclaimed counts locks released on behalf of expired sessions —
	// each reclaim hands the grant to the next waiter through the normal
	// protocol path.
	LocksReclaimed uint64
	// Overloaded counts work the arbiter refused for backpressure: session
	// opens past the session cap and acquires past the per-session
	// in-flight cap. Clients back off and retry, so a nonzero rate here
	// means sustained demand above what the arbiter is provisioned for.
	Overloaded uint64
}

// Snapshot is a point-in-time copy of the aggregated metrics.
type Snapshot struct {
	// Events is the total number of observed events.
	Events uint64
	// Messages counts protocol messages sent to remote sites; ByKind breaks
	// the total down by message kind (the paper's per-type accounting).
	Messages uint64
	ByKind   map[string]uint64
	// Requests, Entries, Exits count CS lifecycle milestones; Exits is the
	// number of completed executions.
	Requests uint64
	Entries  uint64
	Exits    uint64
	// Failures counts delivered failure notifications; Recoveries counts
	// completed per-site §6 recovery steps.
	Failures   uint64
	Recoveries uint64
	// MessagesPerCS is Messages / Exits — the paper's headline cost, which
	// for the delay-optimal protocol must land in 3(K−1)..6(K−1).
	MessagesPerCS float64
	// SyncDelay is the exit→next-entry delay measured only over handovers
	// where the next site was already waiting (the paper's heavy-load
	// definition of synchronization delay).
	SyncDelay DelayStats
	// Response is the request→exit delay; Waiting is request→entry.
	Response DelayStats
	Waiting  DelayStats
	// Transport reports the reliability sublayer's health. Like Events it is
	// collector-global, so SnapshotResource repeats the same totals.
	Transport TransportStats
	// Sessions reports lock-service session lifecycle totals. Collector-
	// global, like Transport.
	Sessions SessionStats
}

// Kinds returns the snapshot's message kinds in canonical table order
// followed by any others alphabetically.
func (s Snapshot) Kinds() []string {
	out := make([]string, 0, len(s.ByKind))
	seen := make(map[string]bool, len(s.ByKind))
	for _, k := range mutex.Kinds() {
		if s.ByKind[k] > 0 {
			out = append(out, k)
			seen[k] = true
		}
	}
	var extra []string
	for k := range s.ByKind {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Metrics aggregates the event stream into the paper's metrics. It is safe
// for concurrent use: live drivers run one goroutine per site, all feeding
// the same collector.
//
// Events are bucketed by Event.Resource, so when many named locks are
// multiplexed over one site set each lock's 3(K−1)..6(K−1) bound stays
// checkable on its own through SnapshotResource. Snapshot merges every
// per-resource aggregate into the cluster-wide view; single-lock runs have
// exactly one bucket (the default resource) and behave as before.
//
// The per-resource delay accounting mirrors sim.Cluster.Summarize: response
// time is request→exit, waiting time is request→entry, and a
// synchronization-delay sample is taken on each entry that follows a
// completed exit the entering site was already waiting behind
// (requested ≤ previous exit ≤ entry). Within one resource entries and exits
// alternate under mutual exclusion, so tracking the last exit timestamp
// reproduces the simulator's record-pairing exactly on crash-free runs; a
// crash inside the CS leaves the interrupted execution out of the delay
// stats, just as Summarize drops its record.
type Metrics struct {
	mu        sync.Mutex
	events    uint64
	transport TransportStats
	sessions  SessionStats
	res       map[string]*resourceAgg
}

// resourceAgg is the per-resource accumulator; all fields are guarded by the
// owning Metrics' mutex.
type resourceAgg struct {
	messages   uint64
	byKind     map[string]uint64
	requests   uint64
	entries    uint64
	exits      uint64
	failures   uint64
	recoveries uint64

	requested map[mutex.SiteID]int64
	entered   map[mutex.SiteID]int64
	lastExit  int64
	haveExit  bool

	syncDelay Histogram
	response  Histogram
	waiting   Histogram
}

func newResourceAgg() *resourceAgg {
	return &resourceAgg{
		byKind:    make(map[string]uint64),
		requested: make(map[mutex.SiteID]int64),
		entered:   make(map[mutex.SiteID]int64),
	}
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{res: make(map[string]*resourceAgg)}
}

// Observe folds one event into the metrics; it is the collector's Sink.
func (m *Metrics) Observe(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
	// Transport-level events carry no resource: they feed the global
	// reliability counters and must never reach the per-resource message
	// accounting below.
	switch e.Type {
	case EventRetransmit:
		m.transport.Retransmits++
		return
	case EventDupDrop:
		m.transport.DupSuppressed++
		return
	case EventAckSend:
		m.transport.AcksSent++
		return
	// Service-level session events are likewise collector-global: a session
	// spans resources, so only EventLockReclaim even carries a Resource, and
	// none of them may leak into the per-resource protocol tallies.
	case EventSessionOpen:
		m.sessions.Opened++
		return
	case EventSessionExpire:
		m.sessions.Expired++
		return
	case EventSessionClose:
		m.sessions.Closed++
		return
	case EventLockReclaim:
		m.sessions.LocksReclaimed++
		return
	case EventOverload:
		m.sessions.Overloaded++
		return
	}
	a, ok := m.res[e.Resource]
	if !ok {
		a = newResourceAgg()
		m.res[e.Resource] = a
	}
	switch e.Type {
	case EventRequest:
		a.requests++
		a.requested[e.Site] = e.Time
	case EventSend:
		a.messages++
		a.byKind[e.Kind]++
	case EventEnter:
		a.entries++
		a.entered[e.Site] = e.Time
		if req, ok := a.requested[e.Site]; ok && a.haveExit &&
			req <= a.lastExit && e.Time >= a.lastExit {
			a.syncDelay.Add(e.Time - a.lastExit)
		}
	case EventExit:
		a.exits++
		if req, ok := a.requested[e.Site]; ok {
			a.response.Add(e.Time - req)
			if ent, ok := a.entered[e.Site]; ok {
				a.waiting.Add(ent - req)
			}
			delete(a.requested, e.Site)
			delete(a.entered, e.Site)
		}
		a.lastExit = e.Time
		a.haveExit = true
	case EventFailure:
		a.failures++
	case EventRecovery:
		a.recoveries++
	}
}

// snapshotLocked summarizes one aggregate; the caller holds m.mu.
func (a *resourceAgg) snapshotLocked(events uint64, transport TransportStats, sessions SessionStats) Snapshot {
	s := Snapshot{
		Events:     events,
		Transport:  transport,
		Sessions:   sessions,
		Messages:   a.messages,
		ByKind:     make(map[string]uint64, len(a.byKind)),
		Requests:   a.requests,
		Entries:    a.entries,
		Exits:      a.exits,
		Failures:   a.failures,
		Recoveries: a.recoveries,
		SyncDelay:  a.syncDelay.Stats(),
		Response:   a.response.Stats(),
		Waiting:    a.waiting.Stats(),
	}
	for k, v := range a.byKind {
		s.ByKind[k] = v
	}
	if a.exits > 0 {
		s.MessagesPerCS = float64(a.messages) / float64(a.exits)
	}
	return s
}

// Snapshot returns a consistent copy of the metrics merged over every
// resource. Counters and ByKind sum; the delay distributions merge their
// per-resource histograms, so each sample was still paired within its own
// resource.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Events:    m.events,
		Transport: m.transport,
		Sessions:  m.sessions,
		ByKind:    make(map[string]uint64),
	}
	var syncDelay, response, waiting Histogram
	for _, a := range m.res {
		s.Messages += a.messages
		s.Requests += a.requests
		s.Entries += a.entries
		s.Exits += a.exits
		s.Failures += a.failures
		s.Recoveries += a.recoveries
		for k, v := range a.byKind {
			s.ByKind[k] += v
		}
		syncDelay.Merge(&a.syncDelay)
		response.Merge(&a.response)
		waiting.Merge(&a.waiting)
	}
	s.SyncDelay = syncDelay.Stats()
	s.Response = response.Stats()
	s.Waiting = waiting.Stats()
	if s.Exits > 0 {
		s.MessagesPerCS = float64(s.Messages) / float64(s.Exits)
	}
	return s
}

// SnapshotResource returns the metrics of one resource. ok is false when the
// collector has seen no event for that resource. The Events field counts all
// observed events (it is collector-global), matching Snapshot.
func (m *Metrics) SnapshotResource(resource string) (snap Snapshot, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.res[resource]
	if !ok {
		return Snapshot{}, false
	}
	return a.snapshotLocked(m.events, m.transport, m.sessions), true
}

// Resources lists every resource the collector has seen events for, sorted.
func (m *Metrics) Resources() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.res))
	for name := range m.res {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Ring keeps the most recent events for debug endpoints: a fixed-capacity
// concurrent ring buffer.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRing returns a ring holding the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Observe records one event; it is the ring's Sink.
func (r *Ring) Observe(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
