package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"dqmx/internal/mutex"
)

// Histogram accumulates non-negative delay samples in power-of-two buckets
// (bucket i holds values whose bit length is i, i.e. [2^(i-1), 2^i)). The
// log-scale resolution is coarse but constant-size and allocation-free,
// which is what the hot path needs; exact first moments ride alongside.
type Histogram struct {
	count    uint64
	sum      float64
	min, max int64
	buckets  [65]uint64
}

// Add folds one sample into the histogram. Negative samples (which can only
// arise from clock trouble in a live driver) are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += float64(v)
	h.buckets[bits.Len64(uint64(v))]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper bound for the p-th quantile (0 ≤ p ≤ 1): the
// upper edge of the log-scale bucket the quantile lands in, clamped to the
// observed maximum.
func (h *Histogram) Quantile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			edge := int64(1) << uint(i)
			edge-- // inclusive upper edge of [2^(i-1), 2^i)
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() DelayStats {
	if h.count == 0 {
		return DelayStats{}
	}
	return DelayStats{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
}

// DelayStats reports one delay distribution in the driver's time unit
// (simulated ticks or nanoseconds). P50/P99 are log-bucket upper bounds.
type DelayStats struct {
	Count    uint64
	Mean     float64
	Min, Max int64
	P50, P99 int64
}

// Snapshot is a point-in-time copy of the aggregated metrics.
type Snapshot struct {
	// Events is the total number of observed events.
	Events uint64
	// Messages counts protocol messages sent to remote sites; ByKind breaks
	// the total down by message kind (the paper's per-type accounting).
	Messages uint64
	ByKind   map[string]uint64
	// Requests, Entries, Exits count CS lifecycle milestones; Exits is the
	// number of completed executions.
	Requests uint64
	Entries  uint64
	Exits    uint64
	// Failures counts delivered failure notifications; Recoveries counts
	// completed per-site §6 recovery steps.
	Failures   uint64
	Recoveries uint64
	// MessagesPerCS is Messages / Exits — the paper's headline cost, which
	// for the delay-optimal protocol must land in 3(K−1)..6(K−1).
	MessagesPerCS float64
	// SyncDelay is the exit→next-entry delay measured only over handovers
	// where the next site was already waiting (the paper's heavy-load
	// definition of synchronization delay).
	SyncDelay DelayStats
	// Response is the request→exit delay; Waiting is request→entry.
	Response DelayStats
	Waiting  DelayStats
}

// Kinds returns the snapshot's message kinds in canonical table order
// followed by any others alphabetically.
func (s Snapshot) Kinds() []string {
	out := make([]string, 0, len(s.ByKind))
	seen := make(map[string]bool, len(s.ByKind))
	for _, k := range mutex.Kinds() {
		if s.ByKind[k] > 0 {
			out = append(out, k)
			seen[k] = true
		}
	}
	var extra []string
	for k := range s.ByKind {
		if !seen[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Metrics aggregates the event stream into the paper's metrics. It is safe
// for concurrent use: live drivers run one goroutine per site, all feeding
// the same collector.
//
// The delay accounting mirrors sim.Cluster.Summarize: response time is
// request→exit, waiting time is request→entry, and a synchronization-delay
// sample is taken on each entry that follows a completed exit the entering
// site was already waiting behind (requested ≤ previous exit ≤ entry).
// Under mutual exclusion entries and exits alternate, so tracking the last
// exit timestamp reproduces the simulator's record-pairing exactly on
// crash-free runs; a crash inside the CS leaves the interrupted execution
// out of the delay stats, just as Summarize drops its record.
type Metrics struct {
	mu         sync.Mutex
	events     uint64
	messages   uint64
	byKind     map[string]uint64
	requests   uint64
	entries    uint64
	exits      uint64
	failures   uint64
	recoveries uint64

	requested map[mutex.SiteID]int64
	entered   map[mutex.SiteID]int64
	lastExit  int64
	haveExit  bool

	syncDelay Histogram
	response  Histogram
	waiting   Histogram
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		byKind:    make(map[string]uint64),
		requested: make(map[mutex.SiteID]int64),
		entered:   make(map[mutex.SiteID]int64),
	}
}

// Observe folds one event into the metrics; it is the collector's Sink.
func (m *Metrics) Observe(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
	switch e.Type {
	case EventRequest:
		m.requests++
		m.requested[e.Site] = e.Time
	case EventSend:
		m.messages++
		m.byKind[e.Kind]++
	case EventEnter:
		m.entries++
		m.entered[e.Site] = e.Time
		if req, ok := m.requested[e.Site]; ok && m.haveExit &&
			req <= m.lastExit && e.Time >= m.lastExit {
			m.syncDelay.Add(e.Time - m.lastExit)
		}
	case EventExit:
		m.exits++
		if req, ok := m.requested[e.Site]; ok {
			m.response.Add(e.Time - req)
			if ent, ok := m.entered[e.Site]; ok {
				m.waiting.Add(ent - req)
			}
			delete(m.requested, e.Site)
			delete(m.entered, e.Site)
		}
		m.lastExit = e.Time
		m.haveExit = true
	case EventFailure:
		m.failures++
	case EventRecovery:
		m.recoveries++
	}
}

// Snapshot returns a consistent copy of the aggregated metrics.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Events:     m.events,
		Messages:   m.messages,
		ByKind:     make(map[string]uint64, len(m.byKind)),
		Requests:   m.requests,
		Entries:    m.entries,
		Exits:      m.exits,
		Failures:   m.failures,
		Recoveries: m.recoveries,
		SyncDelay:  m.syncDelay.Stats(),
		Response:   m.response.Stats(),
		Waiting:    m.waiting.Stats(),
	}
	for k, v := range m.byKind {
		s.ByKind[k] = v
	}
	if m.exits > 0 {
		s.MessagesPerCS = float64(m.messages) / float64(m.exits)
	}
	return s
}

// Ring keeps the most recent events for debug endpoints: a fixed-capacity
// concurrent ring buffer.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRing returns a ring holding the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Observe records one event; it is the ring's Sink.
func (r *Ring) Observe(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
