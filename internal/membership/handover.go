package membership

import (
	"fmt"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
)

// Handover is the plan for one reconfiguration: the old and new
// configurations plus the joint coterie in force between them. The joint
// assignment spans max(oldN, newN) sites — during the handover both the
// departing and the joining sites are live participants.
//
// Joint req_sets are unions: jointQ(i) = oldQ(mapOld(i)) ∪ newQ(mapNew(i)),
// where mapOld folds a joining site (one with no quorum of its own in the
// old coterie) onto an existing old site, and mapNew symmetrically folds a
// departing site onto a surviving new site. Every joint quorum therefore
// embeds one full quorum of each coterie, which is exactly what the safety
// argument needs — see the package comment.
type Handover struct {
	Old, New Config
	// OldCons/NewCons are the constructions behind the two coteries; they
	// power JointAvoiding (crash recovery during the handover). Either may
	// be nil, in which case a crash mid-handover leaves the affected
	// quorums unchanged (safety over progress, as in §6 without a
	// construction).
	OldCons, NewCons coterie.Construction
	// Joint is the handover coterie over max(oldN, newN) sites.
	Joint *coterie.Assignment
}

// PlanHandover builds the joint coterie for moving from old to new. The
// new configuration's epoch must be exactly old.Epoch+1: epochs advance one
// reconfiguration at a time so stage ordering stays dense.
func PlanHandover(old, new Config) (*Handover, error) {
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("membership: old config: %w", err)
	}
	if err := new.Validate(); err != nil {
		return nil, fmt.Errorf("membership: new config: %w", err)
	}
	if new.Epoch != old.Epoch+1 {
		return nil, fmt.Errorf("membership: new epoch %d does not follow old epoch %d", new.Epoch, old.Epoch)
	}
	h := &Handover{Old: old, New: new}
	jointN := old.N()
	if new.N() > jointN {
		jointN = new.N()
	}
	joint := &coterie.Assignment{N: jointN, Quorums: make([]coterie.Quorum, jointN)}
	for i := 0; i < jointN; i++ {
		id := mutex.SiteID(i)
		joint.Quorums[i] = unionQuorum(
			old.Coterie.Quorum(foldSite(id, old.N())),
			new.Coterie.Quorum(foldSite(id, new.N())),
		)
	}
	h.Joint = joint
	return h, nil
}

// JointN returns the number of live sites during the handover.
func (h *Handover) JointN() int { return h.Joint.N }

// JointQuorum returns site id's req_set during the handover.
func (h *Handover) JointQuorum(id mutex.SiteID) coterie.Quorum {
	return h.Joint.Quorum(id)
}

// Validate checks the three intersection properties the handover's safety
// rests on: every joint quorum intersects every old quorum, every new
// quorum, and every other joint quorum. All three hold by construction
// (each joint quorum embeds one quorum of each coterie); Validate proves
// it for the concrete pair rather than trusting the argument, and is what
// the reconfiguration path runs before touching any live site.
func (h *Handover) Validate() error {
	if err := h.Joint.Validate(); err != nil {
		return fmt.Errorf("membership: joint coterie: %w", err)
	}
	for i, jq := range h.Joint.Quorums {
		for o, oq := range h.Old.Coterie.Quorums {
			if !jq.Intersects(oq) {
				return fmt.Errorf("membership: joint quorum of site %d %v misses old quorum of site %d %v", i, jq, o, oq)
			}
		}
		for n, nq := range h.New.Coterie.Quorums {
			if !jq.Intersects(nq) {
				return fmt.Errorf("membership: joint quorum of site %d %v misses new quorum of site %d %v", i, jq, n, nq)
			}
		}
	}
	return nil
}

// JointAvoiding rebuilds site id's joint req_set around the crashed sites
// in down: the union of an old-coterie quorum and a new-coterie quorum,
// each avoiding the crash per the respective construction's §6 rule. Used
// by the recovery path when a site fails mid-handover, so the rebuilt
// quorum still intersects both coteries. Returns coterie.ErrNoLiveQuorum
// when either side cannot form a live quorum.
func (h *Handover) JointAvoiding(id mutex.SiteID, down map[mutex.SiteID]bool) (coterie.Quorum, error) {
	if h.OldCons == nil || h.NewCons == nil {
		return nil, coterie.ErrNoLiveQuorum
	}
	oldQ, err := h.OldCons.QuorumAvoiding(h.Old.N(), foldSite(id, h.Old.N()), down)
	if err != nil {
		return nil, err
	}
	newQ, err := h.NewCons.QuorumAvoiding(h.New.N(), foldSite(id, h.New.N()), down)
	if err != nil {
		return nil, err
	}
	return unionQuorum(oldQ, newQ), nil
}

// foldSite maps a site ID onto the 0..n-1 range of a coterie that may not
// include it: IDs inside the range map to themselves, IDs beyond it fold
// back modulo n. This is how a joining site (no old quorum of its own)
// borrows an old-coterie quorum, and a departing site a new-coterie one.
func foldSite(id mutex.SiteID, n int) mutex.SiteID {
	if int(id) < n {
		return id
	}
	return mutex.SiteID(int(id) % n)
}

// unionQuorum merges two quorums into one sorted, duplicate-free quorum.
func unionQuorum(a, b coterie.Quorum) coterie.Quorum {
	out := make(coterie.Quorum, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
