package membership

import (
	"math/rand"
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
)

func TestStageOrdering(t *testing.T) {
	// stable(E) < joint(E→E+1) < stable(E+1), for every E.
	for _, e := range []Epoch{0, 1, 2, 7, 1 << 30} {
		s, j, next := StableStage(e), JointStage(e), StableStage(e+1)
		if !(s < j && j < next) {
			t.Fatalf("epoch %d: stages %d, %d, %d not strictly ordered", e, s, j, next)
		}
		if s.Joint() || !j.Joint() {
			t.Fatalf("epoch %d: Joint() wrong on %v / %v", e, s, j)
		}
		if s.Epoch() != e || j.Epoch() != e {
			t.Fatalf("epoch %d: Epoch() gave %d / %d", e, s.Epoch(), j.Epoch())
		}
	}
	if got := StableStage(3).String(); got != "stable(3)" {
		t.Fatalf("String() = %q", got)
	}
	if got := JointStage(3).String(); got != "joint(3→4)" {
		t.Fatalf("String() = %q", got)
	}
	// The zero Stage is stable epoch 0 — what un-stamped envelopes carry.
	var zero Stage
	if zero.Joint() || zero.Epoch() != 0 {
		t.Fatalf("zero stage = %v, want stable(0)", zero)
	}
}

func TestNewConfigAndValidate(t *testing.T) {
	cfg, err := NewConfig(2, coterie.Majority{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epoch != 2 || cfg.N() != 5 || len(cfg.Sites) != 5 {
		t.Fatalf("config = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	// Broken shapes must be caught before any live site is touched.
	if err := (Config{Epoch: 1}).Validate(); err == nil {
		t.Fatal("config without coterie validated")
	}
	bad := cfg
	bad.Sites = bad.Sites[:4]
	if err := bad.Validate(); err == nil {
		t.Fatal("config with short site list validated")
	}
	gapped := cfg
	gapped.Sites = []mutex.SiteID{0, 1, 2, 3, 5}
	if err := gapped.Validate(); err == nil {
		t.Fatal("config with non-contiguous sites validated")
	}
}

func TestPlanHandoverRejectsEpochGap(t *testing.T) {
	old, err := NewConfig(0, coterie.Majority{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := NewConfig(2, coterie.Majority{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanHandover(old, skip); err == nil {
		t.Fatal("handover skipping an epoch planned")
	}
	same, err := NewConfig(0, coterie.Majority{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanHandover(old, same); err == nil {
		t.Fatal("handover with unchanged epoch planned")
	}
}

// TestJointIntersectionProperty is the randomized safety check behind the
// handover: over random (construction, size) pairs, every joint quorum must
// intersect every old quorum, every new quorum, and every other joint
// quorum, and must embed one full quorum of each coterie. These are exactly
// the properties the package comment's safety argument needs.
func TestJointIntersectionProperty(t *testing.T) {
	cons := []coterie.Construction{coterie.Grid{}, coterie.Tree{}, coterie.Majority{}}
	rng := rand.New(rand.NewSource(991))
	trials := 0
	for trials < 60 {
		oldC, newC := cons[rng.Intn(len(cons))], cons[rng.Intn(len(cons))]
		oldN, newN := 2+rng.Intn(11), 2+rng.Intn(11)
		old, err := NewConfig(0, oldC, oldN)
		if err != nil {
			continue // construction rejects this n; pick again
		}
		next, err := NewConfig(1, newC, newN)
		if err != nil {
			continue
		}
		trials++
		h, err := PlanHandover(old, next)
		if err != nil {
			t.Fatalf("%s(%d)→%s(%d): %v", oldC.Name(), oldN, newC.Name(), newN, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("%s(%d)→%s(%d): %v", oldC.Name(), oldN, newC.Name(), newN, err)
		}
		if h.JointN() != max(oldN, newN) {
			t.Fatalf("%s(%d)→%s(%d): joint over %d sites", oldC.Name(), oldN, newC.Name(), newN, h.JointN())
		}
		for i := 0; i < h.JointN(); i++ {
			jq := h.JointQuorum(mutex.SiteID(i))
			// Embedding: the joint req_set contains one full quorum of each
			// coterie — a strictly stronger fact than pairwise intersection.
			oq := old.Coterie.Quorum(foldSite(mutex.SiteID(i), oldN))
			nq := next.Coterie.Quorum(foldSite(mutex.SiteID(i), newN))
			if !oq.SubsetOf(jq) {
				t.Fatalf("%s(%d)→%s(%d): joint quorum of %d %v lacks old quorum %v",
					oldC.Name(), oldN, newC.Name(), newN, i, jq, oq)
			}
			if !nq.SubsetOf(jq) {
				t.Fatalf("%s(%d)→%s(%d): joint quorum of %d %v lacks new quorum %v",
					oldC.Name(), oldN, newC.Name(), newN, i, jq, nq)
			}
			// Pairwise joint-joint intersection (Validate covers joint-old
			// and joint-new).
			for k := 0; k < i; k++ {
				if !jq.Intersects(h.JointQuorum(mutex.SiteID(k))) {
					t.Fatalf("%s(%d)→%s(%d): joint quorums of %d and %d disjoint",
						oldC.Name(), oldN, newC.Name(), newN, i, k)
				}
			}
		}
	}
}

// TestJointAvoiding: a crash mid-handover rebuilds joint req_sets that skip
// the dead site yet still intersect both coteries' surviving quorums.
func TestJointAvoiding(t *testing.T) {
	old, err := NewConfig(0, coterie.Majority{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	next, err := NewConfig(1, coterie.Majority{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PlanHandover(old, next)
	if err != nil {
		t.Fatal(err)
	}

	// No constructions recorded: recovery must refuse rather than guess.
	if _, err := h.JointAvoiding(0, map[mutex.SiteID]bool{1: true}); err == nil {
		t.Fatal("JointAvoiding without constructions succeeded")
	}

	h.OldCons, h.NewCons = coterie.Majority{}, coterie.Majority{}
	down := map[mutex.SiteID]bool{2: true}
	for i := 0; i < h.JointN(); i++ {
		q, err := h.JointAvoiding(mutex.SiteID(i), down)
		if err != nil {
			t.Fatalf("site %d: %v", i, err)
		}
		if q.Contains(2) {
			t.Fatalf("site %d: rebuilt quorum %v contains the dead site", i, q)
		}
		// The rebuilt quorum must intersect every quorum either coterie can
		// still grant — the §6 guarantee, extended across the handover.
		for o, oq := range old.Coterie.Quorums {
			if !q.Intersects(oq) {
				t.Fatalf("site %d: rebuilt %v misses old quorum of %d %v", i, q, o, oq)
			}
		}
		for n, nq := range next.Coterie.Quorums {
			if !q.Intersects(nq) {
				t.Fatalf("site %d: rebuilt %v misses new quorum of %d %v", i, q, n, nq)
			}
		}
	}

	// Majority of 5 tolerates two crashes, not three.
	heavy := map[mutex.SiteID]bool{0: true, 1: true, 2: true}
	if _, err := h.JointAvoiding(4, heavy); err == nil {
		t.Fatal("JointAvoiding with a dead old-majority succeeded")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
