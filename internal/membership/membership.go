// Package membership implements online cluster reconfiguration for the
// quorum protocols: epoch-stamped configurations and the joint-quorum
// handover that moves a live cluster from coterie(E) to coterie(E+1)
// without ever losing mutual exclusion.
//
// The paper's safety argument rests entirely on pairwise quorum
// intersection, so a configuration change cannot simply swap one coterie
// for another: a critical-section entry granted under the old coterie and
// one granted under the new need not share an arbiter. Instead the switch
// passes through a joint phase, in the style of joint consensus: while the
// handover is in progress every site's req_set is the union of a quorum of
// coterie(E) and a quorum of coterie(E+1). Any two joint entries intersect
// (each embeds an old-coterie quorum), a joint entry intersects every
// pure-E entry (its embedded old quorum does), and it intersects every
// pure-(E+1) entry (its embedded new quorum does). Once every in-flight
// request has settled on the joint req_sets, the cluster flips to the pure
// new coterie, the epoch advances, and departing sites drain and retire.
//
// Configurations are totally ordered by Stage, a single integer that
// interleaves stable epochs with the joint phases between them:
// stable(E) < joint(E→E+1) < stable(E+1). Envelopes are stamped with the
// sender's stage so a transport can detect laggards and answer their stale
// frames with the current configuration (see internal/transport).
package membership

import (
	"fmt"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
)

// Epoch numbers a stable configuration. Epoch 0 is the configuration a
// cluster is constructed with; every completed reconfiguration increments
// it by one.
type Epoch uint64

// Stage totally orders the cluster's configuration timeline, interleaving
// stable epochs with the joint handover phases between them:
//
//	Stage 2E   = stable at epoch E
//	Stage 2E+1 = joint handover from epoch E to epoch E+1
//
// The zero value is "stable at epoch 0", which keeps envelope stamping
// backward-compatible: a peer that predates epochs stamps stage 0.
type Stage uint64

// StableStage returns the stage of a cluster stable at epoch e.
func StableStage(e Epoch) Stage { return Stage(2 * uint64(e)) }

// JointStage returns the stage of the handover from epoch e to e+1.
func JointStage(e Epoch) Stage { return Stage(2*uint64(e) + 1) }

// Epoch returns the stage's epoch: the current epoch when stable, the
// epoch being left when joint.
func (s Stage) Epoch() Epoch { return Epoch(uint64(s) / 2) }

// Joint reports whether the stage is a handover phase.
func (s Stage) Joint() bool { return uint64(s)%2 == 1 }

func (s Stage) String() string {
	if s.Joint() {
		return fmt.Sprintf("joint(%d→%d)", s.Epoch(), s.Epoch()+1)
	}
	return fmt.Sprintf("stable(%d)", s.Epoch())
}

// Config is one epoch-stamped cluster configuration: the participating
// sites and the coterie that arbitrates among them. Sites are always the
// contiguous range 0..Coterie.N-1 — the protocols index state by SiteID —
// so growing adds high IDs and shrinking retires them; replacing a
// physical machine reuses its site ID across a restart.
type Config struct {
	Epoch   Epoch
	Sites   []mutex.SiteID
	Coterie *coterie.Assignment
}

// NewConfig builds the configuration for n sites at the given epoch using
// the construction's assignment.
func NewConfig(epoch Epoch, cons coterie.Construction, n int) (Config, error) {
	assign, err := cons.Assign(n)
	if err != nil {
		return Config{}, fmt.Errorf("membership: assign %s(%d): %w", cons.Name(), n, err)
	}
	if err := assign.Validate(); err != nil {
		return Config{}, fmt.Errorf("membership: %s(%d): %w", cons.Name(), n, err)
	}
	return Config{Epoch: epoch, Sites: siteRange(n), Coterie: assign}, nil
}

// N returns the configuration's site count.
func (c Config) N() int {
	if c.Coterie != nil {
		return c.Coterie.N
	}
	return len(c.Sites)
}

// Validate checks the configuration's internal consistency.
func (c Config) Validate() error {
	if c.Coterie == nil {
		return fmt.Errorf("membership: config at epoch %d has no coterie", c.Epoch)
	}
	if len(c.Sites) != c.Coterie.N {
		return fmt.Errorf("membership: config at epoch %d lists %d sites for a coterie over %d",
			c.Epoch, len(c.Sites), c.Coterie.N)
	}
	for i, s := range c.Sites {
		if int(s) != i {
			return fmt.Errorf("membership: config at epoch %d: site %d at index %d (sites must be 0..N-1)", c.Epoch, s, i)
		}
	}
	return c.Coterie.Validate()
}

func siteRange(n int) []mutex.SiteID {
	sites := make([]mutex.SiteID, n)
	for i := range sites {
		sites[i] = mutex.SiteID(i)
	}
	return sites
}
