package loadgen

import (
	"context"
	"fmt"
	"net"
	"time"

	"dqmx"
	"dqmx/internal/obs"
)

// Driver names for Config.Driver.
const (
	// DriverInproc runs all N sites in this process over the in-process
	// fabric, optionally under a chaos plan.
	DriverInproc = "inproc"
	// DriverTCP runs all N sites in this process as real TCP peers over
	// loopback — the negotiated wire codec (Config.Codec), per-destination
	// writers, the reliability sublayer — with Config.HopDelay as the
	// transport's link delay.
	DriverTCP = "tcp"
	// DriverService runs the lock-service tier: N arbiters (dqmx.Serve)
	// over loopback TCP plus Config.Clients leased sessions (dqmx.Dial)
	// spread across them. Workers operate through the sessions, so the
	// benchmark measures client-count scaling against a fixed coterie —
	// quorum traffic per CS must stay flat as Clients grows.
	DriverService = "service"
)

// wireCodecName canonicalizes a Config.Codec value, resolving the empty
// default to the codec the transport would actually pick.
func wireCodecName(name string) (string, error) {
	c := dqmx.Codec(name)
	if name == "" {
		c = dqmx.BinaryCodec
	}
	if err := (dqmx.Options{Wire: dqmx.WireConfig{Codec: c}}).Validate(); err != nil {
		return "", fmt.Errorf("loadgen: %w", err)
	}
	return string(c), nil
}

// driver abstracts the two fabrics behind the one operation the workers
// need: a site's handle for a named lock. Handles are canonical per
// (site, name), so the runner caches them up front and the hot path never
// touches the driver.
type driver interface {
	lock(site int, name string) (*dqmx.Lock, error)
	// reconfigure switches the live fabric to n sites via the joint-quorum
	// handover and returns the resulting epoch. Only the in-process driver
	// supports it; config validation rejects the others up front.
	reconfigure(ctx context.Context, n int) (epoch uint64, err error)
	close()
}

// newDriver boots the fabric for a validated config, wiring the given sink
// into every site's event stream. The sink receives one coherent stream in
// both cases: the TCP peers share this process's monotonic epoch, so their
// event timestamps are comparable.
func newDriver(cfg Config, sink obs.Sink) (driver, error) {
	opts := dqmx.Options{
		Protocol: dqmx.Protocol(cfg.Protocol),
		Quorum:   dqmx.Quorum(cfg.Quorum),
		Observe:  dqmx.ObserveConfig{Observer: sink},
		Faults:   dqmx.FaultConfig{DisableTransfer: cfg.DisableTransfer},
	}
	switch cfg.Driver {
	case DriverInproc:
		if cfg.Chaos != nil || cfg.HopDelay > 0 {
			plan := dqmx.ChaosPlan{Seed: cfg.Seed}
			if cfg.Chaos != nil {
				plan.Drop = cfg.Chaos.Drop
				plan.Duplicate = cfg.Chaos.Duplicate
				plan.Reorder = cfg.Chaos.Reorder
				plan.MinDelay = cfg.Chaos.MinDelay
				plan.MaxDelay = cfg.Chaos.MaxDelay
			}
			if cfg.HopDelay > 0 {
				plan.MinDelay = cfg.HopDelay
				plan.MaxDelay = cfg.HopDelay
			}
			opts.Chaos = &plan
		}
		c, err := dqmx.NewClusterWith(cfg.N, opts)
		if err != nil {
			return nil, err
		}
		return &inprocDriver{cluster: c}, nil
	case DriverTCP:
		opts.Wire = dqmx.WireConfig{
			Codec:     dqmx.Codec(cfg.Codec),
			LinkDelay: cfg.HopDelay,
		}
		return newTCPDriver(cfg.N, opts)
	case DriverService:
		opts.Wire = dqmx.WireConfig{
			Codec:     dqmx.Codec(cfg.Codec),
			LinkDelay: cfg.HopDelay,
		}
		return newServiceDriver(cfg, opts)
	}
	return nil, fmt.Errorf("loadgen: unknown driver %q", cfg.Driver)
}

// inprocDriver wraps the in-process cluster.
type inprocDriver struct {
	cluster *dqmx.Cluster
}

func (d *inprocDriver) lock(site int, name string) (*dqmx.Lock, error) {
	return d.cluster.LockOn(dqmx.SiteID(site), name)
}

func (d *inprocDriver) reconfigure(ctx context.Context, n int) (uint64, error) {
	if err := d.cluster.Reconfigure(ctx, dqmx.Membership{N: n}); err != nil {
		return 0, err
	}
	return d.cluster.Epoch(), nil
}

func (d *inprocDriver) close() { d.cluster.Close() }

// tcpDriver hosts all N sites as TCP peers on loopback. Addresses are
// reserved first with throwaway listeners so every peer can be born with
// the full address book; connections are then dialed lazily on first send.
type tcpDriver struct {
	peers []*dqmx.TCPPeer
}

func newTCPDriver(n int, opts dqmx.Options) (*tcpDriver, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("loadgen: reserve address: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	d := &tcpDriver{peers: make([]*dqmx.TCPPeer, n)}
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string, n-1)
		for j, a := range addrs {
			if j != i {
				book[dqmx.SiteID(j)] = a
			}
		}
		p, err := dqmx.NewTCPNode(n, dqmx.SiteID(i), addrs[i], book, opts)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("loadgen: start peer %d: %w", i, err)
		}
		d.peers[i] = p
	}
	return d, nil
}

func (d *tcpDriver) lock(site int, name string) (*dqmx.Lock, error) {
	if site < 0 || site >= len(d.peers) {
		return nil, fmt.Errorf("loadgen: site %d out of range", site)
	}
	return d.peers[site].Lock(name)
}

func (d *tcpDriver) reconfigure(ctx context.Context, n int) (uint64, error) {
	return 0, fmt.Errorf("loadgen: the TCP driver does not reconfigure itself (operator-driven; see dqmx.PlanHandover)")
}

func (d *tcpDriver) close() {
	for _, p := range d.peers {
		if p != nil {
			p.Close()
		}
	}
}

// serviceDriver hosts the lock-service tier on loopback: a fixed arbiter
// coterie plus one leased session per client index. Its lock index is a
// *client*, not a site — the whole point is that clients outnumber the
// coterie without growing the quorums.
type serviceDriver struct {
	srvs     []*dqmx.Server
	sessions []*dqmx.Session
}

func newServiceDriver(cfg Config, opts dqmx.Options) (*serviceDriver, error) {
	n := cfg.N
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("loadgen: reserve address: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	d := &serviceDriver{srvs: make([]*dqmx.Server, n)}
	for i := 0; i < n; i++ {
		book := make(map[dqmx.SiteID]string, n-1)
		for j, a := range addrs {
			if j != i {
				book[dqmx.SiteID(j)] = a
			}
		}
		srv, err := dqmx.Serve(dqmx.ServeConfig{
			N:            n,
			ID:           dqmx.SiteID(i),
			PeerListen:   addrs[i],
			Peers:        book,
			ClientListen: "127.0.0.1:0",
			Lease:        cfg.Lease,
			Options:      opts,
		})
		if err != nil {
			d.close()
			return nil, fmt.Errorf("loadgen: start arbiter %d: %w", i, err)
		}
		d.srvs[i] = srv
	}
	clientAddrs := make([]string, n)
	for i, srv := range d.srvs {
		clientAddrs[i] = srv.ClientAddr()
	}
	d.sessions = make([]*dqmx.Session, cfg.Clients)
	for i := range d.sessions {
		// Spread sessions over the arbiters; each keeps the full list as
		// its failover chain.
		rot := append(append([]string{}, clientAddrs[i%n:]...), clientAddrs[:i%n]...)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		sess, err := dqmx.Dial(ctx, rot, dqmx.DialConfig{Lease: cfg.Lease})
		cancel()
		if err != nil {
			d.close()
			return nil, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		d.sessions[i] = sess
	}
	return d, nil
}

func (d *serviceDriver) lock(client int, name string) (*dqmx.Lock, error) {
	if client < 0 || client >= len(d.sessions) {
		return nil, fmt.Errorf("loadgen: client %d out of range", client)
	}
	return d.sessions[client].Lock(name)
}

func (d *serviceDriver) reconfigure(ctx context.Context, n int) (uint64, error) {
	return 0, fmt.Errorf("loadgen: the service driver does not reconfigure its coterie")
}

func (d *serviceDriver) close() {
	for _, s := range d.sessions {
		if s != nil {
			_ = s.Close()
		}
	}
	for _, srv := range d.srvs {
		if srv != nil {
			srv.Close()
		}
	}
}
