package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// SchemaVersion identifies the BENCH_live artifact format. Consumers must
// check it before parsing: fields are only added within a major version.
//
// Schema (dqmx/bench-live/v1):
//
//	{
//	  "schema":     "dqmx/bench-live/v1",
//	  "name":       string,          // experiment name, e.g. "handoff-ab"
//	  "created_at": RFC3339 string,
//	  "runs":       [Report, ...]    // see Report's json tags; delay
//	                                 // distributions are {count, mean, min,
//	                                 // max, p50, p90, p95, p99} in ns
//	}
const SchemaVersion = "dqmx/bench-live/v1"

// Artifact is the machine-readable result of a benchmark invocation.
type Artifact struct {
	Schema    string    `json:"schema"`
	Name      string    `json:"name"`
	CreatedAt time.Time `json:"created_at"`
	Runs      []*Report `json:"runs"`
}

// NewArtifact wraps a set of run reports under the current schema version.
func NewArtifact(name string, runs []*Report) *Artifact {
	return &Artifact{
		Schema:    SchemaVersion,
		Name:      name,
		CreatedAt: time.Now().UTC().Truncate(time.Second),
		Runs:      runs,
	}
}

// Write stores the artifact as BENCH_live_<name>.json in dir, creating the
// directory if needed, and returns the full path. The write is atomic
// (temp file + rename), so a reader never sees a torn artifact.
func (a *Artifact) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", fmt.Errorf("loadgen: marshal artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("loadgen: write artifact: %w", err)
	}
	path := filepath.Join(dir, "BENCH_live_"+a.Name+".json")
	tmp, err := os.CreateTemp(dir, ".bench-live-*")
	if err != nil {
		return "", fmt.Errorf("loadgen: write artifact: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return "", fmt.Errorf("loadgen: write artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return "", fmt.Errorf("loadgen: write artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return "", fmt.Errorf("loadgen: write artifact: %w", err)
	}
	return path, nil
}

// ReadArtifact loads and schema-checks one artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read artifact: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("loadgen: parse artifact %s: %w", path, err)
	}
	if a.Schema != SchemaVersion {
		return nil, fmt.Errorf("loadgen: artifact %s has schema %q, want %q",
			path, a.Schema, SchemaVersion)
	}
	return &a, nil
}
