package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestKeyDistDeterminism: equal seeds replay the identical key sequence,
// different seeds do not (so seed-replay of a benchmark is meaningful).
func TestKeyDistDeterminism(t *testing.T) {
	for _, dist := range []string{DistUniform, DistZipf} {
		draw := func(seed int64) []int {
			d, err := NewKeyDist(dist, 1.2, 16, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int, 200)
			for i := range out {
				out[i] = d.Next()
			}
			return out
		}
		a, b, c := draw(42), draw(42), draw(43)
		same, diff := true, false
		for i := range a {
			same = same && a[i] == b[i]
			diff = diff || a[i] != c[i]
		}
		if !same {
			t.Errorf("%s: two seed-42 sequences diverged", dist)
		}
		if !diff {
			t.Errorf("%s: seed 42 and 43 produced identical sequences", dist)
		}
	}
}

// TestUniformDistSpread: with many samples every key gets close to its
// 1/k share.
func TestUniformDistSpread(t *testing.T) {
	const k, n = 8, 20000
	d, err := NewKeyDist(DistUniform, 0, k, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		key := d.Next()
		if key < 0 || key >= k {
			t.Fatalf("key %d out of range", key)
		}
		counts[key]++
	}
	want := float64(n) / k
	for key, got := range counts {
		if math.Abs(float64(got)-want) > 0.2*want {
			t.Errorf("key %d drawn %d times, want ~%.0f", key, got, want)
		}
	}
}

// TestZipfDistSkew: key 0 must dominate and the distribution must be
// monotone-ish — the head clearly above the uniform share, the tail
// clearly below.
func TestZipfDistSkew(t *testing.T) {
	const k, n = 16, 20000
	d, err := NewKeyDist(DistZipf, 1.2, k, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		key := d.Next()
		if key < 0 || key >= k {
			t.Fatalf("key %d out of range", key)
		}
		counts[key]++
	}
	uniformShare := float64(n) / k
	if float64(counts[0]) < 2*uniformShare {
		t.Errorf("zipf head drew %d, want well above uniform share %.0f", counts[0], uniformShare)
	}
	if float64(counts[k-1]) > uniformShare {
		t.Errorf("zipf tail drew %d, want below uniform share %.0f", counts[k-1], uniformShare)
	}
	if counts[0] <= counts[k-1] {
		t.Errorf("zipf head (%d) not above tail (%d)", counts[0], counts[k-1])
	}
}

// TestInterarrivalMean: the Poisson clock's gaps average 1/rate.
func TestInterarrivalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const rate = 1000.0 // 1ms mean
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := Interarrival(rng, rate)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum / n
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Errorf("mean interarrival %v, want ~1ms", mean)
	}
}

// TestThinkTime: zero mean means no thinking; a positive mean averages out.
func TestThinkTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := ThinkTime(rng, 0); got != 0 {
		t.Errorf("zero-mean think time = %v", got)
	}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += ThinkTime(rng, 2*time.Millisecond)
	}
	mean := sum / n
	if mean < 1800*time.Microsecond || mean > 2200*time.Microsecond {
		t.Errorf("mean think time %v, want ~2ms", mean)
	}
}

// TestConfigValidation: the defaulting and rejection rules clients depend
// on.
func TestConfigValidation(t *testing.T) {
	if _, err := (Config{N: 9, Measure: time.Second, Driver: "carrier-pigeon"}).withDefaults(); err == nil {
		t.Error("unknown driver accepted")
	}
	if _, err := (Config{N: 1, Measure: time.Second}).withDefaults(); err == nil {
		t.Error("single-site cluster accepted")
	}
	if _, err := (Config{N: 9, Measure: time.Second, Arrival: ArrivalOpen}).withDefaults(); err == nil {
		t.Error("open loop without a rate accepted")
	}
	if _, err := (Config{N: 9, Measure: time.Second, Dist: DistZipf, ZipfS: 0.5}).withDefaults(); err == nil {
		t.Error("zipf with s <= 1 accepted")
	}
	if _, err := (Config{N: 9, Measure: time.Second, Driver: DriverTCP, Protocol: "maekawa"}).withDefaults(); err != nil {
		t.Errorf("TCP driver rejected maekawa: %v (every protocol registers wire messages now)", err)
	}
	if _, err := (Config{N: 9, Measure: time.Second, Driver: DriverTCP, Chaos: &ChaosPlanConfig{Drop: 0.1}}).withDefaults(); err == nil {
		t.Error("TCP driver accepted a chaos plan")
	}
	if _, err := (Config{N: 9, Measure: time.Second, Driver: DriverTCP, Codec: "msgpack"}).withDefaults(); err == nil {
		t.Error("TCP driver accepted an unknown codec")
	}
	if _, err := (Config{N: 9, Measure: time.Second, Codec: "binary"}).withDefaults(); err == nil {
		t.Error("in-process driver accepted a wire codec")
	}
	tcp, err := (Config{N: 9, Measure: time.Second, Driver: DriverTCP}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Codec != "binary" {
		t.Errorf("TCP default codec = %q, want binary", tcp.Codec)
	}
	if tcp, err := (Config{N: 9, Measure: time.Second, Driver: DriverTCP, Codec: "gob"}).withDefaults(); err != nil || tcp.Codec != "gob" {
		t.Errorf("TCP gob codec: %v (codec %q)", err, tcp.Codec)
	}
	cfg, err := (Config{N: 9, Measure: time.Second}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Driver != DriverInproc || cfg.Workers != 9 || cfg.Resources != 1 ||
		cfg.Dist != DistUniform || cfg.Arrival != ArrivalClosed || cfg.Drain == 0 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if _, err := (Config{N: 9, Measure: time.Second, Dist: DistZipf}).withDefaults(); err != nil {
		t.Errorf("zipf default exponent rejected: %v", err)
	}
}
