package loadgen

// Live-cluster smoke tests: these run real protocol deployments for a
// couple of seconds each and back the Makefile's bench-smoke target. The
// A/B thresholds are deliberately loose — the deterministic per-hop delay
// puts the transfer arm at ~d and the fallback arm at ~2d, so a ratio
// floor of 1.3 leaves a 50%+ noise margin on an expected 2.0.

import (
	"testing"
	"time"
)

// abConfig is a saturated single-resource closed loop: every handover has
// a waiting next holder, which is exactly the regime where transfer (T)
// versus release-fallback (2T) is visible.
func abConfig(driver string, n int, quorum string, hop time.Duration) Config {
	return Config{
		Driver:   driver,
		N:        n,
		Quorum:   quorum,
		Arrival:  ArrivalClosed,
		Hold:     500 * time.Microsecond,
		HopDelay: hop,
		Warmup:   250 * time.Millisecond,
		Measure:  900 * time.Millisecond,
		Seed:     42,
	}
}

func checkAB(t *testing.T, ab *ABResult) {
	t.Helper()
	for name, rep := range map[string]*Report{"transfer": ab.Transfer, "fallback": ab.Fallback} {
		if rep.Ops == 0 || rep.Throughput <= 0 {
			t.Fatalf("%s arm did no work: %+v", name, rep)
		}
		if rep.Handoff.Count < 5 {
			t.Fatalf("%s arm saw only %d handovers; the window is too small to compare",
				name, rep.Handoff.Count)
		}
		if rep.Acquire.Count == 0 || rep.Acquire.P50 <= 0 {
			t.Fatalf("%s arm recorded no client latency: %+v", name, rep.Acquire)
		}
	}
	if ab.Fallback.ByKind["transfer"] != 0 {
		t.Errorf("fallback arm sent %d transfer messages", ab.Fallback.ByKind["transfer"])
	}
	if ab.Transfer.ByKind["transfer"] == 0 {
		t.Error("transfer arm sent no transfer messages; the A/B is not exercising the mechanism")
	}
	ratio := ab.HandoffRatio()
	t.Logf("handoff p50: transfer=%v fallback=%v ratio=%.2f (expect ~2.0)",
		time.Duration(ab.Transfer.Handoff.P50), time.Duration(ab.Fallback.Handoff.P50), ratio)
	if ratio < 1.3 {
		t.Errorf("fallback/transfer handoff p50 ratio = %.2f, want >= 1.3: the transfer path should roughly halve the handoff delay", ratio)
	}
}

// TestLiveHandoffAB measures the paper's T-versus-2T claim on a live
// deployment of both fabrics: with a deterministic per-hop delay, the p50
// release→next-entry handoff must be clearly lower with the transfer path
// enabled than with handovers forced onto the release fallback.
func TestLiveHandoffAB(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark smoke; skipped in -short")
	}
	t.Run("inproc-grid9", func(t *testing.T) {
		ab, err := RunAB(abConfig(DriverInproc, 9, "grid", 4*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		checkAB(t, ab)
	})
	t.Run("tcp-tree7", func(t *testing.T) {
		ab, err := RunAB(abConfig(DriverTCP, 7, "tree", 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		checkAB(t, ab)
	})
}

// TestTCPProtocolsAndCodecs pins the two freedoms the TCP driver gained
// with the wire-v1 codec layer: any protocol runs over TCP (every algorithm
// registers its wire messages), under either codec, and the report records
// which codec framed the run.
func TestTCPProtocolsAndCodecs(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark smoke; skipped in -short")
	}
	cases := []struct {
		protocol, codec string
	}{
		{"suzuki-kasami", ""},      // baseline protocol, default codec
		{"ricart-agrawala", "gob"}, // baseline protocol, pinned v0 codec
		{"delay-optimal", "gob"},   // the paper's protocol on the v0 codec
	}
	for _, tc := range cases {
		name := tc.protocol + "/" + tc.codec
		t.Run(name, func(t *testing.T) {
			rep, err := Run(Config{
				Driver:   DriverTCP,
				Protocol: tc.protocol,
				Codec:    tc.codec,
				N:        3,
				Hold:     100 * time.Microsecond,
				Warmup:   50 * time.Millisecond,
				Measure:  300 * time.Millisecond,
				Seed:     11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops == 0 || rep.Throughput <= 0 {
				t.Fatalf("run did no work: %+v", rep)
			}
			want := tc.codec
			if want == "" {
				want = "binary"
			}
			if rep.Codec != want {
				t.Errorf("report codec = %q, want %q", rep.Codec, want)
			}
		})
	}
}

// TestServiceScaling is the lock-service-tier smoke: a fixed 3-arbiter
// coterie serves a growing leased-client population over loopback TCP. The
// tentpole claim under test is that the per-CS protocol traffic — the
// paper's 3(K−1)..6(K−1) bound, a function of the coterie alone — stays
// flat as the client count quadruples.
func TestServiceScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark smoke; skipped in -short")
	}
	perCS := make(map[int]float64)
	for _, nClients := range []int{8, 32} {
		rep, err := Run(Config{
			Driver:    DriverService,
			N:         3,
			Quorum:    "majority",
			Clients:   nClients,
			Resources: 4,
			Hold:      200 * time.Microsecond,
			Warmup:    150 * time.Millisecond,
			Measure:   600 * time.Millisecond,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("clients=%d: %v", nClients, err)
		}
		if rep.Ops == 0 || rep.Throughput <= 0 {
			t.Fatalf("clients=%d did no work: %+v", nClients, rep)
		}
		if rep.Clients != nClients || rep.Workers != nClients {
			t.Fatalf("clients=%d: report population wrong: clients=%d workers=%d",
				nClients, rep.Clients, rep.Workers)
		}
		if rep.MessagesPerCS <= 0 {
			t.Fatalf("clients=%d reported no protocol traffic: %+v", nClients, rep)
		}
		perCS[nClients] = rep.MessagesPerCS
		t.Logf("clients=%d: ops=%d thr=%.1f/s msgs/cs=%.2f acquire p50=%v",
			nClients, rep.Ops, rep.Throughput, rep.MessagesPerCS,
			time.Duration(rep.Acquire.P50))
	}
	// Flat within a loose noise margin: 4x the clients must not even double
	// the per-CS quorum traffic (it should barely move at all).
	if ratio := perCS[32] / perCS[8]; ratio > 2.0 {
		t.Errorf("messages/CS grew %.2fx from 8 to 32 clients; the coterie should absorb client growth", ratio)
	}
}

// TestReconfigureMidLoad is the online-membership benchmark smoke: a
// majority-5 cluster under saturated closed-loop load grows to 7 sites a
// third of the way into the measure window. The run must complete the
// switch, keep serving acquires on both sides of it, and report the
// split latency stats (p99 across the epoch switch) that land in the
// BENCH_live artifact.
func TestReconfigureMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark smoke; skipped in -short")
	}
	rep, err := Run(Config{
		Driver:      DriverInproc,
		N:           5,
		Quorum:      "majority",
		Reconfigure: 7,
		Hold:        200 * time.Microsecond,
		Warmup:      150 * time.Millisecond,
		Measure:     1200 * time.Millisecond,
		Seed:        19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Throughput <= 0 {
		t.Fatalf("run did no work: %+v", rep)
	}
	if rep.ReconfigureN != 7 || rep.EpochAfter != 1 {
		t.Fatalf("switch not recorded: target=%d epoch=%d", rep.ReconfigureN, rep.EpochAfter)
	}
	if rep.SwitchMS <= 0 {
		t.Fatalf("switch duration not recorded: %+v", rep)
	}
	if rep.AcquireBefore == nil || rep.AcquireAfter == nil || rep.AcquireDuring == nil {
		t.Fatalf("split acquire stats missing: %+v", rep)
	}
	if rep.AcquireBefore.Count == 0 || rep.AcquireAfter.Count == 0 {
		t.Fatalf("no load on a side of the switch: before=%d after=%d",
			rep.AcquireBefore.Count, rep.AcquireAfter.Count)
	}
	if rep.AcquireBefore.P99 <= 0 || rep.AcquireAfter.P99 <= 0 {
		t.Fatalf("degenerate split p99: %+v / %+v", rep.AcquireBefore, rep.AcquireAfter)
	}
	t.Logf("switch 5→7 in %.1fms; acquire p99 before/during/after = %v/%v/%v (%d/%d/%d samples)",
		rep.SwitchMS,
		time.Duration(rep.AcquireBefore.P99), time.Duration(rep.AcquireDuring.P99), time.Duration(rep.AcquireAfter.P99),
		rep.AcquireBefore.Count, rep.AcquireDuring.Count, rep.AcquireAfter.Count)

	// The artifact must carry the split stats through a round-trip.
	dir := t.TempDir()
	path, err := NewArtifact("reconfigure", []*Report{rep}).Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Runs[0]
	if got.ReconfigureN != 7 || got.SwitchMS != rep.SwitchMS ||
		got.AcquireBefore == nil || got.AcquireBefore.P99 != rep.AcquireBefore.P99 {
		t.Fatalf("artifact round-trip lost the switch stats: %+v", got)
	}
}

// TestBenchSmoke is the artifact-path smoke: a short deterministic sweep
// over grid-9 and tree-7 in-process clusters, written and re-read as a
// schema-checked BENCH_live JSON artifact with non-trivial throughput and
// latency percentiles.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live benchmark smoke; skipped in -short")
	}
	var runs []*Report
	for _, tc := range []struct {
		n      int
		quorum string
	}{
		{9, "grid"},
		{7, "tree"},
	} {
		rep, err := Run(Config{
			Driver:    DriverInproc,
			N:         tc.n,
			Quorum:    tc.quorum,
			Resources: 4,
			Dist:      DistZipf,
			Arrival:   ArrivalOpen,
			Rate:      400,
			Workers:   2 * tc.n,
			Hold:      200 * time.Microsecond,
			Warmup:    150 * time.Millisecond,
			Measure:   500 * time.Millisecond,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("%s-%d: %v", tc.quorum, tc.n, err)
		}
		if rep.Ops == 0 || rep.Throughput <= 0 {
			t.Fatalf("%s-%d did no work: %+v", tc.quorum, tc.n, rep)
		}
		if rep.Acquire.Count == 0 || rep.Acquire.P99 < rep.Acquire.P50 || rep.Acquire.P50 <= 0 {
			t.Fatalf("%s-%d has degenerate latency stats: %+v", tc.quorum, tc.n, rep.Acquire)
		}
		if rep.Messages == 0 || rep.MessagesPerCS <= 0 {
			t.Fatalf("%s-%d reported no protocol traffic: %+v", tc.quorum, tc.n, rep)
		}
		runs = append(runs, rep)
	}

	dir := t.TempDir()
	path, err := NewArtifact("smoke", runs).Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Name != "smoke" || len(back.Runs) != 2 {
		t.Fatalf("artifact round-trip lost data: %+v", back)
	}
	for i, rep := range back.Runs {
		if rep.Throughput <= 0 || rep.Acquire.P95 <= 0 || rep.N != runs[i].N {
			t.Errorf("run %d lost fields in round-trip: %+v", i, rep)
		}
	}
}
