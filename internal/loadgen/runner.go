package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dqmx"
	"dqmx/internal/obs"
)

// Report is the result of one live run: the configuration that produced it
// and everything measured inside the measure window. It marshals directly
// into the BENCH_live_*.json artifact (all delay stats in nanoseconds).
type Report struct {
	Driver   string `json:"driver"`
	Protocol string `json:"protocol"`
	Quorum   string `json:"quorum"`
	// Codec is the wire codec of a TCP run; empty for in-process runs,
	// which have no wire.
	Codec string `json:"codec,omitempty"`
	N     int    `json:"n"`
	// Clients is the leased-session count of a service run; zero for site
	// drivers, whose population is the N sites themselves.
	Clients   int     `json:"clients,omitempty"`
	Resources int     `json:"resources"`
	Dist      string  `json:"dist"`
	ZipfS     float64 `json:"zipf_s,omitempty"`
	Arrival   string  `json:"arrival"`
	Workers   int     `json:"workers"`
	// RatePerSec is the open-loop arrival rate; zero for closed loops.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	ThinkMS    float64 `json:"think_ms,omitempty"`
	HoldMS     float64 `json:"hold_ms,omitempty"`
	HopDelayMS float64 `json:"hop_delay_ms,omitempty"`
	// Transfer is false when the run forced the 2T release fallback.
	Transfer bool             `json:"transfer"`
	Chaos    *ChaosPlanConfig `json:"chaos,omitempty"`
	Seed     int64            `json:"seed"`

	WarmupMS  float64 `json:"warmup_ms"`
	MeasureMS float64 `json:"measure_ms"`

	// Ops counts client operations completed inside the measure window;
	// Throughput is protocol CS executions (exits) per second over the
	// same window.
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_per_sec"`
	// Acquire is the client-observed acquire latency: Acquire call (or,
	// open-loop, scheduled arrival) to grant.
	Acquire obs.DelayStats `json:"acquire_ns"`
	// Handoff is the protocol-level release→next-entry delay over contended
	// handovers — the paper's synchronization delay, the A/B target.
	Handoff obs.DelayStats `json:"handoff_ns"`
	// Waiting is the protocol-level request→entry delay.
	Waiting obs.DelayStats `json:"waiting_ns"`
	// Message accounting over the measure window.
	Messages      uint64            `json:"messages"`
	MessagesPerCS float64           `json:"messages_per_cs"`
	ByKind        map[string]uint64 `json:"by_kind,omitempty"`
	Retransmits   uint64            `json:"retransmits"`

	// Mid-load reconfiguration (Config.Reconfigure): the target size, the
	// epoch after the switch, how long the joint-quorum handover took, and
	// the acquire latency split by when the operation completed relative to
	// the switch — the "p99 across the epoch switch" claim lives in
	// AcquireDuring/AcquireAfter versus AcquireBefore.
	ReconfigureN  int             `json:"reconfigure_n,omitempty"`
	EpochAfter    uint64          `json:"epoch_after,omitempty"`
	SwitchMS      float64         `json:"switch_ms,omitempty"`
	AcquireBefore *obs.DelayStats `json:"acquire_before_ns,omitempty"`
	AcquireDuring *obs.DelayStats `json:"acquire_during_ns,omitempty"`
	AcquireAfter  *obs.DelayStats `json:"acquire_after_ns,omitempty"`
}

// phase values for the run controller.
const (
	phaseWarmup int32 = iota
	phaseMeasure
	phaseDrain
)

// recorder is one worker's private sample store; merged after the workers
// stop, so the hot path takes no locks. The phases histograms split samples
// around a mid-load reconfiguration (before/during/after the switch) and
// stay empty otherwise.
type recorder struct {
	hist   obs.Histogram
	phases [3]obs.Histogram
	ops    uint64
}

// arrival is one open-loop operation: when it was scheduled and for which
// resource.
type arrival struct {
	at  time.Time
	key int
}

// Run executes one configured live benchmark and reports what the measure
// window saw.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	metrics := obs.NewMetrics()
	tracker := obs.NewDelayTracker()
	drv, err := newDriver(cfg, obs.Tee(metrics.Observe, tracker.Observe))
	if err != nil {
		return nil, err
	}
	defer drv.close()

	// Pre-instantiate every (worker, resource) handle so instantiation cost
	// never lands inside the run. Worker w issues requests as member
	// w mod population — a site on the site drivers, a leased session on
	// the service driver.
	pop := cfg.population()
	handles := make([][]*dqmx.Lock, cfg.Workers)
	for w := range handles {
		handles[w] = make([]*dqmx.Lock, cfg.Resources)
		for r := 0; r < cfg.Resources; r++ {
			h, err := drv.lock(w%pop, resourceName(r))
			if err != nil {
				return nil, fmt.Errorf("loadgen: lock handle (member %d, %s): %w",
					w%pop, resourceName(r), err)
			}
			handles[w][r] = h
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var phase atomic.Int32
	stop := make(chan struct{})
	recs := make([]recorder, cfg.Workers)
	var wg sync.WaitGroup

	// switchPhase tracks a mid-load reconfiguration: 0 before the switch
	// starts, 1 while the handover runs, 2 once it completes. Samples are
	// classified by when the acquire finished — an acquire completing during
	// the switch experienced it.
	var switchPhase atomic.Int32
	runOp := func(ctx context.Context, w int, key int, start time.Time) {
		h := handles[w][key]
		if err := h.Acquire(ctx); err != nil {
			return // cancelled during drain
		}
		if phase.Load() == phaseMeasure {
			lat := time.Since(start).Nanoseconds()
			recs[w].hist.Add(lat)
			if cfg.Reconfigure > 0 {
				recs[w].phases[switchPhase.Load()].Add(lat)
			}
			recs[w].ops++
		}
		if cfg.Hold > 0 {
			time.Sleep(cfg.Hold)
		}
		_ = h.Release()
	}

	switch cfg.Arrival {
	case ArrivalClosed:
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 1))
				dist, _ := NewKeyDist(cfg.Dist, cfg.ZipfS, cfg.Resources, rng)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if think := ThinkTime(rng, cfg.Think); think > 0 {
						select {
						case <-stop:
							return
						case <-time.After(think):
						}
					}
					runOp(ctx, w, dist.Next(), time.Now())
				}
			}(w)
		}
	case ArrivalOpen:
		arrivals := make(chan arrival, 4*cfg.Workers)
		wg.Add(1)
		go func() { // dispatcher: the Poisson clock
			defer wg.Done()
			defer close(arrivals)
			rng := rand.New(rand.NewSource(cfg.Seed))
			dist, _ := NewKeyDist(cfg.Dist, cfg.ZipfS, cfg.Resources, rng)
			for {
				select {
				case <-stop:
					return
				case <-time.After(Interarrival(rng, cfg.Rate)):
				}
				// A full backlog blocks the clock: the run degrades toward
				// closed-loop at overload instead of hoarding goroutines.
				select {
				case arrivals <- arrival{at: time.Now(), key: dist.Next()}:
				case <-stop:
					return
				}
			}
		}()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for a := range arrivals {
					// Latency counts from the scheduled arrival: backlog
					// queueing is the system's fault, not the client's.
					runOp(ctx, w, a.key, a.at)
				}
			}(w)
		}
	}

	// Warmup → open the measurement window → measure → close it. A mid-load
	// reconfiguration fires a third of the way in, so the window sees steady
	// state on both sides of the epoch switch.
	time.Sleep(cfg.Warmup)
	before := metrics.Snapshot()
	tracker.StartRecording()
	phase.Store(phaseMeasure)
	t0 := time.Now()
	var (
		switchDur  time.Duration
		epochAfter uint64
	)
	if cfg.Reconfigure > 0 {
		time.Sleep(cfg.Measure / 3)
		switchPhase.Store(1)
		rctx, rcancel := context.WithTimeout(ctx, cfg.Measure+cfg.Drain)
		s0 := time.Now()
		epochAfter, err = drv.reconfigure(rctx, cfg.Reconfigure)
		switchDur = time.Since(s0)
		rcancel()
		if err != nil {
			close(stop)
			cancel()
			wg.Wait()
			return nil, fmt.Errorf("loadgen: reconfigure to %d sites: %w", cfg.Reconfigure, err)
		}
		switchPhase.Store(2)
		if rest := cfg.Measure - cfg.Measure/3 - switchDur; rest > 0 {
			time.Sleep(rest)
		}
	} else {
		time.Sleep(cfg.Measure)
	}
	measured := time.Since(t0)
	phase.Store(phaseDrain)
	tracker.StopRecording()
	after := metrics.Snapshot()

	// Drain: stop new operations, give in-flight ones until the drain
	// budget, then cancel whatever is still stuck.
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Drain):
		cancel()
		<-done
	}

	var acquire obs.Histogram
	var phased [3]obs.Histogram
	var ops uint64
	for w := range recs {
		acquire.Merge(&recs[w].hist)
		for p := range phased {
			phased[p].Merge(&recs[w].phases[p])
		}
		ops += recs[w].ops
	}
	exits := after.Exits - before.Exits
	messages := after.Messages - before.Messages
	rep := &Report{
		Driver:     cfg.Driver,
		Protocol:   protocolName(cfg.Protocol),
		Quorum:     quorumName(cfg.Quorum),
		Codec:      cfg.Codec,
		N:          cfg.N,
		Clients:    cfg.Clients,
		Resources:  cfg.Resources,
		Dist:       cfg.Dist,
		ZipfS:      cfg.ZipfS,
		Arrival:    cfg.Arrival,
		Workers:    cfg.Workers,
		RatePerSec: cfg.Rate,
		ThinkMS:    ms(cfg.Think),
		HoldMS:     ms(cfg.Hold),
		HopDelayMS: ms(cfg.HopDelay),
		Transfer:   !cfg.DisableTransfer,
		Chaos:      cfg.Chaos,
		Seed:       cfg.Seed,
		WarmupMS:   ms(cfg.Warmup),
		MeasureMS:  measured.Seconds() * 1000,
		Ops:        ops,
		Throughput: float64(exits) / measured.Seconds(),
		Acquire:    acquire.Stats(),
		Handoff:    tracker.Handoff(),
		Waiting:    tracker.Waiting(),
		Messages:   messages,
		Retransmits: after.Transport.Retransmits -
			before.Transport.Retransmits,
	}
	if cfg.Reconfigure > 0 {
		rep.ReconfigureN = cfg.Reconfigure
		rep.EpochAfter = epochAfter
		rep.SwitchMS = ms(switchDur)
		stats := func(h *obs.Histogram) *obs.DelayStats {
			s := h.Stats()
			return &s
		}
		rep.AcquireBefore = stats(&phased[0])
		rep.AcquireDuring = stats(&phased[1])
		rep.AcquireAfter = stats(&phased[2])
	}
	if exits > 0 {
		rep.MessagesPerCS = float64(messages) / float64(exits)
	}
	if len(after.ByKind) > 0 {
		rep.ByKind = make(map[string]uint64, len(after.ByKind))
		for k, v := range after.ByKind {
			if d := v - before.ByKind[k]; d > 0 {
				rep.ByKind[k] = d
			}
		}
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func protocolName(p string) string {
	if p == "" {
		return "delay-optimal"
	}
	return p
}

func quorumName(q string) string {
	if q == "" {
		return "grid"
	}
	return q
}

// ABResult pairs the two arms of the transfer-versus-fallback experiment on
// otherwise identical configurations.
type ABResult struct {
	// Transfer is the delay-optimal arm (transfer mechanism on).
	Transfer *Report `json:"transfer"`
	// Fallback is the control arm (transfers suppressed; every handover
	// pays the 2T release path).
	Fallback *Report `json:"fallback"`
}

// HandoffRatio is fallback p50 handoff delay over transfer p50 — the live
// measurement of the paper's T-versus-2T claim. Zero when either arm
// recorded no handovers.
func (r *ABResult) HandoffRatio() float64 {
	if r.Transfer == nil || r.Fallback == nil ||
		r.Transfer.Handoff.P50 <= 0 || r.Fallback.Handoff.P50 <= 0 {
		return 0
	}
	return float64(r.Fallback.Handoff.P50) / float64(r.Transfer.Handoff.P50)
}

// RunAB runs cfg twice — transfer path enabled, then forced onto the
// release fallback — and pairs the reports.
func RunAB(cfg Config) (*ABResult, error) {
	cfg.DisableTransfer = false
	transfer, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: transfer arm: %w", err)
	}
	cfg.DisableTransfer = true
	fallback, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fallback arm: %w", err)
	}
	return &ABResult{Transfer: transfer, Fallback: fallback}, nil
}
