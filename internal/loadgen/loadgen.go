// Package loadgen is the live-cluster load-generation and performance lab:
// it drives real protocol deployments — an in-process cluster or a loopback
// TCP deployment — with open-loop (Poisson) or closed-loop (think-time)
// client populations over uniform or Zipf-distributed named resources,
// measures acquire latency and protocol traffic inside an explicit
// warmup/measure/drain window, and emits machine-readable BENCH_live_*.json
// artifacts. Where the sim package answers "what does the protocol cost in
// units of T", loadgen answers "what does this implementation cost in
// nanoseconds on a real fabric" — including the flagship A/B of the paper's
// claim: release→next-entry handoff with the transfer path enabled versus
// forced onto the 2T release fallback.
package loadgen

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival names a client-population model.
const (
	// ArrivalClosed is a fixed population of workers, each cycling
	// think → acquire → hold → release with exponentially distributed
	// think times (mean Config.Think).
	ArrivalClosed = "closed"
	// ArrivalOpen is a Poisson arrival process at Config.Rate arrivals per
	// second, served by a bounded worker pool; latency is measured from the
	// scheduled arrival, so backlog queueing counts against the system.
	ArrivalOpen = "open"
)

// Dist names a key-popularity distribution over the named resources.
const (
	// DistUniform spreads operations evenly over the resources.
	DistUniform = "uniform"
	// DistZipf skews operations toward low-numbered resources with
	// exponent Config.ZipfS (> 1).
	DistZipf = "zipf"
)

// KeyDist picks resource indices in [0, k). Implementations are
// deterministic functions of their seed, so a run's key sequence replays
// exactly.
type KeyDist interface {
	Next() int
}

// uniformDist picks each key with equal probability.
type uniformDist struct {
	rng *rand.Rand
	k   int
}

func (u *uniformDist) Next() int { return u.rng.Intn(u.k) }

// zipfDist skews toward key 0 with P(i) ∝ 1/(i+1)^s.
type zipfDist struct {
	z *rand.Zipf
}

func (z *zipfDist) Next() int { return int(z.z.Uint64()) }

// NewKeyDist builds the named distribution over k keys, seeded by rng.
// DistZipf requires s > 1 (the stdlib generator's domain).
func NewKeyDist(dist string, s float64, k int, rng *rand.Rand) (KeyDist, error) {
	if k < 1 {
		return nil, fmt.Errorf("loadgen: need at least one resource, got %d", k)
	}
	switch dist {
	case "", DistUniform:
		return &uniformDist{rng: rng, k: k}, nil
	case DistZipf:
		if s <= 1 {
			return nil, fmt.Errorf("loadgen: zipf exponent must be > 1, got %v", s)
		}
		return &zipfDist{z: rand.NewZipf(rng, s, 1, uint64(k-1))}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown key distribution %q (valid: %s, %s)",
		dist, DistUniform, DistZipf)
}

// Interarrival samples one exponential interarrival gap for a Poisson
// process of the given rate (arrivals per second). Zero and negative rates
// are invalid; Config validation rejects them before sampling.
func Interarrival(rng *rand.Rand, ratePerSec float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
}

// ThinkTime samples one exponential think-time with the given mean. A zero
// mean means no thinking: the population is saturated.
func ThinkTime(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// Config describes one live benchmark run.
type Config struct {
	// Driver selects the fabric: DriverInproc or DriverTCP.
	Driver string
	// Protocol and Quorum select the algorithm; both default to the paper's
	// (delay-optimal over grid). Every protocol runs on both fabrics — each
	// registers its wire messages with the codec layer.
	Protocol string
	Quorum   string
	// Codec selects the TCP driver's wire codec ("binary" or "gob"; empty
	// means binary). The in-process driver has no wire and rejects it.
	Codec string
	// N is the cluster size: sites for the site drivers, arbiters for the
	// service driver.
	N int
	// Clients is the leased-session count of a service run (default:
	// Workers). The site drivers reject it — their population is N.
	Clients int
	// Lease is the service run's session lease TTL (zero = service
	// default).
	Lease time.Duration
	// Resources is the number of named locks (default 1).
	Resources int
	// Dist and ZipfS select the key-popularity distribution (default
	// uniform; ZipfS defaults to 1.2 when Dist is zipf).
	Dist  string
	ZipfS float64
	// Arrival selects the population model (default closed).
	Arrival string
	// Workers is the population size (closed) or service-pool size (open).
	// Defaults to N.
	Workers int
	// Rate is the open-loop arrival rate in arrivals per second.
	Rate float64
	// Think is the closed-loop mean think time (zero = saturated).
	Think time.Duration
	// Hold is how long a worker keeps the lock once acquired.
	Hold time.Duration
	// Warmup, Measure, Drain bound the run's phases. Only activity inside
	// the measure window is reported; drain bounds how long the controller
	// waits for in-flight operations before cancelling them.
	Warmup  time.Duration
	Measure time.Duration
	Drain   time.Duration
	// HopDelay imposes a deterministic per-hop message latency: on the
	// in-process driver through a chaos plan (MinDelay = MaxDelay), on the
	// TCP driver through the transport's LinkDelay. Without it, loopback
	// delivery is so fast that scheduling noise swamps the protocol's T
	// versus 2T structure.
	HopDelay time.Duration
	// DisableTransfer forces the delay-optimal protocol onto the 2T release
	// fallback — the A/B control arm.
	DisableTransfer bool
	// Chaos, when non-nil, runs the in-process cluster under this fault
	// plan (the TCP driver rejects it). HopDelay, when also set, overrides
	// the plan's delay bounds.
	Chaos *ChaosPlanConfig
	// Reconfigure, when positive, grows the cluster to this many sites via
	// the joint-quorum handover (internal/membership) one third of the way
	// into the measure window, keeping the load running across the epoch
	// switch. The report then splits acquire latency into before/during/
	// after the switch and records the switch duration. In-process driver
	// only (a TCP switch is operator-driven), and the target must exceed N —
	// the workers stay bound to the original sites.
	Reconfigure int
	// Seed drives every generator decision; equal seeds replay the same
	// key and think/interarrival sequences.
	Seed int64
}

// ChaosPlanConfig mirrors the chaos plan knobs loadgen exposes; it is a
// plain struct so artifact records stay JSON-friendly.
type ChaosPlanConfig struct {
	Drop      float64       `json:"drop,omitempty"`
	Duplicate float64       `json:"duplicate,omitempty"`
	Reorder   float64       `json:"reorder,omitempty"`
	MinDelay  time.Duration `json:"min_delay,omitempty"`
	MaxDelay  time.Duration `json:"max_delay,omitempty"`
}

// withDefaults fills the zero values in and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.Driver == "" {
		c.Driver = DriverInproc
	}
	if c.Driver != DriverInproc && c.Driver != DriverTCP && c.Driver != DriverService {
		return c, fmt.Errorf("loadgen: unknown driver %q (valid: %s, %s, %s)",
			c.Driver, DriverInproc, DriverTCP, DriverService)
	}
	if c.N < 2 {
		return c, fmt.Errorf("loadgen: need at least 2 sites, got %d", c.N)
	}
	if c.Resources == 0 {
		c.Resources = 1
	}
	if c.Resources < 1 {
		return c, fmt.Errorf("loadgen: need at least one resource, got %d", c.Resources)
	}
	if c.Dist == "" {
		c.Dist = DistUniform
	}
	if c.Dist == DistZipf && c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if _, err := NewKeyDist(c.Dist, c.ZipfS, c.Resources, rand.New(rand.NewSource(0))); err != nil {
		return c, err
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalClosed
	}
	switch c.Arrival {
	case ArrivalClosed:
		c.Rate = 0 // open-loop knob; keep closed-loop records unambiguous
	case ArrivalOpen:
		c.Think = 0 // closed-loop knob
		if c.Rate <= 0 {
			return c, fmt.Errorf("loadgen: open-loop arrivals need Rate > 0, got %v", c.Rate)
		}
	default:
		return c, fmt.Errorf("loadgen: unknown arrival model %q (valid: %s, %s)",
			c.Arrival, ArrivalClosed, ArrivalOpen)
	}
	if c.Workers == 0 {
		if c.Driver == DriverService && c.Clients > 0 {
			c.Workers = c.Clients
		} else {
			c.Workers = c.N
		}
	}
	if c.Workers < 1 {
		return c, fmt.Errorf("loadgen: need at least one worker, got %d", c.Workers)
	}
	if c.Measure <= 0 {
		return c, fmt.Errorf("loadgen: need a positive measure window, got %v", c.Measure)
	}
	if c.Drain == 0 {
		c.Drain = 5 * time.Second
	}
	switch c.Driver {
	case DriverTCP, DriverService:
		if c.Chaos != nil {
			return c, fmt.Errorf("loadgen: chaos plans apply to the in-process driver only")
		}
		// Resolve the codec name now so artifacts record the actual wire
		// format, never an ambiguous empty string.
		codec, err := wireCodecName(c.Codec)
		if err != nil {
			return c, err
		}
		c.Codec = codec
	case DriverInproc:
		if c.Codec != "" {
			return c, fmt.Errorf("loadgen: wire codecs apply to the TCP driver only, got %q", c.Codec)
		}
	}
	if c.Reconfigure != 0 {
		if c.Driver != DriverInproc {
			return c, fmt.Errorf("loadgen: mid-load reconfiguration applies to the in-process driver only")
		}
		if c.Reconfigure <= c.N {
			return c, fmt.Errorf("loadgen: Reconfigure must grow the cluster (target %d, current %d)",
				c.Reconfigure, c.N)
		}
	}
	switch c.Driver {
	case DriverService:
		if c.Clients == 0 {
			c.Clients = c.Workers
		}
		if c.Clients < 1 {
			return c, fmt.Errorf("loadgen: need at least one client, got %d", c.Clients)
		}
	default:
		if c.Clients != 0 {
			return c, fmt.Errorf("loadgen: Clients applies to the service driver only")
		}
		if c.Lease != 0 {
			return c, fmt.Errorf("loadgen: Lease applies to the service driver only")
		}
	}
	return c, nil
}

// population is the lock-handle index space of a run: sites for the site
// drivers, sessions for the service driver.
func (c Config) population() int {
	if c.Driver == DriverService {
		return c.Clients
	}
	return c.N
}

// resourceName returns the canonical name of resource i.
func resourceName(i int) string { return fmt.Sprintf("r%d", i) }
