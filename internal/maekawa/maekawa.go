// Package maekawa implements Maekawa's quorum-based mutual exclusion
// algorithm (the paper's primary baseline): each site locks a quorum of
// arbiters; deadlocks among concurrently requesting sites are resolved with
// inquire/fail/yield; and — crucially — a site exiting the critical section
// sends release to its arbiters, each of which then replies to the next
// requester. That arbiter round trip is why Maekawa's synchronization delay
// is 2T where the delay-optimal algorithm in internal/core achieves T.
package maekawa

import (
	"fmt"
	"sort"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// requestMsg asks an arbiter for permission.
type requestMsg struct{ TS timestamp.Timestamp }

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// replyMsg grants the arbiter's permission to request ReqTS.
type replyMsg struct {
	Arbiter mutex.SiteID
	ReqTS   timestamp.Timestamp
}

// Kind implements mutex.Message.
func (replyMsg) Kind() string { return mutex.KindReply }

// releaseMsg reports a CS exit to the arbiter.
type releaseMsg struct{ ReqTS timestamp.Timestamp }

// Kind implements mutex.Message.
func (releaseMsg) Kind() string { return mutex.KindRelease }

// inquireMsg asks the current holder whether it can still win.
type inquireMsg struct {
	Arbiter  mutex.SiteID
	HolderTS timestamp.Timestamp
}

// Kind implements mutex.Message.
func (inquireMsg) Kind() string { return mutex.KindInquire }

// failMsg tells a requester a higher-priority request is ahead of it.
type failMsg struct {
	Arbiter mutex.SiteID
	ReqTS   timestamp.Timestamp
}

// Kind implements mutex.Message.
func (failMsg) Kind() string { return mutex.KindFail }

// yieldMsg returns the permission for re-granting.
type yieldMsg struct{ ReqTS timestamp.Timestamp }

// Kind implements mutex.Message.
func (yieldMsg) Kind() string { return mutex.KindYield }

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

// Site is one Maekawa participant (requester and arbiter halves).
type Site struct {
	id     mutex.SiteID
	clock  *timestamp.Clock
	quorum coterie.Quorum

	// Requester half.
	state       siteState
	reqTS       timestamp.Timestamp
	replied     map[mutex.SiteID]bool
	failed      bool
	inqDeferred map[mutex.SiteID]bool

	// Arbiter half.
	lock     timestamp.Timestamp
	queue    queue
	inquired bool
}

var _ mutex.Site = (*Site)(nil)

// queue is a slice-based priority queue of timestamps (see internal/core for
// rationale; duplicated here to keep baseline packages self-contained).
type queue struct{ items []timestamp.Timestamp }

func (q *queue) empty() bool               { return len(q.items) == 0 }
func (q *queue) head() timestamp.Timestamp { return q.items[0] }
func (q *queue) push(ts timestamp.Timestamp) {
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if q.items[mid].Less(ts) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(q.items) && q.items[lo] == ts {
		return
	}
	q.items = append(q.items, timestamp.Timestamp{})
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = ts
}
func (q *queue) pop() timestamp.Timestamp {
	ts := q.items[0]
	q.items = q.items[1:]
	return ts
}

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	s.state = stateWaiting
	s.reqTS = s.clock.Tick()
	s.failed = false
	s.replied = make(map[mutex.SiteID]bool, len(s.quorum))
	s.inqDeferred = make(map[mutex.SiteID]bool)
	for _, j := range s.quorum {
		out.SendTo(s.id, j, requestMsg{TS: s.reqTS})
	}
	return out
}

// Exit implements mutex.Site: release every arbiter; each re-grants to its
// next waiter itself (the 2T handover).
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	for _, j := range s.quorum {
		out.SendTo(s.id, j, releaseMsg{ReqTS: s.reqTS})
	}
	s.state = stateIdle
	s.reqTS = timestamp.Max
	s.replied = nil
	s.inqDeferred = nil
	s.failed = false
	return out
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		s.onRequest(m, &out)
	case replyMsg:
		s.onReply(m, &out)
	case releaseMsg:
		s.onRelease(m, &out)
	case inquireMsg:
		s.onInquire(m, &out)
	case failMsg:
		s.onFail(m, &out)
	case yieldMsg:
		s.onYield(m, &out)
	}
	return out
}

func (s *Site) onRequest(m requestMsg, out *mutex.Output) {
	s.clock.Witness(m.TS)
	if s.lock.IsMax() {
		s.lock = m.TS
		s.inquired = false
		out.SendTo(s.id, m.TS.Site, replyMsg{Arbiter: s.id, ReqTS: m.TS})
		return
	}
	oldHead := timestamp.Max
	if !s.queue.empty() {
		oldHead = s.queue.head()
	}
	s.queue.push(m.TS)
	head := s.queue.head()
	if head != m.TS || !m.TS.Less(s.lock) {
		out.SendTo(s.id, m.TS.Site, failMsg{Arbiter: s.id, ReqTS: m.TS})
	}
	if head == m.TS && !oldHead.IsMax() && oldHead.Less(s.lock) {
		out.SendTo(s.id, oldHead.Site, failMsg{Arbiter: s.id, ReqTS: oldHead})
	}
	if head.Less(s.lock) && !s.inquired {
		s.inquired = true
		out.SendTo(s.id, s.lock.Site, inquireMsg{Arbiter: s.id, HolderTS: s.lock})
	}
}

func (s *Site) onRelease(m releaseMsg, out *mutex.Output) {
	if s.lock != m.ReqTS {
		return
	}
	s.grantNext(out)
}

func (s *Site) grantNext(out *mutex.Output) {
	s.inquired = false
	if s.queue.empty() {
		s.lock = timestamp.Max
		return
	}
	grant := s.queue.pop()
	s.lock = grant
	out.SendTo(s.id, grant.Site, replyMsg{Arbiter: s.id, ReqTS: grant})
}

func (s *Site) onYield(m yieldMsg, out *mutex.Output) {
	if s.lock != m.ReqTS {
		return
	}
	s.queue.push(m.ReqTS)
	s.grantNext(out)
}

func (s *Site) onReply(m replyMsg, out *mutex.Output) {
	if s.state != stateWaiting || m.ReqTS != s.reqTS {
		return
	}
	s.replied[m.Arbiter] = true
	if s.inqDeferred[m.Arbiter] && s.failed {
		delete(s.inqDeferred, m.Arbiter)
		s.yieldTo(m.Arbiter, out)
	}
	s.checkEntry(out)
}

func (s *Site) onInquire(m inquireMsg, out *mutex.Output) {
	if s.state == stateIdle || m.HolderTS != s.reqTS || s.state == stateInCS {
		return // stale, or in the CS (release will answer)
	}
	if s.replied[m.Arbiter] && s.failed {
		s.yieldTo(m.Arbiter, out)
		return
	}
	s.inqDeferred[m.Arbiter] = true
}

func (s *Site) onFail(m failMsg, out *mutex.Output) {
	if s.state != stateWaiting || m.ReqTS != s.reqTS {
		return
	}
	s.failed = true
	// Site-order iteration keeps replays deterministic.
	arbs := make([]mutex.SiteID, 0, len(s.inqDeferred))
	for arb := range s.inqDeferred {
		arbs = append(arbs, arb)
	}
	sort.Slice(arbs, func(i, j int) bool { return arbs[i] < arbs[j] })
	for _, arb := range arbs {
		if s.replied[arb] {
			delete(s.inqDeferred, arb)
			s.yieldTo(arb, out)
		}
	}
}

func (s *Site) yieldTo(arb mutex.SiteID, out *mutex.Output) {
	s.replied[arb] = false
	s.failed = true
	delete(s.inqDeferred, arb)
	out.SendTo(s.id, arb, yieldMsg{ReqTS: s.reqTS})
}

func (s *Site) checkEntry(out *mutex.Output) {
	if s.state != stateWaiting {
		return
	}
	for _, j := range s.quorum {
		if !s.replied[j] {
			return
		}
	}
	s.state = stateInCS
	s.inqDeferred = make(map[mutex.SiteID]bool)
	out.Entered = true
}

// Algorithm builds Maekawa sites over a pluggable coterie (grid by default).
type Algorithm struct {
	// Construction supplies the coterie; nil defaults to the Maekawa grid.
	Construction coterie.Construction
}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (a Algorithm) Name() string { return "maekawa(" + a.construction().Name() + ")" }

func (a Algorithm) construction() coterie.Construction {
	if a.Construction == nil {
		return coterie.Grid{}
	}
	return a.Construction
}

// NewSites implements mutex.Algorithm.
func (a Algorithm) NewSites(n int) ([]mutex.Site, error) {
	assign, err := a.construction().Assign(n)
	if err != nil {
		return nil, fmt.Errorf("maekawa: assign quorums: %w", err)
	}
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		sites[i] = &Site{
			id:     mutex.SiteID(i),
			clock:  timestamp.NewClock(mutex.SiteID(i)),
			quorum: assign.Quorum(mutex.SiteID(i)).Clone(),
			state:  stateIdle,
			reqTS:  timestamp.Max,
			lock:   timestamp.Max,
		}
	}
	return sites, nil
}
