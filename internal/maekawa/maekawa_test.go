package maekawa_test

import (
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/maekawa"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: maekawa.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("n=%d seed=%d: completed %d of %d", n, seed, got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 4, 9, 16, 25} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestLightLoadMessages: Maekawa needs 3(K−1) messages per uncontended CS.
func TestLightLoadMessages(t *testing.T) {
	n := 25
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: maekawa.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	total := 30
	workload.Sequential(c, total, 100*meanDelay)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	assign, _ := (coterie.Grid{}).Assign(n)
	want := uint64(total * 3 * (assign.MaxQuorumSize() - 1))
	if got := c.Net.Total(); got != want {
		t.Errorf("light-load messages = %d, want %d", got, want)
	}
}

// TestHeavyLoadSyncDelayIs2T: the arbiter round trip (release then reply)
// costs two message delays per handover.
func TestHeavyLoadSyncDelayIs2T(t *testing.T) {
	res := runSaturated(t, 25, 10, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 1.8 || res.SyncDelay > 2.4 {
		t.Errorf("sync delay = %.3f T, want ≈ 2 T", res.SyncDelay)
	}
}

// TestHeavyLoadMessageBound: Maekawa stays within roughly 5(K−1) under
// heavy load.
func TestHeavyLoadMessageBound(t *testing.T) {
	n := 25
	res := runSaturated(t, n, 10, 42, nil)
	assign, _ := (coterie.Grid{}).Assign(n)
	k := float64(assign.MaxQuorumSize())
	if res.MessagesPerCS < 3*(k-1)-0.5 || res.MessagesPerCS > 6*(k-1)+0.5 {
		t.Errorf("%.2f messages/CS outside [3(K−1), 6(K−1)]", res.MessagesPerCS)
	}
}

// TestNoTransferMessages: classic Maekawa never uses the transfer kind.
func TestNoTransferMessages(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{N: 9, Algorithm: maekawa.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, Seed: 1, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, 5)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if n := c.Net.CountByKind()[mutex.KindTransfer]; n != 0 {
		t.Errorf("maekawa sent %d transfer messages", n)
	}
}

// TestOtherCoteries: Maekawa's protocol also works over tree and majority
// coteries.
func TestOtherCoteries(t *testing.T) {
	for _, cons := range []coterie.Construction{coterie.Tree{}, coterie.Majority{}} {
		c, err := sim.NewCluster(sim.Config{
			N: 15, Algorithm: maekawa.Algorithm{Construction: cons},
			Delay: sim.ExponentialDelay{MeanD: meanDelay}, Seed: 3, CSTime: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, 4)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("%s: %v", cons.Name(), err)
		}
	}
}
