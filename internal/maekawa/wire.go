package maekawa

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration (tags 24–29 in internal/wire's tag space).
const (
	tagRequest byte = iota + 24
	tagReply
	tagRelease
	tagInquire
	tagFail
	tagYield
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(requestMsg).TS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return requestMsg{TS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagReply, replyMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(replyMsg)
			b = wire.AppendSite(b, v.Arbiter)
			return wire.AppendTimestamp(b, v.ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return replyMsg{Arbiter: r.Site(), ReqTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagRelease, releaseMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(releaseMsg).ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return releaseMsg{ReqTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagInquire, inquireMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(inquireMsg)
			b = wire.AppendSite(b, v.Arbiter)
			return wire.AppendTimestamp(b, v.HolderTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return inquireMsg{Arbiter: r.Site(), HolderTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagFail, failMsg{},
		func(b []byte, m mutex.Message) []byte {
			v := m.(failMsg)
			b = wire.AppendSite(b, v.Arbiter)
			return wire.AppendTimestamp(b, v.ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return failMsg{Arbiter: r.Site(), ReqTS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagYield, yieldMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(yieldMsg).ReqTS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return yieldMsg{ReqTS: r.Timestamp()}, nil
		})
}
