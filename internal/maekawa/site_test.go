package maekawa

import (
	"testing"

	"dqmx/internal/coterie"
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// White-box handler tests mirroring internal/core's, minus the transfer
// machinery Maekawa lacks.

func mkSite(id mutex.SiteID, quorum ...mutex.SiteID) *Site {
	q := make(coterie.Quorum, len(quorum))
	copy(q, quorum)
	return &Site{
		id:     id,
		clock:  timestamp.NewClock(id),
		quorum: q,
		state:  stateIdle,
		reqTS:  timestamp.Max,
		lock:   timestamp.Max,
	}
}

func ts(seq uint64, site int) timestamp.Timestamp {
	return timestamp.Timestamp{Seq: seq, Site: timestamp.SiteID(site)}
}

func deliver(s *Site, from mutex.SiteID, msg mutex.Message) mutex.Output {
	return s.Deliver(mutex.Envelope{From: from, To: s.id, Msg: msg})
}

func kinds(out mutex.Output) map[string]int {
	m := map[string]int{}
	for _, e := range out.Send {
		m[e.Msg.Kind()]++
	}
	return m
}

func TestUnlockedArbiterGrants(t *testing.T) {
	s := mkSite(1)
	out := deliver(s, 2, requestMsg{TS: ts(5, 2)})
	if kinds(out)[mutex.KindReply] != 1 || s.lock != ts(5, 2) {
		t.Fatalf("grant failed: %v, lock=%v", out.Send, s.lock)
	}
}

func TestLockedArbiterNeverSendsTransfer(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	out := deliver(s, 3, requestMsg{TS: ts(4, 3)})
	k := kinds(out)
	if k[mutex.KindTransfer] != 0 {
		t.Fatal("maekawa sent a transfer")
	}
	if k[mutex.KindInquire] != 1 {
		t.Fatalf("higher-priority arrival should inquire the holder: %v", out.Send)
	}
}

func TestReleaseGrantsViaArbiter(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(6, 3)})
	out := deliver(s, 2, releaseMsg{ReqTS: ts(5, 2)})
	// The 2T path: arbiter replies to the next waiter itself.
	if kinds(out)[mutex.KindReply] != 1 || out.Send[0].To != 3 {
		t.Fatalf("release regrant = %v", out.Send)
	}
	if s.lock != ts(6, 3) {
		t.Errorf("lock = %v", s.lock)
	}
}

func TestStaleReleaseIgnored(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	out := deliver(s, 3, releaseMsg{ReqTS: ts(9, 3)})
	if len(out.Send) != 0 || s.lock != ts(5, 2) {
		t.Fatal("stale release disturbed the lock")
	}
}

func TestYieldRequeuesAndRegrants(t *testing.T) {
	s := mkSite(1)
	deliver(s, 2, requestMsg{TS: ts(5, 2)})
	deliver(s, 3, requestMsg{TS: ts(4, 3)})
	out := deliver(s, 2, yieldMsg{ReqTS: ts(5, 2)})
	if kinds(out)[mutex.KindReply] != 1 || out.Send[0].To != 3 {
		t.Fatalf("yield regrant = %v", out.Send)
	}
	if !s.queue.empty() && s.queue.head() != ts(5, 2) {
		t.Errorf("yielder not requeued: %v", s.queue.items)
	}
}

func TestInquireDeferredUntilFail(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	my := s.reqTS
	deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: my})
	out := deliver(s, 2, inquireMsg{Arbiter: 2, HolderTS: my})
	if len(out.Send) != 0 {
		t.Fatalf("yielded before failing: %v", out.Send)
	}
	out = deliver(s, 3, failMsg{Arbiter: 3, ReqTS: my})
	if kinds(out)[mutex.KindYield] != 1 {
		t.Fatalf("fail did not trigger the parked yield: %v", out.Send)
	}
	if s.replied[2] {
		t.Error("replied[2] survived the yield")
	}
}

func TestEntryAfterAllReplies(t *testing.T) {
	s := mkSite(1, 2, 3)
	s.Request()
	my := s.reqTS
	deliver(s, 2, replyMsg{Arbiter: 2, ReqTS: my})
	out := deliver(s, 3, replyMsg{Arbiter: 3, ReqTS: my})
	if !out.Entered || !s.InCS() {
		t.Fatal("no entry with full quorum")
	}
	out = s.Exit()
	if kinds(out)[mutex.KindRelease] != 2 {
		t.Fatalf("exit releases = %v", out.Send)
	}
}
