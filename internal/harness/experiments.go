package harness

import (
	"fmt"
	"io"
	"math"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/maekawa"
	"dqmx/internal/metrics"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// --- E1: Table 1 — algorithm comparison -------------------------------------

// Table1Row compares one algorithm's theoretical and measured costs.
type Table1Row struct {
	Algorithm   string
	TheoryMsgs  string
	TheoryDelay string
	LightMsgs   float64 // measured messages/CS without contention
	HeavyMsgs   float64 // measured messages/CS under saturation
	SyncDelayT  float64 // measured handover delay in units of T
}

// Table1 reproduces the paper's Table 1 at system size n.
func Table1(n int, seed int64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 6)
	for _, e := range Algorithms() {
		light, err := Run(Spec{N: n, Algorithm: e.Algorithm, Load: Light, PerSite: 20, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("table1 light: %w", err)
		}
		heavy, err := Run(Spec{N: n, Algorithm: e.Algorithm, Load: Heavy, PerSite: 10, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("table1 heavy: %w", err)
		}
		rows = append(rows, Table1Row{
			Algorithm:   e.Algorithm.Name(),
			TheoryMsgs:  e.TheoryMsgs,
			TheoryDelay: e.TheoryDelay,
			LightMsgs:   light.MessagesPerCS,
			HeavyMsgs:   heavy.MessagesPerCS,
			SyncDelayT:  heavy.SyncDelay,
		})
	}
	return rows, nil
}

// RenderTable1 writes Table 1 as text.
func RenderTable1(rows []Table1Row, n int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table 1: message complexity and synchronization delay (N=%d)\n", n); err != nil {
		return err
	}
	tab := metrics.NewTable("algorithm", "theory msgs", "theory delay", "light msgs/CS", "heavy msgs/CS", "sync delay (T)")
	for _, r := range rows {
		tab.AddRow(r.Algorithm, r.TheoryMsgs, r.TheoryDelay, r.LightMsgs, r.HeavyMsgs, r.SyncDelayT)
	}
	return tab.Render(w)
}

// --- E2: §5.1 light load -----------------------------------------------------

// LightLoadRow checks the 3(K−1) messages and 2T+E response of one system
// size.
type LightLoadRow struct {
	N            int
	K            int
	MsgsPerCS    float64
	ExpectedMsgs float64 // 3(K−1)
	ResponseT    float64 // in units of T
	ExpectedResp float64 // 2 + E/T
}

// LightLoad reproduces §5.1 across system sizes.
func LightLoad(ns []int, seed int64) ([]LightLoadRow, error) {
	rows := make([]LightLoadRow, 0, len(ns))
	for _, n := range ns {
		assign, err := (coterie.Grid{}).Assign(n)
		if err != nil {
			return nil, err
		}
		k := assign.MaxQuorumSize()
		res, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Light, PerSite: 20, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LightLoadRow{
			N: n, K: k,
			MsgsPerCS:    res.MessagesPerCS,
			ExpectedMsgs: float64(3 * (k - 1)),
			ResponseT:    res.ResponseTime,
			ExpectedResp: 2 + float64(DefaultCSTime)/float64(DefaultDelay),
		})
	}
	return rows, nil
}

// RenderLightLoad writes the §5.1 table.
func RenderLightLoad(rows []LightLoadRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E2 (§5.1): light load — messages/CS and response time"); err != nil {
		return err
	}
	tab := metrics.NewTable("N", "K", "msgs/CS", "paper 3(K-1)", "response (T)", "paper 2T+E")
	for _, r := range rows {
		tab.AddRow(r.N, r.K, r.MsgsPerCS, r.ExpectedMsgs, r.ResponseT, r.ExpectedResp)
	}
	return tab.Render(w)
}

// --- E3: §5.2 heavy-load message bounds --------------------------------------

// HeavyLoadRow checks the [5(K−1), 6(K−1)] band at one system size.
type HeavyLoadRow struct {
	N         int
	K         int
	MsgsPerCS float64
	Low       float64 // 5(K−1) — the paper's typical heavy-load cases
	High      float64 // 6(K−1) — the worst case (4.2)
	ByKind    map[string]uint64
}

// HeavyLoad reproduces §5.2's per-case message analysis across sizes.
func HeavyLoad(ns []int, seed int64) ([]HeavyLoadRow, error) {
	rows := make([]HeavyLoadRow, 0, len(ns))
	for _, n := range ns {
		assign, err := (coterie.Grid{}).Assign(n)
		if err != nil {
			return nil, err
		}
		k := assign.MaxQuorumSize()
		res, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, HeavyLoadRow{
			N: n, K: k,
			MsgsPerCS: res.MessagesPerCS,
			Low:       5 * float64(k-1),
			High:      6 * float64(k-1),
			ByKind:    res.ByKind,
		})
	}
	return rows, nil
}

// RenderHeavyLoad writes the §5.2 table.
func RenderHeavyLoad(rows []HeavyLoadRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E3 (§5.2): heavy load — messages/CS against the 5(K-1)..6(K-1) band"); err != nil {
		return err
	}
	tab := metrics.NewTable("N", "K", "msgs/CS", "5(K-1)", "6(K-1)",
		"request", "reply", "transfer", "fail", "inquire", "yield", "release")
	for _, r := range rows {
		tab.AddRow(r.N, r.K, r.MsgsPerCS, r.Low, r.High,
			r.ByKind[mutex.KindRequest], r.ByKind[mutex.KindReply], r.ByKind[mutex.KindTransfer],
			r.ByKind[mutex.KindFail], r.ByKind[mutex.KindInquire], r.ByKind[mutex.KindYield],
			r.ByKind[mutex.KindRelease])
	}
	return tab.Render(w)
}

// CaseHistogram aggregates the §5.2 case classification of every arrival at
// a locked arbiter across a saturated run (the measured counterpart of the
// paper's per-case message analysis).
type CaseHistogram struct {
	N     int
	Cases core.CaseStats
}

// HeavyLoadCases measures how often each §5.2 case occurs under saturation.
// A nil delay uses the exponential distribution — random delays are what
// exercise the preemption cases (2, 4, 5); under constant delay requests
// arrive in priority order and case 3 dominates.
func HeavyLoadCases(n, perSite int, seed int64, delay sim.Delay) (CaseHistogram, error) {
	if delay == nil {
		delay = sim.ExponentialDelay{MeanD: DefaultDelay}
	}
	c, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: core.Algorithm{}, Delay: delay,
		Seed: seed, CSTime: DefaultCSTime,
	})
	if err != nil {
		return CaseHistogram{}, err
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		return CaseHistogram{}, err
	}
	hist := CaseHistogram{N: n}
	for _, s := range c.Sites {
		if cs, ok := s.(*core.Site); ok {
			stats := cs.Cases()
			for i := range stats.Case {
				hist.Cases.Case[i] += stats.Case[i]
			}
		}
	}
	return hist, nil
}

// RenderCaseHistogram writes the §5.2 case frequencies.
func RenderCaseHistogram(h CaseHistogram, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "E3b (§5.2): case frequencies at locked arbiters (N=%d)\n", h.N); err != nil {
		return err
	}
	tab := metrics.NewTable("case", "description", "count", "share")
	desc := [6]string{
		"", "queue empty, loses to lock", "wins lock and head (inquire path)",
		"loses to head", "displaces winning head", "beats head, loses to lock",
	}
	total := h.Cases.Total()
	for i := 1; i <= 5; i++ {
		share := 0.0
		if total > 0 {
			share = float64(h.Cases.Case[i]) / float64(total) * 100
		}
		tab.AddRow(i, desc[i], h.Cases.Case[i], fmt.Sprintf("%.1f%%", share))
	}
	return tab.Render(w)
}

// --- E4: sync delay T vs 2T ---------------------------------------------------

// SyncDelayRow compares the handover delay of the proposed algorithm and
// Maekawa's at one system size.
type SyncDelayRow struct {
	N        int
	Proposed float64 // in T
	Maekawa  float64 // in T
	Ratio    float64 // Maekawa / Proposed
}

// SyncDelay reproduces the headline T-vs-2T comparison.
func SyncDelay(ns []int, seed int64) ([]SyncDelayRow, error) {
	rows := make([]SyncDelayRow, 0, len(ns))
	for _, n := range ns {
		ours, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		mk, err := Run(Spec{N: n, Algorithm: maekawa.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		row := SyncDelayRow{N: n, Proposed: ours.SyncDelay, Maekawa: mk.SyncDelay}
		if row.Proposed > 0 {
			row.Ratio = row.Maekawa / row.Proposed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSyncDelay writes the E4 table.
func RenderSyncDelay(rows []SyncDelayRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E4 (§5.2): synchronization delay under heavy load (units of T)"); err != nil {
		return err
	}
	tab := metrics.NewTable("N", "delay-optimal", "maekawa", "maekawa/proposed")
	for _, r := range rows {
		tab.AddRow(r.N, r.Proposed, r.Maekawa, r.Ratio)
	}
	return tab.Render(w)
}

// --- E5: throughput and waiting time -----------------------------------------

// ThroughputRow compares saturated throughput (CS executions per T) and mean
// waiting time across the two quorum algorithms for one CS length.
type ThroughputRow struct {
	CSTime        sim.Time
	ProposedTput  float64
	MaekawaTput   float64
	TputRatio     float64
	ProposedWaitT float64
	MaekawaWaitT  float64
	WaitRatio     float64
}

// Throughput reproduces §5.2's "throughput is doubled / waiting time is
// nearly halved" claim over a sweep of CS execution times E.
func Throughput(n int, csTimes []sim.Time, seed int64) ([]ThroughputRow, error) {
	rows := make([]ThroughputRow, 0, len(csTimes))
	for _, e := range csTimes {
		ours, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed, CSTime: e})
		if err != nil {
			return nil, err
		}
		mk, err := Run(Spec{N: n, Algorithm: maekawa.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed, CSTime: e})
		if err != nil {
			return nil, err
		}
		row := ThroughputRow{
			CSTime:        e,
			ProposedTput:  ours.Throughput,
			MaekawaTput:   mk.Throughput,
			ProposedWaitT: ours.WaitingTime,
			MaekawaWaitT:  mk.WaitingTime,
		}
		if mk.Throughput > 0 {
			row.TputRatio = ours.Throughput / mk.Throughput
		}
		if mk.WaitingTime > 0 {
			row.WaitRatio = ours.WaitingTime / mk.WaitingTime
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderThroughput writes the E5 table.
func RenderThroughput(rows []ThroughputRow, n int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "E5 (§5.2): heavy-load throughput and waiting time (N=%d)\n", n); err != nil {
		return err
	}
	tab := metrics.NewTable("E (CS time)", "proposed CS/T", "maekawa CS/T", "tput ratio",
		"proposed wait (T)", "maekawa wait (T)", "wait ratio")
	for _, r := range rows {
		tab.AddRow(int64(r.CSTime), r.ProposedTput, r.MaekawaTput, r.TputRatio,
			r.ProposedWaitT, r.MaekawaWaitT, r.WaitRatio)
	}
	return tab.Render(w)
}

// --- E6: quorum sizes (§6, §5.3) -----------------------------------------------

// QuorumSizeRow records the measured quorum sizes of one construction at one
// system size.
type QuorumSizeRow struct {
	Construction string
	N            int
	Avg          float64
	Max          int
	SqrtN        float64
	Log2N        float64
}

// QuorumSizes measures K for every construction across system sizes. The
// finite-projective-plane construction is included for the sizes it
// supports (N = q²+q+1, q prime).
func QuorumSizes(ns []int) ([]QuorumSizeRow, error) {
	var rows []QuorumSizeRow
	for _, c := range append(coterie.Constructions(), coterie.FPP{}) {
		for _, n := range ns {
			a, err := c.Assign(n)
			if err != nil {
				if c.Name() == "fpp" {
					continue // size not of the form q²+q+1
				}
				return nil, fmt.Errorf("%s n=%d: %w", c.Name(), n, err)
			}
			rows = append(rows, QuorumSizeRow{
				Construction: c.Name(), N: n,
				Avg: a.AvgQuorumSize(), Max: a.MaxQuorumSize(),
				SqrtN: math.Sqrt(float64(n)), Log2N: math.Log2(float64(n)),
			})
		}
	}
	return rows, nil
}

// RenderQuorumSizes writes the E6 table.
func RenderQuorumSizes(rows []QuorumSizeRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E6 (§6/§5.3): quorum size K by construction"); err != nil {
		return err
	}
	tab := metrics.NewTable("construction", "N", "avg K", "max K", "sqrt(N)", "log2(N)")
	for _, r := range rows {
		tab.AddRow(r.Construction, r.N, r.Avg, r.Max, r.SqrtN, r.Log2N)
	}
	return tab.Render(w)
}

// --- E7: availability (§6 resiliency) ------------------------------------------

// AvailabilityRow records quorum availability of one construction at one
// per-site up-probability.
type AvailabilityRow struct {
	Construction string
	N            int
	P            float64
	Availability float64
}

// Availability estimates quorum availability for every construction over a
// sweep of up-probabilities.
func Availability(n int, ps []float64, trials int, seed int64) []AvailabilityRow {
	var rows []AvailabilityRow
	for _, c := range coterie.Constructions() {
		for _, p := range ps {
			rows = append(rows, AvailabilityRow{
				Construction: c.Name(), N: n, P: p,
				Availability: coterie.Availability(c, n, p, trials, seed),
			})
		}
	}
	return rows
}

// RenderAvailability writes the E7 table.
func RenderAvailability(rows []AvailabilityRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E7 (§6): quorum availability vs per-site up-probability p"); err != nil {
		return err
	}
	tab := metrics.NewTable("construction", "N", "p", "availability")
	for _, r := range rows {
		tab.AddRow(r.Construction, r.N, fmt.Sprintf("%.2f", r.P), fmt.Sprintf("%.4f", r.Availability))
	}
	return tab.Render(w)
}

// --- E8: crash recovery ---------------------------------------------------------

// CrashRecoveryRow summarizes one crash-injection run.
type CrashRecoveryRow struct {
	N           int
	Crashes     int
	Completed   int
	Expected    int
	FailureMsgs uint64
	TotalMsgs   uint64
	MsgsPerCS   float64
}

// CrashRecovery runs a saturated tree-quorum workload, crashes sites
// mid-run, and reports progress and overhead (E8).
func CrashRecovery(n, perSite, crashes int, seed int64) (CrashRecoveryRow, error) {
	c, err := sim.NewCluster(sim.Config{
		N:         n,
		Algorithm: core.Algorithm{Construction: coterie.Tree{}},
		Delay:     sim.ConstantDelay{D: DefaultDelay},
		Seed:      seed,
		CSTime:    DefaultCSTime,
	})
	if err != nil {
		return CrashRecoveryRow{}, err
	}
	workload.Saturated(c, perSite)
	for i := 0; i < crashes; i++ {
		// Crash leaf-side sites so tree substitution paths always survive.
		c.CrashAt(sim.Time(2000*(i+1)), mutex.SiteID(n-1-i))
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		return CrashRecoveryRow{}, err
	}
	row := CrashRecoveryRow{
		N: n, Crashes: crashes,
		Completed:   c.Completed(),
		Expected:    n * perSite,
		FailureMsgs: c.Net.CountByKind()[mutex.KindFailure],
		TotalMsgs:   c.Net.Total(),
	}
	if row.Completed > 0 {
		row.MsgsPerCS = float64(row.TotalMsgs) / float64(row.Completed)
	}
	return row, nil
}

// RenderCrashRecovery writes the E8 table.
func RenderCrashRecovery(rows []CrashRecoveryRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E8 (§6): crash recovery with tree quorums"); err != nil {
		return err
	}
	tab := metrics.NewTable("N", "crashes", "completed", "issued target", "failure msgs", "msgs/CS")
	for _, r := range rows {
		tab.AddRow(r.N, r.Crashes, r.Completed, r.Expected, r.FailureMsgs, r.MsgsPerCS)
	}
	return tab.Render(w)
}

// --- E13: scalability ------------------------------------------------------------

// ScalabilityRow records the protocol's cost at one system size over one
// coterie.
type ScalabilityRow struct {
	Construction string
	N            int
	K            float64
	MsgsPerCS    float64
	SyncDelay    float64
	WaitP99      float64
}

// Scalability sweeps the system size for the delay-optimal protocol over
// grid and tree quorums (E13): messages/CS must track the quorum size
// (√N vs log N) while the sync delay stays ≈ T.
func Scalability(ns []int, seed int64) ([]ScalabilityRow, error) {
	var rows []ScalabilityRow
	for _, cons := range []coterie.Construction{coterie.Grid{}, coterie.Tree{}} {
		for _, n := range ns {
			assign, err := cons.Assign(n)
			if err != nil {
				return nil, err
			}
			res, err := Run(Spec{
				N: n, Algorithm: core.Algorithm{Construction: cons},
				Load: Heavy, PerSite: 5, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScalabilityRow{
				Construction: cons.Name(),
				N:            n,
				K:            assign.AvgQuorumSize(),
				MsgsPerCS:    res.MessagesPerCS,
				SyncDelay:    res.SyncDelay,
				WaitP99:      res.WaitingP99,
			})
		}
	}
	return rows, nil
}

// RenderScalability writes the E13 table.
func RenderScalability(rows []ScalabilityRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E13: scalability of the delay-optimal protocol (heavy load)"); err != nil {
		return err
	}
	tab := metrics.NewTable("coterie", "N", "avg K", "msgs/CS", "sync delay (T)", "wait p99 (T)")
	for _, r := range rows {
		tab.AddRow(r.Construction, r.N, r.K, r.MsgsPerCS, r.SyncDelay, r.WaitP99)
	}
	return tab.Render(w)
}

// --- E12: delay-distribution sensitivity ----------------------------------------

// DelaySensitivityRow compares handover delays under one delay distribution.
type DelaySensitivityRow struct {
	Distribution string
	Proposed     float64
	Maekawa      float64
	Ratio        float64
}

// DelaySensitivity measures the T-vs-2T comparison under constant, uniform,
// and exponential message delays (E12): the paper's unit-delay analysis uses
// constant delays; the comparison's *shape* must survive realistic jitter.
func DelaySensitivity(n int, seed int64) ([]DelaySensitivityRow, error) {
	dists := []struct {
		name  string
		delay sim.Delay
	}{
		{"constant", sim.ConstantDelay{D: DefaultDelay}},
		{"uniform[T/2,3T/2]", sim.UniformDelay{Lo: DefaultDelay / 2, Hi: 3 * DefaultDelay / 2}},
		{"exponential", sim.ExponentialDelay{MeanD: DefaultDelay}},
	}
	rows := make([]DelaySensitivityRow, 0, len(dists))
	for _, d := range dists {
		ours, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed, Delay: d.delay})
		if err != nil {
			return nil, err
		}
		mk, err := Run(Spec{N: n, Algorithm: maekawa.Algorithm{}, Load: Heavy, PerSite: 10, Seed: seed, Delay: d.delay})
		if err != nil {
			return nil, err
		}
		row := DelaySensitivityRow{Distribution: d.name, Proposed: ours.SyncDelay, Maekawa: mk.SyncDelay}
		if row.Proposed > 0 {
			row.Ratio = row.Maekawa / row.Proposed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDelaySensitivity writes the E12 table.
func RenderDelaySensitivity(rows []DelaySensitivityRow, n int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "E12: sync delay under different delay distributions (N=%d, units of mean T)\n", n); err != nil {
		return err
	}
	tab := metrics.NewTable("distribution", "delay-optimal", "maekawa", "ratio")
	for _, r := range rows {
		tab.AddRow(r.Distribution, r.Proposed, r.Maekawa, r.Ratio)
	}
	return tab.Render(w)
}

// --- E11: communication link failures ------------------------------------------

// LinkFailureRow summarizes a run with severed links.
type LinkFailureRow struct {
	N         int
	Cuts      int
	Completed int
	Expected  int
	MsgsPerCS float64
}

// LinkFailures runs a saturated tree-quorum workload while cutting
// communication links mid-run; each endpoint locally reroutes its quorum
// around the unreachable peer (E11 — the paper's "resiliency to site and
// communication link failures").
func LinkFailures(n, perSite, cuts int, seed int64) (LinkFailureRow, error) {
	c, err := sim.NewCluster(sim.Config{
		N:         n,
		Algorithm: core.Algorithm{Construction: coterie.Tree{}},
		Delay:     sim.ConstantDelay{D: DefaultDelay},
		Seed:      seed,
		CSTime:    DefaultCSTime,
	})
	if err != nil {
		return LinkFailureRow{}, err
	}
	workload.Saturated(c, perSite)
	// Sever links between distinct leaf-side sites and inner nodes.
	for i := 0; i < cuts; i++ {
		a := mutex.SiteID(n - 1 - i)
		b := mutex.SiteID(1 + i%2)
		c.CutLinkAt(sim.Time(1500*(i+1)), a, b)
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		return LinkFailureRow{}, err
	}
	row := LinkFailureRow{N: n, Cuts: cuts, Completed: c.Completed(), Expected: n * perSite}
	if row.Completed > 0 {
		row.MsgsPerCS = float64(c.Net.Total()) / float64(row.Completed)
	}
	return row, nil
}

// RenderLinkFailures writes the E11 table.
func RenderLinkFailures(rows []LinkFailureRow, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "E11 (§6): communication link failures with tree quorums"); err != nil {
		return err
	}
	tab := metrics.NewTable("N", "links cut", "completed", "target", "msgs/CS")
	for _, r := range rows {
		tab.AddRow(r.N, r.Cuts, r.Completed, r.Expected, r.MsgsPerCS)
	}
	return tab.Render(w)
}

// --- E9: load sweep --------------------------------------------------------------

// LoadSweepRow records one operating point of the light→heavy sweep.
type LoadSweepRow struct {
	ThinkTime sim.Time
	MsgsPerCS float64
	SyncDelay float64
	WaitingT  float64
	ResponseT float64
}

// LoadSweep crosses from near-saturation to near-idle via the closed-loop
// Poisson think time (E9).
func LoadSweep(n int, thinks []sim.Time, seed int64) ([]LoadSweepRow, error) {
	rows := make([]LoadSweepRow, 0, len(thinks))
	for _, th := range thinks {
		res, err := Run(Spec{N: n, Algorithm: core.Algorithm{}, Load: Think, ThinkTime: th, PerSite: 10, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoadSweepRow{
			ThinkTime: th,
			MsgsPerCS: res.MessagesPerCS,
			SyncDelay: res.SyncDelay,
			WaitingT:  res.WaitingTime,
			ResponseT: res.ResponseTime,
		})
	}
	return rows, nil
}

// RenderLoadSweep writes the E9 series.
func RenderLoadSweep(rows []LoadSweepRow, n int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "E9 (§5): load sweep via mean think time (N=%d)\n", n); err != nil {
		return err
	}
	tab := metrics.NewTable("think time", "msgs/CS", "sync delay (T)", "waiting (T)", "response (T)")
	for _, r := range rows {
		tab.AddRow(int64(r.ThinkTime), r.MsgsPerCS, r.SyncDelay, r.WaitingT, r.ResponseT)
	}
	return tab.Render(w)
}

// --- E10: quorum independence ------------------------------------------------------

// IndependenceRow records the protocol's behaviour over one coterie.
type IndependenceRow struct {
	Construction string
	K            float64
	MsgsPerCS    float64
	SyncDelay    float64
}

// QuorumIndependence runs the delay-optimal protocol unmodified over every
// coterie construction (E10).
func QuorumIndependence(n int, seed int64) ([]IndependenceRow, error) {
	var rows []IndependenceRow
	for _, c := range coterie.Constructions() {
		assign, err := c.Assign(n)
		if err != nil {
			return nil, err
		}
		res, err := Run(Spec{N: n, Algorithm: core.Algorithm{Construction: c}, Load: Heavy, PerSite: 8, Seed: seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, IndependenceRow{
			Construction: c.Name(),
			K:            assign.AvgQuorumSize(),
			MsgsPerCS:    res.MessagesPerCS,
			SyncDelay:    res.SyncDelay,
		})
	}
	return rows, nil
}

// RenderQuorumIndependence writes the E10 table.
func RenderQuorumIndependence(rows []IndependenceRow, n int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "E10 (§3): delay-optimal protocol across coteries (N=%d)\n", n); err != nil {
		return err
	}
	tab := metrics.NewTable("construction", "avg K", "msgs/CS", "sync delay (T)")
	for _, r := range rows {
		tab.AddRow(r.Construction, r.K, r.MsgsPerCS, r.SyncDelay)
	}
	return tab.Render(w)
}
