package harness_test

import (
	"math"
	"reflect"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/harness"
	"dqmx/internal/obs"
)

// TestObserverAgreesWithSummarize checks that the streaming obs.Metrics
// collector, fed the event stream of a saturated simulation, reproduces the
// post-hoc Summarize metrics: identical per-kind message counts, lifecycle
// counters, and delay means (Summarize reports in units of T, the collector
// in raw ticks).
func TestObserverAgreesWithSummarize(t *testing.T) {
	m := obs.NewMetrics()
	res, err := harness.Run(harness.Spec{
		N: 9, Algorithm: core.Algorithm{}, Load: harness.Heavy, PerSite: 10,
		Seed: 3, Observer: m.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	if !reflect.DeepEqual(snap.ByKind, res.ByKind) {
		t.Errorf("per-kind counts diverge:\n  obs %v\n  sim %v", snap.ByKind, res.ByKind)
	}
	if snap.Messages != res.TotalMessages {
		t.Errorf("messages: obs %d, sim %d", snap.Messages, res.TotalMessages)
	}
	if snap.Entries != uint64(res.Completed) || snap.Exits != uint64(res.Completed) {
		t.Errorf("executions: obs %d/%d, sim %d", snap.Entries, snap.Exits, res.Completed)
	}
	if snap.MessagesPerCS != res.MessagesPerCS {
		t.Errorf("messages/CS: obs %v, sim %v", snap.MessagesPerCS, res.MessagesPerCS)
	}

	// Delay means must agree up to the unit change (T = DefaultDelay ticks).
	tUnit := float64(harness.DefaultDelay)
	check := func(name string, obsMean float64, simMeanT float64) {
		t.Helper()
		if got := obsMean / tUnit; math.Abs(got-simMeanT) > 1e-9 {
			t.Errorf("%s mean: obs %v T, sim %v T", name, got, simMeanT)
		}
	}
	check("response", snap.Response.Mean, res.ResponseTime)
	check("waiting", snap.Waiting.Mean, res.WaitingTime)
	check("sync delay", snap.SyncDelay.Mean, res.SyncDelay)
	if snap.SyncDelay.Count != uint64(res.SyncDelaySamples) {
		t.Errorf("sync samples: obs %d, sim %d", snap.SyncDelay.Count, res.SyncDelaySamples)
	}
	if snap.SyncDelay.Count == 0 {
		t.Error("saturated run produced no handover samples")
	}
}
