// Package harness runs the paper's experiments (E1–E10 in DESIGN.md) on the
// discrete-event simulator and renders the same tables and series the paper
// reports. Every public experiment function returns typed rows so both the
// benchmarks (bench_test.go) and the CLI (cmd/benchtab) can regenerate the
// evaluation.
package harness

import (
	"fmt"

	"dqmx/internal/core"
	"dqmx/internal/lamport"
	"dqmx/internal/maekawa"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/raymond"
	"dqmx/internal/ricartagrawala"
	"dqmx/internal/sim"
	"dqmx/internal/singhal"
	"dqmx/internal/suzukikasami"
	"dqmx/internal/workload"
)

// DefaultDelay is the mean message delay T used by all experiments.
const DefaultDelay = sim.Time(1000)

// DefaultCSTime is the critical-section execution time E (E ≪ T, matching
// the paper's synchronization-delay-dominated regime).
const DefaultCSTime = sim.Time(10)

// LoadKind selects the workload shape.
type LoadKind int

// Workload shapes.
const (
	// Light issues requests one at a time with no contention (§5.1).
	Light LoadKind = iota + 1
	// Heavy saturates every site (§5.2).
	Heavy
	// Think uses a closed-loop Poisson think time (the light→heavy sweep).
	Think
)

// Spec describes one simulation run.
type Spec struct {
	N         int
	Algorithm mutex.Algorithm
	Load      LoadKind
	// ThinkTime is the mean think time for Load == Think.
	ThinkTime sim.Time
	// PerSite is the number of CS executions per site (Heavy/Think) or the
	// total request count (Light).
	PerSite int
	Seed    int64
	// Delay defaults to ConstantDelay{DefaultDelay}.
	Delay sim.Delay
	// CSTime defaults to DefaultCSTime.
	CSTime sim.Time
	// Observer, when non-nil, receives every protocol event of the run
	// (see internal/obs).
	Observer obs.Sink
}

// Run executes one simulation and returns its metrics. Any safety or
// liveness violation is returned as an error.
func Run(spec Spec) (sim.Result, error) {
	delay := spec.Delay
	if delay == nil {
		delay = sim.ConstantDelay{D: DefaultDelay}
	}
	cst := spec.CSTime
	if cst == 0 {
		cst = DefaultCSTime
	}
	c, err := sim.NewCluster(sim.Config{
		N: spec.N, Algorithm: spec.Algorithm, Delay: delay, Seed: spec.Seed, CSTime: cst,
		Observer: spec.Observer,
	})
	if err != nil {
		return sim.Result{}, err
	}
	switch spec.Load {
	case Light:
		workload.Sequential(c, spec.PerSite, 100*delay.Mean())
	case Heavy:
		workload.Saturated(c, spec.PerSite)
	case Think:
		workload.ClosedPoisson(c, spec.ThinkTime, spec.PerSite, spec.Seed+1)
	default:
		return sim.Result{}, fmt.Errorf("harness: unknown load kind %d", spec.Load)
	}
	c.Run(0)
	if err := c.Err(); err != nil {
		return sim.Result{}, fmt.Errorf("%s n=%d seed=%d: %w", spec.Algorithm.Name(), spec.N, spec.Seed, err)
	}
	return c.Summarize(), nil
}

// AlgorithmEntry pairs an algorithm with the closed-form costs the paper's
// Table 1 quotes for it.
type AlgorithmEntry struct {
	Algorithm   mutex.Algorithm
	TheoryMsgs  string
	TheoryDelay string
}

// Algorithms returns the Table 1 lineup: the proposed algorithm plus the
// six baselines, each annotated with the paper's theoretical costs.
func Algorithms() []AlgorithmEntry {
	return []AlgorithmEntry{
		{lamport.Algorithm{}, "3(N-1)", "T"},
		{ricartagrawala.Algorithm{}, "2(N-1)", "T"},
		{singhal.Algorithm{}, "N-1 .. 2(N-1)", "T"},
		{maekawa.Algorithm{}, "3..5(K-1), K=sqrt(N)", "2T"},
		{suzukikasami.Algorithm{}, "0..N", "T"},
		{raymond.Algorithm{}, "O(log N)", "O(log N)"},
		{core.Algorithm{}, "3..6(K-1), K=sqrt(N)", "T"},
	}
}
