package harness

import (
	"fmt"
	"strings"

	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/lamport"
	"dqmx/internal/maekawa"
	"dqmx/internal/mutex"
	"dqmx/internal/raymond"
	"dqmx/internal/ricartagrawala"
	"dqmx/internal/singhal"
	"dqmx/internal/suzukikasami"
)

// This file is the single registry mapping protocol and quorum names to
// implementations. The public facade (dqmx.Options, dqmx.Protocols,
// dqmx.Quorums) and every cmd binary resolve names here, so there is
// exactly one list to extend when an algorithm or construction lands —
// and every unknown-name error enumerates the valid choices.

// ProtocolNames returns the canonical protocol names: the paper's
// delay-optimal algorithm first, then the six baselines it compares
// against.
func ProtocolNames() []string {
	return []string{
		"delay-optimal", "maekawa", "lamport", "ricart-agrawala",
		"singhal-dynamic", "suzuki-kasami", "raymond",
	}
}

// QuorumNames returns the canonical quorum construction names.
func QuorumNames() []string {
	return []string{
		"grid", "tree", "hqc", "grid-set", "rst", "wall",
		"majority", "fpp", "singleton",
	}
}

// NewConstruction resolves a quorum construction by name. The empty string
// defaults to the paper's grid quorums. Unknown names error with the full
// list of valid choices.
func NewConstruction(name string) (coterie.Construction, error) {
	switch name {
	case "", "grid", "maekawa-grid":
		return coterie.Grid{}, nil
	case "tree", "ae-tree":
		return coterie.Tree{}, nil
	case "hqc":
		return coterie.HQC{}, nil
	case "grid-set":
		return coterie.GridSet{}, nil
	case "rst":
		return coterie.RST{}, nil
	case "wall", "crumbling-wall":
		return coterie.Wall{}, nil
	case "majority":
		return coterie.Majority{}, nil
	case "fpp":
		return coterie.FPP{}, nil
	case "singleton":
		return coterie.Singleton{}, nil
	}
	return nil, fmt.Errorf("unknown quorum construction %q (valid: %s)",
		name, strings.Join(QuorumNames(), ", "))
}

// AlgorithmOptions carries the protocol knobs NewAlgorithmOpts applies.
type AlgorithmOptions struct {
	// DisableRecovery turns off the delay-optimal protocol's §6 fault
	// tolerance.
	DisableRecovery bool
	// DisableTransfer forces the delay-optimal protocol onto the release
	// fallback (2T) handover path — the live A/B control arm. Setting it
	// for any other protocol is an error.
	DisableTransfer bool
}

// NewAlgorithm resolves a protocol by name over the given coterie (ignored
// by the non-quorum baselines). The empty string defaults to the paper's
// delay-optimal protocol; disableRecovery turns off its §6 fault tolerance.
// Unknown names error with the full list of valid choices.
func NewAlgorithm(protocol string, cons coterie.Construction, disableRecovery bool) (mutex.Algorithm, error) {
	return NewAlgorithmOpts(protocol, cons, AlgorithmOptions{DisableRecovery: disableRecovery})
}

// NewAlgorithmOpts is NewAlgorithm with the full option set.
func NewAlgorithmOpts(protocol string, cons coterie.Construction, opts AlgorithmOptions) (mutex.Algorithm, error) {
	if opts.DisableTransfer {
		switch protocol {
		case "", "delay-optimal":
		default:
			return nil, fmt.Errorf("protocol %q has no transfer mechanism to disable", protocol)
		}
	}
	switch protocol {
	case "", "delay-optimal":
		return core.Algorithm{
			Construction:    cons,
			DisableRecovery: opts.DisableRecovery,
			DisableTransfer: opts.DisableTransfer,
		}, nil
	case "maekawa":
		return maekawa.Algorithm{Construction: cons}, nil
	case "lamport":
		return lamport.Algorithm{}, nil
	case "ricart-agrawala":
		return ricartagrawala.Algorithm{}, nil
	case "singhal-dynamic":
		return singhal.Algorithm{}, nil
	case "suzuki-kasami":
		return suzukikasami.Algorithm{}, nil
	case "raymond":
		return raymond.Algorithm{}, nil
	}
	return nil, fmt.Errorf("unknown protocol %q (valid: %s)",
		protocol, strings.Join(ProtocolNames(), ", "))
}
